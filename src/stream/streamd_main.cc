// telekit_streamd: online fault-analysis pipeline over a replayed live
// stream (Sec. IV-B/V deployment shape).
//
// Replays an interleaved alarm/KPI/signaling stream generated from the
// synthetic world at --speedup (simulated seconds per wall second; "inf"
// replays as fast as the engine drains), sessionizes it into candidate
// fault episodes with watermark-based sliding windows, and drives each
// episode's text through the ServeEngine (rca/eap/fct) continuously with
// backpressure. Admin endpoints (--admin-port) expose the live pipeline:
// /statusz gains a "stream" section, /metrics the stream/* series.
//
// Determinism contract (asserted in tests/stream_test.cc, documented in
// DESIGN.md): with a fixed --seed and --speedup=inf two runs produce
// identical episode partitions and identical RCA/EAP/FCT verdicts.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/flag_parse.h"
#include "core/model_zoo.h"
#include "obs/admin.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/requestlog.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/engine.h"
#include "stream/pipeline.h"
#include "synth/replay.h"
#include "tensor/compute_pool.h"

namespace telekit {
namespace stream {
namespace {

struct Flags {
  uint64_t seed = 20230401;
  int episodes = 40;
  double mean_gap = 12.0;
  double jitter = 0.5;
  double window = 10.0;
  double watermark = 2.0;
  double idle_gap = 4.0;
  double speedup = synth::SimClock::kInfiniteSpeedup;
  /// auto: sync (deterministic) when speedup is inf, async otherwise.
  std::string mode = "auto";
  size_t max_in_flight = 32;
  double submit_block_ms = 1000.0;
  int top_k = 5;
  int workers = 4;
  int max_batch = 8;
  size_t queue_capacity = 1024;
  int compute_threads = 0;
  int admin_port = -1;
  bool linger = false;
  std::string obs_json;
  std::string request_log;       // NDJSON wide-event sink ("" = off)
  double ts_interval_s = 1.0;    // time-series sampler period
  size_t ts_capacity = 600;      // ring slots per series
  double slo_latency_ms = 250.0;  // detect-latency objective boundary
  double slo_fast_s = 60.0;      // burn-rate fast window
  double slo_slow_s = 300.0;     // burn-rate slow window
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

void PrintUsage() {
  std::cerr
      << "usage: telekit_streamd [options]\n"
      << "  --seed=N             world/model/replay seed (default 20230401)\n"
      << "  --episodes=N         fault episodes to replay (default 40)\n"
      << "  --mean-gap=X         mean episode inter-arrival gap, sim s\n"
      << "  --jitter=X           max out-of-order delivery skew, sim s\n"
      << "  --window=X           session window span, sim s (default 10)\n"
      << "  --watermark=X        watermark delay / lateness bound (default 2)\n"
      << "  --idle-gap=X         idle window flush gap (default 4)\n"
      << "  --speedup=X|inf      sim seconds per wall second (default inf)\n"
      << "  --mode=sync|async    sync = deterministic replay via the\n"
      << "                       unbatched Process path; async = Submit with\n"
      << "                       micro-batching + blocking backpressure\n"
      << "                       (default: sync when speedup=inf)\n"
      << "  --max-in-flight=N    async: episodes awaiting verdicts cap\n"
      << "  --submit-block-ms=X  async: max Submit stall before shedding\n"
      << "  --top-k=N            candidates per task op (default 5)\n"
      << "  --workers=N          engine worker threads (default 4)\n"
      << "  --max-batch=N        engine micro-batch cap (default 8)\n"
      << "  --queue-capacity=N   engine bounded queue (default 1024)\n"
      << "  --compute-threads=N  intra-op tensor threads\n"
      << "  --admin-port=N       HTTP admin endpoints on 127.0.0.1:N\n"
      << "  --linger             keep the admin server up after the replay\n"
      << "                       (until killed) so /statusz can be scraped\n"
      << "  --obs-json=PATH      write metrics/trace report on exit\n"
      << "  --request-log=PATH   append one NDJSON wide event per request\n"
      << "  --ts-interval-s=X    time-series sample period (default 1)\n"
      << "  --ts-capacity=N      time-series ring slots (default 600)\n"
      << "  --slo-latency-ms=X   detect-latency SLO threshold (default 250)\n"
      << "  --slo-fast-s=X       SLO fast burn window (default 60)\n"
      << "  --slo-slow-s=X       SLO slow burn window (default 300)\n"
      << "  --log-level=LEVEL    debug|info|warn|error|off\n";
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "seed", &v)) {
      flags->seed = static_cast<uint64_t>(
          ParseIntFlagOrDie("seed", v, 0, std::numeric_limits<int64_t>::max()));
    } else if (ParseFlag(arg, "episodes", &v)) {
      flags->episodes =
          static_cast<int>(ParseIntFlagOrDie("episodes", v, 1, 1 << 30));
    } else if (ParseFlag(arg, "mean-gap", &v)) {
      flags->mean_gap = ParseDoubleFlagOrDie("mean-gap", v, 0.0, 1e9);
    } else if (ParseFlag(arg, "jitter", &v)) {
      flags->jitter = ParseDoubleFlagOrDie("jitter", v, 0.0, 1e9);
    } else if (ParseFlag(arg, "window", &v)) {
      flags->window = ParseDoubleFlagOrDie("window", v, 0.001, 1e9);
    } else if (ParseFlag(arg, "watermark", &v)) {
      flags->watermark = ParseDoubleFlagOrDie("watermark", v, 0.0, 1e9);
    } else if (ParseFlag(arg, "idle-gap", &v)) {
      flags->idle_gap = ParseDoubleFlagOrDie("idle-gap", v, 0.0, 1e9);
    } else if (ParseFlag(arg, "speedup", &v)) {
      flags->speedup = (v == "inf" || v == "0")
                           ? synth::SimClock::kInfiniteSpeedup
                           : ParseDoubleFlagOrDie("speedup", v, 0.001, 1e9);
    } else if (ParseFlag(arg, "mode", &v)) {
      if (v != "sync" && v != "async" && v != "auto") {
        std::cerr << "bad --mode: " << v << "\n";
        return false;
      }
      flags->mode = v;
    } else if (ParseFlag(arg, "max-in-flight", &v)) {
      flags->max_in_flight = static_cast<size_t>(
          ParseIntFlagOrDie("max-in-flight", v, 1, int64_t{1} << 30));
    } else if (ParseFlag(arg, "submit-block-ms", &v)) {
      flags->submit_block_ms =
          ParseDoubleFlagOrDie("submit-block-ms", v, 0.0, 1e9);
    } else if (ParseFlag(arg, "top-k", &v)) {
      flags->top_k = static_cast<int>(ParseIntFlagOrDie("top-k", v, 1, 1000));
    } else if (ParseFlag(arg, "workers", &v)) {
      flags->workers =
          static_cast<int>(ParseIntFlagOrDie("workers", v, 1, 1024));
    } else if (ParseFlag(arg, "max-batch", &v)) {
      flags->max_batch =
          static_cast<int>(ParseIntFlagOrDie("max-batch", v, 1, 1 << 20));
    } else if (ParseFlag(arg, "queue-capacity", &v)) {
      flags->queue_capacity = static_cast<size_t>(
          ParseIntFlagOrDie("queue-capacity", v, 1, int64_t{1} << 30));
    } else if (ParseFlag(arg, "compute-threads", &v)) {
      flags->compute_threads =
          static_cast<int>(ParseIntFlagOrDie("compute-threads", v, 0, 4096));
    } else if (ParseFlag(arg, "admin-port", &v)) {
      flags->admin_port =
          static_cast<int>(ParseIntFlagOrDie("admin-port", v, -1, 65535));
    } else if (arg == "--linger") {
      flags->linger = true;
    } else if (ParseFlag(arg, "obs-json", &v)) {
      flags->obs_json = v;
    } else if (ParseFlag(arg, "request-log", &v)) {
      flags->request_log = v;
    } else if (ParseFlag(arg, "ts-interval-s", &v)) {
      flags->ts_interval_s =
          ParseDoubleFlagOrDie("ts-interval-s", v, 0.001, 1e6);
    } else if (ParseFlag(arg, "ts-capacity", &v)) {
      flags->ts_capacity = static_cast<size_t>(
          ParseIntFlagOrDie("ts-capacity", v, 1, int64_t{1} << 30));
    } else if (ParseFlag(arg, "slo-latency-ms", &v)) {
      flags->slo_latency_ms =
          ParseDoubleFlagOrDie("slo-latency-ms", v, 0.0, 1e9);
    } else if (ParseFlag(arg, "slo-fast-s", &v)) {
      flags->slo_fast_s = ParseDoubleFlagOrDie("slo-fast-s", v, 0.001, 1e9);
    } else if (ParseFlag(arg, "slo-slow-s", &v)) {
      flags->slo_slow_s = ParseDoubleFlagOrDie("slo-slow-s", v, 0.001, 1e9);
    } else if (ParseFlag(arg, "log-level", &v)) {
      obs::Logger::Global().set_level(obs::ParseLogLevel(v));
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      PrintUsage();
      return false;
    }
  }
  return true;
}

/// Same interactive-startup zoo scale as telekit_serve.
core::ZooConfig StreamZooConfig(const Flags& flags) {
  core::ZooConfig config;
  config.seed = flags.seed;
  config.world.num_alarm_types = 48;
  config.world.num_kpi_types = 24;
  config.corpus.num_tele_sentences = 1500;
  config.corpus.num_general_sentences = 1500;
  config.num_episodes = 40;
  config.pretrain.steps = 0;
  config.cache_dir = "";  // TELEKIT_CACHE env still overrides
  return config;
}

/// Live run state shared with the admin thread.
struct RunState {
  std::atomic<bool> ready{false};
  std::atomic<bool> done{false};
  std::mutex mutex;  // guards hits
  HitStats hits;
};

obs::JsonValue StreamStatusJson(const RunState& state) {
  auto& reg = obs::MetricsRegistry::Global();
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("done", obs::JsonValue(state.done.load()));
  auto counter = [&reg](const char* name) {
    const obs::Counter* c = reg.FindCounter(name);
    return obs::JsonValue(c != nullptr ? c->value() : 0);
  };
  auto gauge = [&reg](const char* name) {
    const obs::Gauge* g = reg.FindGauge(name);
    return obs::JsonValue(g != nullptr ? g->value() : 0.0);
  };
  out.Set("events", counter("stream/events"));
  out.Set("episodes", counter("stream/episodes"));
  out.Set("episodes_analysed", counter("stream/episodes_analysed"));
  out.Set("episodes_shed", counter("stream/episodes_shed"));
  out.Set("late_drops", counter("stream/late_drops"));
  out.Set("duplicate_alarms", counter("stream/duplicate_alarms"));
  out.Set("background_events", counter("stream/background_events"));
  out.Set("orphan_symptoms", counter("stream/orphan_symptoms"));
  out.Set("throttled_submits", counter("stream/throttled_submits"));
  out.Set("open_windows", gauge("stream/open_windows"));
  out.Set("window_occupancy", gauge("stream/window_occupancy"));
  out.Set("watermark_lag_s", gauge("stream/watermark_lag_s"));
  out.Set("in_flight", gauge("stream/in_flight"));
  out.Set("episodes_per_sec", gauge("stream/episodes_per_sec"));
  if (const obs::LatencyHistogram* h =
          reg.FindLatencyHistogram("stream/detect_ms")) {
    out.Set("detect_latency", obs::LatencySummaryJson(*h));
  }
  {
    auto& state_mutable = const_cast<RunState&>(state);
    std::lock_guard<std::mutex> lock(state_mutable.mutex);
    obs::JsonValue hits = obs::JsonValue::Object();
    hits.Set("judged", obs::JsonValue(state.hits.judged));
    hits.Set("hit1", obs::JsonValue(state.hits.HitRate1()));
    hits.Set("hit3", obs::JsonValue(state.hits.HitRate3()));
    out.Set("online_rca", std::move(hits));
  }
  return out;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 1;
  if (!flags.obs_json.empty()) {
    obs::TraceCollector::Global().set_recording(true);
  }
  const auto start_time = std::chrono::steady_clock::now();

  if (!flags.request_log.empty() &&
      !obs::RequestLog::Global().SetSinkFile(flags.request_log)) {
    std::cerr << "failed to open --request-log=" << flags.request_log << "\n";
    return 1;
  }

  // Declared before the admin server so handlers referencing them outlive
  // it; the sampler thread starts only after all early-return paths.
  obs::TimeSeriesOptions ts_options;
  ts_options.interval_s = flags.ts_interval_s;
  ts_options.capacity = flags.ts_capacity;
  obs::TimeSeriesStore timeseries(ts_options);
  obs::SloConfig slo_config;
  slo_config.fast_window_s = flags.slo_fast_s;
  slo_config.slow_window_s = flags.slo_slow_s;
  slo_config.budget_window_s = flags.slo_slow_s * 6.0;
  obs::SloEngine slo(&timeseries, slo_config);
  // The embedded engine serves rca/eap/fct in-process, so streamd watches
  // the stream objectives and the serve ones.
  for (obs::SloObjective& objective :
       obs::DefaultStreamObjectives(flags.slo_latency_ms, 0.99, 0.95)) {
    slo.AddObjective(std::move(objective));
  }
  for (obs::SloObjective& objective :
       obs::DefaultServeObjectives(flags.slo_latency_ms, 0.999, 0.95)) {
    slo.AddObjective(std::move(objective));
  }
  timeseries.SetOnSample([&slo](double now_s) { slo.Evaluate(now_s); });

  RunState state;
  std::atomic<serve::ServeEngine*> engine_ptr{nullptr};
  obs::AdminServer admin;
  admin.Handle("/timeseriesz", [&timeseries](const obs::HttpRequest& request) {
    return timeseries.HandleQuery(request);
  });
  admin.Handle("/alertz", [&slo](const obs::HttpRequest& request) {
    return slo.HandleQuery(request);
  });
  admin.Handle("/readyz", [&state](const obs::HttpRequest&) {
    return state.ready.load() ? obs::HttpResponse::Text(200, "ready\n")
                              : obs::HttpResponse::Text(503, "loading\n");
  });
  admin.Handle("/statusz", [&state, &engine_ptr, &timeseries, &slo,
                            start_time](const obs::HttpRequest&) {
    obs::JsonValue out = obs::JsonValue::Object();
    out.Set("server", obs::JsonValue("telekit_streamd"));
    out.Set("uptime_s",
            obs::JsonValue(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_time)
                               .count()));
    out.Set("ready", obs::JsonValue(state.ready.load()));
    out.Set("stream", StreamStatusJson(state));
    if (serve::ServeEngine* engine = engine_ptr.load()) {
      const serve::EngineStats stats = engine->GetStats();
      obs::JsonValue e = obs::JsonValue::Object();
      e.Set("queue_depth", obs::JsonValue(stats.queue_depth));
      e.Set("queue_capacity", obs::JsonValue(stats.queue_capacity));
      e.Set("saturated", obs::JsonValue(stats.saturated));
      e.Set("requests", obs::JsonValue(stats.requests));
      e.Set("rejected", obs::JsonValue(stats.rejected));
      e.Set("cache_hit_rate", obs::JsonValue(stats.cache_hit_rate));
      out.Set("engine", std::move(e));
    }
    obs::JsonValue ts = obs::JsonValue::Object();
    ts.Set("running", obs::JsonValue(timeseries.running()));
    ts.Set("interval_s", obs::JsonValue(timeseries.options().interval_s));
    ts.Set("samples_taken", obs::JsonValue(timeseries.samples_taken()));
    out.Set("timeseries", std::move(ts));
    obs::JsonValue slo_json = obs::JsonValue::Object();
    slo_json.Set("objectives",
                 obs::JsonValue(static_cast<uint64_t>(slo.Snapshot().size())));
    slo_json.Set("firing",
                 obs::JsonValue(static_cast<uint64_t>(slo.firing_count())));
    out.Set("slo", std::move(slo_json));
    obs::JsonValue rlog = obs::JsonValue::Object();
    rlog.Set("size",
             obs::JsonValue(static_cast<uint64_t>(
                 obs::RequestLog::Global().size())));
    rlog.Set("total_recorded",
             obs::JsonValue(obs::RequestLog::Global().total_recorded()));
    rlog.Set("sink", obs::JsonValue(obs::RequestLog::Global().sink_path()));
    out.Set("request_log", std::move(rlog));
    return obs::HttpResponse::Json(200, out);
  });
  if (flags.admin_port >= 0 && !admin.Start(flags.admin_port)) {
    std::cerr << "failed to start admin server on 127.0.0.1:"
              << flags.admin_port << "\n";
    return 1;
  }
  if (flags.compute_threads > 0) {
    tensor::SetComputeThreads(flags.compute_threads);
  }

  std::cerr << "telekit_streamd: building model (seed=" << flags.seed
            << ")...\n";
  core::ModelZoo zoo(StreamZooConfig(flags));
  zoo.BuildData();
  zoo.BuildPretrained();
  core::TeleBertEncoder encoder(&zoo.telebert());
  core::ServiceEncoder service(&encoder, &zoo.tokenizer(), &zoo.store(),
                               &zoo.normalizer());

  serve::EngineOptions options;
  options.num_workers = flags.workers;
  options.queue_capacity = flags.queue_capacity;
  options.max_batch = flags.max_batch;
  options.compute_threads = flags.compute_threads;
  serve::ServeEngine engine(&service, options);
  engine_ptr.store(&engine);
  std::vector<std::string> alarm_names;
  for (const auto& alarm : zoo.world().alarms()) {
    alarm_names.push_back(alarm.name);
  }
  for (serve::TaskOp op :
       {serve::TaskOp::kRca, serve::TaskOp::kEap, serve::TaskOp::kFct}) {
    const Status status = engine.LoadCatalog(op, alarm_names);
    if (!status.ok()) {
      std::cerr << "LoadCatalog(" << serve::TaskOpName(op)
                << "): " << status.ToString() << "\n";
      return 1;
    }
  }

  // Replay stream: a dedicated rng stream (seed ^ constant) so the replay
  // is decoupled from the world/model build.
  synth::LogConfig log_config;
  synth::LogGenerator log_gen(zoo.world(), log_config);
  synth::SignalingConfig signaling_config;
  synth::SignalingFlowGenerator signaling_gen(zoo.world(), signaling_config);
  synth::ReplayConfig replay;
  replay.num_episodes = flags.episodes;
  replay.mean_episode_gap = flags.mean_gap;
  replay.jitter = flags.jitter;
  Rng replay_rng(flags.seed ^ 0x5741544552ULL);  // "WATER"(mark)
  const std::vector<synth::ScheduledEpisode> episodes =
      ScheduleEpisodes(log_gen, signaling_gen, replay, replay_rng);
  const std::vector<synth::StreamEvent> events =
      BuildReplayStream(log_gen, signaling_gen, episodes, replay, replay_rng);
  std::vector<std::string> truth_roots;
  truth_roots.reserve(episodes.size());
  for (const synth::ScheduledEpisode& scheduled : episodes) {
    truth_roots.push_back(
        zoo.world()
            .alarms()[static_cast<size_t>(scheduled.episode.root_alarm)]
            .name);
  }

  PipelineConfig config;
  config.window.window_span = flags.window;
  config.window.watermark_delay = flags.watermark;
  config.window.idle_gap = flags.idle_gap;
  config.speedup = flags.speedup;
  config.deterministic =
      flags.mode == "auto"
          ? flags.speedup == synth::SimClock::kInfiniteSpeedup
          : flags.mode == "sync";
  config.max_in_flight = flags.max_in_flight;
  config.submit_block_ms = flags.submit_block_ms;
  config.top_k = flags.top_k;
  StreamPipeline pipeline(zoo.world(), &engine, config);

  // No early-return path remains: safe to start the sampler whose
  // callback reaches into `slo`.
  timeseries.Start();
  state.ready.store(true);
  std::cerr << "telekit_streamd: replaying " << events.size()
            << " events / " << episodes.size() << " episodes ("
            << (config.deterministic ? "sync" : "async") << " mode, speedup="
            << flags.speedup << ", " << flags.workers << " workers)\n";
  if (admin.running()) {
    std::cerr << "telekit_streamd: admin endpoints on 127.0.0.1:"
              << admin.port() << "\n";
  }

  const PipelineSummary summary =
      pipeline.Run(events, [&state, &truth_roots](EpisodeVerdict verdict) {
        std::lock_guard<std::mutex> lock(state.mutex);
        state.hits.Accumulate(verdict, truth_roots);
      });
  state.done.store(true);

  HitStats hits;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    hits = state.hits;
  }
  const obs::LatencyHistogram& detect =
      obs::MetricsRegistry::Global().GetLatencyHistogram("stream/detect_ms");
  std::cout << "telekit_streamd summary\n"
            << "  events:            " << summary.sessionizer.events << "\n"
            << "  episodes flushed:  " << summary.sessionizer.episodes_flushed
            << "\n"
            << "  analysed / shed:   " << summary.episodes_analysed << " / "
            << summary.episodes_shed << "\n"
            << "  late drops:        " << summary.sessionizer.late_drops
            << "\n"
            << "  duplicate alarms:  " << summary.sessionizer.duplicate_alarms
            << "\n"
            << "  episodes/sec:      " << summary.episodes_per_sec << "\n"
            << "  detect p50/p99 ms: " << detect.Quantile(0.50) << " / "
            << detect.Quantile(0.99) << "\n"
            << "  throttled submits: " << summary.throttled_submits << " ("
            << summary.throttled_ms << " ms)\n"
            << "  online RCA hit@1:  " << hits.HitRate1() << " (judged "
            << hits.judged << ")\n"
            << "  online RCA hit@3:  " << hits.HitRate3() << "\n";

  if (flags.linger) {
    std::cerr << "telekit_streamd: replay done; lingering for admin scrapes"
                 " (kill to exit)\n";
    while (true) {
      std::this_thread::sleep_for(std::chrono::seconds(1));
    }
  }
  admin.Stop();
  timeseries.Stop();
  engine_ptr.store(nullptr);
  engine.Stop();
  if (!flags.obs_json.empty()) obs::WriteReport(flags.obs_json);
  return 0;
}

}  // namespace
}  // namespace stream
}  // namespace telekit

int main(int argc, char** argv) {
  return telekit::stream::Main(argc, argv);
}

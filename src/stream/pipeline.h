#ifndef TELEKIT_STREAM_PIPELINE_H_
#define TELEKIT_STREAM_PIPELINE_H_

#include <deque>
#include <functional>
#include <future>
#include <string>
#include <vector>

#include "serve/engine.h"
#include "stream/sessionizer.h"
#include "synth/replay.h"

namespace telekit {
namespace stream {

/// Streaming pipeline knobs.
struct PipelineConfig {
  WindowConfig window;
  /// Replay speed in simulated seconds per wall second; infinity (the
  /// default) replays as fast as the engine drains.
  double speedup = synth::SimClock::kInfiniteSpeedup;
  /// Deterministic replay mode: candidates go through the synchronous
  /// ServeEngine::Process path (batch of 1, single thread), which the
  /// PR-4 compute contract makes bit-identical across runs and thread
  /// counts. Async mode rides Submit() with micro-batching and blocking
  /// backpressure instead — higher throughput, verdicts only guaranteed
  /// within the batched-vs-single 1e-5 agreement.
  bool deterministic = true;
  /// Async mode: max candidates with unharvested verdicts before
  /// ingestion blocks on the oldest (bounded memory).
  size_t max_in_flight = 32;
  /// Async mode: how long one Submit may block waiting for queue space
  /// before the episode is shed (0 sheds immediately on a full queue).
  double submit_block_ms = 1000.0;
  /// Candidates returned per task op.
  int top_k = 5;
};

/// The analysed outcome of one candidate episode: the query text plus the
/// RCA/EAP/FCT responses. `ok` is false when the engine shed the episode
/// (backpressure under saturation) — the candidate partition is still
/// reported so detection and analysis can be accounted separately.
struct EpisodeVerdict {
  EpisodeCandidate candidate;
  std::string query;
  serve::Response rca;
  serve::Response eap;
  serve::Response fct;
  bool ok = false;
  /// Wall-clock milliseconds from the window flush (the moment the
  /// episode became detectable) to the RCA verdict being available.
  double detect_ms = 0.0;
};

/// End-of-run pipeline accounting.
struct PipelineSummary {
  SessionizerStats sessionizer;
  uint64_t episodes_analysed = 0;
  uint64_t episodes_shed = 0;
  /// Submits that blocked on engine backpressure, and the total time
  /// ingestion spent throttled.
  uint64_t throttled_submits = 0;
  double throttled_ms = 0.0;
  double wall_seconds = 0.0;
  double episodes_per_sec = 0.0;
};

/// Online RCA accuracy accumulator: a verdict scores hit@k when the
/// ground-truth root alarm surface of its majority source episode appears
/// in the top k RCA candidates.
struct HitStats {
  int judged = 0;
  int hit1 = 0;
  int hit3 = 0;

  /// `truth_roots[i]` is the root alarm surface of scheduled episode i.
  void Accumulate(const EpisodeVerdict& verdict,
                  const std::vector<std::string>& truth_roots);
  double HitRate1() const { return judged > 0 ? 1.0 * hit1 / judged : 0.0; }
  double HitRate3() const { return judged > 0 ? 1.0 * hit3 / judged : 0.0; }
};

/// Drives an arrival-ordered event stream through sessionization and the
/// serve engine:
///
///   events -> SimClock pacing -> Sessionizer (watermark windows)
///          -> EpisodeQueryText -> ServeEngine kRca/kEap/kFct -> verdicts
///
/// Backpressure: in async mode submissions block (bounded by
/// submit_block_ms) when the engine queue is full, and at most
/// max_in_flight candidates are awaiting verdicts — a saturated engine
/// therefore throttles ingestion instead of growing queues. Verdicts are
/// delivered to the sink in flush order in both modes.
///
/// Reports stream/* metrics (window occupancy, watermark lag, late drops,
/// episodes, backpressure) to the global MetricsRegistry continuously, so
/// /statusz and /metrics observe a live run.
class StreamPipeline {
 public:
  using VerdictSink = std::function<void(EpisodeVerdict)>;

  StreamPipeline(const synth::WorldModel& world, serve::ServeEngine* engine,
                 const PipelineConfig& config);

  /// Replays the whole stream (blocking), flushes every remaining window,
  /// harvests every verdict, and returns the accounting. `sink` may be
  /// null. Call from one thread.
  PipelineSummary Run(const std::vector<synth::StreamEvent>& events,
                      const VerdictSink& sink);

 private:
  struct InFlight {
    EpisodeCandidate candidate;
    std::string query;
    std::future<serve::Response> rca;
    std::future<serve::Response> eap;
    std::future<serve::Response> fct;
    std::chrono::steady_clock::time_point flushed_at;
  };

  void Analyse(EpisodeCandidate candidate, const VerdictSink& sink);
  void HarvestOldest(const VerdictSink& sink);
  void HarvestAll(const VerdictSink& sink);
  std::future<serve::Response> SubmitOp(serve::TaskOp op,
                                        const std::string& query);
  void PublishMetrics();

  const synth::WorldModel& world_;
  serve::ServeEngine* engine_;
  PipelineConfig config_;
  Sessionizer sessionizer_;
  std::deque<InFlight> in_flight_;
  PipelineSummary summary_;
};

}  // namespace stream
}  // namespace telekit

#endif  // TELEKIT_STREAM_PIPELINE_H_

#include "stream/pipeline.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/requestlog.h"
#include "obs/trace.h"

namespace telekit {
namespace stream {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Stream metric handles, cached once (the registry never destroys them).
struct StreamMetrics {
  obs::Counter& events;
  obs::Counter& late_drops;
  obs::Counter& duplicate_alarms;
  obs::Counter& overflow_drops;
  obs::Counter& background_events;
  obs::Counter& orphan_symptoms;
  obs::Counter& episodes;
  obs::Counter& episodes_analysed;
  obs::Counter& episodes_shed;
  obs::Counter& throttled_submits;
  obs::Gauge& open_windows;
  obs::Gauge& window_occupancy;
  obs::Gauge& watermark_lag_s;
  obs::Gauge& in_flight;
  obs::Gauge& episodes_per_sec;
  obs::LatencyHistogram& detect_ms;
  obs::LatencyHistogram& backpressure_ms;

  static StreamMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static StreamMetrics m{
        reg.GetCounter("stream/events"),
        reg.GetCounter("stream/late_drops"),
        reg.GetCounter("stream/duplicate_alarms"),
        reg.GetCounter("stream/overflow_drops"),
        reg.GetCounter("stream/background_events"),
        reg.GetCounter("stream/orphan_symptoms"),
        reg.GetCounter("stream/episodes"),
        reg.GetCounter("stream/episodes_analysed"),
        reg.GetCounter("stream/episodes_shed"),
        reg.GetCounter("stream/throttled_submits"),
        reg.GetGauge("stream/open_windows"),
        reg.GetGauge("stream/window_occupancy"),
        reg.GetGauge("stream/watermark_lag_s"),
        reg.GetGauge("stream/in_flight"),
        reg.GetGauge("stream/episodes_per_sec"),
        reg.GetLatencyHistogram("stream/detect_ms"),
        reg.GetLatencyHistogram("stream/backpressure_ms"),
    };
    return m;
  }
};

}  // namespace

void HitStats::Accumulate(const EpisodeVerdict& verdict,
                          const std::vector<std::string>& truth_roots) {
  if (!verdict.ok) return;
  const int truth = verdict.candidate.truth_episode;
  if (truth < 0 || static_cast<size_t>(truth) >= truth_roots.size()) return;
  const std::string& root = truth_roots[static_cast<size_t>(truth)];
  ++judged;
  for (size_t i = 0; i < verdict.rca.results.size() && i < 3; ++i) {
    if (verdict.rca.results[i].name != root) continue;
    if (i == 0) ++hit1;
    ++hit3;
    break;
  }
}

StreamPipeline::StreamPipeline(const synth::WorldModel& world,
                               serve::ServeEngine* engine,
                               const PipelineConfig& config)
    : world_(world),
      engine_(engine),
      config_(config),
      sessionizer_(world, config.window) {
  TELEKIT_CHECK(engine_ != nullptr);
  TELEKIT_CHECK_GT(config_.max_in_flight, 0u);
}

void StreamPipeline::PublishMetrics() {
  StreamMetrics& metrics = StreamMetrics::Get();
  const SessionizerStats& now = sessionizer_.stats();
  const SessionizerStats& prev = summary_.sessionizer;
  metrics.events.Increment(now.events - prev.events);
  metrics.late_drops.Increment(now.late_drops - prev.late_drops);
  metrics.duplicate_alarms.Increment(now.duplicate_alarms -
                                     prev.duplicate_alarms);
  metrics.overflow_drops.Increment(now.overflow_drops - prev.overflow_drops);
  metrics.background_events.Increment(now.background_events -
                                      prev.background_events);
  metrics.orphan_symptoms.Increment(now.orphan_symptoms -
                                    prev.orphan_symptoms);
  metrics.episodes.Increment(now.episodes_flushed - prev.episodes_flushed);
  metrics.open_windows.Set(static_cast<double>(now.open_windows));
  metrics.window_occupancy.Set(static_cast<double>(now.window_occupancy));
  metrics.watermark_lag_s.Set(now.watermark_lag);
  metrics.in_flight.Set(static_cast<double>(in_flight_.size()));
  // summary_.sessionizer doubles as the "last published" snapshot, so the
  // registry counters stay exact mirrors of the sessionizer's.
  summary_.sessionizer = now;
}

std::future<serve::Response> StreamPipeline::SubmitOp(
    serve::TaskOp op, const std::string& query) {
  StreamMetrics& metrics = StreamMetrics::Get();
  serve::Request request;
  request.op = op;
  request.text = query;
  request.top_k = config_.top_k;
  const Clock::time_point before = Clock::now();
  std::future<serve::Response> future =
      engine_->Submit(std::move(request), config_.submit_block_ms);
  const double blocked_ms = MsSince(before, Clock::now());
  // Submit only dwells when the bounded queue is full — that dwell *is*
  // the backpressure throttling ingestion, so make it observable.
  if (blocked_ms >= 0.05) {
    metrics.throttled_submits.Increment();
    metrics.backpressure_ms.Observe(blocked_ms);
    ++summary_.throttled_submits;
    summary_.throttled_ms += blocked_ms;
  }
  // A full queue that never drained within submit_block_ms fulfils the
  // future immediately with Unavailable; the episode is shed at harvest.
  return future;
}

void StreamPipeline::Analyse(EpisodeCandidate candidate,
                             const VerdictSink& sink) {
  StreamMetrics& metrics = StreamMetrics::Get();
  const Clock::time_point flushed_at = Clock::now();
  std::string query = EpisodeQueryText(world_, candidate);

  if (config_.deterministic) {
    EpisodeVerdict verdict;
    verdict.query = query;
    serve::Request request;
    request.text = query;
    request.top_k = config_.top_k;
    request.op = serve::TaskOp::kRca;
    verdict.rca = engine_->Process(request);
    verdict.detect_ms = MsSince(flushed_at, Clock::now());
    request.op = serve::TaskOp::kEap;
    verdict.eap = engine_->Process(request);
    request.op = serve::TaskOp::kFct;
    verdict.fct = engine_->Process(request);
    verdict.ok = verdict.rca.status.ok();
    verdict.candidate = std::move(candidate);
    metrics.detect_ms.Observe(verdict.detect_ms);
    obs::ExemplarStore::Global().Record("stream/detect_ms", verdict.detect_ms,
                                        verdict.rca.trace_id);
    (verdict.ok ? metrics.episodes_analysed : metrics.episodes_shed)
        .Increment();
    ++(verdict.ok ? summary_.episodes_analysed : summary_.episodes_shed);
    if (sink) sink(std::move(verdict));
    return;
  }

  if (in_flight_.size() >= config_.max_in_flight) HarvestOldest(sink);
  InFlight item;
  item.flushed_at = flushed_at;
  item.rca = SubmitOp(serve::TaskOp::kRca, query);
  item.eap = SubmitOp(serve::TaskOp::kEap, query);
  item.fct = SubmitOp(serve::TaskOp::kFct, query);
  item.query = std::move(query);
  item.candidate = std::move(candidate);
  in_flight_.push_back(std::move(item));
}

void StreamPipeline::HarvestOldest(const VerdictSink& sink) {
  if (in_flight_.empty()) return;
  StreamMetrics& metrics = StreamMetrics::Get();
  InFlight item = std::move(in_flight_.front());
  in_flight_.pop_front();
  EpisodeVerdict verdict;
  verdict.rca = item.rca.get();
  verdict.detect_ms = MsSince(item.flushed_at, Clock::now());
  verdict.eap = item.eap.get();
  verdict.fct = item.fct.get();
  verdict.ok = verdict.rca.status.ok();
  verdict.query = std::move(item.query);
  verdict.candidate = std::move(item.candidate);
  if (verdict.ok) {
    metrics.detect_ms.Observe(verdict.detect_ms);
    obs::ExemplarStore::Global().Record("stream/detect_ms",
                                        verdict.detect_ms,
                                        verdict.rca.trace_id);
    metrics.episodes_analysed.Increment();
    ++summary_.episodes_analysed;
  } else {
    metrics.episodes_shed.Increment();
    ++summary_.episodes_shed;
  }
  if (sink) sink(std::move(verdict));
}

void StreamPipeline::HarvestAll(const VerdictSink& sink) {
  while (!in_flight_.empty()) HarvestOldest(sink);
}

PipelineSummary StreamPipeline::Run(
    const std::vector<synth::StreamEvent>& events, const VerdictSink& sink) {
  TELEKIT_SPAN("stream/run");
  StreamMetrics& metrics = StreamMetrics::Get();
  summary_ = PipelineSummary{};
  const Clock::time_point started = Clock::now();
  synth::SimClock clock(config_.speedup);
  std::vector<EpisodeCandidate> flushed;
  auto eps_gauge = [&]() {
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - started).count();
    const uint64_t done =
        summary_.episodes_analysed + summary_.episodes_shed;
    if (elapsed > 0.0) {
      metrics.episodes_per_sec.Set(static_cast<double>(done) / elapsed);
    }
  };
  for (const synth::StreamEvent& event : events) {
    clock.SleepUntil(event.arrival);
    flushed.clear();
    sessionizer_.Offer(event, &flushed);
    PublishMetrics();
    for (EpisodeCandidate& candidate : flushed) {
      Analyse(std::move(candidate), sink);
      eps_gauge();
    }
  }
  flushed.clear();
  sessionizer_.FlushAll(&flushed);
  PublishMetrics();
  for (EpisodeCandidate& candidate : flushed) {
    Analyse(std::move(candidate), sink);
  }
  HarvestAll(sink);
  metrics.in_flight.Set(0.0);
  eps_gauge();

  summary_.sessionizer = sessionizer_.stats();
  summary_.wall_seconds =
      std::chrono::duration<double>(Clock::now() - started).count();
  const uint64_t done = summary_.episodes_analysed + summary_.episodes_shed;
  summary_.episodes_per_sec =
      summary_.wall_seconds > 0.0
          ? static_cast<double>(done) / summary_.wall_seconds
          : 0.0;
  TELEKIT_LOG(INFO) << "stream: replay done"
                    << obs::F("events", summary_.sessionizer.events)
                    << obs::F("episodes",
                              summary_.sessionizer.episodes_flushed)
                    << obs::F("analysed", summary_.episodes_analysed)
                    << obs::F("shed", summary_.episodes_shed)
                    << obs::F("late_drops", summary_.sessionizer.late_drops)
                    << obs::F("episodes_per_sec", summary_.episodes_per_sec);
  return summary_;
}

}  // namespace stream
}  // namespace telekit

#include "stream/sessionizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "common/check.h"

namespace telekit {
namespace stream {

namespace {

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

Sessionizer::Sessionizer(const synth::WorldModel& world,
                         const WindowConfig& config)
    : world_(world), config_(config) {
  TELEKIT_CHECK_GT(config_.window_span, 0.0);
  TELEKIT_CHECK_GE(config_.watermark_delay, 0.0);
  TELEKIT_CHECK_GT(config_.idle_gap, 0.0);
  TELEKIT_CHECK_GT(config_.max_window_events, 0u);
  stats_.watermark = -std::numeric_limits<double>::infinity();
}

bool Sessionizer::IsExcursion(int kpi_type, float value) const {
  const auto& kpis = world_.kpis();
  if (kpi_type < 0 || static_cast<size_t>(kpi_type) >= kpis.size()) {
    return false;
  }
  const synth::KpiType& kpi = kpis[static_cast<size_t>(kpi_type)];
  return std::abs(static_cast<double>(value - kpi.baseline)) >
         config_.kpi_excursion_fraction * static_cast<double>(kpi.scale);
}

size_t Sessionizer::TotalOccupancy() const {
  size_t total = 0;
  for (const Window& window : windows_) {
    total += window.alarms.size() + window.excursions.size() +
             window.rejects.size();
  }
  return total;
}

void Sessionizer::Advance(double event_time, double arrival_time,
                          std::vector<EpisodeCandidate>* flushed) {
  max_time_seen_ = saw_event_ ? std::max(max_time_seen_, event_time)
                              : event_time;
  max_arrival_seen_ = saw_event_ ? std::max(max_arrival_seen_, arrival_time)
                                 : arrival_time;
  saw_event_ = true;
  const double watermark = max_time_seen_ - config_.watermark_delay;
  stats_.watermark = watermark;
  stats_.watermark_lag = max_arrival_seen_ - watermark;

  // Flush in open order so emission is deterministic. A window closes when
  // the watermark guarantees nothing can still join it: its span is
  // exhausted, or it has been idle past the idle gap.
  size_t kept = 0;
  for (size_t i = 0; i < windows_.size(); ++i) {
    Window& window = windows_[i];
    const double close_at = std::min(window.open_time + config_.window_span,
                                     window.last_time + config_.idle_gap);
    if (watermark >= close_at) {
      FlushWindow(std::move(window), flushed);
    } else {
      if (kept != i) windows_[kept] = std::move(window);
      ++kept;
    }
  }
  windows_.resize(kept);
  stats_.open_windows = windows_.size();
  stats_.window_occupancy = TotalOccupancy();
}

void Sessionizer::FlushWindow(Window&& window,
                              std::vector<EpisodeCandidate>* flushed) {
  EpisodeCandidate candidate;
  candidate.id = window.id;
  candidate.open_time = window.open_time;
  candidate.close_time = window.last_time;
  candidate.alarms = std::move(window.alarms);
  candidate.excursions = std::move(window.excursions);
  candidate.rejects = std::move(window.rejects);
  // Majority provenance vote over the joined alarms (evaluation only).
  std::map<int, int> votes;
  for (int episode : window.episode_votes) ++votes[episode];
  candidate.total_votes = static_cast<int>(window.episode_votes.size());
  for (const auto& [episode, count] : votes) {
    if (episode >= 0 && count > candidate.truth_votes) {
      candidate.truth_episode = episode;
      candidate.truth_votes = count;
    }
  }
  ++stats_.episodes_flushed;
  flushed->push_back(std::move(candidate));
}

std::vector<Sessionizer::Window>::iterator Sessionizer::FindWindow(
    int element, double time, bool adjacent) {
  std::vector<int> neighbors;
  if (adjacent) neighbors = world_.TopologyNeighbors(element);
  for (auto it = windows_.begin(); it != windows_.end(); ++it) {
    if (time - it->open_time > config_.window_span) continue;
    if (Contains(it->elements, element)) return it;
    if (adjacent) {
      for (int n : neighbors) {
        if (Contains(it->elements, n)) return it;
      }
    }
  }
  return windows_.end();
}

void Sessionizer::Offer(const synth::StreamEvent& event,
                        std::vector<EpisodeCandidate>* flushed) {
  ++stats_.events;
  Advance(event.time, event.arrival, flushed);

  // Late: older than the watermark. Dropping (rather than joining) is the
  // contract — a late event could belong to an already-flushed window, and
  // attaching it to whatever happens to be open would silently corrupt
  // episode partitions.
  if (event.time < stats_.watermark) {
    ++stats_.late_drops;
    return;
  }

  switch (event.kind) {
    case synth::StreamEvent::Kind::kAlarm: {
      auto it = FindWindow(event.alarm.element, event.time, /*adjacent=*/true);
      if (it == windows_.end()) {
        Window window;
        window.id = next_window_id_++;
        window.open_time = event.time;
        window.last_time = event.time;
        window.alarms.push_back(event.alarm);
        window.episode_votes.push_back(event.episode_id);
        window.elements.push_back(event.alarm.element);
        windows_.push_back(std::move(window));
        stats_.open_windows = windows_.size();
      } else {
        Window& window = *it;
        const bool duplicate = std::any_of(
            window.alarms.begin(), window.alarms.end(),
            [&event](const synth::AlarmEvent& a) {
              return a.alarm_type == event.alarm.alarm_type &&
                     a.element == event.alarm.element;
            });
        if (duplicate) {
          // Same alarm re-raised on the same element within the window:
          // refresh liveness but keep one occurrence per episode.
          ++stats_.duplicate_alarms;
          window.last_time = std::max(window.last_time, event.time);
          break;
        }
        if (window.alarms.size() + window.excursions.size() +
                window.rejects.size() >=
            config_.max_window_events) {
          ++stats_.overflow_drops;
          break;
        }
        window.alarms.push_back(event.alarm);
        window.episode_votes.push_back(event.episode_id);
        window.last_time = std::max(window.last_time, event.time);
        if (!Contains(window.elements, event.alarm.element)) {
          window.elements.push_back(event.alarm.element);
        }
      }
      break;
    }
    case synth::StreamEvent::Kind::kKpi: {
      if (!IsExcursion(event.kpi.kpi_type, event.kpi.value)) {
        ++stats_.background_events;
        break;
      }
      auto it = FindWindow(event.kpi.element, event.time, /*adjacent=*/false);
      if (it == windows_.end()) {
        ++stats_.orphan_symptoms;
        break;
      }
      if (it->alarms.size() + it->excursions.size() + it->rejects.size() >=
          config_.max_window_events) {
        ++stats_.overflow_drops;
        break;
      }
      it->excursions.push_back(event.kpi);
      it->last_time = std::max(it->last_time, event.time);
      break;
    }
    case synth::StreamEvent::Kind::kSignaling: {
      if (event.signaling.success) {
        ++stats_.background_events;
        break;
      }
      auto it = FindWindow(event.signaling.src_element, event.time,
                           /*adjacent=*/false);
      if (it == windows_.end()) {
        it = FindWindow(event.signaling.dst_element, event.time,
                        /*adjacent=*/false);
      }
      if (it == windows_.end()) {
        ++stats_.orphan_symptoms;
        break;
      }
      if (it->alarms.size() + it->excursions.size() + it->rejects.size() >=
          config_.max_window_events) {
        ++stats_.overflow_drops;
        break;
      }
      it->rejects.push_back(event.signaling);
      it->last_time = std::max(it->last_time, event.time);
      break;
    }
  }
  stats_.window_occupancy = TotalOccupancy();
}

void Sessionizer::FlushAll(std::vector<EpisodeCandidate>* flushed) {
  for (Window& window : windows_) {
    FlushWindow(std::move(window), flushed);
  }
  windows_.clear();
  stats_.open_windows = 0;
  stats_.window_occupancy = 0;
}

std::string EpisodeQueryText(const synth::WorldModel& world,
                             const EpisodeCandidate& candidate) {
  // Alarm surfaces in join order (the window-opening alarm — normally the
  // fault root — leads), deduplicated by alarm type, capped so the
  // tokenizer's max_len keeps the head of the episode.
  constexpr size_t kMaxAlarms = 6;
  constexpr size_t kMaxKpis = 3;
  std::string text;
  std::vector<int> seen_alarms;
  for (const synth::AlarmEvent& alarm : candidate.alarms) {
    if (Contains(seen_alarms, alarm.alarm_type)) continue;
    seen_alarms.push_back(alarm.alarm_type);
    if (seen_alarms.size() > kMaxAlarms) break;
    if (!text.empty()) text += "; ";
    text += world.alarms()[static_cast<size_t>(alarm.alarm_type)].name;
  }
  std::vector<int> seen_kpis;
  for (const synth::KpiReading& reading : candidate.excursions) {
    if (Contains(seen_kpis, reading.kpi_type)) continue;
    seen_kpis.push_back(reading.kpi_type);
    if (seen_kpis.size() > kMaxKpis) break;
    text += (seen_kpis.size() == 1 ? " | kpi " : ", ");
    text += world.kpis()[static_cast<size_t>(reading.kpi_type)].name;
  }
  if (!candidate.rejects.empty()) {
    text += " | " + std::to_string(candidate.rejects.size()) +
            " signaling rejects";
  }
  return text;
}

}  // namespace stream
}  // namespace telekit

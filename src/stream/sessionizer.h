#ifndef TELEKIT_STREAM_SESSIONIZER_H_
#define TELEKIT_STREAM_SESSIONIZER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "synth/replay.h"
#include "synth/world.h"

namespace telekit {
namespace stream {

/// Sliding-window correlation knobs.
struct WindowConfig {
  /// Max event-time span one window may cover: an alarm more than this far
  /// from a window's opening event starts a new window even on adjacent
  /// elements (bounds both memory and episode length).
  double window_span = 10.0;
  /// Out-of-order tolerance: the watermark trails the newest occurrence
  /// time seen by this much. Events older than the watermark are dropped
  /// as late, never joined to a window they might not belong to.
  double watermark_delay = 2.0;
  /// A window with no joins for this much event time closes as soon as the
  /// watermark passes, even before window_span is exhausted.
  double idle_gap = 4.0;
  /// Hard cap on events gathered into one window; further joins are
  /// counted as overflow and dropped (bounded per-window memory).
  size_t max_window_events = 256;
  /// A KPI reading is treated as an excursion when it deviates from the
  /// catalogue baseline by more than this fraction of the KPI's fault
  /// scale. The detector never reads the ground-truth `anomalous` flag.
  double kpi_excursion_fraction = 0.5;
};

/// One flushed candidate fault episode: the correlated alarms, KPI
/// excursions and signaling rejects of a window, plus ground-truth
/// provenance (majority vote over the joined alarms' episode ids) used by
/// evaluation only.
struct EpisodeCandidate {
  int id = 0;
  double open_time = 0.0;
  double close_time = 0.0;
  std::vector<synth::AlarmEvent> alarms;        // join order
  std::vector<synth::KpiReading> excursions;    // join order
  std::vector<synth::SignalingRecord> rejects;  // join order
  /// Majority ground-truth episode id among joined alarms (-1 when the
  /// window held only background noise — possible in theory, not with the
  /// alarm-opened windows below).
  int truth_episode = -1;
  /// How many of the joined alarms voted for truth_episode / total.
  int truth_votes = 0;
  int total_votes = 0;
};

/// Point-in-time sessionizer counters (also mirrored into stream/*
/// metrics by the pipeline).
struct SessionizerStats {
  uint64_t events = 0;
  uint64_t late_drops = 0;
  uint64_t duplicate_alarms = 0;
  uint64_t overflow_drops = 0;
  /// Normal KPI readings and successful signaling hops (not symptoms).
  uint64_t background_events = 0;
  /// Symptoms (KPI excursions / rejects) with no open window to join.
  uint64_t orphan_symptoms = 0;
  uint64_t episodes_flushed = 0;
  size_t open_windows = 0;
  /// Events currently buffered across all open windows.
  size_t window_occupancy = 0;
  /// Current watermark (event-time seconds; -inf before the first event).
  double watermark = 0.0;
  /// Newest arrival seen minus the watermark: the out-of-orderness the
  /// sessionizer is currently absorbing.
  double watermark_lag = 0.0;
};

/// Event-time sessionizer: correlates an arrival-ordered event stream into
/// candidate fault episodes using per-element windows keyed off the
/// propagation topology.
///
///   - An alarm joins the oldest open window that already holds an alarm
///     on the same element or a topology neighbour of it (fault
///     propagation is local) and whose span bound admits the event;
///     otherwise it opens a new window.
///   - KPI excursions and signaling rejects join the oldest window
///     covering their element; they never open windows (alarm-driven
///     sessionization). Normal readings and successful hops are counted
///     as background and discarded.
///   - The watermark trails the newest occurrence time seen by
///     `watermark_delay`. Events older than the watermark are counted as
///     late drops. Windows flush once the watermark passes their span or
///     idle bound; flush order is deterministic (open order).
///
/// Single-threaded by design: Offer must be called from one thread in
/// stream order, which is what makes replay deterministic.
class Sessionizer {
 public:
  Sessionizer(const synth::WorldModel& world, const WindowConfig& config);

  /// Feeds one event; appends any windows the advancing watermark flushed
  /// to `flushed`.
  void Offer(const synth::StreamEvent& event,
             std::vector<EpisodeCandidate>* flushed);

  /// Flushes every open window regardless of watermark (end of stream).
  /// Safe on an empty sessionizer (flushes nothing).
  void FlushAll(std::vector<EpisodeCandidate>* flushed);

  const SessionizerStats& stats() const { return stats_; }
  const WindowConfig& config() const { return config_; }

  /// True when `value` reads as a fault excursion for `kpi_type` under the
  /// configured threshold.
  bool IsExcursion(int kpi_type, float value) const;

 private:
  struct Window {
    int id = 0;
    double open_time = 0.0;
    double last_time = 0.0;
    std::vector<synth::AlarmEvent> alarms;
    std::vector<synth::KpiReading> excursions;
    std::vector<synth::SignalingRecord> rejects;
    std::vector<int> episode_votes;  // provenance of each joined alarm
    /// Elements carrying at least one alarm of this window.
    std::vector<int> elements;
  };

  void Advance(double event_time, double arrival_time,
               std::vector<EpisodeCandidate>* flushed);
  void FlushWindow(Window&& window, std::vector<EpisodeCandidate>* flushed);
  /// Oldest open window admitting an alarm on `element` at `time`;
  /// windows_.end() when none. `adjacent` widens the match to topology
  /// neighbours (alarms join via adjacency, KPI/signaling symptoms only
  /// via exact element membership).
  std::vector<Window>::iterator FindWindow(int element, double time,
                                           bool adjacent);
  size_t TotalOccupancy() const;

  const synth::WorldModel& world_;
  WindowConfig config_;
  SessionizerStats stats_;
  std::vector<Window> windows_;  // open order == flush order
  int next_window_id_ = 0;
  double max_time_seen_ = 0.0;
  double max_arrival_seen_ = 0.0;
  bool saw_event_ = false;
};

/// Deterministic query surface for a candidate: the distinct alarm
/// surfaces in first-seen order (the root alarm leads — it opened the
/// window), followed by the distinct excursed KPI names and the reject
/// count. This is the text the pipeline drives through ServeEngine.
std::string EpisodeQueryText(const synth::WorldModel& world,
                             const EpisodeCandidate& candidate);

}  // namespace stream
}  // namespace telekit

#endif  // TELEKIT_STREAM_SESSIONIZER_H_

#ifndef TELEKIT_TEXT_BPE_H_
#define TELEKIT_TEXT_BPE_H_

#include <string>
#include <utility>
#include <vector>

#include "text/vocab.h"

namespace telekit {
namespace text {

/// Options for BPE merge learning and tele-token extraction (Sec. IV-A3 of
/// the paper: candidate tele tokens are 2-4 character merges that appear
/// frequently in the tele corpus and are absent from the base vocabulary).
struct BpeOptions {
  /// Number of merge operations to learn.
  int num_merges = 200;
  /// Length bounds for extracted tele special tokens.
  int min_token_len = 2;
  int max_token_len = 4;
  /// Minimum corpus occurrences for an extracted token. (The paper uses
  /// 8000 on a 20M-sentence corpus; scale proportionally.)
  int min_frequency = 20;
};

/// Byte-pair-encoding learner over whitespace-tokenized words. Learns a
/// ranked merge table; supports segmenting unseen words and extracting the
/// high-frequency short merges the paper promotes to "tele special tokens"
/// (e.g. "RAN", "MML", "PGW").
class BpeLearner {
 public:
  explicit BpeLearner(const BpeOptions& options = BpeOptions())
      : options_(options) {}

  /// Reconstructs a fitted learner from serialized state (see
  /// Tokenizer::Save/Load).
  BpeLearner(const BpeOptions& options,
             std::vector<std::pair<std::string, std::string>> merges,
             std::vector<std::pair<std::string, int64_t>> symbol_freqs)
      : options_(options),
        merges_(std::move(merges)),
        symbol_freqs_(std::move(symbol_freqs)),
        fitted_(true) {}

  /// Learns merges from the corpus. Must be called before Segment /
  /// ExtractTeleTokens.
  void Fit(const std::vector<std::string>& sentences);

  /// Learned merges in application order.
  const std::vector<std::pair<std::string, std::string>>& merges() const {
    return merges_;
  }

  /// Segments a word into BPE symbols by applying merges in rank order.
  std::vector<std::string> Segment(const std::string& word) const;

  /// Symbols satisfying the paper's tele-token constraints (length bounds,
  /// frequency threshold, not already in `base_vocab`), most frequent first.
  std::vector<std::string> ExtractTeleTokens(const Vocab& base_vocab) const;

  /// Corpus frequency of a learned symbol (0 if never formed).
  int64_t SymbolFrequency(const std::string& symbol) const;

  /// Serialized frequency table (merge order).
  const std::vector<std::pair<std::string, int64_t>>& symbol_freqs() const {
    return symbol_freqs_;
  }
  const BpeOptions& options() const { return options_; }

 private:
  BpeOptions options_;
  std::vector<std::pair<std::string, std::string>> merges_;
  // Frequency of each merged symbol at the time it was created.
  std::vector<std::pair<std::string, int64_t>> symbol_freqs_;
  bool fitted_ = false;
};

}  // namespace text
}  // namespace telekit

#endif  // TELEKIT_TEXT_BPE_H_

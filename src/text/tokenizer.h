#ifndef TELEKIT_TEXT_TOKENIZER_H_
#define TELEKIT_TEXT_TOKENIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "text/bpe.h"
#include "text/prompt.h"
#include "text/vocab.h"

namespace telekit {
namespace text {

/// A numeric-value slot inside an encoded sequence: the [NUM] token at
/// `position` stands for `value` in the field named by `tag` (whose token
/// ids feed the ANEnc tag-name embedding, Sec. IV-B).
struct NumericSlot {
  int position = 0;
  std::string tag;
  std::vector<int> tag_ids;
  float value = 0.0f;
};

/// Result of tokenization: ids (with [CLS]/[SEP], truncated/padded to
/// max_len), whole-word spans eligible for masking, and numeric slots.
struct EncodedInput {
  std::vector<int> ids;
  /// (start, length) token spans forming maskable "whole words". Special
  /// prompt tokens and numeric slots are never inside a span (Sec. IV-C).
  std::vector<std::pair<int, int>> word_spans;
  std::vector<NumericSlot> numeric_slots;
  /// Number of real (non-[PAD]) tokens.
  int length = 0;
};

/// Tokenizer configuration.
struct TokenizerOptions {
  /// Maximum sequence length including [CLS]/[SEP]; longer inputs truncate,
  /// shorter pad with [PAD].
  int max_len = 32;
  /// Words seen at least this often enter the vocabulary as whole tokens.
  int min_word_count = 2;
};

/// Word-level tokenizer with BPE sub-word fallback and whole-word /
/// domain-phrase span tracking (the paper's WWM segmentation collection).
///
/// Construction pipeline:
///   Tokenizer tok(options);
///   tok.BuildVocab(corpus);              // word vocabulary + BPE merges
///   tok.AddDomainPhrases(phrases);       // multi-word WWM units
///   tok.AddSpecialTeleTokens(n);         // promote BPE tele tokens
/// then Encode*() as needed.
///
/// Thread-safety: the encode path (Encode, EncodeSentence, WordToIds, and
/// the const Vocab/BpeLearner lookups under them) is const-clean — it
/// touches no caches and no mutable members — so any number of threads may
/// tokenize concurrently without locks once construction is finished. The
/// mutating members (BuildVocab, AddDomainPhrases, AddSpecialTeleTokens,
/// mutable_vocab) are NOT safe against concurrent encoders: all vocabulary
/// construction must happen-before the first concurrent Encode call
/// (serving wires this by building the tokenizer before starting engine
/// workers). mutable_vocab() is the one remaining mutable escape hatch and
/// exists only for construction-time tests.
class Tokenizer {
 public:
  explicit Tokenizer(const TokenizerOptions& options = TokenizerOptions());

  /// Builds the vocabulary from a corpus: frequent words become whole
  /// tokens, BPE merges are learned for sub-word fallback of rare/unseen
  /// words.
  void BuildVocab(const std::vector<std::string>& sentences,
                  const BpeOptions& bpe_options = BpeOptions());

  /// Registers multi-word domain phrases (e.g. "network congestion points")
  /// treated as single whole words for masking purposes.
  void AddDomainPhrases(const std::vector<std::string>& phrases);

  /// Promotes up to `max_tokens` learned BPE tele tokens (Sec. IV-A3) into
  /// the vocabulary as whole tokens; returns those added.
  std::vector<std::string> AddSpecialTeleTokens(int max_tokens);

  /// Splits raw text into word strings (whitespace + punctuation rules).
  static std::vector<std::string> SplitWords(const std::string& text);

  /// Encodes a plain sentence: [CLS] w1 ... wn [SEP], padded to max_len.
  EncodedInput EncodeSentence(const std::string& sentence) const;

  /// Encodes a prompt-wrapped input (Fig. 3 templates).
  EncodedInput Encode(const PromptSequence& prompt) const;

  const Vocab& vocab() const { return vocab_; }
  Vocab& mutable_vocab() { return vocab_; }
  const TokenizerOptions& options() const { return options_; }
  const BpeLearner& bpe() const { return bpe_; }

  /// Token ids of a single word (whole token, BPE pieces, or [UNK]).
  std::vector<int> WordToIds(const std::string& word) const;

  /// Persists the fitted tokenizer (options, vocabulary, BPE merges,
  /// domain phrases) to a text file, so inference processes can encode
  /// inputs identically without the training corpus.
  Status Save(const std::string& path) const;

  /// Restores a tokenizer saved with Save().
  static StatusOr<Tokenizer> Load(const std::string& path);

 private:
  TokenizerOptions options_;
  Vocab vocab_;
  BpeLearner bpe_;
  bool vocab_built_ = false;
  /// Phrase lexicon, keyed by first word for fast longest-match lookup.
  std::vector<std::vector<std::string>> phrases_;
};

}  // namespace text
}  // namespace telekit

#endif  // TELEKIT_TEXT_TOKENIZER_H_

#include "text/bpe.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "common/string_util.h"

namespace telekit {
namespace text {

namespace {

// A word as a sequence of current symbols plus its corpus frequency.
struct SymbolWord {
  std::vector<std::string> symbols;
  int64_t freq;
};

std::vector<std::string> CharSymbols(const std::string& word) {
  std::vector<std::string> symbols;
  symbols.reserve(word.size());
  for (char c : word) symbols.emplace_back(1, c);
  return symbols;
}

}  // namespace

void BpeLearner::Fit(const std::vector<std::string>& sentences) {
  merges_.clear();
  symbol_freqs_.clear();

  // Word frequency table over the whole corpus.
  std::unordered_map<std::string, int64_t> word_freq;
  for (const std::string& sentence : sentences) {
    for (const std::string& word : SplitString(sentence, ' ')) {
      if (word.size() >= 2) ++word_freq[word];
    }
  }
  std::vector<SymbolWord> words;
  words.reserve(word_freq.size());
  for (const auto& [word, freq] : word_freq) {
    words.push_back({CharSymbols(word), freq});
  }

  for (int merge = 0; merge < options_.num_merges; ++merge) {
    // Count adjacent symbol pairs weighted by word frequency. std::map gives
    // deterministic tie-breaking (lexicographically smallest pair wins).
    std::map<std::pair<std::string, std::string>, int64_t> pair_freq;
    for (const SymbolWord& w : words) {
      for (size_t i = 0; i + 1 < w.symbols.size(); ++i) {
        pair_freq[{w.symbols[i], w.symbols[i + 1]}] += w.freq;
      }
    }
    if (pair_freq.empty()) break;
    auto best = pair_freq.begin();
    for (auto it = pair_freq.begin(); it != pair_freq.end(); ++it) {
      if (it->second > best->second) best = it;
    }
    if (best->second < 2) break;  // nothing repeats; stop early
    const std::string merged = best->first.first + best->first.second;
    merges_.push_back(best->first);
    symbol_freqs_.emplace_back(merged, best->second);

    // Apply the merge in every word.
    for (SymbolWord& w : words) {
      std::vector<std::string> updated;
      updated.reserve(w.symbols.size());
      for (size_t i = 0; i < w.symbols.size(); ++i) {
        if (i + 1 < w.symbols.size() && w.symbols[i] == best->first.first &&
            w.symbols[i + 1] == best->first.second) {
          updated.push_back(merged);
          ++i;
        } else {
          updated.push_back(w.symbols[i]);
        }
      }
      w.symbols = std::move(updated);
    }
  }
  fitted_ = true;
}

std::vector<std::string> BpeLearner::Segment(const std::string& word) const {
  TELEKIT_CHECK(fitted_) << "BpeLearner::Fit must be called first";
  std::vector<std::string> symbols = CharSymbols(word);
  // Rank table for O(1) merge lookup.
  std::map<std::pair<std::string, std::string>, int> rank;
  for (size_t i = 0; i < merges_.size(); ++i) {
    rank.emplace(merges_[i], static_cast<int>(i));
  }
  while (symbols.size() > 1) {
    int best_rank = static_cast<int>(merges_.size());
    size_t best_pos = 0;
    for (size_t i = 0; i + 1 < symbols.size(); ++i) {
      auto it = rank.find({symbols[i], symbols[i + 1]});
      if (it != rank.end() && it->second < best_rank) {
        best_rank = it->second;
        best_pos = i;
      }
    }
    if (best_rank == static_cast<int>(merges_.size())) break;
    symbols[best_pos] += symbols[best_pos + 1];
    symbols.erase(symbols.begin() + static_cast<long>(best_pos) + 1);
  }
  return symbols;
}

std::vector<std::string> BpeLearner::ExtractTeleTokens(
    const Vocab& base_vocab) const {
  TELEKIT_CHECK(fitted_) << "BpeLearner::Fit must be called first";
  std::vector<std::pair<std::string, int64_t>> candidates;
  for (const auto& [symbol, freq] : symbol_freqs_) {
    const int len = static_cast<int>(symbol.size());
    if (len < options_.min_token_len || len > options_.max_token_len) continue;
    if (freq < options_.min_frequency) continue;
    if (base_vocab.Contains(symbol)) continue;
    candidates.emplace_back(symbol, freq);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::vector<std::string> tokens;
  tokens.reserve(candidates.size());
  for (const auto& [symbol, freq] : candidates) tokens.push_back(symbol);
  return tokens;
}

int64_t BpeLearner::SymbolFrequency(const std::string& symbol) const {
  for (const auto& [s, freq] : symbol_freqs_) {
    if (s == symbol) return freq;
  }
  return 0;
}

}  // namespace text
}  // namespace telekit

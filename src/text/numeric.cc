#include "text/numeric.h"

#include <algorithm>

namespace telekit {
namespace text {

void MinMaxNormalizer::Observe(const std::string& tag, float value) {
  auto [it, inserted] = ranges_.try_emplace(tag, Range{value, value});
  if (!inserted) {
    it->second.min = std::min(it->second.min, value);
    it->second.max = std::max(it->second.max, value);
  }
}

float MinMaxNormalizer::Normalize(const std::string& tag, float value) const {
  auto it = ranges_.find(tag);
  if (it == ranges_.end()) return 0.5f;  // unseen tag: uninformative midpoint
  const Range& r = it->second;
  if (r.max <= r.min) return 0.5f;  // constant field
  const float normalized = (value - r.min) / (r.max - r.min);
  return std::clamp(normalized, 0.0f, 1.0f);
}

float MinMaxNormalizer::Denormalize(const std::string& tag,
                                    float normalized) const {
  auto it = ranges_.find(tag);
  if (it == ranges_.end()) return normalized;
  const Range& r = it->second;
  return r.min + normalized * (r.max - r.min);
}

bool MinMaxNormalizer::HasTag(const std::string& tag) const {
  return ranges_.find(tag) != ranges_.end();
}

}  // namespace text
}  // namespace telekit

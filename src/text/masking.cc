#include "text/masking.h"

#include <algorithm>

namespace telekit {
namespace text {

namespace {

int TotalTokens(const std::vector<std::pair<int, int>>& spans) {
  int total = 0;
  for (const auto& [start, len] : spans) total += len;
  return total;
}

}  // namespace

MaskedExample ApplyMasking(const EncodedInput& input, const Vocab& vocab,
                           const MaskingOptions& options, Rng& rng) {
  return ApplyMasking(input, vocab.size(), options, rng);
}

MaskedExample ApplyMasking(const EncodedInput& input, int vocab_size,
                           const MaskingOptions& options, Rng& rng) {
  TELEKIT_CHECK(options.mask_rate > 0.0f && options.mask_rate < 1.0f);
  MaskedExample out;
  out.ids = input.ids;
  out.labels.assign(input.ids.size(), -1);

  // Candidate units: whole words, or the individual tokens inside them.
  std::vector<std::pair<int, int>> units;
  if (options.strategy == MaskingStrategy::kWholeWord) {
    units = input.word_spans;
  } else {
    for (const auto& [start, len] : input.word_spans) {
      for (int k = 0; k < len; ++k) units.emplace_back(start + k, 1);
    }
  }
  if (units.empty()) return out;

  // Select units until the token-level mask budget is reached. At least one
  // unit is always masked so every example carries signal.
  int budget = std::max(
      1, static_cast<int>(options.mask_rate *
                          static_cast<float>(TotalTokens(input.word_spans))));
  std::vector<size_t> order(units.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);

  const int num_regular = vocab_size - SpecialTokens::kFirstRegular;
  for (size_t oi = 0; oi < order.size() && budget > 0; ++oi) {
    const auto& [start, len] = units[order[oi]];
    budget -= len;
    for (int k = 0; k < len; ++k) {
      const int pos = start + k;
      out.labels[static_cast<size_t>(pos)] = input.ids[static_cast<size_t>(pos)];
      ++out.num_masked;
      const double roll = rng.Uniform();
      if (roll < options.mask_token_prob) {
        out.ids[static_cast<size_t>(pos)] = SpecialTokens::kMask;
      } else if (roll < options.mask_token_prob + options.random_token_prob &&
                 num_regular > 0) {
        out.ids[static_cast<size_t>(pos)] =
            SpecialTokens::kFirstRegular +
            static_cast<int>(rng.UniformInt(num_regular));
      }  // else: keep original token
    }
  }
  return out;
}

}  // namespace text
}  // namespace telekit

#ifndef TELEKIT_TEXT_PROMPT_H_
#define TELEKIT_TEXT_PROMPT_H_

#include <string>
#include <vector>

#include "text/vocab.h"

namespace telekit {
namespace text {

/// One element of a prompt-wrapped input (Fig. 3 of the paper): either a
/// special prompt token, a run of plain words, or a numeric-value slot.
struct PromptElement {
  enum class Kind { kSpecial, kText, kNumeric };

  Kind kind = Kind::kText;
  /// For kSpecial: one of the SpecialTokens ids ([ALM], [ATTR], ...).
  int special_id = SpecialTokens::kUnk;
  /// For kText: free text (tokenized by the Tokenizer).
  std::string text;
  /// For kNumeric: the field/tag name this value belongs to, and the value
  /// (already min-max normalized per tag; see MinMaxNormalizer).
  std::string tag;
  float value = 0.0f;
};

/// Ordered prompt elements; produced by PromptBuilder, consumed by
/// Tokenizer::Encode.
using PromptSequence = std::vector<PromptElement>;

/// Fluent construction of the paper's prompt templates, e.g.
///   PromptBuilder().Alarm("NF destination service unreachable")
///                  .Attribute("severity", "major")
///                  .NumericAttribute("occurrence count", 0.7f)
///                  .Build();
/// produces "[ALM] ... [ATTR] severity | major [ATTR] occurrence count |
/// [NUM]" with the numeric slot carrying (tag="occurrence count", 0.7).
class PromptBuilder {
 public:
  PromptBuilder() = default;

  /// "[ALM] <name>" — an alarm event.
  PromptBuilder& Alarm(const std::string& name);
  /// "[KPI] <name> | [NUM]" — a KPI reading with its normalized value.
  PromptBuilder& Kpi(const std::string& name, float normalized_value);
  /// "[ENT] <name>" — a KG entity surface.
  PromptBuilder& Entity(const std::string& name);
  /// "[REL] <name>" — a KG relation surface.
  PromptBuilder& Relation(const std::string& name);
  /// "[LOC] <name>" — a network location / element.
  PromptBuilder& Location(const std::string& name);
  /// "[DOC] <text>" — free document text.
  PromptBuilder& Document(const std::string& body);
  /// "[ATTR] <key> | <value>" — a categorical attribute.
  PromptBuilder& Attribute(const std::string& key, const std::string& value);
  /// "[ATTR] <key> | [NUM]" — a numeric attribute.
  PromptBuilder& NumericAttribute(const std::string& key,
                                  float normalized_value);
  /// Plain text without a leading prompt token.
  PromptBuilder& Text(const std::string& body);

  /// Finishes and returns the sequence.
  PromptSequence Build() { return std::move(elements_); }

 private:
  PromptBuilder& AddSpecial(int id);
  PromptBuilder& AddText(const std::string& body);

  PromptSequence elements_;
};

/// Renders a prompt sequence back to a human-readable string (for logs,
/// debugging, and the corpus serialization of KG triples in Sec. IV-A1).
std::string PromptToString(const PromptSequence& prompt, const Vocab& vocab);

}  // namespace text
}  // namespace telekit

#endif  // TELEKIT_TEXT_PROMPT_H_

#ifndef TELEKIT_TEXT_NUMERIC_H_
#define TELEKIT_TEXT_NUMERIC_H_

#include <string>
#include <unordered_map>

namespace telekit {
namespace text {

/// Per-tag min-max normalization for numeric machine data (Sec. IV-B of the
/// paper: "all numerical values across the same tag name should be
/// normalized via Min-max normalization"). Fit on training data with
/// Observe(), then Normalize() maps values into [0, 1] (clamped); tags never
/// observed map to 0.5, supporting the paper's newly-unseen-tag setting.
class MinMaxNormalizer {
 public:
  /// Records one observation of `value` under `tag`.
  void Observe(const std::string& tag, float value);

  /// Normalizes `value` for `tag` into [0, 1].
  float Normalize(const std::string& tag, float value) const;

  /// Inverse transform back to the raw value range of `tag`.
  float Denormalize(const std::string& tag, float normalized) const;

  /// True if the tag has been observed at least once.
  bool HasTag(const std::string& tag) const;

  /// Number of distinct observed tags.
  int num_tags() const { return static_cast<int>(ranges_.size()); }

 private:
  struct Range {
    float min = 0.0f;
    float max = 0.0f;
  };
  std::unordered_map<std::string, Range> ranges_;
};

}  // namespace text
}  // namespace telekit

#endif  // TELEKIT_TEXT_NUMERIC_H_

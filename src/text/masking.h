#ifndef TELEKIT_TEXT_MASKING_H_
#define TELEKIT_TEXT_MASKING_H_

#include <vector>

#include "common/rng.h"
#include "text/tokenizer.h"
#include "text/vocab.h"

namespace telekit {
namespace text {

/// Mask-selection granularity (Sec. IV-C of the paper).
enum class MaskingStrategy {
  /// Independent per-token masking (vanilla BERT).
  kToken,
  /// Whole-word masking: all pieces of a selected word/phrase are masked
  /// together (MacBERT-style WWM with the tele phrase lexicon).
  kWholeWord,
};

/// Masking configuration. The paper pre-trains at 15% and re-trains at 40%
/// following Wettig et al.; corruption follows the BERT 80/10/10 split.
struct MaskingOptions {
  float mask_rate = 0.15f;
  MaskingStrategy strategy = MaskingStrategy::kWholeWord;
  float mask_token_prob = 0.8f;    // replace with [MASK]
  float random_token_prob = 0.1f;  // replace with a random regular token
  // remaining probability: keep the original token
};

/// A masked training example: corrupted ids plus per-position labels
/// (original id at masked positions, -1 elsewhere).
struct MaskedExample {
  std::vector<int> ids;
  std::vector<int> labels;
  /// Number of masked (supervised) positions.
  int num_masked = 0;
};

/// Applies masking to an encoded input. Only positions inside
/// `input.word_spans` are candidates — prompt special tokens, [NUM] slots,
/// [CLS]/[SEP]/[PAD] are never masked (Sec. IV-C). Calling this fresh at
/// every training step yields RoBERTa-style dynamic masking; caching one
/// result per example reproduces static masking.
MaskedExample ApplyMasking(const EncodedInput& input, const Vocab& vocab,
                           const MaskingOptions& options, Rng& rng);

/// Same, but taking only the vocabulary size (random replacement tokens are
/// drawn from [SpecialTokens::kFirstRegular, vocab_size)).
MaskedExample ApplyMasking(const EncodedInput& input, int vocab_size,
                           const MaskingOptions& options, Rng& rng);

}  // namespace text
}  // namespace telekit

#endif  // TELEKIT_TEXT_MASKING_H_

#ifndef TELEKIT_TEXT_VOCAB_H_
#define TELEKIT_TEXT_VOCAB_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace telekit {
namespace text {

/// Fixed special-token ids shared by every TeleKit model. The prompt tokens
/// mirror Fig. 3 of the paper: they tag the category of the immediately
/// following content so that text, triples, and machine log data share one
/// input modality.
struct SpecialTokens {
  static constexpr int kPad = 0;
  static constexpr int kUnk = 1;
  static constexpr int kCls = 2;
  static constexpr int kSep = 3;
  static constexpr int kMask = 4;
  // Prompt tokens (Fig. 3).
  static constexpr int kAlm = 5;   // alarm
  static constexpr int kKpi = 6;   // key performance indicator
  static constexpr int kEnt = 7;   // entity
  static constexpr int kRel = 8;   // relation
  static constexpr int kAttr = 9;  // attribute
  static constexpr int kLoc = 10;  // location
  static constexpr int kDoc = 11;  // document
  static constexpr int kNum = 12;  // numeric-value slot
  static constexpr int kBar = 13;  // "|" name/value separator
  static constexpr int kFirstRegular = 14;
};

/// Token <-> id bidirectional map. Ids 0..13 are reserved for the special
/// tokens above; regular tokens start at SpecialTokens::kFirstRegular.
class Vocab {
 public:
  /// Constructs a vocabulary containing only the special tokens.
  Vocab();

  /// Adds a token if absent; returns its id either way.
  int AddToken(const std::string& token);

  /// Id of `token`, or kUnk if unknown.
  int Id(std::string_view token) const;

  /// True if `token` is present.
  bool Contains(std::string_view token) const;

  /// Surface form of `id` (CHECK-fails on out-of-range).
  const std::string& Token(int id) const;

  /// Total number of tokens including specials.
  int size() const { return static_cast<int>(tokens_.size()); }

  /// True for ids below kFirstRegular (prompt/control tokens). These are
  /// excluded from mask-reconstruction candidates (Sec. IV-C).
  static bool IsSpecial(int id) { return id < SpecialTokens::kFirstRegular; }

  /// All regular (non-special) tokens in id order.
  std::vector<std::string> RegularTokens() const;

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> ids_;
};

}  // namespace text
}  // namespace telekit

#endif  // TELEKIT_TEXT_VOCAB_H_

#include "text/prompt.h"

#include "common/string_util.h"

namespace telekit {
namespace text {

PromptBuilder& PromptBuilder::AddSpecial(int id) {
  PromptElement e;
  e.kind = PromptElement::Kind::kSpecial;
  e.special_id = id;
  elements_.push_back(std::move(e));
  return *this;
}

PromptBuilder& PromptBuilder::AddText(const std::string& body) {
  PromptElement e;
  e.kind = PromptElement::Kind::kText;
  e.text = body;
  elements_.push_back(std::move(e));
  return *this;
}

PromptBuilder& PromptBuilder::Alarm(const std::string& name) {
  AddSpecial(SpecialTokens::kAlm);
  return AddText(name);
}

PromptBuilder& PromptBuilder::Kpi(const std::string& name,
                                  float normalized_value) {
  AddSpecial(SpecialTokens::kKpi);
  AddText(name);
  AddSpecial(SpecialTokens::kBar);
  PromptElement e;
  e.kind = PromptElement::Kind::kNumeric;
  e.tag = name;
  e.value = normalized_value;
  elements_.push_back(std::move(e));
  return *this;
}

PromptBuilder& PromptBuilder::Entity(const std::string& name) {
  AddSpecial(SpecialTokens::kEnt);
  return AddText(name);
}

PromptBuilder& PromptBuilder::Relation(const std::string& name) {
  AddSpecial(SpecialTokens::kRel);
  return AddText(name);
}

PromptBuilder& PromptBuilder::Location(const std::string& name) {
  AddSpecial(SpecialTokens::kLoc);
  return AddText(name);
}

PromptBuilder& PromptBuilder::Document(const std::string& body) {
  AddSpecial(SpecialTokens::kDoc);
  return AddText(body);
}

PromptBuilder& PromptBuilder::Attribute(const std::string& key,
                                        const std::string& value) {
  AddSpecial(SpecialTokens::kAttr);
  AddText(key);
  AddSpecial(SpecialTokens::kBar);
  return AddText(value);
}

PromptBuilder& PromptBuilder::NumericAttribute(const std::string& key,
                                               float normalized_value) {
  AddSpecial(SpecialTokens::kAttr);
  AddText(key);
  AddSpecial(SpecialTokens::kBar);
  PromptElement e;
  e.kind = PromptElement::Kind::kNumeric;
  e.tag = key;
  e.value = normalized_value;
  elements_.push_back(std::move(e));
  return *this;
}

PromptBuilder& PromptBuilder::Text(const std::string& body) {
  return AddText(body);
}

std::string PromptToString(const PromptSequence& prompt, const Vocab& vocab) {
  std::vector<std::string> pieces;
  for (const PromptElement& e : prompt) {
    switch (e.kind) {
      case PromptElement::Kind::kSpecial:
        pieces.push_back(vocab.Token(e.special_id));
        break;
      case PromptElement::Kind::kText:
        pieces.push_back(e.text);
        break;
      case PromptElement::Kind::kNumeric:
        pieces.push_back(StringPrintf("[NUM:%s=%.3f]", e.tag.c_str(),
                                      e.value));
        break;
    }
  }
  return JoinStrings(pieces, " ");
}

}  // namespace text
}  // namespace telekit

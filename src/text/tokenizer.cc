#include "text/tokenizer.h"

#include <algorithm>
#include <fstream>
#include <unordered_map>

#include "common/check.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace telekit {
namespace text {

namespace {

bool IsStrippablePunct(char c) {
  switch (c) {
    case '.':
    case ',':
    case ':':
    case ';':
    case '!':
    case '?':
    case '(':
    case ')':
    case '"':
    case '\'':
      return true;
    default:
      return false;
  }
}

}  // namespace

Tokenizer::Tokenizer(const TokenizerOptions& options) : options_(options) {
  TELEKIT_CHECK_GE(options_.max_len, 4) << "max_len too small";
}

std::vector<std::string> Tokenizer::SplitWords(const std::string& text) {
  std::vector<std::string> words;
  for (const std::string& raw : SplitString(text, ' ')) {
    size_t begin = 0, end = raw.size();
    while (begin < end && IsStrippablePunct(raw[begin])) ++begin;
    while (end > begin && IsStrippablePunct(raw[end - 1])) --end;
    if (end > begin) words.push_back(raw.substr(begin, end - begin));
  }
  return words;
}

void Tokenizer::BuildVocab(const std::vector<std::string>& sentences,
                           const BpeOptions& bpe_options) {
  std::unordered_map<std::string, int64_t> counts;
  for (const std::string& sentence : sentences) {
    for (const std::string& word : SplitWords(sentence)) ++counts[word];
  }
  // Deterministic insertion order: by frequency desc, then lexicographic.
  std::vector<std::pair<std::string, int64_t>> sorted(counts.begin(),
                                                      counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  for (const auto& [word, count] : sorted) {
    if (count >= options_.min_word_count) vocab_.AddToken(word);
  }
  // Sub-word fallback: learn BPE, then make every single character and
  // merge symbol addressable so rare words never fully degrade to [UNK].
  bpe_ = BpeLearner(bpe_options);
  bpe_.Fit(sentences);
  for (const auto& [word, count] : sorted) {
    for (char c : word) {
      const std::string s(1, c);
      if (!vocab_.Contains(s)) vocab_.AddToken(s);
    }
  }
  for (const auto& [left, right] : bpe_.merges()) {
    const std::string merged = left + right;
    if (!vocab_.Contains(merged)) vocab_.AddToken(merged);
  }
  vocab_built_ = true;
}

void Tokenizer::AddDomainPhrases(const std::vector<std::string>& phrases) {
  for (const std::string& phrase : phrases) {
    std::vector<std::string> words = SplitWords(phrase);
    if (words.size() >= 2) phrases_.push_back(std::move(words));
  }
  // Longest phrases first so greedy matching prefers the longest span.
  std::sort(phrases_.begin(), phrases_.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
}

std::vector<std::string> Tokenizer::AddSpecialTeleTokens(int max_tokens) {
  TELEKIT_CHECK(vocab_built_) << "BuildVocab first";
  std::vector<std::string> added;
  for (const std::string& token : bpe_.ExtractTeleTokens(vocab_)) {
    if (static_cast<int>(added.size()) >= max_tokens) break;
    vocab_.AddToken(token);
    added.push_back(token);
  }
  return added;
}

std::vector<int> Tokenizer::WordToIds(const std::string& word) const {
  TELEKIT_CHECK(vocab_built_) << "BuildVocab first";
  if (vocab_.Contains(word)) return {vocab_.Id(word)};
  std::vector<int> ids;
  for (const std::string& piece : bpe_.Segment(word)) {
    ids.push_back(vocab_.Id(piece));  // maps to [UNK] if piece unknown
  }
  return ids;
}

EncodedInput Tokenizer::EncodeSentence(const std::string& sentence) const {
  PromptElement e;
  e.kind = PromptElement::Kind::kText;
  e.text = sentence;
  return Encode({e});
}

EncodedInput Tokenizer::Encode(const PromptSequence& prompt) const {
  TELEKIT_CHECK(vocab_built_) << "BuildVocab first";
  static obs::Counter& encode_calls =
      obs::MetricsRegistry::Global().GetCounter("tokenizer/encode_calls");
  encode_calls.Increment();
  EncodedInput out;
  out.ids.push_back(SpecialTokens::kCls);

  auto emit_words = [&](const std::vector<std::string>& words) {
    size_t i = 0;
    while (i < words.size()) {
      // Longest-match domain phrase starting at position i: all its word
      // pieces form one maskable whole-word span.
      size_t phrase_len = 0;
      for (const auto& phrase : phrases_) {
        if (phrase.size() <= phrase_len || i + phrase.size() > words.size()) {
          continue;
        }
        bool match = true;
        for (size_t k = 0; k < phrase.size(); ++k) {
          if (words[i + k] != phrase[k]) {
            match = false;
            break;
          }
        }
        if (match) phrase_len = phrase.size();
      }
      const size_t group = std::max<size_t>(phrase_len, 1);
      const int span_start = static_cast<int>(out.ids.size());
      for (size_t k = 0; k < group; ++k) {
        for (int id : WordToIds(words[i + k])) out.ids.push_back(id);
      }
      const int span_len = static_cast<int>(out.ids.size()) - span_start;
      if (span_len > 0) out.word_spans.emplace_back(span_start, span_len);
      i += group;
    }
  };

  for (const PromptElement& e : prompt) {
    switch (e.kind) {
      case PromptElement::Kind::kSpecial:
        out.ids.push_back(e.special_id);
        break;
      case PromptElement::Kind::kText:
        emit_words(SplitWords(e.text));
        break;
      case PromptElement::Kind::kNumeric: {
        NumericSlot slot;
        slot.position = static_cast<int>(out.ids.size());
        slot.tag = e.tag;
        for (const std::string& w : SplitWords(e.tag)) {
          for (int id : WordToIds(w)) slot.tag_ids.push_back(id);
        }
        if (slot.tag_ids.empty()) slot.tag_ids.push_back(SpecialTokens::kUnk);
        slot.value = e.value;
        out.numeric_slots.push_back(std::move(slot));
        out.ids.push_back(SpecialTokens::kNum);
        break;
      }
    }
  }

  // Truncate to max_len - 1, then close with [SEP].
  const int body_limit = options_.max_len - 1;
  if (static_cast<int>(out.ids.size()) > body_limit) {
    out.ids.resize(static_cast<size_t>(body_limit));
  }
  out.ids.push_back(SpecialTokens::kSep);
  out.length = static_cast<int>(out.ids.size());

  // Drop spans/slots that no longer fit entirely before [SEP].
  const int last_body = out.length - 1;
  std::erase_if(out.word_spans, [last_body](const std::pair<int, int>& span) {
    return span.first + span.second > last_body;
  });
  std::erase_if(out.numeric_slots, [last_body](const NumericSlot& slot) {
    return slot.position >= last_body;
  });

  out.ids.resize(static_cast<size_t>(options_.max_len), SpecialTokens::kPad);
  return out;
}

namespace {

constexpr char kTokenizerMagic[] = "TELEKIT_TOKENIZER_V1";

}  // namespace

Status Tokenizer::Save(const std::string& path) const {
  if (!vocab_built_) {
    return Status::FailedPrecondition("tokenizer not built");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  out << kTokenizerMagic << "\n";
  out << "options " << options_.max_len << " " << options_.min_word_count
      << "\n";
  const BpeOptions& bpe_options = bpe_.options();
  out << "bpe_options " << bpe_options.num_merges << " "
      << bpe_options.min_token_len << " " << bpe_options.max_token_len << " "
      << bpe_options.min_frequency << "\n";
  const auto regular = vocab_.RegularTokens();
  out << "vocab " << regular.size() << "\n";
  for (const std::string& token : regular) out << token << "\n";
  out << "merges " << bpe_.merges().size() << "\n";
  for (const auto& [left, right] : bpe_.merges()) {
    out << left << " " << right << "\n";
  }
  out << "symbol_freqs " << bpe_.symbol_freqs().size() << "\n";
  for (const auto& [symbol, freq] : bpe_.symbol_freqs()) {
    out << symbol << " " << freq << "\n";
  }
  out << "phrases " << phrases_.size() << "\n";
  for (const auto& phrase : phrases_) {
    out << JoinStrings(phrase, " ") << "\n";
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

StatusOr<Tokenizer> Tokenizer::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  std::string line;
  if (!std::getline(in, line) || line != kTokenizerMagic) {
    return Status::InvalidArgument("bad tokenizer magic in " + path);
  }
  auto fail = [&](const std::string& what) {
    return Status::InvalidArgument("tokenizer load: " + what);
  };
  std::string keyword;
  TokenizerOptions options;
  if (!(in >> keyword >> options.max_len >> options.min_word_count) ||
      keyword != "options") {
    return fail("options header");
  }
  BpeOptions bpe_options;
  if (!(in >> keyword >> bpe_options.num_merges >> bpe_options.min_token_len
           >> bpe_options.max_token_len >> bpe_options.min_frequency) ||
      keyword != "bpe_options") {
    return fail("bpe_options header");
  }
  size_t count = 0;
  if (!(in >> keyword >> count) || keyword != "vocab") {
    return fail("vocab header");
  }
  std::getline(in, line);  // consume the rest of the header line
  Tokenizer tokenizer(options);
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line) || line.empty()) return fail("vocab entry");
    tokenizer.vocab_.AddToken(line);
  }
  if (!(in >> keyword >> count) || keyword != "merges") {
    return fail("merges header");
  }
  std::vector<std::pair<std::string, std::string>> merges;
  for (size_t i = 0; i < count; ++i) {
    std::string left, right;
    if (!(in >> left >> right)) return fail("merge entry");
    merges.emplace_back(left, right);
  }
  if (!(in >> keyword >> count) || keyword != "symbol_freqs") {
    return fail("symbol_freqs header");
  }
  std::vector<std::pair<std::string, int64_t>> symbol_freqs;
  for (size_t i = 0; i < count; ++i) {
    std::string symbol;
    int64_t freq = 0;
    if (!(in >> symbol >> freq)) return fail("symbol_freq entry");
    symbol_freqs.emplace_back(symbol, freq);
  }
  tokenizer.bpe_ = BpeLearner(bpe_options, std::move(merges),
                              std::move(symbol_freqs));
  if (!(in >> keyword >> count) || keyword != "phrases") {
    return fail("phrases header");
  }
  std::getline(in, line);
  std::vector<std::string> phrases;
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return fail("phrase entry");
    phrases.push_back(line);
  }
  tokenizer.AddDomainPhrases(phrases);
  tokenizer.vocab_built_ = true;
  return tokenizer;
}
}  // namespace text
}  // namespace telekit

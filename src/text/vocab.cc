#include "text/vocab.h"

#include "common/check.h"

namespace telekit {
namespace text {

Vocab::Vocab() {
  static const char* kSpecialSurfaces[] = {
      "[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]", "[ALM]", "[KPI]",
      "[ENT]", "[REL]", "[ATTR]", "[LOC]", "[DOC]", "[NUM]", "|"};
  for (const char* surface : kSpecialSurfaces) {
    const int id = static_cast<int>(tokens_.size());
    tokens_.emplace_back(surface);
    ids_.emplace(surface, id);
  }
  TELEKIT_CHECK_EQ(size(), SpecialTokens::kFirstRegular);
}

int Vocab::AddToken(const std::string& token) {
  TELEKIT_CHECK(!token.empty());
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  const int id = static_cast<int>(tokens_.size());
  tokens_.push_back(token);
  ids_.emplace(token, id);
  return id;
}

int Vocab::Id(std::string_view token) const {
  auto it = ids_.find(std::string(token));
  return it == ids_.end() ? SpecialTokens::kUnk : it->second;
}

bool Vocab::Contains(std::string_view token) const {
  return ids_.find(std::string(token)) != ids_.end();
}

const std::string& Vocab::Token(int id) const {
  TELEKIT_CHECK(id >= 0 && id < size()) << "token id " << id;
  return tokens_[static_cast<size_t>(id)];
}

std::vector<std::string> Vocab::RegularTokens() const {
  return std::vector<std::string>(
      tokens_.begin() + SpecialTokens::kFirstRegular, tokens_.end());
}

}  // namespace text
}  // namespace telekit

#include "common/rng.h"

#include <cmath>

namespace telekit {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  has_cached_normal_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller with a guard against log(0).
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

int64_t Rng::UniformInt(int64_t n) {
  TELEKIT_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t r = NextU64();
  while (r >= limit) r = NextU64();
  return static_cast<int64_t>(r % un);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TELEKIT_CHECK_LT(lo, hi);
  return lo + UniformInt(hi - lo);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    TELEKIT_CHECK_GE(w, 0.0);
    total += w;
  }
  TELEKIT_CHECK_GT(total, 0.0) << "Categorical needs a positive weight";
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point edge: return last index.
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  TELEKIT_CHECK_LE(k, n);
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher-Yates: the first k slots are the sample.
  for (size_t i = 0; i < k; ++i) {
    const size_t j =
        i + static_cast<size_t>(UniformInt(static_cast<int64_t>(n - i)));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace telekit

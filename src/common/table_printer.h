#ifndef TELEKIT_COMMON_TABLE_PRINTER_H_
#define TELEKIT_COMMON_TABLE_PRINTER_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace telekit {

/// Renders aligned ASCII tables for the benchmark harness, matching the
/// row/column layout of the tables in the paper's evaluation section.
class TablePrinter {
 public:
  /// Creates a table with the given title (printed above the header).
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  /// Sets the column headers; must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends one data row; the cell count must match the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles to `precision` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  /// Writes the table to `os`.
  void Print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace telekit

#endif  // TELEKIT_COMMON_TABLE_PRINTER_H_

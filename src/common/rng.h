#ifndef TELEKIT_COMMON_RNG_H_
#define TELEKIT_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace telekit {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. Every stochastic component in TeleKit takes an Rng& so that
/// all experiments are reproducible bit-for-bit from a fixed seed.
class Rng {
 public:
  /// Seeds the generator; identical seeds produce identical streams.
  explicit Rng(uint64_t seed = 42) { Reseed(seed); }

  /// Re-seeds in place, restarting the stream.
  void Reseed(uint64_t seed);

  /// Uniform random 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal (Box-Muller); mean 0, stddev 1.
  double Normal();

  /// Normal with given mean and stddev.
  double Normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Uniform integer in [lo, hi). Requires lo < hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Index sampled from (unnormalized, non-negative) weights.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(static_cast<int64_t>(i)));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices sampled without replacement from [0, n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks an independent generator whose stream is a deterministic
  /// function of this generator's state. Use for parallel substreams.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace telekit

#endif  // TELEKIT_COMMON_RNG_H_

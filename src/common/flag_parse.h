#ifndef TELEKIT_COMMON_FLAG_PARSE_H_
#define TELEKIT_COMMON_FLAG_PARSE_H_

#include <cstdint>
#include <string>

namespace telekit {

/// Strict numeric parsing for command-line flags and environment
/// variables. Unlike std::atoi/atof — which silently map garbage to 0 —
/// these reject empty strings, trailing garbage ("8080x"), overflow, and
/// out-of-range values, so "--port=abc" becomes a usage error instead of
/// an ephemeral-port bind.

/// Parses the whole of `text` as a base-10 integer in [min_value,
/// max_value]. Leading/trailing whitespace is rejected. Returns false on
/// any malformed or out-of-range input, leaving *out untouched.
bool ParseInt64(const std::string& text, int64_t min_value, int64_t max_value,
                int64_t* out);

/// Parses the whole of `text` as a finite double in [min_value,
/// max_value]. Rejects empty strings, trailing garbage, inf/nan and
/// overflow. Returns false on failure, leaving *out untouched.
bool ParseDouble(const std::string& text, double min_value, double max_value,
                 double* out);

/// Flag wrappers for daemon mains: on malformed input they print
/// "bad value for --<flag>: ..." (with the accepted range) to stderr and
/// exit(64) (EX_USAGE).
int64_t ParseIntFlagOrDie(const char* flag, const std::string& text,
                          int64_t min_value, int64_t max_value);
double ParseDoubleFlagOrDie(const char* flag, const std::string& text,
                            double min_value, double max_value);

/// Env-var variant: same strictness, same exit(64), but the message names
/// the environment variable instead of a flag. `text` may be null (some
/// callers pass getenv output); null is rejected like the empty string.
int64_t ParseIntEnvOrDie(const char* var, const char* text, int64_t min_value,
                         int64_t max_value);

}  // namespace telekit

#endif  // TELEKIT_COMMON_FLAG_PARSE_H_

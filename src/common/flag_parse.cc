#include "common/flag_parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace telekit {

bool ParseInt64(const std::string& text, int64_t min_value, int64_t max_value,
                int64_t* out) {
  if (text.empty()) return false;
  // strtoll skips leading whitespace; reject it up front so " 8080" and
  // "8080 " fail the same way.
  if (std::isspace(static_cast<unsigned char>(text.front()))) return false;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno == ERANGE) return false;
  if (end != text.c_str() + text.size()) return false;  // trailing garbage
  if (value < min_value || value > max_value) return false;
  *out = value;
  return true;
}

bool ParseDouble(const std::string& text, double min_value, double max_value,
                 double* out) {
  if (text.empty()) return false;
  if (std::isspace(static_cast<unsigned char>(text.front()))) return false;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno == ERANGE) return false;
  if (end != text.c_str() + text.size()) return false;
  if (!std::isfinite(value)) return false;
  if (value < min_value || value > max_value) return false;
  *out = value;
  return true;
}

namespace {

[[noreturn]] void DieUsage(const char* kind, const char* name,
                           const std::string& text, const char* range) {
  std::fprintf(stderr, "bad value for %s%s: '%s' (want %s)\n", kind, name,
               text.c_str(), range);
  std::exit(64);  // EX_USAGE
}

}  // namespace

int64_t ParseIntFlagOrDie(const char* flag, const std::string& text,
                          int64_t min_value, int64_t max_value) {
  int64_t value = 0;
  if (!ParseInt64(text, min_value, max_value, &value)) {
    char range[96];
    std::snprintf(range, sizeof(range), "an integer in [%lld, %lld]",
                  static_cast<long long>(min_value),
                  static_cast<long long>(max_value));
    DieUsage("--", flag, text, range);
  }
  return value;
}

double ParseDoubleFlagOrDie(const char* flag, const std::string& text,
                            double min_value, double max_value) {
  double value = 0.0;
  if (!ParseDouble(text, min_value, max_value, &value)) {
    char range[96];
    std::snprintf(range, sizeof(range), "a number in [%g, %g]", min_value,
                  max_value);
    DieUsage("--", flag, text, range);
  }
  return value;
}

int64_t ParseIntEnvOrDie(const char* var, const char* text, int64_t min_value,
                         int64_t max_value) {
  int64_t value = 0;
  const std::string s = text == nullptr ? "" : text;
  if (!ParseInt64(s, min_value, max_value, &value)) {
    char range[96];
    std::snprintf(range, sizeof(range), "an integer in [%lld, %lld]",
                  static_cast<long long>(min_value),
                  static_cast<long long>(max_value));
    DieUsage("", var, s, range);
  }
  return value;
}

}  // namespace telekit

#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace telekit {

std::vector<std::string> SplitString(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  for (const std::string& piece : SplitStringKeepEmpty(text, delimiter)) {
    if (!piece.empty()) out.push_back(piece);
  }
  return out;
}

std::vector<std::string> SplitStringKeepEmpty(std::string_view text,
                                              char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::string StripWhitespace(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return std::string(text.substr(begin, end - begin));
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out(static_cast<size_t>(size), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace telekit

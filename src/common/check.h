#ifndef TELEKIT_COMMON_CHECK_H_
#define TELEKIT_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace telekit {
namespace internal_check {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used only via the TELEKIT_CHECK* macros below; never instantiate directly.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }
  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace telekit

/// Aborts with a message when `cond` is false; extra context can be
/// streamed: TELEKIT_CHECK(n > 0) << "n=" << n;
/// For programmer errors / broken invariants only; recoverable errors
/// return telekit::Status.
#define TELEKIT_CHECK(cond)                                       \
  while (!(cond))                                                 \
  ::telekit::internal_check::CheckFailureStream(#cond, __FILE__, __LINE__)

#define TELEKIT_CHECK_OP(a, b, op)                                \
  while (!((a)op(b)))                                             \
  ::telekit::internal_check::CheckFailureStream(#a " " #op " " #b, __FILE__, \
                                                __LINE__)

#define TELEKIT_CHECK_EQ(a, b) TELEKIT_CHECK_OP(a, b, ==)
#define TELEKIT_CHECK_NE(a, b) TELEKIT_CHECK_OP(a, b, !=)
#define TELEKIT_CHECK_LT(a, b) TELEKIT_CHECK_OP(a, b, <)
#define TELEKIT_CHECK_LE(a, b) TELEKIT_CHECK_OP(a, b, <=)
#define TELEKIT_CHECK_GT(a, b) TELEKIT_CHECK_OP(a, b, >)
#define TELEKIT_CHECK_GE(a, b) TELEKIT_CHECK_OP(a, b, >=)

#endif  // TELEKIT_COMMON_CHECK_H_

#include "common/table_printer.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"
#include "common/string_util.h"

namespace telekit {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  TELEKIT_CHECK(rows_.empty()) << "SetHeader must precede AddRow";
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  TELEKIT_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.push_back(label);
  for (double v : values) {
    row.push_back(StringPrintf("%.*f", precision, v));
  }
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  auto print_rule = [&]() {
    os << "+";
    for (size_t width : widths) os << std::string(width + 2, '-') << "+";
    os << "\n";
  };
  os << "\n== " << title_ << " ==\n";
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

}  // namespace telekit

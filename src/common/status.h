#ifndef TELEKIT_COMMON_STATUS_H_
#define TELEKIT_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace telekit {

/// Error codes for recoverable failures. Programmer errors (broken
/// invariants) abort via TELEKIT_CHECK instead of returning a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  /// Transient overload/shutdown: the caller may retry later (serving
  /// queue full, engine stopping).
  kUnavailable = 6,
  /// The request's time budget lapsed before the work completed.
  kDeadlineExceeded = 7,
};

/// Lightweight result type in the RocksDB/Abseil idiom: functions that can
/// fail in ways the caller should handle return Status (or StatusOr<T>)
/// rather than throwing. Exceptions are not used in this codebase.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, mirroring absl::*Error.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" form for logs and test output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Callers must test
/// ok() before dereferencing; dereferencing an error aborts.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from Status, so `return value;` and
  /// `return Status::...;` both work at function boundaries.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    TELEKIT_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TELEKIT_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return value_;
  }
  T& value() & {
    TELEKIT_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return value_;
  }
  T&& value() && {
    TELEKIT_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller.
#define TELEKIT_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::telekit::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace telekit

#endif  // TELEKIT_COMMON_STATUS_H_

#ifndef TELEKIT_COMMON_STRING_UTIL_H_
#define TELEKIT_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace telekit {

/// Splits `text` on `delimiter`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view text, char delimiter);

/// Splits `text` on `delimiter`, keeping empty pieces.
std::vector<std::string> SplitStringKeepEmpty(std::string_view text,
                                              char delimiter);

/// Joins `pieces` with `separator`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view separator);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// True if `needle` occurs anywhere in `haystack`.
bool Contains(std::string_view haystack, std::string_view needle);

/// Removes leading and trailing ASCII whitespace.
std::string StripWhitespace(std::string_view text);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view text);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace telekit

#endif  // TELEKIT_COMMON_STRING_UTIL_H_

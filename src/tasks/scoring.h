#ifndef TELEKIT_TASKS_SCORING_H_
#define TELEKIT_TASKS_SCORING_H_

#include <string>
#include <vector>

namespace telekit {
namespace tasks {

/// One catalogue entry ranked against a query embedding.
struct ScoredCandidate {
  std::string name;
  float score = 0.0f;
};

/// Cosine similarity between two equal-length vectors (0 when either has
/// zero norm).
float CosineSimilarity(const std::vector<float>& a,
                       const std::vector<float>& b);

/// Ranks a catalogue of (name, embedding) pairs against a query embedding
/// by cosine similarity and returns the best `k` (all when k <= 0 or
/// k >= catalogue size), highest score first, ties broken by catalogue
/// order. This is the nearest-neighbour scoring primitive the serving
/// engine uses for RCA/EAP/FCT retrieval over service vectors.
std::vector<ScoredCandidate> TopKByCosine(
    const std::vector<float>& query, const std::vector<std::string>& names,
    const std::vector<std::vector<float>>& embeddings, int k);

}  // namespace tasks
}  // namespace telekit

#endif  // TELEKIT_TASKS_SCORING_H_

#include "tasks/scoring.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace telekit {
namespace tasks {

float CosineSimilarity(const std::vector<float>& a,
                       const std::vector<float>& b) {
  TELEKIT_CHECK_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0f;
  return static_cast<float>(dot / (std::sqrt(na) * std::sqrt(nb)));
}

std::vector<ScoredCandidate> TopKByCosine(
    const std::vector<float>& query, const std::vector<std::string>& names,
    const std::vector<std::vector<float>>& embeddings, int k) {
  TELEKIT_CHECK_EQ(names.size(), embeddings.size());
  std::vector<ScoredCandidate> scored;
  scored.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    scored.push_back({names[i], CosineSimilarity(query, embeddings[i])});
  }
  const size_t keep =
      (k <= 0 || static_cast<size_t>(k) >= scored.size())
          ? scored.size()
          : static_cast<size_t>(k);
  // stable_sort keeps catalogue order among equal scores, so results are
  // deterministic across runs and thread counts.
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ScoredCandidate& a, const ScoredCandidate& b) {
                     return a.score > b.score;
                   });
  scored.resize(keep);
  return scored;
}

}  // namespace tasks
}  // namespace telekit

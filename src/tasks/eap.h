#ifndef TELEKIT_TASKS_EAP_H_
#define TELEKIT_TASKS_EAP_H_

#include <vector>

#include "common/rng.h"
#include "core/transformer.h"
#include "synth/task_data.h"
#include "tensor/tensor.h"

namespace telekit {
namespace tasks {

/// Event-association-prediction hyperparameters (Sec. V-C3: Adam, lr 0.01,
/// batch 32, 5-fold CV).
struct EapOptions {
  /// Kept small: the learnable element table memorizes instance noise when
  /// it is wide (elements repeat across observations of the same pair).
  int node_embed_dim = 4;
  int epochs = 25;
  float learning_rate = 0.01f;
  int batch_size = 32;
  int k_folds = 5;
};

/// Internal pair view used by PairLogits (decoupled from the dataset
/// struct so tests can exercise arbitrary pairs).
struct EapPairInput {
  int event_a = 0;
  int event_b = 0;
  int element_a = 0;
  int element_b = 0;
  float time_delta = 0.0f;
};

/// The pair classifier of Fig. 8: event-name embeddings (Eq. 12) +
/// one-hop-aggregated topology embeddings (Eq. 18) + a time-difference
/// feature (Eq. 19) concatenated into a softmax pair scorer (Eq. 20-21).
class EapModel {
 public:
  EapModel(int event_dim, const synth::EapDataset& dataset,
           const EapOptions& options, Rng& rng);

  /// Pair logits [1, 2] (index 1 = "trigger relationship exists").
  tensor::Tensor PairLogits(
      const EapPairInput& pair,
      const std::vector<std::vector<float>>& event_embeddings) const;

  /// Convenience over a dataset sample.
  tensor::Tensor PairLogits(
      const synth::EapPairSample& sample,
      const std::vector<std::vector<float>>& event_embeddings) const;

  /// True if the model predicts a trigger relationship.
  bool Predict(const synth::EapPairSample& sample,
               const std::vector<std::vector<float>>& event_embeddings) const;

  std::vector<tensor::Tensor> Parameters() const;

 private:
  /// One-hop mean aggregation of learnable element embeddings (Eq. 18).
  tensor::Tensor TopologyEmbedding(int element) const;

  std::vector<std::vector<int>> neighbors_;  // incl. self
  tensor::Tensor node_table_;                // [num_elements, node_dim]
  tensor::Tensor time_w_;                    // W1: [1, 2]
  tensor::Tensor out_w_;                     // W2: [concat_dim, 2]
  tensor::Tensor out_b_;                     // [2]
};

/// Aggregate metrics of Table VI (percent).
struct EapResult {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// 5-fold cross-validated evaluation given precomputed event embeddings.
EapResult RunEapCrossValidation(
    const synth::EapDataset& dataset,
    const std::vector<std::vector<float>>& event_embeddings,
    const EapOptions& options, Rng& rng);

}  // namespace tasks
}  // namespace telekit

#endif  // TELEKIT_TASKS_EAP_H_

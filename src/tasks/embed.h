#ifndef TELEKIT_TASKS_EMBED_H_
#define TELEKIT_TASKS_EMBED_H_

#include <cmath>
#include <string>
#include <vector>

#include "core/service.h"
#include "obs/trace.h"

namespace telekit {
namespace tasks {

/// Per-dimension standardization of an embedding matrix (BERT-whitening
/// style). Frozen [CLS] spaces of small pre-trained encoders are strongly
/// anisotropic — all vectors share a large common component — which starves
/// the downstream linear/GCN models of discriminative signal. Centering and
/// scaling each dimension across the catalogue removes the common component
/// while preserving the learned relative geometry. Isotropic baselines
/// (random embeddings) are unaffected.
inline void WhitenEmbeddings(std::vector<std::vector<float>>& embeddings) {
  if (embeddings.size() < 2) return;
  const size_t d = embeddings[0].size();
  std::vector<double> mean(d, 0.0);
  for (const auto& v : embeddings) {
    for (size_t j = 0; j < d; ++j) mean[j] += v[j];
  }
  for (double& m : mean) m /= static_cast<double>(embeddings.size());
  std::vector<double> stddev(d, 0.0);
  for (const auto& v : embeddings) {
    for (size_t j = 0; j < d; ++j) {
      const double c = v[j] - mean[j];
      stddev[j] += c * c;
    }
  }
  for (double& s : stddev) {
    s = std::sqrt(s / static_cast<double>(embeddings.size())) + 1e-6;
  }
  for (auto& v : embeddings) {
    for (size_t j = 0; j < d; ++j) {
      v[j] = static_cast<float>((v[j] - mean[j]) / stddev[j]);
    }
  }
}

/// Encodes every surface with the service encoder (Eq. 12 applied to a
/// whole catalogue); row i is the embedding of surfaces[i]. Uses the
/// batched forward path (one projection matmul over the whole catalogue
/// for transformer-backed encoders); per-row values agree with the
/// one-at-a-time path within float round-off. Whitening is applied by
/// default (see WhitenEmbeddings).
inline std::vector<std::vector<float>> EmbedSurfaces(
    const core::ServiceEncoder& service,
    const std::vector<std::string>& surfaces,
    core::ServiceMode mode = core::ServiceMode::kEntityNoAttr,
    bool whiten = true) {
  TELEKIT_SPAN("encode/surfaces");
  std::vector<std::vector<float>> embeddings =
      service.EncodeBatch(surfaces, mode);
  if (whiten) WhitenEmbeddings(embeddings);
  return embeddings;
}

}  // namespace tasks
}  // namespace telekit

#endif  // TELEKIT_TASKS_EMBED_H_

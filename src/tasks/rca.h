#ifndef TELEKIT_TASKS_RCA_H_
#define TELEKIT_TASKS_RCA_H_

#include <vector>

#include "common/rng.h"
#include "graph/gcn.h"
#include "synth/task_data.h"
#include "tensor/tensor.h"

namespace telekit {
namespace tasks {

/// Root-cause-analysis hyperparameters (Sec. V-B; layer widths scaled from
/// the paper's 1024/512/128 to the reproduction's embedding size).
struct RcaOptions {
  int gcn_hidden = 64;
  int gcn_out = 32;
  int mlp_hidden = 16;
  int epochs = 60;
  float learning_rate = 0.01f;
  int k_folds = 5;
  /// Evaluate on the validation fold every this many epochs and report the
  /// test metrics at the best validation point (model selection).
  int eval_every = 5;
};

/// GCN + MLP node-ranking model (Fig. 7): node features are initialized
/// from abnormal-event service embeddings (Eq. 12-13), refined by a 2-layer
/// GCN (Eq. 14), and scored by a 2-layer MLP (Eq. 15), trained with the
/// logistic loss of Eq. 16.
class RcaModel {
 public:
  RcaModel(int embed_dim, const RcaOptions& options, Rng& rng);

  /// Node initialization (Eq. 13): H_j = x_j E / sum(x_j), zero for nodes
  /// without events. `event_embeddings` is the [num_features x d] matrix E
  /// produced by the service encoder.
  static tensor::Tensor NodeInit(
      const synth::RcaStateGraph& state,
      const std::vector<std::vector<float>>& event_embeddings);

  /// Node scores s = f(G): [n].
  tensor::Tensor Scores(const synth::RcaStateGraph& state,
                        const tensor::Tensor& node_features) const;

  /// Rank (1-based, ties averaged) of the labelled root under the current
  /// parameters.
  double RankOfRoot(const synth::RcaStateGraph& state,
                    const std::vector<std::vector<float>>& event_embeddings)
      const;

  std::vector<tensor::Tensor> Parameters() const;

 private:
  graph::GcnStack gcn_;
  tensor::Tensor mlp_w1_, mlp_b1_, mlp_w2_, mlp_b2_;
};

/// Aggregate metrics of Table IV.
struct RcaResult {
  double mean_rank = 0.0;
  double hits1 = 0.0;
  double hits3 = 0.0;
  double hits5 = 0.0;
};

/// Full 5-fold cross-validated evaluation (Sec. V-B3) given precomputed
/// abnormal-event embeddings; returns fold-averaged metrics.
RcaResult RunRcaCrossValidation(
    const synth::RcaDataset& dataset,
    const std::vector<std::vector<float>>& event_embeddings,
    const RcaOptions& options, Rng& rng);

}  // namespace tasks
}  // namespace telekit

#endif  // TELEKIT_TASKS_RCA_H_

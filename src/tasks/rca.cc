#include "tasks/rca.h"

#include <algorithm>

#include "common/check.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace telekit {
namespace tasks {

using tensor::Tensor;

RcaModel::RcaModel(int embed_dim, const RcaOptions& options, Rng& rng)
    : gcn_({embed_dim, options.gcn_hidden, options.gcn_out}, rng),
      mlp_w1_(Tensor::GlorotUniform(options.gcn_out, options.mlp_hidden, rng,
                                    true)),
      mlp_b1_(Tensor::Zeros({options.mlp_hidden}, true)),
      mlp_w2_(Tensor::GlorotUniform(options.mlp_hidden, 1, rng, true)),
      mlp_b2_(Tensor::Zeros({1}, true)) {}

Tensor RcaModel::NodeInit(
    const synth::RcaStateGraph& state,
    const std::vector<std::vector<float>>& event_embeddings) {
  TELEKIT_CHECK(!event_embeddings.empty());
  const int d = static_cast<int>(event_embeddings[0].size());
  const int n = state.topology.num_nodes;
  std::vector<float> features(static_cast<size_t>(n) * d, 0.0f);
  for (int i = 0; i < n; ++i) {
    const std::vector<float>& counts = state.features[static_cast<size_t>(i)];
    float total = 0.0f;
    for (float c : counts) total += c;
    if (total <= 0.0f) continue;
    for (size_t f = 0; f < counts.size(); ++f) {
      if (counts[f] == 0.0f) continue;
      const std::vector<float>& e = event_embeddings[f];
      for (int j = 0; j < d; ++j) {
        features[static_cast<size_t>(i) * d + j] +=
            counts[f] * e[static_cast<size_t>(j)] / total;
      }
    }
  }
  return Tensor::FromData({n, d}, std::move(features));
}

Tensor RcaModel::Scores(const synth::RcaStateGraph& state,
                        const Tensor& node_features) const {
  Tensor adjacency = graph::NormalizedAdjacency(state.topology);
  Tensor h = gcn_.Forward(adjacency, node_features);
  Tensor hidden = tensor::Relu(
      tensor::Add(tensor::MatMul(h, mlp_w1_), mlp_b1_));
  Tensor scores = tensor::Add(tensor::MatMul(hidden, mlp_w2_), mlp_b2_);
  return tensor::Reshape(scores, {state.topology.num_nodes});
}

double RcaModel::RankOfRoot(
    const synth::RcaStateGraph& state,
    const std::vector<std::vector<float>>& event_embeddings) const {
  Tensor scores = Scores(state, NodeInit(state, event_embeddings));
  const float root_score = scores.at(static_cast<int64_t>(state.root_node));
  int better = 0, ties = 0;
  for (int i = 0; i < state.topology.num_nodes; ++i) {
    if (i == state.root_node) continue;
    const float s = scores.at(static_cast<int64_t>(i));
    if (s > root_score) {
      ++better;
    } else if (s == root_score) {
      ++ties;
    }
  }
  return 1.0 + better + ties / 2.0;
}

std::vector<Tensor> RcaModel::Parameters() const {
  std::vector<Tensor> params = gcn_.Parameters();
  params.push_back(mlp_w1_);
  params.push_back(mlp_b1_);
  params.push_back(mlp_w2_);
  params.push_back(mlp_b2_);
  return params;
}

namespace {

// Mean rank of roots over the index subset.
double MeanRankOn(const RcaModel& model, const synth::RcaDataset& dataset,
                  const std::vector<std::vector<float>>& embeddings,
                  const std::vector<size_t>& indices) {
  double total = 0;
  for (size_t idx : indices) {
    total += model.RankOfRoot(dataset.graphs[idx], embeddings);
  }
  return total / static_cast<double>(indices.size());
}

}  // namespace

RcaResult RunRcaCrossValidation(
    const synth::RcaDataset& dataset,
    const std::vector<std::vector<float>>& event_embeddings,
    const RcaOptions& options, Rng& rng) {
  TELEKIT_SPAN("eval/rca");
  obs::MetricsRegistry::Global()
      .GetCounter("eval/rca_folds")
      .Increment(static_cast<uint64_t>(options.k_folds));
  TELEKIT_CHECK_EQ(event_embeddings.size(),
                   static_cast<size_t>(dataset.num_features));
  const int embed_dim = static_cast<int>(event_embeddings[0].size());
  auto folds =
      eval::KFoldIndices(dataset.graphs.size(), options.k_folds, rng);

  eval::RankingAccumulator accumulator;
  for (int fold = 0; fold < options.k_folds; ++fold) {
    eval::KFoldSplit split = eval::MakeSplit(folds, fold);
    RcaModel model(embed_dim, options, rng);
    tensor::Adam optimizer(options.learning_rate);
    optimizer.AddParameters(model.Parameters());

    // Track the test ranks at the epoch with the best validation MR.
    double best_valid = 1e18;
    std::vector<double> best_test_ranks;
    auto snapshot_test = [&]() {
      std::vector<double> ranks;
      for (size_t idx : split.test) {
        ranks.push_back(model.RankOfRoot(dataset.graphs[idx],
                                         event_embeddings));
      }
      return ranks;
    };

    for (int epoch = 1; epoch <= options.epochs; ++epoch) {
      optimizer.ZeroGrad();
      std::vector<Tensor> losses;
      for (size_t idx : split.train) {
        const synth::RcaStateGraph& state = dataset.graphs[idx];
        Tensor scores =
            model.Scores(state, RcaModel::NodeInit(state, event_embeddings));
        std::vector<float> labels(
            static_cast<size_t>(state.topology.num_nodes), -1.0f);
        labels[static_cast<size_t>(state.root_node)] = 1.0f;
        losses.push_back(tensor::LogisticLoss(scores, labels));
      }
      Tensor total = losses.front();
      for (size_t i = 1; i < losses.size(); ++i) {
        total = tensor::Add(total, losses[i]);
      }
      total = tensor::MulScalar(total,
                                1.0f / static_cast<float>(losses.size()));
      total.Backward();
      optimizer.ClipGradNorm(5.0f);
      optimizer.Step();

      if (epoch % options.eval_every == 0 || epoch == options.epochs) {
        const double valid_mr =
            MeanRankOn(model, dataset, event_embeddings, split.valid);
        if (valid_mr < best_valid) {
          best_valid = valid_mr;
          best_test_ranks = snapshot_test();
        }
      }
    }
    for (double rank : best_test_ranks) accumulator.AddRank(rank);
  }

  RcaResult result;
  result.mean_rank = accumulator.MeanRank();
  result.hits1 = accumulator.HitsAt(1);
  result.hits3 = accumulator.HitsAt(3);
  result.hits5 = accumulator.HitsAt(5);
  return result;
}

}  // namespace tasks
}  // namespace telekit

#include "tasks/eap.h"

#include <algorithm>

#include "common/check.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace telekit {
namespace tasks {

using tensor::Tensor;

EapModel::EapModel(int event_dim, const synth::EapDataset& dataset,
                   const EapOptions& options, Rng& rng) {
  const int n = dataset.topology.num_nodes;
  neighbors_.assign(static_cast<size_t>(n), {});
  for (int i = 0; i < n; ++i) {
    neighbors_[static_cast<size_t>(i)].push_back(i);  // self included
  }
  for (const auto& [u, v] : dataset.topology.edges) {
    neighbors_[static_cast<size_t>(u)].push_back(v);
    neighbors_[static_cast<size_t>(v)].push_back(u);
  }
  node_table_ = Tensor::Randn({n, options.node_embed_dim}, rng, 0.1f, true);
  time_w_ = Tensor::Randn({1, 2}, rng, 0.5f, true);
  const int concat = 2 * event_dim + 2 * options.node_embed_dim + 2;
  out_w_ = Tensor::GlorotUniform(concat, 2, rng, true);
  out_b_ = Tensor::Zeros({2}, true);
}

Tensor EapModel::TopologyEmbedding(int element) const {
  TELEKIT_CHECK(element >= 0 &&
                element < static_cast<int>(neighbors_.size()));
  return tensor::MeanRows(
      tensor::GatherRows(node_table_,
                         neighbors_[static_cast<size_t>(element)]));
}

Tensor EapModel::PairLogits(
    const EapPairInput& pair,
    const std::vector<std::vector<float>>& event_embeddings) const {
  const std::vector<float>& ea =
      event_embeddings[static_cast<size_t>(pair.event_a)];
  const std::vector<float>& eb =
      event_embeddings[static_cast<size_t>(pair.event_b)];
  Tensor e_a = Tensor::FromData({static_cast<int>(ea.size())}, ea);
  Tensor e_b = Tensor::FromData({static_cast<int>(eb.size())}, eb);
  Tensor n_a = TopologyEmbedding(pair.element_a);
  Tensor n_b = TopologyEmbedding(pair.element_b);
  // d_ij = W1 (t_i - t_j) (Eq. 19).
  Tensor delta = Tensor::FromData({1, 1}, {pair.time_delta});
  Tensor d_ij = tensor::Reshape(tensor::MatMul(delta, time_w_), {2});
  Tensor concat = tensor::ConcatVec({e_a, e_b, n_a, n_b, d_ij});
  Tensor logits = tensor::Add(
      tensor::MatMul(tensor::Reshape(concat, {1, concat.dim(0)}), out_w_),
      out_b_);
  return logits;  // [1, 2]
}

Tensor EapModel::PairLogits(
    const synth::EapPairSample& sample,
    const std::vector<std::vector<float>>& event_embeddings) const {
  EapPairInput input;
  input.event_a = sample.event_a;
  input.event_b = sample.event_b;
  input.element_a = sample.element_a;
  input.element_b = sample.element_b;
  input.time_delta = static_cast<float>(sample.time_a - sample.time_b);
  return PairLogits(input, event_embeddings);
}

bool EapModel::Predict(
    const synth::EapPairSample& sample,
    const std::vector<std::vector<float>>& event_embeddings) const {
  Tensor logits = PairLogits(sample, event_embeddings);
  return logits.at(0, 1) > logits.at(0, 0);
}

std::vector<Tensor> EapModel::Parameters() const {
  return {node_table_, time_w_, out_w_, out_b_};
}

EapResult RunEapCrossValidation(
    const synth::EapDataset& dataset,
    const std::vector<std::vector<float>>& event_embeddings,
    const EapOptions& options, Rng& rng) {
  TELEKIT_SPAN("eval/eap");
  obs::MetricsRegistry::Global()
      .GetCounter("eval/eap_folds")
      .Increment(static_cast<uint64_t>(options.k_folds));
  TELEKIT_CHECK(!dataset.pairs.empty());
  TELEKIT_CHECK_EQ(event_embeddings.size(), dataset.event_surfaces.size());
  const int event_dim = static_cast<int>(event_embeddings[0].size());
  auto folds = eval::KFoldIndices(dataset.pairs.size(), options.k_folds, rng);

  eval::BinaryConfusion confusion;
  for (int fold = 0; fold < options.k_folds; ++fold) {
    eval::KFoldSplit split = eval::MakeSplit(folds, fold);
    // The paper's EAP protocol uses a plain train/test split per fold;
    // merge the validation fold into training.
    std::vector<size_t> train = split.train;
    train.insert(train.end(), split.valid.begin(), split.valid.end());

    EapModel model(event_dim, dataset, options, rng);
    tensor::Adam optimizer(options.learning_rate);
    optimizer.AddParameters(model.Parameters());

    for (int epoch = 0; epoch < options.epochs; ++epoch) {
      rng.Shuffle(train);
      for (size_t start = 0; start < train.size();
           start += static_cast<size_t>(options.batch_size)) {
        const size_t end = std::min(
            train.size(), start + static_cast<size_t>(options.batch_size));
        optimizer.ZeroGrad();
        std::vector<Tensor> rows;
        std::vector<int> labels;
        for (size_t i = start; i < end; ++i) {
          const synth::EapPairSample& sample = dataset.pairs[train[i]];
          rows.push_back(model.PairLogits(sample, event_embeddings));
          labels.push_back(sample.positive ? 1 : 0);
        }
        Tensor logits = tensor::ConcatRows(rows);
        tensor::CrossEntropyWithLogits(logits, labels).Backward();
        optimizer.ClipGradNorm(5.0f);
        optimizer.Step();
      }
    }
    for (size_t idx : split.test) {
      const synth::EapPairSample& sample = dataset.pairs[idx];
      confusion.Add(model.Predict(sample, event_embeddings), sample.positive);
    }
  }

  EapResult result;
  result.accuracy = confusion.Accuracy();
  result.precision = confusion.Precision();
  result.recall = confusion.Recall();
  result.f1 = confusion.F1();
  return result;
}

}  // namespace tasks
}  // namespace telekit

#include "tasks/fct.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace telekit {
namespace tasks {

std::vector<kg::EntityId> FilterCandidates(const synth::FctDataset& dataset) {
  std::unordered_set<kg::EntityId> active;
  for (const kg::Triple& t : dataset.store.triples()) {
    active.insert(t.head);
    active.insert(t.tail);
  }
  // Held-out facts' endpoints stay candidates too (they exist in the
  // network even if their first hop was masked).
  for (const auto* split : {&dataset.valid, &dataset.test}) {
    for (const kg::Quadruple& q : *split) {
      active.insert(q.head);
      active.insert(q.tail);
    }
  }
  std::vector<kg::EntityId> candidates(active.begin(), active.end());
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

FctResult RunFct(const synth::FctDataset& dataset,
                 const std::vector<std::vector<float>>* node_embeddings,
                 const FctOptions& options, Rng& rng) {
  TELEKIT_SPAN("eval/fct");
  obs::MetricsRegistry::Global()
      .GetCounter("eval/fct_queries")
      .Increment(dataset.test.size());
  TELEKIT_CHECK(!dataset.train.empty());
  TELEKIT_CHECK(!dataset.test.empty());

  kg::TranslationalKge kge(dataset.store.num_entities(),
                           dataset.store.num_relations(), options.kge, rng);
  if (node_embeddings != nullptr) {
    kge.InitializeEntities(*node_embeddings);
  }
  kg::NegativeSampler sampler(dataset.store);
  kge.Fit(dataset.train, sampler, rng);

  const std::vector<kg::EntityId> candidates = FilterCandidates(dataset);
  eval::RankingAccumulator accumulator;
  for (const kg::Quadruple& q : dataset.test) {
    // Filtered setting: drop candidates that are known-true tails for
    // (head, relation) from the training store, except the target.
    std::vector<kg::EntityId> filtered;
    filtered.reserve(candidates.size());
    for (kg::EntityId c : candidates) {
      if (c != q.tail && dataset.store.HasTriple(q.head, q.relation, c)) {
        continue;
      }
      filtered.push_back(c);
    }
    accumulator.AddRank(kge.RankOfTail(q.head, q.relation, q.tail, filtered));
  }

  FctResult result;
  result.mrr = 100.0 * accumulator.MeanReciprocalRank();
  result.hits1 = accumulator.HitsAt(1);
  result.hits3 = accumulator.HitsAt(3);
  result.hits10 = accumulator.HitsAt(10);
  return result;
}

}  // namespace tasks
}  // namespace telekit

#ifndef TELEKIT_TASKS_FCT_H_
#define TELEKIT_TASKS_FCT_H_

#include <vector>

#include "common/rng.h"
#include "kg/kge.h"
#include "synth/task_data.h"

namespace telekit {
namespace tasks {

/// Fault-chain-tracing hyperparameters (Sec. V-D; the paper's NeuralKG
/// setup with batch 1024 / 1000 negatives / dim 2000, scaled).
struct FctOptions {
  /// Few enough epochs that the entity initialization (Eq. 23) matters —
  /// the regime the paper evaluates.
  kg::KgeOptions kge{.dim = 64,
                     .learning_rate = 0.03f,
                     .margin = 2.0f,
                     .epochs = 30,
                     .negatives = 6,
                     .confidence_alpha = 1.0f};
};

/// Aggregate metrics of Table VIII (percent).
struct FctResult {
  double mrr = 0.0;
  double hits1 = 0.0;
  double hits3 = 0.0;
  double hits10 = 0.0;
};

/// "Rules Lightning" (Eq. 22): the candidate set for link prediction is
/// restricted to alarm-instance entities that participate in at least one
/// stored (training) fact — isolated entities are filtered out as
/// irrelevant.
std::vector<kg::EntityId> FilterCandidates(const synth::FctDataset& dataset);

/// Trains GTransE on the training quadruples — entity embeddings either
/// random or initialized from service vectors (Eq. 23) — and evaluates
/// masked-first-hop link prediction on the test split, ranking tails in the
/// filtered setting (known training tails other than the target are
/// excluded).
FctResult RunFct(const synth::FctDataset& dataset,
                 const std::vector<std::vector<float>>* node_embeddings,
                 const FctOptions& options, Rng& rng);

}  // namespace tasks
}  // namespace telekit

#endif  // TELEKIT_TASKS_FCT_H_

#include "core/ktelebert.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace telekit {
namespace core {

using tensor::Tensor;

KTeleBert::KTeleBert(const KTeleBertConfig& config, Rng& rng)
    : config_(config) {
  TELEKIT_CHECK_EQ(config.encoder.d_model, config.anenc.d_model)
      << "ANEnc and encoder dims must match";
  encoder_ = std::make_unique<TransformerEncoder>(config.encoder, rng);
  anenc_ = std::make_unique<AnEnc>(config.anenc, rng);
  ndec_ = std::make_unique<NumericDecoder>(config.encoder.d_model, rng);
  if (config.num_tags > 0) {
    tgc_ = std::make_unique<TagClassifier>(config.encoder.d_model,
                                           config.num_tags, rng);
  }
  mlm_head_ = std::make_unique<LinearLayer>(config.encoder.d_model,
                                            config.encoder.vocab_size, rng);
  auto_loss_ = std::make_unique<AutoWeightedLoss>(3);
}

Status KTeleBert::InitializeFromTeleBert(const TeleBert& telebert) {
  // Copy only the main-encoder weights; generator and heads are stage-one
  // artifacts.
  tensor::TensorMap source;
  for (const auto& [name, t] : telebert.encoder().Parameters()) {
    source.emplace(name, t);
  }
  tensor::TensorMap target;
  for (const auto& [name, t] : encoder_->Parameters()) {
    target.emplace(name, t);
  }
  return tensor::RestoreInto(source, target);
}

Tensor KTeleBert::Hidden(const text::EncodedInput& input, Rng& rng,
                         bool training,
                         std::vector<Tensor>* anenc_outputs) const {
  std::vector<std::pair<int, Tensor>> overrides;
  if (config_.use_anenc) {
    for (const text::NumericSlot& slot : input.numeric_slots) {
      if (slot.position >= input.length) continue;
      Tensor tag_embedding = encoder_->MeanTokenEmbedding(slot.tag_ids);
      Tensor h = anenc_->Forward(tag_embedding, slot.value);
      if (anenc_outputs != nullptr) anenc_outputs->push_back(h);
      overrides.emplace_back(slot.position, h);
    }
  }
  Tensor embedded =
      encoder_->Embed(input.ids, input.length, overrides, rng, training);
  return encoder_->Encode(embedded, rng, training);
}

Tensor KTeleBert::EncodeCls(const text::EncodedInput& input, Rng& rng,
                            bool training) const {
  return tensor::SliceRows(Hidden(input, rng, training), 0, 1);
}

std::vector<float> KTeleBert::ServiceVector(
    const text::EncodedInput& input) const {
  tensor::NoGradGuard no_grad;
  Rng rng(0);  // unused in eval mode
  return EncodeCls(input, rng, /*training=*/false).data();
}

std::vector<std::vector<float>> KTeleBert::ServiceVectorBatch(
    const std::vector<const text::EncodedInput*>& inputs) const {
  std::vector<std::vector<float>> out;
  if (inputs.empty()) return out;
  tensor::NoGradGuard no_grad;
  Rng rng(0);  // unused in eval mode
  std::vector<const std::vector<int>*> ids;
  std::vector<int> lengths;
  std::vector<std::vector<std::pair<int, Tensor>>> overrides(inputs.size());
  std::vector<const std::vector<std::pair<int, Tensor>>*> override_ptrs;
  ids.reserve(inputs.size());
  lengths.reserve(inputs.size());
  override_ptrs.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    const text::EncodedInput& input = *inputs[i];
    ids.push_back(&input.ids);
    lengths.push_back(input.length);
    if (config_.use_anenc) {
      for (const text::NumericSlot& slot : input.numeric_slots) {
        if (slot.position >= input.length) continue;
        Tensor tag_embedding = encoder_->MeanTokenEmbedding(slot.tag_ids);
        overrides[i].emplace_back(slot.position,
                                  anenc_->Forward(tag_embedding, slot.value));
      }
    }
    override_ptrs.push_back(&overrides[i]);
  }
  BatchOffsets offsets;
  Tensor embedded = encoder_->EmbedBatch(ids, lengths, override_ptrs,
                                         &offsets, rng, /*training=*/false);
  Tensor hidden = encoder_->EncodeBatch(embedded, offsets, rng,
                                        /*training=*/false);
  const int d = encoder_->config().d_model;
  out.reserve(inputs.size());
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    const float* cls =
        hidden.data().data() + static_cast<size_t>(offsets[i]) * d;
    out.emplace_back(cls, cls + d);  // row 0 of each sequence is [CLS]
  }
  return out;
}

Tensor KTeleBert::KeDistance(const text::EncodedInput& head,
                             const text::EncodedInput& relation,
                             const text::EncodedInput& tail, Rng& rng,
                             bool training) const {
  Tensor e_h = EncodeCls(head, rng, training);
  Tensor e_r = EncodeCls(relation, rng, training);
  Tensor e_t = EncodeCls(tail, rng, training);
  Tensor diff = tensor::Sub(tensor::Add(e_h, e_r), e_t);
  return tensor::Sqrt(
      tensor::AddScalar(tensor::Sum(tensor::Square(diff)), 1e-12f));
}

NamedParams KTeleBert::Parameters() const {
  NamedParams out;
  AppendWithPrefix("encoder", encoder_->Parameters(), &out);
  AppendWithPrefix("anenc", anenc_->Parameters(), &out);
  AppendWithPrefix("ndec", ndec_->Parameters(), &out);
  if (tgc_ != nullptr) AppendWithPrefix("tgc", tgc_->Parameters(), &out);
  AppendWithPrefix("mlm_head", mlm_head_->Parameters(), &out);
  AppendWithPrefix("auto_loss", auto_loss_->Parameters(), &out);
  return out;
}

tensor::TensorMap KTeleBert::Checkpoint() const {
  return ToTensorMap(Parameters());
}

Status KTeleBert::Restore(const tensor::TensorMap& checkpoint) {
  tensor::TensorMap current = ToTensorMap(Parameters());
  return tensor::RestoreInto(checkpoint, current);
}

// --- ReTrainer ---------------------------------------------------------------

Tensor ReTrainer::MaskNumericLoss(const ReTrainData& data, Rng& rng,
                                  ReTrainStats* stats) {
  // Assemble a mixed batch: machine logs (numeric supervision) and text
  // (causal + serialized triples) in roughly equal shares.
  struct Item {
    const text::EncodedInput* input;
    int tag_label;  // -1 for text items
  };
  std::vector<Item> batch;
  for (int b = 0; b < options_.batch_size; ++b) {
    const double roll = rng.Uniform();
    if (roll < 0.5 && !data.machine_logs.empty()) {
      const size_t idx =
          static_cast<size_t>(rng.UniformInt(data.machine_logs.size()));
      batch.push_back({&data.machine_logs[idx],
                       data.machine_log_tags.empty()
                           ? -1
                           : data.machine_log_tags[idx]});
    } else if (roll < 0.8 && !data.causal_sentences.empty()) {
      batch.push_back(
          {&data.causal_sentences[static_cast<size_t>(
               rng.UniformInt(data.causal_sentences.size()))],
           -1});
    } else if (!data.triple_sentences.empty()) {
      batch.push_back(
          {&data.triple_sentences[static_cast<size_t>(
               rng.UniformInt(data.triple_sentences.size()))],
           -1});
    }
  }
  if (batch.empty()) return Tensor();

  KTeleBert& m = model_;
  std::vector<Tensor> mask_losses;
  std::vector<Tensor> reg_losses;
  std::vector<Tensor> cls_losses;
  std::vector<Tensor> nc_embeddings;
  std::vector<float> nc_values;
  for (const Item& item : batch) {
    const text::EncodedInput& input = *item.input;
    text::MaskedExample masked = text::ApplyMasking(
        input, m.config_.encoder.vocab_size, options_.masking, rng);

    std::vector<Tensor> anenc_outputs;
    // Forward over the *masked* ids but the original numeric slots.
    text::EncodedInput corrupted = input;
    corrupted.ids = masked.ids;
    Tensor hidden = m.Hidden(corrupted, rng, /*training=*/true,
                             &anenc_outputs);

    // Mask-reconstruction loss at the supervised positions.
    std::vector<int> positions;
    std::vector<int> labels;
    for (int i = 0; i < input.length; ++i) {
      if (masked.labels[static_cast<size_t>(i)] >= 0) {
        positions.push_back(i);
        labels.push_back(masked.labels[static_cast<size_t>(i)]);
      }
    }
    if (!positions.empty()) {
      Tensor logits =
          m.mlm_head_->Forward(tensor::GatherRows(hidden, positions));
      mask_losses.push_back(tensor::CrossEntropyWithLogits(logits, labels));
    }

    // Numeric objectives per slot.
    if (m.config_.use_anenc && !input.numeric_slots.empty()) {
      for (size_t s = 0; s < anenc_outputs.size(); ++s) {
        const text::NumericSlot& slot = input.numeric_slots[s];
        if (options_.use_regression) {
          Tensor final_at_slot =
              tensor::SliceRows(hidden, slot.position, 1);
          Tensor predicted = m.ndec_->Forward(final_at_slot);
          Tensor target = Tensor::FromData({1}, {slot.value});
          reg_losses.push_back(tensor::MseLoss(predicted, target));
        }
        if (options_.use_tag_classification && m.tgc_ != nullptr &&
            item.tag_label >= 0) {
          Tensor logits = m.tgc_->Forward(anenc_outputs[s]);
          cls_losses.push_back(
              tensor::CrossEntropyWithLogits(logits, {item.tag_label}));
        }
        if (options_.use_numeric_contrastive) {
          nc_embeddings.push_back(anenc_outputs[s]);
          nc_values.push_back(slot.value);
        }
      }
    }
  }

  auto mean_of = [](const std::vector<Tensor>& losses) -> Tensor {
    if (losses.empty()) return Tensor();
    Tensor sum = losses.front();
    for (size_t i = 1; i < losses.size(); ++i) {
      sum = tensor::Add(sum, losses[i]);
    }
    return tensor::MulScalar(sum, 1.0f / static_cast<float>(losses.size()));
  };

  Tensor mask_loss = mean_of(mask_losses);
  Tensor reg_loss = mean_of(reg_losses);
  Tensor cls_loss = mean_of(cls_losses);
  Tensor nc_loss;
  if (options_.use_numeric_contrastive && nc_embeddings.size() >= 3) {
    nc_loss = NumericContrastiveLoss(nc_embeddings, nc_values,
                                     m.config_.nc_tau);
  }

  if (mask_loss.defined()) stats->mask_loss += mask_loss.item();
  if (reg_loss.defined()) stats->reg_loss += reg_loss.item();
  if (cls_loss.defined()) stats->cls_loss += cls_loss.item();
  if (nc_loss.defined()) stats->nc_loss += nc_loss.item();

  // L_num: auto-weighted fusion of the three numeric objectives plus the
  // orthogonal regularizer (Eq. 8).
  Tensor total = mask_loss;
  const bool any_numeric =
      reg_loss.defined() || cls_loss.defined() || nc_loss.defined();
  if (any_numeric) {
    Tensor numeric;
    if (options_.use_auto_weighting) {
      numeric = m.auto_loss_->Combine({reg_loss, cls_loss, nc_loss});
    } else {
      std::vector<Tensor> defined;
      for (const Tensor& loss : {reg_loss, cls_loss, nc_loss}) {
        if (loss.defined()) defined.push_back(loss);
      }
      numeric = mean_of(defined);
    }
    if (m.config_.orthogonal_lambda > 0.0f) {
      numeric = tensor::Add(
          numeric, tensor::MulScalar(m.anenc_->OrthogonalPenalty(),
                                     m.config_.orthogonal_lambda));
    }
    total = total.defined() ? tensor::Add(total, numeric) : numeric;
  }
  return total;
}

Tensor ReTrainer::KeLoss(const ReTrainData& data, Rng& rng,
                         ReTrainStats* stats) {
  if (data.ke_triples.empty() || data.entity_inputs.empty()) return Tensor();
  KTeleBert& m = model_;
  const float gamma = m.config_.ke_margin;
  std::vector<Tensor> losses;
  for (int b = 0; b < options_.ke_batch_size; ++b) {
    const KeTriple& triple = data.ke_triples[static_cast<size_t>(
        rng.UniformInt(data.ke_triples.size()))];
    Tensor d_pos = m.KeDistance(triple.head, triple.relation, triple.tail,
                                rng, /*training=*/true);
    // -log sigma(gamma - d_pos)
    Tensor loss = tensor::Neg(
        tensor::LogSigmoid(tensor::Neg(tensor::AddScalar(d_pos, -gamma))));
    // Negatives: corrupt the head or the tail with a random entity.
    for (int n = 0; n < m.config_.ke_negatives; ++n) {
      const text::EncodedInput& corrupt =
          data.entity_inputs[static_cast<size_t>(
              rng.UniformInt(data.entity_inputs.size()))];
      const bool corrupt_tail = rng.Bernoulli(0.5);
      Tensor d_neg =
          corrupt_tail
              ? m.KeDistance(triple.head, triple.relation, corrupt, rng, true)
              : m.KeDistance(corrupt, triple.relation, triple.tail, rng,
                             true);
      // -(1/n) log sigma(d_neg - gamma), uniform negative weighting.
      loss = tensor::Add(
          loss,
          tensor::MulScalar(
              tensor::Neg(tensor::LogSigmoid(tensor::AddScalar(d_neg,
                                                               -gamma))),
              1.0f / static_cast<float>(m.config_.ke_negatives)));
    }
    losses.push_back(loss);
  }
  Tensor sum = losses.front();
  for (size_t i = 1; i < losses.size(); ++i) {
    sum = tensor::Add(sum, losses[i]);
  }
  Tensor mean =
      tensor::MulScalar(sum, 1.0f / static_cast<float>(losses.size()));
  stats->ke_loss += mean.item();
  return mean;
}

void ReTrainer::TasksForStep(int step, bool* run_mask, bool* run_ke) const {
  switch (options_.strategy) {
    case TrainingStrategy::kStl:
      *run_mask = true;
      *run_ke = false;
      return;
    case TrainingStrategy::kPmtl:
      *run_mask = true;
      *run_ke = true;
      return;
    case TrainingStrategy::kImtl: {
      // Table II schedule, proportionally scaled: stage 1 (first 40%) only
      // mask reconstruction; stage 2 (40-80%) mostly KE with interleaved
      // mask steps (1:4); stage 3 (last 20%) interleaved 1:2.
      const double progress = static_cast<double>(step) /
                              static_cast<double>(options_.total_steps);
      if (progress < 0.4) {
        *run_mask = true;
        *run_ke = false;
      } else if (progress < 0.8) {
        *run_mask = (step % 5 == 0);
        *run_ke = !*run_mask;
      } else {
        *run_mask = (step % 3 == 0);
        *run_ke = !*run_mask;
      }
      return;
    }
  }
}

std::vector<ReTrainStats> ReTrainer::Train(const ReTrainData& data,
                                           Rng& rng) {
  obs::Span retrain_span("train/retrain");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram& step_ms = registry.GetHistogram("retrain/step_ms");
  obs::Counter& mask_steps = registry.GetCounter("retrain/mask_steps");
  obs::Counter& ke_steps = registry.GetCounter("retrain/ke_steps");
  TELEKIT_LOG(INFO) << "retrain start"
                    << obs::F("steps", options_.total_steps)
                    << obs::F("strategy", static_cast<int>(options_.strategy))
                    << obs::F("machine_logs", data.machine_logs.size())
                    << obs::F("ke_triples", data.ke_triples.size());
  tensor::Adam optimizer(options_.learning_rate);
  optimizer.AddParameters(TensorsOf(model_.Parameters()));
  std::vector<ReTrainStats> history;
  history.reserve(static_cast<size_t>(options_.total_steps));
  for (int step = 0; step < options_.total_steps; ++step) {
    obs::ScopedTimer step_timer(step_ms);
    bool run_mask = false, run_ke = false;
    TasksForStep(step, &run_mask, &run_ke);
    if (run_mask) mask_steps.Increment();
    if (run_ke) ke_steps.Increment();
    ReTrainStats stats;
    stats.ran_mask_task = run_mask;
    stats.ran_ke_task = run_ke;
    optimizer.ZeroGrad();
    Tensor total;
    if (run_mask) {
      Tensor mask = MaskNumericLoss(data, rng, &stats);
      if (mask.defined()) total = mask;
    }
    if (run_ke) {
      Tensor ke = KeLoss(data, rng, &stats);
      if (ke.defined()) {
        ke = tensor::MulScalar(ke, options_.ke_loss_weight);
        total = total.defined() ? tensor::Add(total, ke) : ke;
      }
    }
    if (total.defined()) {
      stats.total_loss = total.item();
      total.Backward();
      optimizer.ClipGradNorm(options_.clip_norm);
      optimizer.Step();
    }
    history.push_back(stats);
    if ((step + 1) % 100 == 0 || step + 1 == options_.total_steps) {
      TELEKIT_LOG(INFO) << "retrain step" << obs::F("step", step + 1)
                        << obs::F("total_loss", stats.total_loss)
                        << obs::F("mask_loss", stats.mask_loss)
                        << obs::F("ke_loss", stats.ke_loss)
                        << obs::F("ran_mask", stats.ran_mask_task)
                        << obs::F("ran_ke", stats.ran_ke_task);
    }
  }
  registry.GetGauge("retrain/final_loss")
      .Set(history.empty() ? 0.0
                           : static_cast<double>(history.back().total_loss));
  TELEKIT_LOG(INFO) << "retrain done" << obs::F("steps", options_.total_steps)
                    << obs::F("mask_steps", mask_steps.value())
                    << obs::F("ke_steps", ke_steps.value());
  return history;
}

}  // namespace core
}  // namespace telekit

#include "core/model_zoo.h"

#include <cstdlib>
#include <filesystem>

#include "common/check.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/signaling.h"
#include "synth/task_data.h"
#include "tensor/serialize.h"
#include "text/prompt.h"

namespace telekit {
namespace core {

std::string ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRandom:
      return "Random";
    case ModelKind::kWordEmbedding:
      return "Word Embeddings";
    case ModelKind::kMacBert:
      return "MacBERT";
    case ModelKind::kTeleBert:
      return "TeleBERT";
    case ModelKind::kKTeleBertStl:
      return "KTeleBERT-STL";
    case ModelKind::kKTeleBertStlNoAnEnc:
      return "w/o ANEnc";
    case ModelKind::kKTeleBertPmtl:
      return "KTeleBERT-PMTL";
    case ModelKind::kKTeleBertImtl:
      return "KTeleBERT-IMTL";
  }
  return "?";
}

std::vector<ModelKind> AllModelKinds() {
  return {ModelKind::kRandom,          ModelKind::kWordEmbedding,
          ModelKind::kMacBert,         ModelKind::kTeleBert,
          ModelKind::kKTeleBertStl,    ModelKind::kKTeleBertStlNoAnEnc,
          ModelKind::kKTeleBertPmtl,   ModelKind::kKTeleBertImtl};
}

ModelZoo::ModelZoo(const ZooConfig& config) : config_(config) {
  const char* env_cache = std::getenv("TELEKIT_CACHE");
  if (env_cache != nullptr) config_.cache_dir = env_cache;
}

std::string ModelZoo::CachePath(const std::string& name) const {
  if (config_.cache_dir.empty()) return "";
  return config_.cache_dir + "/" + name + ".tkt";
}

void ModelZoo::BuildData() {
  std::lock_guard<std::mutex> lock(build_mutex_);
  BuildDataLocked();
}

void ModelZoo::BuildPretrained() {
  std::lock_guard<std::mutex> lock(build_mutex_);
  BuildPretrainedLocked();
}

void ModelZoo::Build() {
  std::lock_guard<std::mutex> lock(build_mutex_);
  BuildLocked();
}

void ModelZoo::BuildDataLocked() {
  if (world_ != nullptr) return;
  BuildDataStack();
  BuildReTrainData();
}

void ModelZoo::BuildPretrainedLocked() {
  BuildDataLocked();
  if (telebert_ != nullptr) return;
  BuildPretrainedModels();
}

void ModelZoo::BuildLocked() {
  if (built_) return;
  BuildPretrainedLocked();
  BuildKTeleBertVariant(ModelKind::kKTeleBertStl);
  BuildKTeleBertVariant(ModelKind::kKTeleBertStlNoAnEnc);
  BuildKTeleBertVariant(ModelKind::kKTeleBertPmtl);
  BuildKTeleBertVariant(ModelKind::kKTeleBertImtl);

  random_encoder_ = std::make_unique<RandomEncoder>(
      config_.encoder.d_model, config_.seed ^ 0xABCDULL);
  word_encoder_ = std::make_unique<WordAveragingEncoder>(
      config_.encoder.d_model, config_.seed ^ 0x1234ULL);
  macbert_encoder_ = std::make_unique<TeleBertEncoder>(macbert_.get());
  telebert_encoder_ = std::make_unique<TeleBertEncoder>(telebert_.get());
  stl_encoder_ = std::make_unique<KTeleBertEncoder>(stl_.model.get());
  stl_no_anenc_encoder_ =
      std::make_unique<KTeleBertEncoder>(stl_no_anenc_.model.get());
  pmtl_encoder_ = std::make_unique<KTeleBertEncoder>(pmtl_.model.get());
  imtl_encoder_ = std::make_unique<KTeleBertEncoder>(imtl_.model.get());
  built_ = true;
}

void ModelZoo::BuildDataStack() {
  TELEKIT_SPAN("zoo/build_data");
  world_ = std::make_unique<synth::WorldModel>(config_.world);
  logs_ = std::make_unique<synth::LogGenerator>(*world_, config_.log);

  Rng corpus_rng(config_.seed);
  synth::CorpusGenerator corpus_gen(*world_, config_.corpus);
  tele_corpus_ = corpus_gen.GenerateTeleCorpus(corpus_rng);
  general_corpus_ = corpus_gen.GenerateGeneralCorpus(corpus_rng);

  // One shared tokenizer so every model speaks the same vocabulary: built
  // over both corpora plus every surface the tasks will ever encode.
  {
    TELEKIT_SPAN("tokenize/build_vocab");
    tokenizer_ = std::make_unique<text::Tokenizer>(config_.tokenizer);
    std::vector<std::string> vocab_corpus = tele_corpus_;
    vocab_corpus.insert(vocab_corpus.end(), general_corpus_.begin(),
                        general_corpus_.end());
    for (const synth::AlarmType& alarm : world_->alarms()) {
      vocab_corpus.push_back(alarm.name);
    }
    for (const synth::KpiType& kpi : world_->kpis()) {
      vocab_corpus.push_back(kpi.name);
    }
    for (const synth::NetworkElement& element : world_->elements()) {
      vocab_corpus.push_back(element.name);
    }
    tokenizer_->BuildVocab(vocab_corpus);
    tokenizer_->AddDomainPhrases(world_->DomainPhrases());
    tokenizer_->AddSpecialTeleTokens(config_.num_tele_tokens);
    TELEKIT_LOG(INFO) << "tokenizer ready"
                      << obs::F("vocab", tokenizer_->vocab().size())
                      << obs::F("sentences", vocab_corpus.size());
  }

  // Episodes drive the KG's observed attributes and the machine-log corpus.
  Rng episode_rng(config_.seed ^ 0x5EED5ULL);
  episodes_ = logs_->SimulateMany(config_.num_episodes, episode_rng);
  store_ = synth::KgGenerator().Generate(*world_, episodes_);

  // Normalizer: fit per-tag ranges on everything numeric the models see.
  for (const synth::Episode& episode : episodes_) {
    for (const synth::KpiReading& reading : episode.readings) {
      normalizer_.Observe(
          world_->kpis()[static_cast<size_t>(reading.kpi_type)].name,
          reading.value);
    }
  }
  for (const kg::NumericAttribute& attr : store_.numeric_attributes()) {
    normalizer_.Observe(attr.attribute, attr.value);
  }

  // TGC tag vocabulary: KPI names first, then attribute tag names.
  for (const synth::KpiType& kpi : world_->kpis()) {
    tag_vocab_.push_back(kpi.name);
  }
  tag_vocab_.push_back("baseline level");
  tag_vocab_.push_back("excursion scale");
  tag_vocab_.push_back("occurrence count");

  config_.encoder.vocab_size = tokenizer_->vocab().size();
  config_.encoder.max_len = config_.tokenizer.max_len;
  config_.anenc.d_model = config_.encoder.d_model;
}

void ModelZoo::BuildPretrainedModels() {
  auto encode_corpus = [&](const std::vector<std::string>& corpus) {
    TELEKIT_SPAN("tokenize/corpus");
    std::vector<text::EncodedInput> encoded;
    encoded.reserve(corpus.size());
    for (const std::string& sentence : corpus) {
      encoded.push_back(tokenizer_->EncodeSentence(sentence));
    }
    return encoded;
  };

  if (!config_.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.cache_dir, ec);
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter& cache_hits = registry.GetCounter("zoo/cache_hits");
  obs::Counter& cache_misses = registry.GetCounter("zoo/cache_misses");
  obs::Histogram& restore_ms = registry.GetHistogram("zoo/restore_ms");
  obs::Histogram& train_ms = registry.GetHistogram("zoo/train_ms");

  // The "train/<model>" span covers acquiring the model — restore on a
  // cache hit, full pre-training on a miss — so traces always show the
  // stage even when checkpoints short-circuit the work.
  auto build = [&](const std::string& cache_name,
                   const std::vector<std::string>& corpus, uint64_t seed) {
    obs::Span span("train/" + cache_name);
    Rng rng(seed);
    auto model = std::make_unique<TeleBert>(config_.encoder, rng);
    const std::string path = CachePath(cache_name);
    if (!path.empty()) {
      obs::ScopedTimer timer(restore_ms);
      auto loaded = tensor::LoadTensorMap(path);
      if (loaded.ok() && model->Restore(*loaded).ok()) {
        cache_hits.Increment();
        TELEKIT_LOG(INFO) << "restored from cache"
                          << obs::F("model", cache_name)
                          << obs::F("path", path);
        return model;
      }
    }
    cache_misses.Increment();
    TELEKIT_LOG(INFO) << "cache miss, pre-training"
                      << obs::F("model", cache_name);
    obs::ScopedTimer timer(train_ms);
    Rng train_rng(seed ^ 0x7A17ULL);
    model->Pretrain(encode_corpus(corpus), tokenizer_->vocab(),
                    config_.pretrain, train_rng);
    if (!path.empty()) {
      tensor::SaveTensorMap(model->Checkpoint(), path);
    }
    return model;
  };
  telebert_ = build("telebert", tele_corpus_, config_.seed ^ 0x1111ULL);
  macbert_ = build("macbert", general_corpus_, config_.seed ^ 0x2222ULL);
}

void ModelZoo::BuildReTrainData() {
  TELEKIT_SPAN("zoo/build_retrain_data");
  ReTrainData& data = retrain_data_;
  // Causal sentences (Sec. IV-A1 extraction).
  for (const std::string& sentence :
       synth::CorpusGenerator::ExtractCausalSentences(
           tele_corpus_, config_.corpus.min_causal_words)) {
    data.causal_sentences.push_back(tokenizer_->EncodeSentence(sentence));
  }

  // Serialized triples (implicit injection): relational triples rendered
  // through the prompt templates.
  Rng triple_rng(config_.seed ^ 0x3333ULL);
  const auto& triples = store_.triples();
  for (int i = 0; i < config_.max_triple_sentences &&
                  i < static_cast<int>(triples.size());
       ++i) {
    const kg::Triple& t =
        triples[static_cast<size_t>(triple_rng.UniformInt(triples.size()))];
    data.triple_sentences.push_back(tokenizer_->Encode(
        text::PromptBuilder()
            .Entity(store_.EntitySurface(t.head))
            .Relation(store_.RelationSurface(t.relation))
            .Entity(store_.EntitySurface(t.tail))
            .Build()));
  }

  // Machine-log prompts with numeric slots.
  auto tag_label = [&](const std::string& tag) {
    for (size_t i = 0; i < tag_vocab_.size(); ++i) {
      if (tag_vocab_[i] == tag) return static_cast<int>(i);
    }
    return -1;
  };
  Rng log_rng(config_.seed ^ 0x4444ULL);
  for (const synth::Episode& episode : episodes_) {
    for (const synth::KpiReading& reading : episode.readings) {
      if (static_cast<int>(data.machine_logs.size()) >=
          config_.max_machine_logs) {
        break;
      }
      const synth::KpiType& kpi =
          world_->kpis()[static_cast<size_t>(reading.kpi_type)];
      const synth::NetworkElement& element =
          world_->elements()[static_cast<size_t>(reading.element)];
      text::PromptBuilder builder;
      builder.Kpi(kpi.name, normalizer_.Normalize(kpi.name, reading.value));
      builder.Location(element.name);
      data.machine_logs.push_back(tokenizer_->Encode(builder.Build()));
      data.machine_log_tags.push_back(tag_label(kpi.name));
    }
    for (const synth::AlarmEvent& event : episode.events) {
      if (static_cast<int>(data.machine_logs.size()) >=
          config_.max_machine_logs) {
        break;
      }
      const synth::AlarmType& alarm =
          world_->alarms()[static_cast<size_t>(event.alarm_type)];
      const synth::NetworkElement& element =
          world_->elements()[static_cast<size_t>(event.element)];
      text::PromptBuilder builder;
      builder.Alarm(alarm.name)
          .Attribute("severity", alarm.severity)
          .Location(element.name)
          .NumericAttribute(
              "occurrence count",
              normalizer_.Normalize("occurrence count", 1.0f));
      data.machine_logs.push_back(tokenizer_->Encode(builder.Build()));
      data.machine_log_tags.push_back(tag_label("occurrence count"));
    }
  }

  // Extension: signaling-flow records as additional machine-log text
  // (future work in the paper; off by default).
  if (config_.include_signaling_flows) {
    synth::SignalingFlowGenerator signaling(*world_,
                                            synth::SignalingConfig{});
    Rng signaling_rng(config_.seed ^ 0x9999ULL);
    int added = 0;
    while (added < config_.max_signaling_records) {
      for (const synth::SignalingRecord& record :
           signaling.SimulateProcedure(signaling_rng)) {
        if (added >= config_.max_signaling_records) break;
        data.machine_logs.push_back(
            tokenizer_->Encode(signaling.ToPrompt(record)));
        data.machine_log_tags.push_back(-1);  // no numeric tag
        ++added;
      }
    }
  }

  // KE triples (explicit injection) + entity prompt table.
  for (int e = 0; e < store_.num_entities(); ++e) {
    data.entity_inputs.push_back(tokenizer_->Encode(
        text::PromptBuilder().Entity(store_.EntitySurface(e)).Build()));
  }
  Rng ke_rng(config_.seed ^ 0x5555ULL);
  auto add_ke_triple = [&](const kg::Triple& t) {
    KeTriple ke;
    ke.head = data.entity_inputs[static_cast<size_t>(t.head)];
    ke.relation = tokenizer_->Encode(
        text::PromptBuilder()
            .Relation(store_.RelationSurface(t.relation))
            .Build());
    ke.tail = data.entity_inputs[static_cast<size_t>(t.tail)];
    ke.head_id = t.head;
    ke.tail_id = t.tail;
    data.ke_triples.push_back(std::move(ke));
  };
  // Expert causal knowledge first: every trigger/affects quadruple is a KE
  // training fact (this is the knowledge the fault-analysis tasks need).
  for (const kg::Quadruple& q : store_.quadruples()) {
    if (static_cast<int>(data.ke_triples.size()) >= config_.max_ke_triples) {
      break;
    }
    add_ke_triple({q.head, q.relation, q.tail});
  }
  // Fill the remainder with a sample of the other relational triples.
  while (static_cast<int>(data.ke_triples.size()) < config_.max_ke_triples &&
         !triples.empty() &&
         static_cast<int>(data.ke_triples.size()) <
             static_cast<int>(triples.size())) {
    add_ke_triple(
        triples[static_cast<size_t>(ke_rng.UniformInt(triples.size()))]);
  }
}

KTeleBertConfig ModelZoo::MakeKtbConfig(bool use_anenc) const {
  KTeleBertConfig ktb;
  ktb.encoder = config_.encoder;
  ktb.anenc = config_.anenc;
  ktb.use_anenc = use_anenc;
  ktb.num_tags = static_cast<int>(tag_vocab_.size());
  return ktb;
}

void ModelZoo::BuildKTeleBertVariant(ModelKind kind) {
  Variant* variant = nullptr;
  std::string cache_name;
  ReTrainOptions options = config_.retrain;
  bool use_anenc = true;
  switch (kind) {
    case ModelKind::kKTeleBertStl:
      variant = &stl_;
      cache_name = "ktb_stl";
      options.strategy = TrainingStrategy::kStl;
      break;
    case ModelKind::kKTeleBertStlNoAnEnc:
      variant = &stl_no_anenc_;
      cache_name = "ktb_stl_noanenc";
      options.strategy = TrainingStrategy::kStl;
      use_anenc = false;
      break;
    case ModelKind::kKTeleBertPmtl:
      variant = &pmtl_;
      cache_name = "ktb_pmtl";
      options.strategy = TrainingStrategy::kPmtl;
      break;
    case ModelKind::kKTeleBertImtl:
      variant = &imtl_;
      cache_name = "ktb_imtl";
      options.strategy = TrainingStrategy::kImtl;
      break;
    default:
      TELEKIT_CHECK(false) << "not a KTeleBERT variant";
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Span span("train/" + cache_name);
  Rng rng(config_.seed ^ (0x6000ULL + static_cast<uint64_t>(kind)));
  variant->model = std::make_unique<KTeleBert>(MakeKtbConfig(use_anenc), rng);
  const std::string path = CachePath(cache_name);
  if (!path.empty()) {
    obs::ScopedTimer timer(registry.GetHistogram("zoo/restore_ms"));
    auto loaded = tensor::LoadTensorMap(path);
    if (loaded.ok() && variant->model->Restore(*loaded).ok()) {
      variant->cached = true;
      registry.GetCounter("zoo/cache_hits").Increment();
      TELEKIT_LOG(INFO) << "restored from cache" << obs::F("model", cache_name)
                        << obs::F("path", path);
      return;
    }
  }
  registry.GetCounter("zoo/cache_misses").Increment();
  TELEKIT_LOG(INFO) << "cache miss, re-training"
                    << obs::F("model", cache_name);
  obs::ScopedTimer timer(registry.GetHistogram("zoo/train_ms"));
  TELEKIT_CHECK(variant->model->InitializeFromTeleBert(*telebert_).ok());
  ReTrainer trainer(*variant->model, options);
  Rng train_rng(config_.seed ^ (0x7000ULL + static_cast<uint64_t>(kind)));
  variant->history = trainer.Train(retrain_data_, train_rng);
  if (!path.empty()) {
    tensor::SaveTensorMap(variant->model->Checkpoint(), path);
  }
}

const KTeleBert& ModelZoo::ktelebert(ModelKind kind) const {
  switch (kind) {
    case ModelKind::kKTeleBertStl:
      return *stl_.model;
    case ModelKind::kKTeleBertStlNoAnEnc:
      return *stl_no_anenc_.model;
    case ModelKind::kKTeleBertPmtl:
      return *pmtl_.model;
    case ModelKind::kKTeleBertImtl:
      return *imtl_.model;
    default:
      TELEKIT_CHECK(false) << "not a KTeleBERT variant";
  }
  return *stl_.model;
}

const TextEncoder& ModelZoo::Encoder(ModelKind kind) const {
  TELEKIT_CHECK(built_) << "call Build() first";
  switch (kind) {
    case ModelKind::kRandom:
      return *random_encoder_;
    case ModelKind::kWordEmbedding:
      return *word_encoder_;
    case ModelKind::kMacBert:
      return *macbert_encoder_;
    case ModelKind::kTeleBert:
      return *telebert_encoder_;
    case ModelKind::kKTeleBertStl:
      return *stl_encoder_;
    case ModelKind::kKTeleBertStlNoAnEnc:
      return *stl_no_anenc_encoder_;
    case ModelKind::kKTeleBertPmtl:
      return *pmtl_encoder_;
    case ModelKind::kKTeleBertImtl:
      return *imtl_encoder_;
  }
  return *random_encoder_;
}

ServiceEncoder ModelZoo::MakeServiceEncoder(ModelKind kind) const {
  return ServiceEncoder(&Encoder(kind), tokenizer_.get(), &store_,
                        &normalizer_);
}

const std::vector<ReTrainStats>& ModelZoo::RetrainHistory(
    ModelKind kind) const {
  switch (kind) {
    case ModelKind::kKTeleBertStl:
      return stl_.history;
    case ModelKind::kKTeleBertStlNoAnEnc:
      return stl_no_anenc_.history;
    case ModelKind::kKTeleBertPmtl:
      return pmtl_.history;
    case ModelKind::kKTeleBertImtl:
      return imtl_.history;
    default:
      TELEKIT_CHECK(false) << "no retrain history for this kind";
  }
  return stl_.history;
}

bool ModelZoo::WasCached(ModelKind kind) const {
  switch (kind) {
    case ModelKind::kKTeleBertStl:
      return stl_.cached;
    case ModelKind::kKTeleBertStlNoAnEnc:
      return stl_no_anenc_.cached;
    case ModelKind::kKTeleBertPmtl:
      return pmtl_.cached;
    case ModelKind::kKTeleBertImtl:
      return imtl_.cached;
    default:
      return false;
  }
}

}  // namespace core
}  // namespace telekit

#include "core/anenc.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "tensor/ops.h"

namespace telekit {
namespace core {

using tensor::Tensor;

// --- AnEnc::Layer -------------------------------------------------------------

AnEnc::Layer::Layer(const AnEncConfig& config, Rng& rng)
    : meta(Tensor::Randn({config.num_meta, config.d_model / config.num_meta},
                         rng, 0.1f, true)),
      query(Tensor::GlorotUniform(config.d_model,
                                  config.d_model / config.num_meta, rng,
                                  true)),
      ffn_in(config.d_model, config.ffn_dim, rng),
      ffn_out(config.ffn_dim, config.d_model, rng),
      lora_down(Tensor::Randn({config.d_model, config.lora_rank}, rng, 0.02f,
                              true)),
      lora_up(Tensor::Zeros({config.lora_rank, config.d_model}, true)),
      norm(config.d_model) {
  value_transforms.reserve(static_cast<size_t>(config.num_meta));
  for (int i = 0; i < config.num_meta; ++i) {
    // Near-orthogonal initialization: identity plus small noise, matching
    // the orthogonal regularizer's fixed point.
    Tensor w = Tensor::Eye(config.d_model, true);
    for (float& v : w.mutable_data()) {
      v += static_cast<float>(rng.Normal(0.0, 0.01));
    }
    value_transforms.push_back(w);
  }
}

Tensor AnEnc::Layer::Forward(const Tensor& tag_embedding, const Tensor& x,
                             float lora_alpha, int num_meta) const {
  // Attention over meta domains (Eq. 1): q = t Wq; scores over E rows.
  const int sub_dim = meta.dim(1);
  Tensor q = tensor::MatMul(tag_embedding, query);  // [1, d/N]
  Tensor logits = tensor::MulScalar(
      tensor::MatMul(q, tensor::Transpose(meta)),
      1.0f / std::sqrt(static_cast<float>(sub_dim)));  // [1, N]
  Tensor attn = tensor::Softmax(logits);

  // V = stacked per-domain transformations of x (Eq. 2): [N, d].
  std::vector<Tensor> projected;
  projected.reserve(static_cast<size_t>(num_meta));
  for (const Tensor& w : value_transforms) {
    projected.push_back(tensor::MatMul(x, w));
  }
  Tensor v = tensor::ConcatRows(projected);  // [N, d]
  Tensor h_hat = tensor::MatMul(attn, v);    // [1, d]

  // FFN sublayer with LoRA low-rank residual from x (Eq. 4).
  Tensor ffn = ffn_out.Forward(tensor::Gelu(ffn_in.Forward(h_hat)));
  Tensor lora = tensor::MulScalar(
      tensor::MatMul(tensor::MatMul(x, lora_down), lora_up), lora_alpha);
  return norm.Forward(tensor::Add(ffn, lora));
}

NamedParams AnEnc::Layer::Parameters() const {
  NamedParams out;
  out.emplace_back("meta", meta);
  out.emplace_back("query", query);
  for (size_t i = 0; i < value_transforms.size(); ++i) {
    out.emplace_back("wv" + std::to_string(i), value_transforms[i]);
  }
  AppendWithPrefix("ffn_in", ffn_in.Parameters(), &out);
  AppendWithPrefix("ffn_out", ffn_out.Parameters(), &out);
  out.emplace_back("lora_down", lora_down);
  out.emplace_back("lora_up", lora_up);
  AppendWithPrefix("norm", norm.Parameters(), &out);
  return out;
}

// --- AnEnc ----------------------------------------------------------------------

AnEnc::AnEnc(const AnEncConfig& config, Rng& rng)
    : config_(config),
      value_fc_(Tensor::Randn({1, config.d_model}, rng, 0.5f, true)) {
  TELEKIT_CHECK_EQ(config.d_model % config.num_meta, 0)
      << "num_meta must divide d_model";
  TELEKIT_CHECK_GE(config.lora_alpha, 1.0f);
  layers_.reserve(static_cast<size_t>(config.num_layers));
  for (int l = 0; l < config.num_layers; ++l) {
    layers_.emplace_back(config, rng);
  }
}

Tensor AnEnc::LiftValue(float value) const {
  // Eq. 3 (l = 1): x = ACT_FN(v * W_fc).
  Tensor v = Tensor::FromData({1, 1}, {value});
  return tensor::Gelu(tensor::MatMul(v, value_fc_));
}

Tensor AnEnc::Forward(const Tensor& tag_embedding, float value) const {
  TELEKIT_CHECK_EQ(tag_embedding.rank(), 2);
  TELEKIT_CHECK_EQ(tag_embedding.dim(0), 1);
  TELEKIT_CHECK_EQ(tag_embedding.dim(1), config_.d_model);
  Tensor x = LiftValue(value);
  for (const Layer& layer : layers_) {
    x = layer.Forward(tag_embedding, x, config_.lora_alpha, config_.num_meta);
  }
  return x;
}

std::vector<float> AnEnc::MetaAttention(const Tensor& tag_embedding) const {
  const Layer& layer = layers_.front();
  Tensor q = tensor::MatMul(tag_embedding, layer.query);
  Tensor logits = tensor::MulScalar(
      tensor::MatMul(q, tensor::Transpose(layer.meta)),
      1.0f / std::sqrt(static_cast<float>(layer.meta.dim(1))));
  Tensor attn = tensor::Softmax(logits);
  return attn.data();
}

Tensor AnEnc::OrthogonalPenalty() const {
  Tensor total = Tensor::Scalar(0.0f);
  const Tensor eye = Tensor::Eye(config_.d_model);
  for (const Layer& layer : layers_) {
    for (const Tensor& w : layer.value_transforms) {
      Tensor gram = tensor::MatMul(tensor::Transpose(w), w);
      total = tensor::Add(total,
                          tensor::Sum(tensor::Square(tensor::Sub(eye, gram))));
    }
  }
  return total;
}

NamedParams AnEnc::Parameters() const {
  NamedParams out;
  out.emplace_back("value_fc", value_fc_);
  for (size_t l = 0; l < layers_.size(); ++l) {
    AppendWithPrefix("layer" + std::to_string(l), layers_[l].Parameters(),
                     &out);
  }
  return out;
}

// --- NumericDecoder ----------------------------------------------------------------

NumericDecoder::NumericDecoder(int d_model, Rng& rng)
    : hidden_(d_model, d_model / 2, rng), out_(d_model / 2, 1, rng) {}

Tensor NumericDecoder::Forward(const Tensor& hidden) const {
  return tensor::Reshape(out_.Forward(tensor::Gelu(hidden_.Forward(hidden))),
                         {1});
}

NamedParams NumericDecoder::Parameters() const {
  NamedParams out;
  AppendWithPrefix("hidden", hidden_.Parameters(), &out);
  AppendWithPrefix("out", out_.Parameters(), &out);
  return out;
}

// --- TagClassifier -------------------------------------------------------------------

TagClassifier::TagClassifier(int d_model, int num_tags, Rng& rng)
    : classifier_(d_model, num_tags, rng) {}

Tensor TagClassifier::Forward(const Tensor& h) const {
  return classifier_.Forward(h);
}

NamedParams TagClassifier::Parameters() const {
  NamedParams out;
  AppendWithPrefix("linear", classifier_.Parameters(), &out);
  return out;
}

// --- AutoWeightedLoss ----------------------------------------------------------------

AutoWeightedLoss::AutoWeightedLoss(int num_tasks) {
  TELEKIT_CHECK_GT(num_tasks, 0);
  for (int i = 0; i < num_tasks; ++i) {
    mu_.push_back(Tensor::Scalar(1.0f, /*requires_grad=*/true));
  }
}

Tensor AutoWeightedLoss::Combine(const std::vector<Tensor>& losses) const {
  TELEKIT_CHECK_EQ(losses.size(), mu_.size());
  Tensor total = Tensor::Scalar(0.0f);
  for (size_t i = 0; i < losses.size(); ++i) {
    if (!losses[i].defined()) continue;
    Tensor mu_sq = tensor::Square(mu_[i]);
    // 0.5 * L_i / mu_i^2 + log(1 + mu_i^2); epsilon keeps the division
    // finite if mu collapses toward zero.
    Tensor weighted = tensor::MulScalar(
        tensor::Div(losses[i], tensor::AddScalar(mu_sq, 1e-4f)), 0.5f);
    Tensor regularizer = tensor::Log(tensor::AddScalar(mu_sq, 1.0f));
    total = tensor::Add(total, tensor::Add(weighted, regularizer));
  }
  return total;
}

std::vector<float> AutoWeightedLoss::Weights() const {
  std::vector<float> out;
  for (const Tensor& mu : mu_) out.push_back(mu.item());
  return out;
}

NamedParams AutoWeightedLoss::Parameters() const {
  NamedParams out;
  for (size_t i = 0; i < mu_.size(); ++i) {
    out.emplace_back("mu" + std::to_string(i), mu_[i]);
  }
  return out;
}

// --- NumericContrastiveLoss ---------------------------------------------------------

Tensor NumericContrastiveLoss(const std::vector<Tensor>& embeddings,
                              const std::vector<float>& values, float tau) {
  const int batch = static_cast<int>(embeddings.size());
  TELEKIT_CHECK_EQ(values.size(), embeddings.size());
  TELEKIT_CHECK_GE(batch, 3) << "contrastive loss needs >= 3 samples";
  // Positive index: the other sample with the closest value (Eq. 7).
  std::vector<int> positives(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    float best = std::numeric_limits<float>::infinity();
    int best_j = (i + 1) % batch;
    for (int j = 0; j < batch; ++j) {
      if (j == i) continue;
      const float gap = std::fabs(values[static_cast<size_t>(i)] -
                                  values[static_cast<size_t>(j)]);
      if (gap < best) {
        best = gap;
        best_j = j;
      }
    }
    positives[static_cast<size_t>(i)] = best_j;
  }
  // Cosine similarity matrix with the diagonal suppressed.
  Tensor stacked = tensor::L2NormalizeRows(tensor::ConcatRows(embeddings));
  Tensor sims = tensor::MulScalar(
      tensor::MatMul(stacked, tensor::Transpose(stacked)), 1.0f / tau);
  std::vector<float> diag_mask(static_cast<size_t>(batch) * batch, 0.0f);
  for (int i = 0; i < batch; ++i) {
    diag_mask[static_cast<size_t>(i) * batch + i] = -1e9f;
  }
  sims = tensor::Add(sims, Tensor::FromData({batch, batch}, diag_mask));
  return tensor::CrossEntropyWithLogits(sims, positives);
}

}  // namespace core
}  // namespace telekit

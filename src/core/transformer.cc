#include "core/transformer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace telekit {
namespace core {

using tensor::Tensor;

void AppendWithPrefix(const std::string& prefix, const NamedParams& params,
                      NamedParams* out) {
  for (const auto& [name, t] : params) {
    out->emplace_back(prefix + "." + name, t);
  }
}

tensor::TensorMap ToTensorMap(const NamedParams& params) {
  tensor::TensorMap map;
  for (const auto& [name, t] : params) {
    TELEKIT_CHECK(map.emplace(name, t).second)
        << "duplicate parameter name " << name;
  }
  return map;
}

std::vector<Tensor> TensorsOf(const NamedParams& params) {
  std::vector<Tensor> out;
  out.reserve(params.size());
  for (const auto& [name, t] : params) out.push_back(t);
  return out;
}

// --- LinearLayer -------------------------------------------------------------

LinearLayer::LinearLayer(int in_dim, int out_dim, Rng& rng)
    : weight_(Tensor::GlorotUniform(in_dim, out_dim, rng, true)),
      bias_(Tensor::Zeros({out_dim}, true)) {}

Tensor LinearLayer::Forward(const Tensor& x) const {
  return tensor::Add(tensor::MatMul(x, weight_), bias_);
}

NamedParams LinearLayer::Parameters() const {
  return {{"weight", weight_}, {"bias", bias_}};
}

// --- LayerNormParams ---------------------------------------------------------

LayerNormParams::LayerNormParams(int dim)
    : gain_(Tensor::Ones({dim}, true)), bias_(Tensor::Zeros({dim}, true)) {}

Tensor LayerNormParams::Forward(const Tensor& x) const {
  return tensor::LayerNorm(x, gain_, bias_);
}

NamedParams LayerNormParams::Parameters() const {
  return {{"gain", gain_}, {"bias", bias_}};
}

// --- MultiHeadSelfAttention -----------------------------------------------------

MultiHeadSelfAttention::MultiHeadSelfAttention(int d_model, int num_heads,
                                               Rng& rng)
    : num_heads_(num_heads),
      head_dim_(d_model / num_heads),
      query_(d_model, d_model, rng),
      key_(d_model, d_model, rng),
      value_(d_model, d_model, rng),
      output_(d_model, d_model, rng) {
  TELEKIT_CHECK_EQ(head_dim_ * num_heads, d_model)
      << "d_model must be divisible by num_heads";
}

Tensor MultiHeadSelfAttention::Forward(const Tensor& x) const {
  const Tensor q = query_.Forward(x);
  const Tensor k = key_.Forward(x);
  const Tensor v = value_.Forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> heads;
  heads.reserve(static_cast<size_t>(num_heads_));
  for (int h = 0; h < num_heads_; ++h) {
    const int start = h * head_dim_;
    const Tensor qh = tensor::SliceCols(q, start, head_dim_);
    const Tensor kh = tensor::SliceCols(k, start, head_dim_);
    const Tensor vh = tensor::SliceCols(v, start, head_dim_);
    Tensor scores =
        tensor::MulScalar(tensor::MatMul(qh, tensor::Transpose(kh)), scale);
    heads.push_back(tensor::MatMul(tensor::Softmax(scores), vh));
  }
  return output_.Forward(tensor::ConcatCols(heads));
}

Tensor MultiHeadSelfAttention::ForwardBatch(const Tensor& x,
                                            const BatchOffsets& offsets) const {
  TELEKIT_CHECK_GE(offsets.size(), 2u);
  TELEKIT_CHECK_EQ(offsets.back(), x.dim(0));
  // The projections are the expensive part; run them once over the whole
  // ragged stack instead of once per sequence.
  const Tensor q = query_.Forward(x);
  const Tensor k = key_.Forward(x);
  const Tensor v = value_.Forward(x);
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  std::vector<Tensor> sequences;
  sequences.reserve(offsets.size() - 1);
  for (size_t s = 0; s + 1 < offsets.size(); ++s) {
    const int start = offsets[s];
    const int len = offsets[s + 1] - start;
    const Tensor qs = tensor::SliceRows(q, start, len);
    const Tensor ks = tensor::SliceRows(k, start, len);
    const Tensor vs = tensor::SliceRows(v, start, len);
    std::vector<Tensor> heads;
    heads.reserve(static_cast<size_t>(num_heads_));
    for (int h = 0; h < num_heads_; ++h) {
      const int col = h * head_dim_;
      const Tensor qh = tensor::SliceCols(qs, col, head_dim_);
      const Tensor kh = tensor::SliceCols(ks, col, head_dim_);
      const Tensor vh = tensor::SliceCols(vs, col, head_dim_);
      Tensor scores =
          tensor::MulScalar(tensor::MatMul(qh, tensor::Transpose(kh)), scale);
      heads.push_back(tensor::MatMul(tensor::Softmax(scores), vh));
    }
    sequences.push_back(tensor::ConcatCols(heads));
  }
  return output_.Forward(tensor::ConcatRows(sequences));
}

NamedParams MultiHeadSelfAttention::Parameters() const {
  NamedParams out;
  AppendWithPrefix("q", query_.Parameters(), &out);
  AppendWithPrefix("k", key_.Parameters(), &out);
  AppendWithPrefix("v", value_.Parameters(), &out);
  AppendWithPrefix("o", output_.Parameters(), &out);
  return out;
}

// --- TransformerLayer --------------------------------------------------------------

TransformerLayer::TransformerLayer(int d_model, int num_heads, int ffn_dim,
                                   Rng& rng)
    : attention_(d_model, num_heads, rng),
      norm1_(d_model),
      ffn_in_(d_model, ffn_dim, rng),
      ffn_out_(ffn_dim, d_model, rng),
      norm2_(d_model) {}

Tensor TransformerLayer::Forward(const Tensor& x, float dropout, Rng& rng,
                                 bool training) const {
  Tensor attended =
      tensor::Dropout(attention_.Forward(x), dropout, rng, training);
  Tensor h = norm1_.Forward(tensor::Add(x, attended));
  Tensor ffn = ffn_out_.Forward(tensor::Gelu(ffn_in_.Forward(h)));
  ffn = tensor::Dropout(ffn, dropout, rng, training);
  return norm2_.Forward(tensor::Add(h, ffn));
}

Tensor TransformerLayer::ForwardBatch(const Tensor& x,
                                      const BatchOffsets& offsets,
                                      float dropout, Rng& rng,
                                      bool training) const {
  Tensor attended = tensor::Dropout(attention_.ForwardBatch(x, offsets),
                                    dropout, rng, training);
  Tensor h = norm1_.Forward(tensor::Add(x, attended));
  Tensor ffn = ffn_out_.Forward(tensor::Gelu(ffn_in_.Forward(h)));
  ffn = tensor::Dropout(ffn, dropout, rng, training);
  return norm2_.Forward(tensor::Add(h, ffn));
}

NamedParams TransformerLayer::Parameters() const {
  NamedParams out;
  AppendWithPrefix("attn", attention_.Parameters(), &out);
  AppendWithPrefix("norm1", norm1_.Parameters(), &out);
  AppendWithPrefix("ffn_in", ffn_in_.Parameters(), &out);
  AppendWithPrefix("ffn_out", ffn_out_.Parameters(), &out);
  AppendWithPrefix("norm2", norm2_.Parameters(), &out);
  return out;
}

// --- TransformerEncoder ----------------------------------------------------------------

TransformerEncoder::TransformerEncoder(const EncoderConfig& config, Rng& rng)
    : config_(config),
      token_table_(Tensor::Randn({config.vocab_size, config.d_model}, rng,
                                 0.02f, true)),
      position_table_(Tensor::Randn({config.max_len, config.d_model}, rng,
                                    0.02f, true)),
      embed_norm_(config.d_model) {
  TELEKIT_CHECK_GT(config.vocab_size, 0) << "set vocab_size from tokenizer";
  layers_.reserve(static_cast<size_t>(config.num_layers));
  for (int i = 0; i < config.num_layers; ++i) {
    layers_.emplace_back(config.d_model, config.num_heads, config.ffn_dim,
                         rng);
  }
}

Tensor TransformerEncoder::Embed(
    const std::vector<int>& ids, int length,
    const std::vector<std::pair<int, Tensor>>& overrides, Rng& rng,
    bool training) const {
  TELEKIT_CHECK_GT(length, 0);
  TELEKIT_CHECK_LE(length, static_cast<int>(ids.size()));
  TELEKIT_CHECK_LE(length, config_.max_len);
  std::vector<int> prefix(ids.begin(), ids.begin() + length);
  Tensor token_rows = tensor::EmbeddingLookup(token_table_, prefix);
  if (!overrides.empty()) {
    // Rebuild row-by-row with overridden positions substituted.
    std::vector<Tensor> rows;
    rows.reserve(static_cast<size_t>(length));
    for (int i = 0; i < length; ++i) {
      const Tensor* replacement = nullptr;
      for (const auto& [pos, t] : overrides) {
        if (pos == i) {
          replacement = &t;
          break;
        }
      }
      rows.push_back(replacement != nullptr
                         ? *replacement
                         : tensor::SliceRows(token_rows, i, 1));
    }
    token_rows = tensor::ConcatRows(rows);
  }
  Tensor positions = tensor::SliceRows(position_table_, 0, length);
  Tensor embedded = embed_norm_.Forward(tensor::Add(token_rows, positions));
  return tensor::Dropout(embedded, config_.dropout, rng, training);
}

Tensor TransformerEncoder::Encode(const Tensor& embedded, Rng& rng,
                                  bool training) const {
  Tensor h = embedded;
  for (const TransformerLayer& layer : layers_) {
    h = layer.Forward(h, config_.dropout, rng, training);
  }
  return h;
}

Tensor TransformerEncoder::Forward(const std::vector<int>& ids, int length,
                                   Rng& rng, bool training) const {
  return Encode(Embed(ids, length, {}, rng, training), rng, training);
}

Tensor TransformerEncoder::EmbedBatch(
    const std::vector<const std::vector<int>*>& ids,
    const std::vector<int>& lengths,
    const std::vector<const std::vector<std::pair<int, Tensor>>*>& overrides,
    BatchOffsets* offsets, Rng& rng, bool training) const {
  TELEKIT_CHECK(!ids.empty());
  TELEKIT_CHECK_EQ(ids.size(), lengths.size());
  TELEKIT_CHECK(overrides.empty() || overrides.size() == ids.size());
  TELEKIT_CHECK(offsets != nullptr);
  offsets->assign(1, 0);
  std::vector<int> flat_ids;
  std::vector<int> positions;
  // (global row, replacement) pairs, naturally sorted by row.
  std::vector<std::pair<int, const Tensor*>> row_overrides;
  for (size_t i = 0; i < ids.size(); ++i) {
    const int length = lengths[i];
    TELEKIT_CHECK_GT(length, 0);
    TELEKIT_CHECK_LE(length, static_cast<int>(ids[i]->size()));
    TELEKIT_CHECK_LE(length, config_.max_len);
    const int base = offsets->back();
    flat_ids.insert(flat_ids.end(), ids[i]->begin(),
                    ids[i]->begin() + length);
    for (int p = 0; p < length; ++p) positions.push_back(p);
    if (!overrides.empty() && overrides[i] != nullptr) {
      for (const auto& [pos, t] : *overrides[i]) {
        TELEKIT_CHECK_LT(pos, length);
        row_overrides.emplace_back(base + pos, &t);
      }
    }
    offsets->push_back(base + length);
  }
  Tensor token_rows = tensor::EmbeddingLookup(token_table_, flat_ids);
  if (!row_overrides.empty()) {
    // Splice overridden rows in, keeping unbroken runs as single slices.
    std::sort(row_overrides.begin(), row_overrides.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<Tensor> parts;
    int cursor = 0;
    for (const auto& [row, t] : row_overrides) {
      if (row > cursor) {
        parts.push_back(tensor::SliceRows(token_rows, cursor, row - cursor));
      }
      parts.push_back(*t);
      cursor = row + 1;
    }
    const int total = offsets->back();
    if (cursor < total) {
      parts.push_back(tensor::SliceRows(token_rows, cursor, total - cursor));
    }
    token_rows = tensor::ConcatRows(parts);
  }
  Tensor position_rows = tensor::GatherRows(position_table_, positions);
  Tensor embedded =
      embed_norm_.Forward(tensor::Add(token_rows, position_rows));
  return tensor::Dropout(embedded, config_.dropout, rng, training);
}

Tensor TransformerEncoder::EncodeBatch(const Tensor& embedded,
                                       const BatchOffsets& offsets, Rng& rng,
                                       bool training) const {
  Tensor h = embedded;
  for (const TransformerLayer& layer : layers_) {
    h = layer.ForwardBatch(h, offsets, config_.dropout, rng, training);
  }
  return h;
}

Tensor TransformerEncoder::MeanTokenEmbedding(
    const std::vector<int>& ids) const {
  TELEKIT_CHECK(!ids.empty());
  return tensor::Reshape(
      tensor::MeanRows(tensor::EmbeddingLookup(token_table_, ids)),
      {1, config_.d_model});
}

NamedParams TransformerEncoder::Parameters() const {
  NamedParams out;
  out.emplace_back("token_table", token_table_);
  out.emplace_back("position_table", position_table_);
  AppendWithPrefix("embed_norm", embed_norm_.Parameters(), &out);
  for (size_t i = 0; i < layers_.size(); ++i) {
    AppendWithPrefix("layer" + std::to_string(i), layers_[i].Parameters(),
                     &out);
  }
  return out;
}

}  // namespace core
}  // namespace telekit

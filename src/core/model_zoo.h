#ifndef TELEKIT_CORE_MODEL_ZOO_H_
#define TELEKIT_CORE_MODEL_ZOO_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/ktelebert.h"
#include "core/service.h"
#include "core/telebert.h"
#include "synth/corpus.h"
#include "synth/kg_gen.h"
#include "synth/log.h"
#include "synth/world.h"
#include "text/numeric.h"
#include "text/tokenizer.h"

namespace telekit {
namespace core {

/// Every encoder variant that appears as a row in the paper's result
/// tables (IV / VI / VIII).
enum class ModelKind {
  kRandom,
  kWordEmbedding,
  kMacBert,    // general-corpus surrogate of the MacBERT baseline
  kTeleBert,   // stage-one tele-domain pre-training
  kKTeleBertStl,
  kKTeleBertStlNoAnEnc,  // "w/o ANEnc" ablation
  kKTeleBertPmtl,
  kKTeleBertImtl,
};

/// Display name matching the paper's table rows.
std::string ModelKindName(ModelKind kind);

/// All kinds in table order.
std::vector<ModelKind> AllModelKinds();

/// One configuration object for the whole experimental pipeline.
struct ZooConfig {
  uint64_t seed = 1234;
  synth::WorldConfig world;
  synth::CorpusConfig corpus;
  synth::LogConfig log;
  /// Episodes used for the KG attributes and the machine-log corpus.
  int num_episodes = 60;
  /// Machine-log prompt samples for re-training.
  int max_machine_logs = 800;
  /// Serialized-triple sentences for implicit injection.
  int max_triple_sentences = 400;
  /// KE triples (explicit injection).
  int max_ke_triples = 300;
  /// Extension (the paper's future work, Sec. IV-B): also mix prompt-
  /// wrapped signaling-flow records into the re-training machine logs.
  bool include_signaling_flows = false;
  int max_signaling_records = 200;
  text::TokenizerOptions tokenizer{.max_len = 24, .min_word_count = 2};
  /// Learned BPE tele special tokens added to the vocabulary.
  int num_tele_tokens = 24;
  EncoderConfig encoder{.d_model = 64,
                        .num_heads = 4,
                        .num_layers = 2,
                        .ffn_dim = 128,
                        .max_len = 24,
                        .dropout = 0.1f};
  PretrainOptions pretrain;
  ReTrainOptions retrain;
  AnEncConfig anenc;
  /// Directory for model checkpoints ("" disables caching). The TELEKIT
  /// CACHE env var, when set, overrides this.
  std::string cache_dir = "telekit_cache";
};

/// Builds and owns the full experimental stack: the synthetic world, the
/// corpora, one shared tokenizer/normalizer, the Tele-KG, and all model
/// variants (pre-trained or restored from the checkpoint cache so that
/// every benchmark binary can reuse one training run).
class ModelZoo {
 public:
  explicit ModelZoo(const ZooConfig& config = ZooConfig());

  /// Runs the full build (idempotent). Safe under concurrent callers:
  /// the build methods single-flight behind one mutex, so the first caller
  /// materializes each checkpoint exactly once and late callers block,
  /// then observe the finished state — no double training, no double
  /// restore from the cache.
  void Build();

  /// Partial builds for benchmarks that do not need every variant:
  /// BuildData() constructs the world/corpora/tokenizer/KG/re-training
  /// data; BuildPretrained() additionally trains (or restores) TeleBERT
  /// and the MacBERT surrogate. Build() = both + all KTeleBERT variants.
  /// Same single-flight guarantee as Build().
  void BuildData();
  void BuildPretrained();

  // --- Data access (valid after Build) ------------------------------------
  const synth::WorldModel& world() const { return *world_; }
  const text::Tokenizer& tokenizer() const { return *tokenizer_; }
  const text::MinMaxNormalizer& normalizer() const { return normalizer_; }
  const kg::TripleStore& store() const { return store_; }
  const synth::LogGenerator& log_generator() const { return *logs_; }
  const std::vector<synth::Episode>& episodes() const { return episodes_; }
  const ReTrainData& retrain_data() const { return retrain_data_; }
  const ZooConfig& config() const { return config_; }
  /// Size of the TGC tag vocabulary (KPI names + numeric attribute names).
  int num_tags() const { return static_cast<int>(tag_vocab_.size()); }

  const TeleBert& telebert() const { return *telebert_; }
  const TeleBert& macbert() const { return *macbert_; }
  const KTeleBert& ktelebert(ModelKind kind) const;

  /// Encoder for any table row.
  const TextEncoder& Encoder(ModelKind kind) const;

  /// Service encoder (prompt building + encoding) for a table row.
  ServiceEncoder MakeServiceEncoder(ModelKind kind) const;

  /// Re-training loss histories (empty for variants restored from cache).
  const std::vector<ReTrainStats>& RetrainHistory(ModelKind kind) const;

  /// True if the variant was restored from the checkpoint cache.
  bool WasCached(ModelKind kind) const;

 private:
  std::string CachePath(const std::string& name) const;
  /// Build bodies, called with build_mutex_ held (the public entry points
  /// are locked wrappers; the internal Build -> BuildPretrained ->
  /// BuildData chain stays on the *Locked forms to avoid re-locking).
  void BuildLocked();
  void BuildDataLocked();
  void BuildPretrainedLocked();
  void BuildDataStack();
  void BuildPretrainedModels();
  void BuildReTrainData();
  void BuildKTeleBertVariant(ModelKind kind);
  KTeleBertConfig MakeKtbConfig(bool use_anenc) const;

  ZooConfig config_;
  /// Serializes the build methods (single-flight checkpoint loading).
  mutable std::mutex build_mutex_;
  /// Atomic so accessors may check it without taking build_mutex_.
  std::atomic<bool> built_{false};

  std::unique_ptr<synth::WorldModel> world_;
  std::unique_ptr<synth::LogGenerator> logs_;
  std::vector<synth::Episode> episodes_;
  kg::TripleStore store_;
  std::unique_ptr<text::Tokenizer> tokenizer_;
  text::MinMaxNormalizer normalizer_;
  std::vector<std::string> tele_corpus_;
  std::vector<std::string> general_corpus_;
  std::vector<std::string> tag_vocab_;  // TGC label space
  ReTrainData retrain_data_;

  std::unique_ptr<TeleBert> telebert_;
  std::unique_ptr<TeleBert> macbert_;
  struct Variant {
    std::unique_ptr<KTeleBert> model;
    std::vector<ReTrainStats> history;
    bool cached = false;
  };
  Variant stl_;
  Variant stl_no_anenc_;
  Variant pmtl_;
  Variant imtl_;

  // Encoder adapters (constructed in Build).
  std::unique_ptr<RandomEncoder> random_encoder_;
  std::unique_ptr<WordAveragingEncoder> word_encoder_;
  std::unique_ptr<TeleBertEncoder> macbert_encoder_;
  std::unique_ptr<TeleBertEncoder> telebert_encoder_;
  std::unique_ptr<KTeleBertEncoder> stl_encoder_;
  std::unique_ptr<KTeleBertEncoder> stl_no_anenc_encoder_;
  std::unique_ptr<KTeleBertEncoder> pmtl_encoder_;
  std::unique_ptr<KTeleBertEncoder> imtl_encoder_;
};

}  // namespace core
}  // namespace telekit

#endif  // TELEKIT_CORE_MODEL_ZOO_H_

#ifndef TELEKIT_CORE_ANENC_H_
#define TELEKIT_CORE_ANENC_H_

#include <vector>

#include "common/rng.h"
#include "core/transformer.h"
#include "tensor/tensor.h"

namespace telekit {
namespace core {

/// ANEnc hyperparameters (Sec. IV-B, Fig. 5).
struct AnEncConfig {
  int d_model = 64;
  /// Number of field-aware meta embeddings N per layer; must divide d.
  int num_meta = 4;
  /// Stacked ANEnc layers L.
  int num_layers = 2;
  /// LoRA rank r of the low-rank residual in Eq. 4.
  int lora_rank = 4;
  /// LoRA scaling alpha (>= 1 per the paper).
  float lora_alpha = 1.0f;
  int ffn_dim = 128;
};

/// Adaptive numeric encoder (ANEnc): maps a (tag-name embedding t, scalar
/// value v) pair to a d-dimensional numeric embedding through L layers of
/// attention-based numeric projection (Eq. 1-2), value lifting (Eq. 3) and
/// an FFN sublayer with a LoRA low-rank residual (Eq. 4). Being attention
/// over meta embeddings rather than per-field embeddings, it adapts to
/// unseen tag names — the property the paper needs for ever-growing KPI
/// catalogues.
class AnEnc {
 public:
  AnEnc(const AnEncConfig& config, Rng& rng);

  /// Encodes one numeric value. `tag_embedding` is the tag name's pooled
  /// embedding-layer output [1, d] (constant across layers); `value` is the
  /// min-max normalized scalar. Returns h^L as [1, d].
  tensor::Tensor Forward(const tensor::Tensor& tag_embedding,
                         float value) const;

  /// Attention weights of the first layer for a given tag (diagnostics:
  /// which meta domains a field routes to). Returns N weights.
  std::vector<float> MetaAttention(const tensor::Tensor& tag_embedding) const;

  /// Orthogonal regularization sum_i ||I - Wv_i^T Wv_i||_F^2 over all
  /// value-transformation matrices of all layers (Eq. 8, unweighted).
  tensor::Tensor OrthogonalPenalty() const;

  NamedParams Parameters() const;
  const AnEncConfig& config() const { return config_; }

 private:
  struct Layer {
    tensor::Tensor meta;     // E: [N, d/N]
    tensor::Tensor query;    // Wq: [d, d/N]
    std::vector<tensor::Tensor> value_transforms;  // Wv_i: [d, d] x N
    LinearLayer ffn_in;
    LinearLayer ffn_out;
    tensor::Tensor lora_down;  // [d, r]
    tensor::Tensor lora_up;    // [r, d]
    LayerNormParams norm;

    Layer(const AnEncConfig& config, Rng& rng);
    tensor::Tensor Forward(const tensor::Tensor& tag_embedding,
                           const tensor::Tensor& x, float lora_alpha,
                           int num_meta) const;
    NamedParams Parameters() const;
  };

  tensor::Tensor LiftValue(float value) const;  // Eq. 3, l = 1 case

  AnEncConfig config_;
  tensor::Tensor value_fc_;  // W_fc: [1, d]
  std::vector<Layer> layers_;
};

/// Numeric decoder NDec (Eq. 5): regresses the original normalized value
/// from the final transformer hidden state at the [NUM] position, closing
/// the autoencoder loop.
class NumericDecoder {
 public:
  NumericDecoder(int d_model, Rng& rng);

  /// [1, d] -> scalar prediction tensor [1].
  tensor::Tensor Forward(const tensor::Tensor& hidden) const;

  NamedParams Parameters() const;

 private:
  LinearLayer hidden_;
  LinearLayer out_;
};

/// Tag classifier TGC (Eq. 6): predicts the tag name from the ANEnc output
/// so the numeric embedding retains field identity. Optional at run time
/// (new unseen tags have no label).
class TagClassifier {
 public:
  TagClassifier(int d_model, int num_tags, Rng& rng);

  /// [1, d] -> logits [1, num_tags].
  tensor::Tensor Forward(const tensor::Tensor& h) const;

  int num_tags() const { return classifier_.out_dim(); }
  NamedParams Parameters() const;

 private:
  LinearLayer classifier_;
};

/// Automatically weighted multi-task loss (Kendall et al.; the L_num
/// fusion in Sec. IV-B4): L = 0.5 * sum_i L_i / mu_i^2 + sum_i log(1 +
/// mu_i^2) with learnable noise parameters mu_i.
class AutoWeightedLoss {
 public:
  explicit AutoWeightedLoss(int num_tasks);

  /// Combines per-task losses (each a scalar tensor). Missing tasks may be
  /// passed as undefined tensors and are skipped.
  tensor::Tensor Combine(const std::vector<tensor::Tensor>& losses) const;

  /// Current noise parameter values.
  std::vector<float> Weights() const;

  NamedParams Parameters() const;

 private:
  std::vector<tensor::Tensor> mu_;
};

/// In-batch numerical contrastive loss (Eq. 7): for each sample the
/// positive is the batch element with the closest value; similarities are
/// cosine, temperature tau.
tensor::Tensor NumericContrastiveLoss(
    const std::vector<tensor::Tensor>& embeddings,
    const std::vector<float>& values, float tau);

}  // namespace core
}  // namespace telekit

#endif  // TELEKIT_CORE_ANENC_H_

#include "core/qencode.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "tensor/simd.h"

namespace telekit {
namespace core {

namespace {

constexpr float kLayerNormEps = 1e-5f;  // matches tensor::LayerNorm

/// In-place row-wise layer norm, same arithmetic as the fp32 path
/// (mean/var via the simd reductions, NormalizeAffine epilogue).
void LayerNormRows(float* x, int rows, int d, const float* gain,
                   const float* bias) {
  for (int r = 0; r < rows; ++r) {
    float* row = x + static_cast<size_t>(r) * d;
    const float mean = tensor::simd::ReduceSum(row, d) / static_cast<float>(d);
    const float var =
        tensor::simd::ReduceSumSqDiff(row, mean, d) / static_cast<float>(d);
    const float istd = 1.0f / std::sqrt(var + kLayerNormEps);
    tensor::simd::NormalizeAffine(row, mean, istd, gain, bias,
                                  /*xhat=*/nullptr, row, d);
  }
}

/// GELU tanh approximation, identical constants to tensor::Gelu.
void GeluInPlace(float* x, size_t n) {
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  for (size_t i = 0; i < n; ++i) {
    const float v = x[i];
    const float inner = kC * (v + 0.044715f * v * v * v);
    x[i] = 0.5f * v * (1.0f + std::tanh(inner));
  }
}

/// Softmax over one score row: max-shifted exp, then normalize.
void SoftmaxRow(float* row, int n) {
  const float max_v = tensor::simd::ReduceMax(row, n);
  for (int i = 0; i < n; ++i) row[i] = std::exp(row[i] - max_v);
  const float inv = 1.0f / tensor::simd::ReduceSum(row, n);
  tensor::simd::ScaleTo(row, inv, row, n);
}

/// Pulls a named tensor out of the encoder's parameter list.
const tensor::Tensor& Param(
    const std::map<std::string, const tensor::Tensor*>& params,
    const std::string& name) {
  auto it = params.find(name);
  TELEKIT_CHECK(it != params.end())
      << "QuantizedEncoder: missing encoder parameter " << name;
  return *it->second;
}

std::vector<float> CopyData(const tensor::Tensor& t) { return t.data(); }

}  // namespace

// --- QuantizedLinear ---------------------------------------------------------

QuantizedLinear::QuantizedLinear(const tensor::Tensor& weight,
                                 const tensor::Tensor& bias)
    : in_dim_(weight.dim(0)), out_dim_(weight.dim(1)), bias_(bias.data()) {
  TELEKIT_CHECK_EQ(static_cast<int>(bias_.size()), out_dim_);
  const std::vector<float>& w = weight.data();
  weight_q_.resize(static_cast<size_t>(in_dim_) * out_dim_);
  weight_scale_.resize(static_cast<size_t>(out_dim_));
  for (int j = 0; j < out_dim_; ++j) {
    float max_abs = 0.0f;
    for (int i = 0; i < in_dim_; ++i) {
      max_abs = std::max(max_abs,
                         std::fabs(w[static_cast<size_t>(i) * out_dim_ + j]));
    }
    const float scale = max_abs / 127.0f;
    weight_scale_[static_cast<size_t>(j)] = scale;
    int8_t* row = weight_q_.data() + static_cast<size_t>(j) * in_dim_;
    if (scale == 0.0f) {
      std::fill(row, row + in_dim_, static_cast<int8_t>(0));
      continue;
    }
    const float inv = 1.0f / scale;
    for (int i = 0; i < in_dim_; ++i) {
      const long q =
          std::lround(w[static_cast<size_t>(i) * out_dim_ + j] * inv);
      row[i] = static_cast<int8_t>(std::clamp<long>(q, -127, 127));
    }
  }
}

void QuantizedLinear::Forward(const float* x, int rows, float* out) const {
  std::vector<int8_t> q(static_cast<size_t>(in_dim_));
  for (int r = 0; r < rows; ++r) {
    const float* xr = x + static_cast<size_t>(r) * in_dim_;
    const float sx =
        tensor::simd::QuantizeRow(xr, in_dim_, clip_, q.data());
    float* yr = out + static_cast<size_t>(r) * out_dim_;
    for (int j = 0; j < out_dim_; ++j) {
      const int32_t acc = tensor::simd::DotI8(
          q.data(), weight_q_.data() + static_cast<size_t>(j) * in_dim_,
          in_dim_);
      yr[j] = static_cast<float>(acc) * sx *
                  weight_scale_[static_cast<size_t>(j)] +
              bias_[static_cast<size_t>(j)];
    }
  }
}

void QuantizedLinear::Observe(const float* x, int rows) const {
  for (int r = 0; r < rows; ++r) {
    const float* xr = x + static_cast<size_t>(r) * in_dim_;
    for (int i = 0; i < in_dim_; ++i) {
      observed_max_ = std::max(observed_max_, std::fabs(xr[i]));
    }
  }
}

// --- QuantizedEncoder --------------------------------------------------------

QuantizedEncoder::QuantizedEncoder(const TransformerEncoder& encoder,
                                   OverrideHook anenc_hook)
    : config_(encoder.config()), anenc_hook_(std::move(anenc_hook)) {
  std::map<std::string, const tensor::Tensor*> params;
  const NamedParams named = encoder.Parameters();
  for (const auto& [name, t] : named) params.emplace(name, &t);
  token_table_ = CopyData(Param(params, "token_table"));
  position_table_ = CopyData(Param(params, "position_table"));
  embed_gain_ = CopyData(Param(params, "embed_norm.gain"));
  embed_bias_ = CopyData(Param(params, "embed_norm.bias"));
  layers_.reserve(static_cast<size_t>(config_.num_layers));
  for (int l = 0; l < config_.num_layers; ++l) {
    const std::string p = "layer" + std::to_string(l) + ".";
    layers_.push_back(Layer{
        QuantizedLinear(Param(params, p + "attn.q.weight"),
                        Param(params, p + "attn.q.bias")),
        QuantizedLinear(Param(params, p + "attn.k.weight"),
                        Param(params, p + "attn.k.bias")),
        QuantizedLinear(Param(params, p + "attn.v.weight"),
                        Param(params, p + "attn.v.bias")),
        QuantizedLinear(Param(params, p + "attn.o.weight"),
                        Param(params, p + "attn.o.bias")),
        QuantizedLinear(Param(params, p + "ffn_in.weight"),
                        Param(params, p + "ffn_in.bias")),
        QuantizedLinear(Param(params, p + "ffn_out.weight"),
                        Param(params, p + "ffn_out.bias")),
        CopyData(Param(params, p + "norm1.gain")),
        CopyData(Param(params, p + "norm1.bias")),
        CopyData(Param(params, p + "norm2.gain")),
        CopyData(Param(params, p + "norm2.bias")),
    });
  }
}

std::vector<float> QuantizedEncoder::Embed(const text::EncodedInput& input,
                                           int* length) const {
  const int d = config_.d_model;
  const int len = std::min(input.length, config_.max_len);
  TELEKIT_CHECK_GT(len, 0) << "QuantizedEncoder: empty input";
  TELEKIT_CHECK_LE(len, static_cast<int>(input.ids.size()));
  *length = len;
  std::vector<float> h(static_cast<size_t>(len) * d);
  for (int i = 0; i < len; ++i) {
    const int id = input.ids[static_cast<size_t>(i)];
    TELEKIT_CHECK_GE(id, 0);
    TELEKIT_CHECK_LT(id, config_.vocab_size);
    const float* tok = token_table_.data() + static_cast<size_t>(id) * d;
    const float* pos = position_table_.data() + static_cast<size_t>(i) * d;
    tensor::simd::Add(tok, pos, h.data() + static_cast<size_t>(i) * d, d);
  }
  if (anenc_hook_ != nullptr) {
    // Numeric-slot overrides replace the token row (position row still
    // added), mirroring TransformerEncoder::Embed with overrides.
    for (const auto& [position, row] : anenc_hook_(input)) {
      if (position < 0 || position >= len) continue;
      TELEKIT_CHECK_EQ(static_cast<int>(row.size()), d);
      const float* pos = position_table_.data() +
                         static_cast<size_t>(position) * d;
      tensor::simd::Add(row.data(), pos,
                        h.data() + static_cast<size_t>(position) * d, d);
    }
  }
  LayerNormRows(h.data(), len, d, embed_gain_.data(), embed_bias_.data());
  return h;
}

void QuantizedEncoder::RunLayers(std::vector<float>* h, int length,
                                 bool calibrating) const {
  const int d = config_.d_model;
  const int heads = config_.num_heads;
  const int hd = d / heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  const size_t nd = static_cast<size_t>(length) * d;
  std::vector<float> q(nd), k(nd), v(nd), attn(nd), proj(nd);
  std::vector<float> ffn(static_cast<size_t>(length) * config_.ffn_dim);
  std::vector<float> scores(static_cast<size_t>(length));
  for (const Layer& layer : layers_) {
    float* x = h->data();
    if (calibrating) {
      layer.query.Observe(x, length);
      layer.key.Observe(x, length);
      layer.value.Observe(x, length);
    }
    layer.query.Forward(x, length, q.data());
    layer.key.Forward(x, length, k.data());
    layer.value.Forward(x, length, v.data());
    for (int head = 0; head < heads; ++head) {
      const int col = head * hd;
      for (int i = 0; i < length; ++i) {
        const float* qi = q.data() + static_cast<size_t>(i) * d + col;
        for (int j = 0; j < length; ++j) {
          scores[static_cast<size_t>(j)] =
              tensor::simd::Dot(
                  qi, k.data() + static_cast<size_t>(j) * d + col, hd) *
              scale;
        }
        SoftmaxRow(scores.data(), length);
        float* ctx = attn.data() + static_cast<size_t>(i) * d + col;
        std::fill(ctx, ctx + hd, 0.0f);
        for (int j = 0; j < length; ++j) {
          tensor::simd::Axpy(scores[static_cast<size_t>(j)],
                             v.data() + static_cast<size_t>(j) * d + col, ctx,
                             hd);
        }
      }
    }
    if (calibrating) layer.output.Observe(attn.data(), length);
    layer.output.Forward(attn.data(), length, proj.data());
    tensor::simd::Add(x, proj.data(), x, static_cast<int>(nd));
    LayerNormRows(x, length, d, layer.norm1_gain.data(),
                  layer.norm1_bias.data());
    if (calibrating) layer.ffn_in.Observe(x, length);
    layer.ffn_in.Forward(x, length, ffn.data());
    GeluInPlace(ffn.data(), ffn.size());
    if (calibrating) layer.ffn_out.Observe(ffn.data(), length);
    layer.ffn_out.Forward(ffn.data(), length, proj.data());
    tensor::simd::Add(x, proj.data(), x, static_cast<int>(nd));
    LayerNormRows(x, length, d, layer.norm2_gain.data(),
                  layer.norm2_bias.data());
  }
}

void QuantizedEncoder::Calibrate(
    const std::vector<const text::EncodedInput*>& inputs) {
  for (const text::EncodedInput* input : inputs) {
    int length = 0;
    std::vector<float> h = Embed(*input, &length);
    RunLayers(&h, length, /*calibrating=*/true);
  }
  for (Layer& layer : layers_) {
    layer.query.FreezeCalibration();
    layer.key.FreezeCalibration();
    layer.value.FreezeCalibration();
    layer.output.FreezeCalibration();
    layer.ffn_in.FreezeCalibration();
    layer.ffn_out.FreezeCalibration();
  }
}

std::vector<float> QuantizedEncoder::Encode(
    const text::EncodedInput& input) const {
  int length = 0;
  std::vector<float> h = Embed(input, &length);
  RunLayers(&h, length, /*calibrating=*/false);
  h.resize(static_cast<size_t>(config_.d_model));  // row 0 is [CLS]
  return h;
}

std::vector<std::vector<float>> QuantizedEncoder::EncodeBatch(
    const std::vector<const text::EncodedInput*>& inputs) const {
  std::vector<std::vector<float>> out;
  out.reserve(inputs.size());
  for (const text::EncodedInput* input : inputs) {
    out.push_back(Encode(*input));
  }
  return out;
}

}  // namespace core
}  // namespace telekit

#ifndef TELEKIT_CORE_TRANSFORMER_H_
#define TELEKIT_CORE_TRANSFORMER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace telekit {
namespace core {

/// Named parameter list used for optimizer registration and checkpointing.
using NamedParams = std::vector<std::pair<std::string, tensor::Tensor>>;

/// Appends `params` of a submodule under `prefix + "."`.
void AppendWithPrefix(const std::string& prefix, const NamedParams& params,
                      NamedParams* out);

/// Converts a named parameter list to a TensorMap (for checkpoints).
tensor::TensorMap ToTensorMap(const NamedParams& params);

/// Flattens the tensors of a named parameter list.
std::vector<tensor::Tensor> TensorsOf(const NamedParams& params);

/// Fully connected layer y = x W + b.
class LinearLayer {
 public:
  LinearLayer(int in_dim, int out_dim, Rng& rng);

  tensor::Tensor Forward(const tensor::Tensor& x) const;
  NamedParams Parameters() const;

  int in_dim() const { return weight_.dim(0); }
  int out_dim() const { return weight_.dim(1); }

 private:
  tensor::Tensor weight_;
  tensor::Tensor bias_;
};

/// Learnable layer-norm gain/bias pair.
class LayerNormParams {
 public:
  explicit LayerNormParams(int dim);
  tensor::Tensor Forward(const tensor::Tensor& x) const;
  NamedParams Parameters() const;

 private:
  tensor::Tensor gain_;
  tensor::Tensor bias_;
};

/// Row offsets of a ragged batch: `offsets[i]` is the first row of
/// sequence i in the stacked [sum(lengths), d] matrix and
/// `offsets.back()` is the total row count (size B + 1). Packing ragged
/// sequences instead of padding wastes no compute on [PAD] positions and
/// keeps every row-wise op (projections, FFN, layer-norm) a single large
/// matmul over the whole batch.
using BatchOffsets = std::vector<int>;

/// Multi-head self-attention over a single (unpadded) sequence [S, d].
class MultiHeadSelfAttention {
 public:
  MultiHeadSelfAttention(int d_model, int num_heads, Rng& rng);

  /// [S, d] -> [S, d].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  /// Batched variant over a ragged stack [N, d]: Q/K/V and output
  /// projections run as one matmul each over all N rows; attention scores
  /// are computed per sequence (rows never attend across sequence
  /// boundaries). Bit-identical per row to Forward() on each sequence.
  tensor::Tensor ForwardBatch(const tensor::Tensor& x,
                              const BatchOffsets& offsets) const;

  NamedParams Parameters() const;

 private:
  int num_heads_;
  int head_dim_;
  LinearLayer query_;
  LinearLayer key_;
  LinearLayer value_;
  LinearLayer output_;
};

/// Post-LN transformer encoder layer (attention + GELU FFN).
class TransformerLayer {
 public:
  TransformerLayer(int d_model, int num_heads, int ffn_dim, Rng& rng);

  tensor::Tensor Forward(const tensor::Tensor& x, float dropout, Rng& rng,
                         bool training) const;

  /// Batched variant over a ragged stack (see BatchOffsets).
  tensor::Tensor ForwardBatch(const tensor::Tensor& x,
                              const BatchOffsets& offsets, float dropout,
                              Rng& rng, bool training) const;

  NamedParams Parameters() const;

 private:
  MultiHeadSelfAttention attention_;
  LayerNormParams norm1_;
  LinearLayer ffn_in_;
  LinearLayer ffn_out_;
  LayerNormParams norm2_;
};

/// Encoder hyperparameters (shared by TeleBERT / KTeleBERT / the MacBERT
/// surrogate; only the pre-training corpus differs between them).
struct EncoderConfig {
  int vocab_size = 0;  // set from the tokenizer
  int d_model = 64;
  int num_heads = 4;
  int num_layers = 2;
  int ffn_dim = 128;
  int max_len = 32;
  float dropout = 0.1f;
};

/// BERT-style transformer encoder: token + position embeddings with
/// embedding layer-norm, then a stack of TransformerLayers. Sequences are
/// processed unpadded (one at a time) — padding positions are simply
/// dropped, which removes the need for attention masks.
class TransformerEncoder {
 public:
  TransformerEncoder(const EncoderConfig& config, Rng& rng);

  /// Embedding-layer output (token + position, layer-normed) for the first
  /// `length` ids: [length, d]. `overrides` replaces rows at the given
  /// positions with externally computed embeddings (the ANEnc hook);
  /// each override tensor is [1, d].
  tensor::Tensor Embed(
      const std::vector<int>& ids, int length,
      const std::vector<std::pair<int, tensor::Tensor>>& overrides, Rng& rng,
      bool training) const;

  /// Runs the layer stack over embedded input: [length, d] -> [length, d].
  tensor::Tensor Encode(const tensor::Tensor& embedded, Rng& rng,
                        bool training) const;

  /// Convenience: Embed + Encode without overrides.
  tensor::Tensor Forward(const std::vector<int>& ids, int length, Rng& rng,
                         bool training) const;

  /// One embedding-lookup pass for B sequences packed into a ragged stack:
  /// returns [sum(lengths), d] and fills `offsets` (size B + 1) with the
  /// row ranges. `overrides[i]`, when non-null, substitutes externally
  /// computed [1, d] rows at sequence-local positions of sequence i (the
  /// ANEnc hook); pass {} for none.
  tensor::Tensor EmbedBatch(
      const std::vector<const std::vector<int>*>& ids,
      const std::vector<int>& lengths,
      const std::vector<const std::vector<std::pair<int, tensor::Tensor>>*>&
          overrides,
      BatchOffsets* offsets, Rng& rng, bool training) const;

  /// Runs the layer stack over a ragged embedded batch: [N, d] -> [N, d].
  /// Row-wise sublayers execute as whole-batch matmuls; only attention
  /// scores stay per-sequence. Row i of the result is bit-identical to the
  /// corresponding row of Encode() on that sequence alone.
  tensor::Tensor EncodeBatch(const tensor::Tensor& embedded,
                             const BatchOffsets& offsets, Rng& rng,
                             bool training) const;

  /// Raw (pre-layer-norm) embedding rows for a token id list, mean-pooled:
  /// [d]. Used for the ANEnc tag-name embedding t (Sec. IV-B).
  tensor::Tensor MeanTokenEmbedding(const std::vector<int>& ids) const;

  NamedParams Parameters() const;
  const EncoderConfig& config() const { return config_; }
  const tensor::Tensor& token_table() const { return token_table_; }

 private:
  EncoderConfig config_;
  tensor::Tensor token_table_;     // [V, d]
  tensor::Tensor position_table_;  // [max_len, d]
  LayerNormParams embed_norm_;
  std::vector<TransformerLayer> layers_;
};

}  // namespace core
}  // namespace telekit

#endif  // TELEKIT_CORE_TRANSFORMER_H_

#include "core/telebert.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/optimizer.h"

namespace telekit {
namespace core {

using tensor::Tensor;

TeleBert::TeleBert(const EncoderConfig& config, Rng& rng) {
  encoder_ = std::make_unique<TransformerEncoder>(config, rng);
  // ELECTRA generator: narrower and shallower than the discriminator.
  EncoderConfig gen_config = config;
  gen_config.d_model = std::max(16, config.d_model / 2);
  gen_config.num_heads = std::max(2, config.num_heads / 2);
  gen_config.num_layers = 1;
  gen_config.ffn_dim = std::max(32, config.ffn_dim / 2);
  generator_ = std::make_unique<TransformerEncoder>(gen_config, rng);
  mlm_head_ =
      std::make_unique<LinearLayer>(gen_config.d_model, config.vocab_size,
                                    rng);
  rtd_head_ = std::make_unique<LinearLayer>(config.d_model, 1, rng);
  encoder_mlm_head_ =
      std::make_unique<LinearLayer>(config.d_model, config.vocab_size, rng);
}

Tensor TeleBert::GeneratorMlmLoss(const text::MaskedExample& masked,
                                  int length, std::vector<int>* corrupted_ids,
                                  Rng& rng) const {
  Tensor hidden = generator_->Forward(masked.ids, length, rng,
                                      /*training=*/true);
  // Gather the masked positions only — the vocab projection dominates MLM
  // cost, so restricting it to supervised rows is a large saving.
  std::vector<int> positions;
  std::vector<int> labels;
  for (int i = 0; i < length; ++i) {
    if (masked.labels[static_cast<size_t>(i)] >= 0) {
      positions.push_back(i);
      labels.push_back(masked.labels[static_cast<size_t>(i)]);
    }
  }
  *corrupted_ids = masked.ids;
  if (positions.empty()) return Tensor();
  Tensor logits = mlm_head_->Forward(tensor::GatherRows(hidden, positions));
  // Sample replacements from the generator distribution (ELECTRA).
  const int vocab = logits.dim(1);
  for (size_t row = 0; row < positions.size(); ++row) {
    // Softmax sampling over the row.
    std::vector<double> probs(static_cast<size_t>(vocab));
    float max_logit = -1e30f;
    for (int c = 0; c < vocab; ++c) {
      max_logit = std::max(max_logit,
                           logits.at(static_cast<int>(row), c));
    }
    double denom = 0.0;
    for (int c = 0; c < vocab; ++c) {
      probs[static_cast<size_t>(c)] =
          std::exp(static_cast<double>(logits.at(static_cast<int>(row), c) -
                                       max_logit));
      denom += probs[static_cast<size_t>(c)];
    }
    for (double& p : probs) p /= denom;
    (*corrupted_ids)[static_cast<size_t>(positions[row])] =
        static_cast<int>(rng.Categorical(probs));
  }
  return tensor::CrossEntropyWithLogits(logits, labels);
}

std::vector<PretrainStats> TeleBert::Pretrain(
    const std::vector<text::EncodedInput>& corpus, const text::Vocab& vocab,
    const PretrainOptions& options, Rng& rng) {
  TELEKIT_CHECK(!corpus.empty());
  obs::Span pretrain_span("train/pretrain");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram& step_ms = registry.GetHistogram("train/step_ms");
  obs::Counter& steps_total = registry.GetCounter("train/steps");
  obs::Counter& tokens_total = registry.GetCounter("train/tokens");
  TELEKIT_LOG(INFO) << "pretrain start" << obs::F("steps", options.steps)
                    << obs::F("batch_size", options.batch_size)
                    << obs::F("corpus", corpus.size());
  tensor::Adam optimizer(options.learning_rate);
  optimizer.AddParameters(TensorsOf(Parameters()));

  std::vector<PretrainStats> history;
  history.reserve(static_cast<size_t>(options.steps));
  uint64_t run_tokens = 0;
  for (int step = 0; step < options.steps; ++step) {
    obs::ScopedTimer step_timer(step_ms);
    optimizer.ZeroGrad();
    std::vector<Tensor> losses;
    std::vector<Tensor> cls_a, cls_b;  // SimCSE views
    double mlm_total = 0, rtd_total = 0;
    int mlm_count = 0;
    const bool do_simcse = options.simcse_weight > 0.0f;
    for (int b = 0; b < options.batch_size; ++b) {
      const text::EncodedInput& example =
          corpus[static_cast<size_t>(rng.UniformInt(corpus.size()))];
      tokens_total.Increment(static_cast<uint64_t>(example.length));
      run_tokens += static_cast<uint64_t>(example.length);
      text::MaskedExample masked =
          text::ApplyMasking(example, vocab, options.masking, rng);
      if (options.objective == PretrainObjective::kMlmOnly) {
        // Plain MLM on the main encoder (ablation of the ELECTRA choice).
        Tensor hidden = encoder_->Forward(masked.ids, example.length, rng,
                                          /*training=*/true);
        std::vector<int> positions, labels;
        for (int i = 0; i < example.length; ++i) {
          if (masked.labels[static_cast<size_t>(i)] >= 0) {
            positions.push_back(i);
            labels.push_back(masked.labels[static_cast<size_t>(i)]);
          }
        }
        if (!positions.empty()) {
          Tensor logits = encoder_mlm_head_->Forward(
              tensor::GatherRows(hidden, positions));
          Tensor mlm = tensor::CrossEntropyWithLogits(logits, labels);
          losses.push_back(mlm);
          mlm_total += mlm.item();
          ++mlm_count;
        }
        if (do_simcse) {
          cls_a.push_back(EncodeCls(example, rng, /*training=*/true));
          cls_b.push_back(EncodeCls(example, rng, /*training=*/true));
        }
        continue;
      }
      // Generator MLM + replacement sampling.
      std::vector<int> corrupted;
      Tensor mlm = GeneratorMlmLoss(masked, example.length, &corrupted, rng);
      if (mlm.defined()) {
        losses.push_back(mlm);
        mlm_total += mlm.item();
        ++mlm_count;
      }
      // Discriminator replaced-token detection over the corrupted input.
      Tensor hidden = encoder_->Forward(corrupted, example.length, rng,
                                        /*training=*/true);
      Tensor rtd_logits =
          tensor::Reshape(rtd_head_->Forward(hidden), {example.length});
      std::vector<float> replaced(static_cast<size_t>(example.length), 0.0f);
      for (int i = 0; i < example.length; ++i) {
        replaced[static_cast<size_t>(i)] =
            corrupted[static_cast<size_t>(i)] !=
                    example.ids[static_cast<size_t>(i)]
                ? 1.0f
                : 0.0f;
      }
      Tensor rtd = tensor::MulScalar(
          tensor::BceWithLogits(rtd_logits, replaced), options.rtd_weight);
      losses.push_back(rtd);
      rtd_total += rtd.item() / std::max(options.rtd_weight, 1e-6f);
      // SimCSE: two dropout views of the clean input.
      if (do_simcse) {
        cls_a.push_back(EncodeCls(example, rng, /*training=*/true));
        cls_b.push_back(EncodeCls(example, rng, /*training=*/true));
      }
    }
    PretrainStats stats;
    stats.mlm_loss =
        mlm_count > 0 ? static_cast<float>(mlm_total / mlm_count) : 0.0f;
    stats.rtd_loss = static_cast<float>(rtd_total / options.batch_size);
    if (do_simcse && cls_a.size() >= 2) {
      // InfoNCE: view b of sample i is the positive for view a of i.
      Tensor a = tensor::L2NormalizeRows(tensor::ConcatRows(cls_a));
      Tensor b = tensor::L2NormalizeRows(tensor::ConcatRows(cls_b));
      Tensor sims = tensor::MulScalar(
          tensor::MatMul(a, tensor::Transpose(b)),
          1.0f / options.simcse_temperature);
      std::vector<int> diagonal(cls_a.size());
      for (size_t i = 0; i < cls_a.size(); ++i) {
        diagonal[i] = static_cast<int>(i);
      }
      Tensor simcse = tensor::CrossEntropyWithLogits(sims, diagonal);
      stats.simcse_loss = simcse.item();
      losses.push_back(tensor::MulScalar(simcse, options.simcse_weight));
    }
    // Average over the batch and step.
    Tensor total = tensor::MulScalar(
        [&losses] {
          Tensor sum = losses.front();
          for (size_t i = 1; i < losses.size(); ++i) {
            sum = tensor::Add(sum, losses[i]);
          }
          return sum;
        }(),
        1.0f / static_cast<float>(options.batch_size));
    stats.total_loss = total.item();
    total.Backward();
    optimizer.ClipGradNorm(options.clip_norm);
    optimizer.Step();
    history.push_back(stats);
    steps_total.Increment();
    if ((step + 1) % 100 == 0 || step + 1 == options.steps) {
      TELEKIT_LOG(INFO) << "pretrain step" << obs::F("step", step + 1)
                        << obs::F("total_loss", stats.total_loss)
                        << obs::F("mlm_loss", stats.mlm_loss)
                        << obs::F("rtd_loss", stats.rtd_loss)
                        << obs::F("simcse_loss", stats.simcse_loss);
    }
  }
  const double elapsed_s =
      static_cast<double>(pretrain_span.ElapsedUs()) / 1.0e6;
  if (elapsed_s > 0.0) {
    registry.GetGauge("train/tokens_per_sec")
        .Set(static_cast<double>(run_tokens) / elapsed_s);
  }
  TELEKIT_LOG(INFO) << "pretrain done" << obs::F("steps", options.steps)
                    << obs::F("tokens", run_tokens)
                    << obs::F("elapsed_s", elapsed_s);
  return history;
}

Tensor TeleBert::Hidden(const text::EncodedInput& input, Rng& rng,
                        bool training) const {
  return encoder_->Forward(input.ids, input.length, rng, training);
}

Tensor TeleBert::EncodeCls(const text::EncodedInput& input, Rng& rng,
                           bool training) const {
  return tensor::SliceRows(Hidden(input, rng, training), 0, 1);
}

std::vector<float> TeleBert::ServiceVector(
    const text::EncodedInput& input) const {
  tensor::NoGradGuard no_grad;
  Rng rng(0);  // unused in eval mode (no dropout)
  return EncodeCls(input, rng, /*training=*/false).data();
}

std::vector<std::vector<float>> TeleBert::ServiceVectorBatch(
    const std::vector<const text::EncodedInput*>& inputs) const {
  std::vector<std::vector<float>> out;
  if (inputs.empty()) return out;
  tensor::NoGradGuard no_grad;
  Rng rng(0);  // unused in eval mode (no dropout)
  std::vector<const std::vector<int>*> ids;
  std::vector<int> lengths;
  ids.reserve(inputs.size());
  lengths.reserve(inputs.size());
  for (const text::EncodedInput* input : inputs) {
    ids.push_back(&input->ids);
    lengths.push_back(input->length);
  }
  BatchOffsets offsets;
  Tensor embedded = encoder_->EmbedBatch(ids, lengths, {}, &offsets, rng,
                                         /*training=*/false);
  Tensor hidden = encoder_->EncodeBatch(embedded, offsets, rng,
                                        /*training=*/false);
  const int d = encoder_->config().d_model;
  out.reserve(inputs.size());
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    const float* cls =
        hidden.data().data() + static_cast<size_t>(offsets[i]) * d;
    out.emplace_back(cls, cls + d);  // row 0 of each sequence is [CLS]
  }
  return out;
}

NamedParams TeleBert::Parameters() const {
  NamedParams out;
  AppendWithPrefix("encoder", encoder_->Parameters(), &out);
  AppendWithPrefix("generator", generator_->Parameters(), &out);
  AppendWithPrefix("mlm_head", mlm_head_->Parameters(), &out);
  AppendWithPrefix("rtd_head", rtd_head_->Parameters(), &out);
  AppendWithPrefix("encoder_mlm_head", encoder_mlm_head_->Parameters(), &out);
  return out;
}

tensor::TensorMap TeleBert::Checkpoint() const {
  return ToTensorMap(Parameters());
}

Status TeleBert::Restore(const tensor::TensorMap& checkpoint) {
  tensor::TensorMap current = ToTensorMap(Parameters());
  return tensor::RestoreInto(checkpoint, current);
}

}  // namespace core
}  // namespace telekit

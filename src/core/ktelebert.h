#ifndef TELEKIT_CORE_KTELEBERT_H_
#define TELEKIT_CORE_KTELEBERT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/anenc.h"
#include "core/telebert.h"
#include "core/transformer.h"
#include "text/masking.h"
#include "text/tokenizer.h"

namespace telekit {
namespace core {

/// KTeleBERT configuration (Sec. IV).
struct KTeleBertConfig {
  EncoderConfig encoder;
  AnEncConfig anenc;
  /// Ablation switch: false replaces ANEnc outputs with the plain [NUM]
  /// token embedding and disables all numeric losses ("w/o ANEnc").
  bool use_anenc = true;
  /// Tag vocabulary size for the TGC head (0 disables tag classification).
  int num_tags = 0;
  /// KE margin gamma (Eq. 10).
  float ke_margin = 1.0f;
  /// Negative samples per positive triple (the paper uses 10; scaled).
  int ke_negatives = 4;
  /// Orthogonal-regularization weight lambda (Eq. 8).
  float orthogonal_lambda = 1e-4f;
  /// Numerical contrastive temperature tau (Eq. 7).
  float nc_tau = 0.05f;
};

/// Multi-task training strategies of Table II.
enum class TrainingStrategy {
  kStl,   // single task: L_num + L_mask
  kPmtl,  // parallel: L_num + L_mask + L_ke summed every step
  kImtl,  // iterative: staged / interleaved schedule (ERNIE2-style)
};

/// Re-training (stage two) options.
struct ReTrainOptions {
  TrainingStrategy strategy = TrainingStrategy::kStl;
  int total_steps = 400;
  int batch_size = 8;
  /// Triples per KE step.
  int ke_batch_size = 6;
  float learning_rate = 5e-4f;
  /// Stage-two masking: 40% dynamic whole-word (Sec. IV-C).
  text::MaskingOptions masking{.mask_rate = 0.4f};
  /// Scale of the KE loss relative to L_mask + L_num (keeps the TransE
  /// geometry from collapsing the [CLS] space on small models).
  float ke_loss_weight = 0.5f;
  /// Individual numeric-objective switches (for ablations).
  bool use_regression = true;
  bool use_tag_classification = true;
  bool use_numeric_contrastive = true;
  /// false replaces the auto-weighted fusion by a plain sum (ablation).
  bool use_auto_weighting = true;
  float clip_norm = 5.0f;
};

/// One KE training triple: prompt-encoded head/relation/tail plus the ids
/// of head and tail in the entity table (for negative sampling).
struct KeTriple {
  text::EncodedInput head;
  text::EncodedInput relation;
  text::EncodedInput tail;
  int head_id = 0;
  int tail_id = 0;
};

/// Everything stage two consumes, already tokenized. Built by the model
/// zoo from the synthetic world; kept free of synth types so core stays
/// independent of the generators.
struct ReTrainData {
  /// Causal sentences (mask loss only).
  std::vector<text::EncodedInput> causal_sentences;
  /// Serialized KG triples as sentences (implicit knowledge injection).
  std::vector<text::EncodedInput> triple_sentences;
  /// Prompt-wrapped machine log records with numeric slots.
  std::vector<text::EncodedInput> machine_logs;
  /// Tag label per machine log's first numeric slot (-1 = unseen tag).
  std::vector<int> machine_log_tags;
  /// KE triples and the entity-id -> encoded-prompt table used to encode
  /// corrupted entities.
  std::vector<KeTriple> ke_triples;
  std::vector<text::EncodedInput> entity_inputs;
};

/// Per-step re-training diagnostics.
struct ReTrainStats {
  float mask_loss = 0.0f;
  float reg_loss = 0.0f;
  float cls_loss = 0.0f;
  float nc_loss = 0.0f;
  float ke_loss = 0.0f;
  float total_loss = 0.0f;
  bool ran_mask_task = false;
  bool ran_ke_task = false;
};

/// KTeleBERT: TeleBERT re-trained on causal and machine corpora with
/// numeric encoding (ANEnc/NDec/TGC + contrastive + auto-weighting +
/// orthogonal regularization) and explicit knowledge injection via a
/// KEPLER-style text-enhanced KE objective (Sec. IV).
class KTeleBert {
 public:
  KTeleBert(const KTeleBertConfig& config, Rng& rng);

  /// Copies the stage-one encoder weights (TeleBERT -> KTeleBERT).
  Status InitializeFromTeleBert(const TeleBert& telebert);

  /// Hidden states with numeric slots replaced by ANEnc embeddings.
  /// When `anenc_outputs` is non-null it receives the ANEnc embedding of
  /// each numeric slot (order matches input.numeric_slots).
  tensor::Tensor Hidden(const text::EncodedInput& input, Rng& rng,
                        bool training,
                        std::vector<tensor::Tensor>* anenc_outputs = nullptr)
      const;

  /// [CLS] output embedding [1, d].
  tensor::Tensor EncodeCls(const text::EncodedInput& input, Rng& rng,
                           bool training) const;

  /// Detached [CLS] embedding (service vector, Sec. V-A3). Runs tape-free
  /// (tensor::NoGradGuard); safe to call concurrently from many threads
  /// once the model is trained.
  std::vector<float> ServiceVector(const text::EncodedInput& input) const;

  /// Service vectors for a whole batch through the ragged batched forward
  /// path. Numeric slots still route through ANEnc per input. Row i agrees
  /// with ServiceVector(inputs[i]) within float round-off.
  std::vector<std::vector<float>> ServiceVectorBatch(
      const std::vector<const text::EncodedInput*>& inputs) const;

  /// KE distance d_r(h, t) = ||e_h + e_r - e_t|| (Eq. 11) over [CLS]
  /// encodings; scalar tensor.
  tensor::Tensor KeDistance(const text::EncodedInput& head,
                            const text::EncodedInput& relation,
                            const text::EncodedInput& tail, Rng& rng,
                            bool training) const;

  const KTeleBertConfig& config() const { return config_; }
  TransformerEncoder& encoder() { return *encoder_; }
  const TransformerEncoder& encoder() const { return *encoder_; }
  const AnEnc& anenc() const { return *anenc_; }

  NamedParams Parameters() const;
  tensor::TensorMap Checkpoint() const;
  Status Restore(const tensor::TensorMap& checkpoint);

 private:
  friend class ReTrainer;

  KTeleBertConfig config_;
  std::unique_ptr<TransformerEncoder> encoder_;
  std::unique_ptr<AnEnc> anenc_;
  std::unique_ptr<NumericDecoder> ndec_;
  std::unique_ptr<TagClassifier> tgc_;
  std::unique_ptr<LinearLayer> mlm_head_;  // d -> vocab (stage-two MLM)
  std::unique_ptr<AutoWeightedLoss> auto_loss_;
};

/// Stage-two trainer implementing the strategies of Table II.
class ReTrainer {
 public:
  ReTrainer(KTeleBert& model, const ReTrainOptions& options)
      : model_(model), options_(options) {}

  /// Runs the configured schedule; returns per-step stats.
  std::vector<ReTrainStats> Train(const ReTrainData& data, Rng& rng);

 private:
  /// Mask-reconstruction + numeric losses on a mixed batch; fills `stats`
  /// and returns the (scalar) step loss, or an undefined tensor when the
  /// batch produced no supervision.
  tensor::Tensor MaskNumericLoss(const ReTrainData& data, Rng& rng,
                                 ReTrainStats* stats);
  /// KE loss over a batch of triples (Eq. 10).
  tensor::Tensor KeLoss(const ReTrainData& data, Rng& rng,
                        ReTrainStats* stats);
  /// Which tasks run at `step` under the configured strategy.
  void TasksForStep(int step, bool* run_mask, bool* run_ke) const;

  KTeleBert& model_;
  ReTrainOptions options_;
};

}  // namespace core
}  // namespace telekit

#endif  // TELEKIT_CORE_KTELEBERT_H_

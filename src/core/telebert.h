#ifndef TELEKIT_CORE_TELEBERT_H_
#define TELEKIT_CORE_TELEBERT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/transformer.h"
#include "text/masking.h"
#include "text/tokenizer.h"

namespace telekit {
namespace core {

/// Stage-one pre-training options (Sec. III). Step counts are scaled-down
/// defaults for the CPU reproduction; raise them to approach the paper's
/// regime.
/// Stage-one self-supervision objective.
enum class PretrainObjective {
  /// ELECTRA: generator MLM + discriminator replaced-token detection
  /// (the paper's setup, Sec. III-B).
  kElectra,
  /// Plain masked-language modelling on the main encoder (ablation).
  kMlmOnly,
};

struct PretrainOptions {
  int steps = 300;
  int batch_size = 16;
  float learning_rate = 1e-3f;
  /// Stage-one masking (vanilla 15%, whole-word).
  text::MaskingOptions masking;
  PretrainObjective objective = PretrainObjective::kElectra;
  /// ELECTRA replaced-token-detection weight.
  float rtd_weight = 1.0f;
  /// SimCSE dropout-contrastive weight (0 disables).
  float simcse_weight = 0.1f;
  float simcse_temperature = 0.05f;
  /// Gradient clipping threshold.
  float clip_norm = 5.0f;
};

/// Per-step training diagnostics.
struct PretrainStats {
  float mlm_loss = 0.0f;
  float rtd_loss = 0.0f;
  float simcse_loss = 0.0f;
  float total_loss = 0.0f;
};

/// TeleBERT: the stage-one tele-domain PLM. The main encoder acts as the
/// ELECTRA discriminator (trained with replaced-token detection); a smaller
/// generator encoder performs mask reconstruction and supplies plausible
/// replacements; SimCSE dropout-contrastive learning regularizes the [CLS]
/// space. The same class pre-trained on the general corpus is the MacBERT
/// surrogate baseline.
class TeleBert {
 public:
  TeleBert(const EncoderConfig& config, Rng& rng);

  /// Runs pre-training over the encoded corpus; returns per-step stats.
  std::vector<PretrainStats> Pretrain(
      const std::vector<text::EncodedInput>& corpus, const text::Vocab& vocab,
      const PretrainOptions& options, Rng& rng);

  /// Hidden states of a (trimmed) encoded input: [length, d].
  tensor::Tensor Hidden(const text::EncodedInput& input, Rng& rng,
                        bool training) const;

  /// [CLS] output embedding as [1, d].
  tensor::Tensor EncodeCls(const text::EncodedInput& input, Rng& rng,
                           bool training) const;

  /// Detached [CLS] embedding as a plain vector (the "service vector").
  /// Runs tape-free (tensor::NoGradGuard); safe to call concurrently from
  /// many threads once the model is trained.
  std::vector<float> ServiceVector(const text::EncodedInput& input) const;

  /// Service vectors for a whole batch through the ragged batched forward
  /// path (one matmul per projection over all sequences). Row i agrees
  /// with ServiceVector(inputs[i]) within float round-off.
  std::vector<std::vector<float>> ServiceVectorBatch(
      const std::vector<const text::EncodedInput*>& inputs) const;

  TransformerEncoder& encoder() { return *encoder_; }
  const TransformerEncoder& encoder() const { return *encoder_; }

  /// All trainable parameters (encoder + generator + heads).
  NamedParams Parameters() const;

  /// Checkpoint round-trip.
  tensor::TensorMap Checkpoint() const;
  Status Restore(const tensor::TensorMap& checkpoint);

 private:
  /// One MLM forward through the generator; returns (loss, sampled
  /// replacement ids at masked positions).
  tensor::Tensor GeneratorMlmLoss(const text::MaskedExample& masked,
                                  int length, std::vector<int>* corrupted_ids,
                                  Rng& rng) const;

  std::unique_ptr<TransformerEncoder> encoder_;    // discriminator
  std::unique_ptr<TransformerEncoder> generator_;  // small MLM generator
  std::unique_ptr<LinearLayer> mlm_head_;          // d_gen -> vocab
  std::unique_ptr<LinearLayer> rtd_head_;          // d -> 1
  std::unique_ptr<LinearLayer> encoder_mlm_head_;  // d -> vocab (kMlmOnly)
};

}  // namespace core
}  // namespace telekit

#endif  // TELEKIT_CORE_TELEBERT_H_

#ifndef TELEKIT_CORE_SERVICE_H_
#define TELEKIT_CORE_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/ktelebert.h"
#include "core/telebert.h"
#include "kg/store.h"
#include "text/numeric.h"
#include "text/tokenizer.h"

namespace telekit {
namespace core {

/// Abstraction over everything that can turn an encoded input into a fixed
/// service vector: the pre-trained models and the baselines of the paper's
/// tables (random embeddings, averaged word embeddings).
class TextEncoder {
 public:
  virtual ~TextEncoder() = default;

  /// Service embedding of an encoded input.
  virtual std::vector<float> Encode(const text::EncodedInput& input) const = 0;

  /// Service embeddings of a batch. The default loops over Encode();
  /// transformer-backed encoders override with the ragged batched forward
  /// path (whole-batch projection matmuls). Result i agrees with
  /// Encode(*inputs[i]) within float round-off.
  virtual std::vector<std::vector<float>> EncodeBatch(
      const std::vector<const text::EncodedInput*>& inputs) const {
    std::vector<std::vector<float>> out;
    out.reserve(inputs.size());
    for (const text::EncodedInput* input : inputs) {
      out.push_back(Encode(*input));
    }
    return out;
  }

  /// Embedding dimensionality.
  virtual int dim() const = 0;
};

/// Adapter over TeleBert.
class TeleBertEncoder : public TextEncoder {
 public:
  explicit TeleBertEncoder(const TeleBert* model) : model_(model) {}
  std::vector<float> Encode(const text::EncodedInput& input) const override {
    return model_->ServiceVector(input);
  }
  std::vector<std::vector<float>> EncodeBatch(
      const std::vector<const text::EncodedInput*>& inputs) const override {
    return model_->ServiceVectorBatch(inputs);
  }
  int dim() const override { return model_->encoder().config().d_model; }

 private:
  const TeleBert* model_;
};

/// Adapter over KTeleBert.
class KTeleBertEncoder : public TextEncoder {
 public:
  explicit KTeleBertEncoder(const KTeleBert* model) : model_(model) {}
  std::vector<float> Encode(const text::EncodedInput& input) const override {
    return model_->ServiceVector(input);
  }
  std::vector<std::vector<float>> EncodeBatch(
      const std::vector<const text::EncodedInput*>& inputs) const override {
    return model_->ServiceVectorBatch(inputs);
  }
  int dim() const override { return model_->config().encoder.d_model; }

 private:
  const KTeleBert* model_;
};

/// "Random" baseline: a deterministic pseudo-random vector per input
/// (hashed from the token ids), drawn from a uniform distribution.
class RandomEncoder : public TextEncoder {
 public:
  RandomEncoder(int dim, uint64_t seed) : dim_(dim), seed_(seed) {}
  std::vector<float> Encode(const text::EncodedInput& input) const override;
  int dim() const override { return dim_; }

 private:
  int dim_;
  uint64_t seed_;
};

/// "Word Embeddings" baseline (Table VI): each word id gets a fixed random
/// vector; the input is represented by the average of its word vectors, so
/// word overlap alone provides signal.
class WordAveragingEncoder : public TextEncoder {
 public:
  WordAveragingEncoder(int dim, uint64_t seed) : dim_(dim), seed_(seed) {}
  std::vector<float> Encode(const text::EncodedInput& input) const override;
  int dim() const override { return dim_; }

 private:
  std::vector<float> WordVector(int token_id) const;

  int dim_;
  uint64_t seed_;
};

/// Service-delivery data formats (Sec. V-A3).
enum class ServiceMode {
  /// Pure literal name.
  kOnlyName,
  /// Name mapped to a Tele-KG entity by surface (adds its class).
  kEntityNoAttr,
  /// Entity mapping plus its attributes appended.
  kEntityWithAttr,
};

/// Builds prompt-wrapped inputs for downstream task names and encodes them
/// with any TextEncoder, following the paper's delivery paradigm: the
/// target name is wrapped in the Fig. 3 templates, optionally enriched with
/// the Tele-KG entity's class and attributes.
class ServiceEncoder {
 public:
  /// `store` and `normalizer` may be null; entity modes then degrade to
  /// only-name.
  ServiceEncoder(const TextEncoder* encoder, const text::Tokenizer* tokenizer,
                 const kg::TripleStore* store,
                 const text::MinMaxNormalizer* normalizer)
      : encoder_(encoder),
        tokenizer_(tokenizer),
        store_(store),
        normalizer_(normalizer) {}

  /// Prompt-wrapped encoded input for `name` under `mode`.
  text::EncodedInput BuildInput(const std::string& name,
                                ServiceMode mode) const;

  /// Service embedding of `name` under `mode`.
  std::vector<float> Encode(const std::string& name, ServiceMode mode) const;

  /// Service embeddings of a whole catalogue of names through the batched
  /// encoder path (BuildInput per name, one batched forward).
  std::vector<std::vector<float>> EncodeBatch(
      const std::vector<std::string>& names, ServiceMode mode) const;

  /// Encodes already-built inputs through the batched encoder path.
  std::vector<std::vector<float>> EncodeInputs(
      const std::vector<const text::EncodedInput*>& inputs) const {
    return encoder_->EncodeBatch(inputs);
  }

  int dim() const { return encoder_->dim(); }

 private:
  const TextEncoder* encoder_;
  const text::Tokenizer* tokenizer_;
  const kg::TripleStore* store_;
  const text::MinMaxNormalizer* normalizer_;
};

}  // namespace core
}  // namespace telekit

#endif  // TELEKIT_CORE_SERVICE_H_

#include "core/service.h"

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "synth/kg_gen.h"
#include "text/prompt.h"

namespace telekit {
namespace core {

namespace {

uint64_t HashIds(const std::vector<int>& ids, int length, uint64_t seed) {
  uint64_t h = seed ^ 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < length; ++i) {
    h ^= static_cast<uint64_t>(ids[static_cast<size_t>(i)]) + 0x9E3779B9ULL +
         (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

std::vector<float> RandomEncoder::Encode(
    const text::EncodedInput& input) const {
  Rng rng(HashIds(input.ids, input.length, seed_));
  std::vector<float> out(static_cast<size_t>(dim_));
  for (float& v : out) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return out;
}

std::vector<float> WordAveragingEncoder::WordVector(int token_id) const {
  Rng rng(seed_ * 1000003ULL + static_cast<uint64_t>(token_id));
  std::vector<float> out(static_cast<size_t>(dim_));
  for (float& v : out) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return out;
}

std::vector<float> WordAveragingEncoder::Encode(
    const text::EncodedInput& input) const {
  std::vector<float> sum(static_cast<size_t>(dim_), 0.0f);
  int count = 0;
  for (int i = 0; i < input.length; ++i) {
    const int id = input.ids[static_cast<size_t>(i)];
    if (text::Vocab::IsSpecial(id)) continue;
    const std::vector<float> w = WordVector(id);
    for (int d = 0; d < dim_; ++d) {
      sum[static_cast<size_t>(d)] += w[static_cast<size_t>(d)];
    }
    ++count;
  }
  if (count > 0) {
    for (float& v : sum) v /= static_cast<float>(count);
  }
  return sum;
}

text::EncodedInput ServiceEncoder::BuildInput(const std::string& name,
                                              ServiceMode mode) const {
  TELEKIT_CHECK(tokenizer_ != nullptr);
  text::PromptBuilder builder;
  builder.Entity(name);
  if (mode != ServiceMode::kOnlyName && store_ != nullptr) {
    auto entity = store_->FindEntity(name);
    if (entity.ok()) {
      // Class membership via instanceOf (one hop).
      auto instance_of = store_->FindRelation(synth::TeleSchema::kInstanceOf);
      if (instance_of.ok()) {
        for (kg::EntityId cls : store_->Objects(*entity, *instance_of)) {
          builder.Attribute("type", store_->EntitySurface(cls));
          break;
        }
      }
      if (mode == ServiceMode::kEntityWithAttr) {
        for (const kg::StringAttribute& attr :
             store_->StringAttributesOf(*entity)) {
          if (attr.attribute == "code") continue;  // IDs carry no semantics
          builder.Attribute(attr.attribute, attr.value);
        }
        for (const kg::NumericAttribute& attr :
             store_->NumericAttributesOf(*entity)) {
          const float normalized =
              normalizer_ != nullptr
                  ? normalizer_->Normalize(attr.attribute, attr.value)
                  : 0.5f;
          builder.NumericAttribute(attr.attribute, normalized);
        }
      }
    }
  }
  return tokenizer_->Encode(builder.Build());
}

std::vector<float> ServiceEncoder::Encode(const std::string& name,
                                          ServiceMode mode) const {
  TELEKIT_CHECK(encoder_ != nullptr);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& calls = registry.GetCounter("service/encode_calls");
  static obs::Histogram& latency =
      registry.GetHistogram("service/encode_ms");
  calls.Increment();
  obs::ScopedTimer timer(latency);
  return encoder_->Encode(BuildInput(name, mode));
}

std::vector<std::vector<float>> ServiceEncoder::EncodeBatch(
    const std::vector<std::string>& names, ServiceMode mode) const {
  TELEKIT_CHECK(encoder_ != nullptr);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& calls = registry.GetCounter("service/encode_calls");
  static obs::Histogram& batch_rows =
      registry.GetHistogram("service/encode_batch_rows",
                            {1, 2, 4, 8, 16, 32, 64, 128, 256});
  calls.Increment(names.size());
  batch_rows.Observe(static_cast<double>(names.size()));
  std::vector<text::EncodedInput> inputs;
  inputs.reserve(names.size());
  for (const std::string& name : names) {
    inputs.push_back(BuildInput(name, mode));
  }
  std::vector<const text::EncodedInput*> pointers;
  pointers.reserve(inputs.size());
  for (const text::EncodedInput& input : inputs) pointers.push_back(&input);
  return encoder_->EncodeBatch(pointers);
}

}  // namespace core
}  // namespace telekit

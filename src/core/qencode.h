#ifndef TELEKIT_CORE_QENCODE_H_
#define TELEKIT_CORE_QENCODE_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/service.h"
#include "core/transformer.h"
#include "text/tokenizer.h"

namespace telekit {
namespace core {

/// One int8-quantized dense layer y = x W + b for the inference-only
/// encode path (DESIGN.md §3). Weights are quantized symmetrically per
/// output column at construction (scale_j = max_i |W[i][j]| / 127) and
/// stored transposed [out, in] so each output's dot product reads a
/// contiguous int8 row. Activations are quantized per input row at run
/// time (dynamic symmetric scale, optionally bounded by a calibrated
/// clip), accumulated in int32, and dequantized into fp32 with the bias
/// added back in full precision:
///
///   y[j] = DotI8(q(x), Wq[j]) * scale_x * scale_w[j] + b[j]
class QuantizedLinear {
 public:
  /// `weight` is the fp32 [in, out] matrix, `bias` the [out] vector.
  QuantizedLinear(const tensor::Tensor& weight, const tensor::Tensor& bias);

  /// Applies the layer to `rows` stacked input rows; `x` is [rows, in]
  /// row-major, `out` is [rows, out] row-major (pre-sized by the caller).
  void Forward(const float* x, int rows, float* out) const;

  /// Records max_i |x[i]| over the rows into the running calibration
  /// maximum (does not run the layer). Const so the shared forward path
  /// can call it; not safe against concurrent Forward/Observe — finish
  /// calibration before serving.
  void Observe(const float* x, int rows) const;

  /// Freezes the observed activation range: per-row scales are henceforth
  /// bounded by the recorded maximum, so a single outlier row at serving
  /// time saturates instead of stretching its own scale.
  void FreezeCalibration() { clip_ = observed_max_; }

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }
  /// Calibrated activation clip (0 until FreezeCalibration).
  float clip() const { return clip_; }

 private:
  int in_dim_ = 0;
  int out_dim_ = 0;
  /// [out, in] row-major: row j holds column j of the fp32 weight.
  std::vector<int8_t> weight_q_;
  std::vector<float> weight_scale_;  // [out]
  std::vector<float> bias_;          // [out]
  float clip_ = 0.0f;  // 0 = unclipped (dynamic scales only)
  mutable float observed_max_ = 0.0f;
};

/// Inference-only int8 twin of a trained TransformerEncoder, exposed as a
/// TextEncoder so ServeEngine can swap it in per request
/// (--precision=int8). Construction snapshots the fp32 weights: the six
/// dense layers per transformer block (q/k/v/o, ffn_in/ffn_out) become
/// QuantizedLinears; embeddings, layer-norm parameters, attention
/// scores/softmax and the GELU stay fp32, so the int8 error budget is
/// confined to the GEMMs that dominate encode cost.
///
/// The encoder is a pure function of the snapshot — safe to call
/// concurrently from serve workers once built (and once Calibrate, if
/// used, has completed).
class QuantizedEncoder : public TextEncoder {
 public:
  /// Replaces numeric-slot rows of the embedding layer with externally
  /// computed [d] vectors, mirroring the ANEnc hook of KTeleBERT (pairs
  /// are (sequence position, row)).
  using OverrideHook = std::function<std::vector<std::pair<int, std::vector<float>>>(
      const text::EncodedInput&)>;

  /// Snapshots `encoder`'s weights. `anenc_hook` may be null (TeleBERT).
  explicit QuantizedEncoder(const TransformerEncoder& encoder,
                            OverrideHook anenc_hook = nullptr);

  /// Runs `inputs` through the embedding + attention front half of the
  /// forward pass, recording each quantized layer's activation range, then
  /// freezes the ranges. Call once, before serving, with a representative
  /// corpus (the serve tier uses the task catalogue).
  void Calibrate(const std::vector<const text::EncodedInput*>& inputs);

  std::vector<float> Encode(const text::EncodedInput& input) const override;
  std::vector<std::vector<float>> EncodeBatch(
      const std::vector<const text::EncodedInput*>& inputs) const override;
  int dim() const override { return config_.d_model; }

  const EncoderConfig& config() const { return config_; }

 private:
  struct Layer {
    QuantizedLinear query;
    QuantizedLinear key;
    QuantizedLinear value;
    QuantizedLinear output;
    QuantizedLinear ffn_in;
    QuantizedLinear ffn_out;
    std::vector<float> norm1_gain, norm1_bias;
    std::vector<float> norm2_gain, norm2_bias;
  };

  /// Embedding-layer output for one input: [length, d] row-major.
  std::vector<float> Embed(const text::EncodedInput& input,
                           int* length) const;
  /// Runs the layer stack in place over `h` ([length, d]); `calibrating`
  /// records activation ranges instead of trusting the frozen clips.
  void RunLayers(std::vector<float>* h, int length, bool calibrating) const;

  EncoderConfig config_;
  std::vector<float> token_table_;     // [V, d]
  std::vector<float> position_table_;  // [max_len, d]
  std::vector<float> embed_gain_, embed_bias_;
  std::vector<Layer> layers_;
  OverrideHook anenc_hook_;
};

}  // namespace core
}  // namespace telekit

#endif  // TELEKIT_CORE_QENCODE_H_

#include "synth/log.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace telekit {
namespace synth {

float LogGenerator::NormalValue(int kpi_type, Rng& rng) const {
  const KpiType& kpi = world_.kpis()[static_cast<size_t>(kpi_type)];
  return kpi.baseline *
         static_cast<float>(1.0 + rng.Normal(0.0, config_.baseline_noise));
}

float LogGenerator::AnomalousValue(int kpi_type, Rng& rng) const {
  const KpiType& kpi = world_.kpis()[static_cast<size_t>(kpi_type)];
  const float excursion =
      kpi.scale * static_cast<float>(rng.Uniform(0.7, 1.3));
  return kpi.increases_on_fault ? kpi.baseline + excursion
                                : std::max(0.0f, kpi.baseline - excursion);
}

int LogGenerator::PlaceEvent(int alarm_type, int near_element,
                             const std::vector<int>* subnet, Rng& rng) const {
  const int home_type =
      world_.alarms()[static_cast<size_t>(alarm_type)].home_ne_type;
  // Candidates: topology neighbors of the parent event's element (fault
  // propagation is local), preferring the alarm's home NE type; fall back
  // to the parent element itself.
  std::vector<int> neighbors = world_.TopologyNeighbors(near_element);
  if (subnet != nullptr) {
    std::erase_if(neighbors, [subnet](int e) {
      return std::find(subnet->begin(), subnet->end(), e) == subnet->end();
    });
  }
  if (neighbors.empty()) return near_element;
  std::vector<double> weights;
  weights.reserve(neighbors.size());
  for (int e : neighbors) {
    weights.push_back(
        world_.elements()[static_cast<size_t>(e)].type == home_type ? 5.0
                                                                    : 1.0);
  }
  return neighbors[rng.Categorical(weights)];
}

Episode LogGenerator::Simulate(Rng& rng) const {
  const std::vector<int> roots = world_.RootAlarms();
  TELEKIT_CHECK(!roots.empty()) << "world has no root alarms";
  const int root =
      roots[static_cast<size_t>(rng.UniformInt(roots.size()))];
  return SimulateOnSubnet(root, /*subnet=*/{}, rng);
}

Episode LogGenerator::SimulateOnSubnet(int root_alarm,
                                       const std::vector<int>& subnet,
                                       Rng& rng) const {
  Episode episode;
  episode.root_alarm = root_alarm;
  const std::vector<int>* subnet_ptr = subnet.empty() ? nullptr : &subnet;

  // Root element: prefer elements of the alarm's home type (inside the
  // subnet when one is given).
  const int home_type =
      world_.alarms()[static_cast<size_t>(root_alarm)].home_ne_type;
  std::vector<int> candidates =
      subnet.empty()
          ? world_.ElementsOfType(home_type)
          : subnet;
  if (candidates.empty()) {
    for (const NetworkElement& e : world_.elements()) {
      candidates.push_back(e.id);
    }
  }
  if (!subnet.empty()) {
    // Within a subnet prefer home-typed elements but accept any.
    std::vector<double> weights;
    for (int e : candidates) {
      weights.push_back(
          world_.elements()[static_cast<size_t>(e)].type == home_type ? 5.0
                                                                      : 1.0);
    }
    episode.root_element = candidates[rng.Categorical(weights)];
  } else {
    episode.root_element =
        candidates[static_cast<size_t>(rng.UniformInt(candidates.size()))];
  }

  // Breadth-first propagation along trigger edges.
  episode.events.push_back({root_alarm, episode.root_element, 0.0});
  std::deque<size_t> frontier = {0};
  std::vector<bool> alarm_seen(world_.alarms().size(), false);
  alarm_seen[static_cast<size_t>(root_alarm)] = true;
  while (!frontier.empty()) {
    const size_t parent_index = frontier.front();
    const AlarmEvent parent = episode.events[parent_index];
    frontier.pop_front();
    for (const auto& [child, confidence] :
         world_.TriggeredAlarms(parent.alarm_type)) {
      if (alarm_seen[static_cast<size_t>(child)]) continue;
      if (!rng.Bernoulli(confidence)) continue;
      alarm_seen[static_cast<size_t>(child)] = true;
      AlarmEvent event;
      event.alarm_type = child;
      event.element = PlaceEvent(child, parent.element, subnet_ptr, rng);
      event.time =
          parent.time + config_.hop_delay * rng.Uniform(0.5, 1.5);
      event.parent_index = static_cast<int>(parent_index);
      episode.events.push_back(event);
      frontier.push_back(episode.events.size() - 1);
    }
  }

  // KPI impact of every active alarm, on the alarm's element.
  for (const AlarmEvent& event : episode.events) {
    for (const auto& [kpi, confidence] :
         world_.AffectedKpis(event.alarm_type)) {
      if (!rng.Bernoulli(confidence)) continue;
      KpiReading reading;
      reading.kpi_type = kpi;
      reading.element = event.element;
      reading.time = event.time + rng.Uniform(0.0, 0.5);
      reading.value = AnomalousValue(kpi, rng);
      reading.anomalous = true;
      episode.readings.push_back(reading);
    }
  }
  // Normal context readings from unaffected KPIs.
  for (int i = 0; i < config_.normal_readings_per_episode; ++i) {
    KpiReading reading;
    reading.kpi_type =
        static_cast<int>(rng.UniformInt(world_.kpis().size()));
    reading.element =
        static_cast<int>(rng.UniformInt(world_.elements().size()));
    reading.time = rng.Uniform(0.0, 10.0);
    reading.value = NormalValue(reading.kpi_type, rng);
    reading.anomalous = false;
    episode.readings.push_back(reading);
  }
  return episode;
}

std::vector<Episode> LogGenerator::SimulateMany(int n, Rng& rng) const {
  std::vector<Episode> episodes;
  episodes.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) episodes.push_back(Simulate(rng));
  return episodes;
}

std::vector<KpiReading> LogGenerator::NormalReadings(int count,
                                                     Rng& rng) const {
  std::vector<KpiReading> readings;
  readings.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    KpiReading reading;
    reading.kpi_type =
        static_cast<int>(rng.UniformInt(world_.kpis().size()));
    reading.element =
        static_cast<int>(rng.UniformInt(world_.elements().size()));
    reading.time = rng.Uniform(0.0, 100.0);
    reading.value = NormalValue(reading.kpi_type, rng);
    reading.anomalous = false;
    readings.push_back(reading);
  }
  return readings;
}

}  // namespace synth
}  // namespace telekit

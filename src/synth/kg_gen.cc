#include "synth/kg_gen.h"

#include <unordered_map>

namespace telekit {
namespace synth {

std::string KgGenerator::AlarmEntitySurface(const AlarmType& alarm) {
  return alarm.name;
}

std::string KgGenerator::KpiEntitySurface(const KpiType& kpi) {
  return kpi.name;
}

kg::TripleStore KgGenerator::Generate(
    const WorldModel& world, const std::vector<Episode>& episodes) const {
  kg::TripleStore store;

  // --- Schema level (top-down tele-schema, Sec. II-A3) ---------------------
  const kg::EntityId event_class = store.AddEntity(TeleSchema::kEvent);
  const kg::EntityId resource_class = store.AddEntity(TeleSchema::kResource);
  const kg::EntityId alarm_class = store.AddEntity(TeleSchema::kAlarmClass);
  const kg::EntityId kpi_class = store.AddEntity(TeleSchema::kKpiClass);
  const kg::EntityId ne_class = store.AddEntity(TeleSchema::kNeClass);
  const kg::EntityId service_class =
      store.AddEntity(TeleSchema::kServiceClass);

  const kg::RelationId subclass_of =
      store.AddRelation(TeleSchema::kSubclassOf);
  const kg::RelationId instance_of =
      store.AddRelation(TeleSchema::kInstanceOf);
  const kg::RelationId trigger = store.AddRelation(TeleSchema::kTrigger);
  const kg::RelationId affects = store.AddRelation(TeleSchema::kAffects);
  const kg::RelationId connected_to =
      store.AddRelation(TeleSchema::kConnectedTo);
  const kg::RelationId provide = store.AddRelation(TeleSchema::kProvide);
  const kg::RelationId concerns = store.AddRelation(TeleSchema::kConcerns);
  const kg::RelationId deployed_as =
      store.AddRelation(TeleSchema::kDeployedAs);

  store.AddTriple(alarm_class, subclass_of, event_class);
  store.AddTriple(kpi_class, subclass_of, event_class);
  store.AddTriple(ne_class, subclass_of, resource_class);
  store.AddTriple(service_class, subclass_of, resource_class);

  // NE-type classes under NetworkElement.
  std::vector<kg::EntityId> ne_type_entities;
  for (const NeType& t : world.ne_types()) {
    const kg::EntityId e = store.AddEntity(t.name);
    store.AddTriple(e, subclass_of, ne_class);
    ne_type_entities.push_back(e);
  }
  // Services under Service.
  std::vector<kg::EntityId> service_entities;
  for (const std::string& s : world.services()) {
    const kg::EntityId e = store.AddEntity(s);
    store.AddTriple(e, subclass_of, service_class);
    service_entities.push_back(e);
  }

  // --- Instance level ---------------------------------------------------------
  std::vector<kg::EntityId> alarm_entities;
  for (const AlarmType& alarm : world.alarms()) {
    const kg::EntityId e = store.AddEntity(AlarmEntitySurface(alarm));
    store.AddTriple(e, instance_of, alarm_class);
    store.AddTriple(
        e, concerns,
        service_entities[static_cast<size_t>(alarm.service)]);
    store.AddStringAttribute(e, "severity", alarm.severity);
    store.AddStringAttribute(e, "code", alarm.code);
    alarm_entities.push_back(e);
  }
  std::vector<kg::EntityId> kpi_entities;
  for (const KpiType& kpi : world.kpis()) {
    const kg::EntityId e = store.AddEntity(KpiEntitySurface(kpi));
    store.AddTriple(e, instance_of, kpi_class);
    store.AddTriple(e, concerns,
                    service_entities[static_cast<size_t>(kpi.service)]);
    store.AddNumericAttribute(e, "baseline level", kpi.baseline);
    store.AddNumericAttribute(e, "excursion scale", kpi.scale);
    kpi_entities.push_back(e);
  }
  std::vector<kg::EntityId> element_entities;
  for (const NetworkElement& element : world.elements()) {
    const kg::EntityId e = store.AddEntity(element.name);
    store.AddTriple(e, instance_of,
                    ne_type_entities[static_cast<size_t>(element.type)]);
    store.AddTriple(ne_type_entities[static_cast<size_t>(element.type)],
                    deployed_as, e);
    element_entities.push_back(e);
  }
  for (const auto& [u, v] : world.topology()) {
    store.AddTriple(element_entities[static_cast<size_t>(u)], connected_to,
                    element_entities[static_cast<size_t>(v)]);
    store.AddTriple(element_entities[static_cast<size_t>(v)], connected_to,
                    element_entities[static_cast<size_t>(u)]);
  }
  // NE types provide services (derived from alarm home types).
  for (const AlarmType& alarm : world.alarms()) {
    store.AddTriple(
        ne_type_entities[static_cast<size_t>(alarm.home_ne_type)], provide,
        service_entities[static_cast<size_t>(alarm.service)]);
  }

  // Causal DAG as expert triples (with confidences).
  for (const CausalEdge& edge : world.causal_edges()) {
    const kg::EntityId src =
        alarm_entities[static_cast<size_t>(edge.src_alarm)];
    if (edge.kind == CausalEdge::Kind::kAlarmTriggersAlarm) {
      store.AddQuadruple(src, trigger,
                         alarm_entities[static_cast<size_t>(edge.dst)],
                         edge.confidence);
    } else {
      store.AddQuadruple(src, affects,
                         kpi_entities[static_cast<size_t>(edge.dst)],
                         edge.confidence);
    }
  }

  // Observed occurrence counts from the episodes (numeric attributes).
  std::unordered_map<int, float> alarm_counts;
  for (const Episode& episode : episodes) {
    for (const AlarmEvent& event : episode.events) {
      alarm_counts[event.alarm_type] += 1.0f;
    }
  }
  for (const auto& [alarm, count] : alarm_counts) {
    store.AddNumericAttribute(alarm_entities[static_cast<size_t>(alarm)],
                              "occurrence count", count);
  }
  return store;
}

}  // namespace synth
}  // namespace telekit

#ifndef TELEKIT_SYNTH_KG_GEN_H_
#define TELEKIT_SYNTH_KG_GEN_H_

#include <string>
#include <vector>

#include "kg/store.h"
#include "synth/log.h"
#include "synth/world.h"

namespace telekit {
namespace synth {

/// Names of the schema entities and relations emitted by KgGenerator, so
/// that consumers can look them up without string literals scattering.
struct TeleSchema {
  static constexpr const char* kEvent = "Event";
  static constexpr const char* kResource = "Resource";
  static constexpr const char* kAlarmClass = "Alarm";
  static constexpr const char* kKpiClass = "KPI";
  static constexpr const char* kNeClass = "NetworkElement";
  static constexpr const char* kServiceClass = "Service";

  static constexpr const char* kSubclassOf = "subclassOf";
  static constexpr const char* kInstanceOf = "instanceOf";
  static constexpr const char* kTrigger = "trigger";
  static constexpr const char* kAffects = "affects";
  static constexpr const char* kConnectedTo = "connectedTo";
  static constexpr const char* kProvide = "provide";
  static constexpr const char* kConcerns = "concerns";
  static constexpr const char* kDeployedAs = "deployedAs";
};

/// Builds the Tele-KG (Fig. 2 of the paper) from the world model: the
/// hierarchical tele-schema (Event/Resource roots with subclassOf chains),
/// instance-level entities for alarms / KPIs / network elements, relational
/// triples mirroring the causal DAG and the topology, and attribute triples
/// (severity strings, numeric baselines, observed occurrence counts from
/// the episodes).
class KgGenerator {
 public:
  /// `episodes` supply the observed-count numeric attributes; may be empty.
  kg::TripleStore Generate(const WorldModel& world,
                           const std::vector<Episode>& episodes) const;

  /// Surface form under which an alarm type is registered as an entity
  /// (its natural-language name — so task names map to entities by
  /// surface, Sec. V-A3).
  static std::string AlarmEntitySurface(const AlarmType& alarm);
  /// Surface form of a KPI entity.
  static std::string KpiEntitySurface(const KpiType& kpi);
};

}  // namespace synth
}  // namespace telekit

#endif  // TELEKIT_SYNTH_KG_GEN_H_

#ifndef TELEKIT_SYNTH_REPLAY_H_
#define TELEKIT_SYNTH_REPLAY_H_

#include <chrono>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "synth/log.h"
#include "synth/signaling.h"
#include "synth/world.h"

namespace telekit {
namespace synth {

/// One fault episode placed on the shared stream timeline: the episode's
/// relative event/reading times are interpreted as offsets from
/// `start_time`, and `signaling` holds the procedure runs simulated while
/// the episode was active (re-based onto the same offsets).
struct ScheduledEpisode {
  double start_time = 0.0;
  Episode episode;
  std::vector<SignalingRecord> signaling;
};

/// One element of the interleaved alarm/KPI/signaling stream. Exactly one
/// of the three payloads is meaningful, selected by `kind`. `time` is the
/// occurrence time on the shared simulation clock; `arrival` is the
/// delivery time (time + transport jitter), which is the order the stream
/// is replayed in — so a consumer observes bounded out-of-order delivery.
struct StreamEvent {
  enum class Kind { kAlarm, kKpi, kSignaling };
  Kind kind = Kind::kAlarm;
  double time = 0.0;
  double arrival = 0.0;
  /// Index into the ScheduledEpisode vector this event belongs to; -1 for
  /// background traffic. Ground truth for evaluation only — the streaming
  /// consumer never reads it.
  int episode_id = -1;
  AlarmEvent alarm;
  KpiReading kpi;
  SignalingRecord signaling;
};

/// Replay-stream generation parameters.
struct ReplayConfig {
  /// Fault episodes on the timeline.
  int num_episodes = 20;
  /// Mean gap between consecutive episode starts (exponential arrivals).
  double mean_episode_gap = 12.0;
  /// Signaling procedure runs simulated during each episode.
  int signaling_runs_per_episode = 2;
  /// Normal background KPI readings spread over the whole timeline.
  int background_readings = 128;
  /// Healthy background signaling procedure runs.
  int background_procedures = 8;
  /// Max transport jitter: arrival = time + U(0, jitter). Keep below the
  /// consumer's watermark delay or events will be dropped as late.
  double jitter = 0.5;
};

/// Schedules `config.num_episodes` fault episodes onto one timeline with
/// exponential inter-arrival gaps, simulating each episode's alarms/KPIs
/// and its in-episode signaling runs. Deterministic given `rng`.
std::vector<ScheduledEpisode> ScheduleEpisodes(const LogGenerator& log_gen,
                                               const SignalingFlowGenerator&
                                                   signaling_gen,
                                               const ReplayConfig& config,
                                               Rng& rng);

/// Flattens scheduled episodes plus background traffic into one stream
/// sorted by arrival time (ties broken deterministically), with per-event
/// jitter applied. Deterministic given `rng`.
std::vector<StreamEvent> BuildReplayStream(
    const LogGenerator& log_gen, const SignalingFlowGenerator& signaling_gen,
    const std::vector<ScheduledEpisode>& episodes, const ReplayConfig& config,
    Rng& rng);

/// Maps simulation seconds to wall-clock pacing. A speedup of S plays S
/// simulated seconds per wall second; infinity (or <= 0) never sleeps, so
/// the stream replays as fast as the consumer can drain it.
class SimClock {
 public:
  explicit SimClock(double speedup) : speedup_(speedup) {}

  static constexpr double kInfiniteSpeedup =
      std::numeric_limits<double>::infinity();

  /// Blocks until `sim_time` is due on the wall clock. The wall epoch is
  /// anchored at the first call.
  void SleepUntil(double sim_time);

  bool paced() const {
    return speedup_ > 0.0 && speedup_ != kInfiniteSpeedup;
  }
  double speedup() const { return speedup_; }

 private:
  double speedup_;
  bool started_ = false;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace synth
}  // namespace telekit

#endif  // TELEKIT_SYNTH_REPLAY_H_

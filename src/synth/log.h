#ifndef TELEKIT_SYNTH_LOG_H_
#define TELEKIT_SYNTH_LOG_H_

#include <vector>

#include "common/rng.h"
#include "synth/world.h"

namespace telekit {
namespace synth {

/// A single alarm occurrence in the machine log.
struct AlarmEvent {
  int alarm_type = 0;
  int element = 0;
  double time = 0.0;
  /// Index (into Episode::events) of the event whose trigger edge raised
  /// this one; -1 for the root. Forms the propagation tree.
  int parent_index = -1;
};

/// A single KPI reading in the machine log.
struct KpiReading {
  int kpi_type = 0;
  int element = 0;
  double time = 0.0;
  float value = 0.0f;
  /// True when the reading is a fault excursion (ground truth; used only
  /// for evaluation, never shown to models).
  bool anomalous = false;
};

/// One fault episode = one MDAF-package equivalent: a root alarm, the
/// alarms it propagated to along the causal DAG, and the KPI readings
/// (anomalous + normal context) collected in the window.
struct Episode {
  int root_alarm = 0;
  int root_element = 0;
  std::vector<AlarmEvent> events;     // propagation order; events[0] is root
  std::vector<KpiReading> readings;
};

/// Log-simulation parameters.
struct LogConfig {
  /// Relative noise on normal KPI readings.
  double baseline_noise = 0.04;
  /// Normal (non-anomalous) context readings per episode.
  int normal_readings_per_episode = 12;
  /// Mean propagation delay between trigger hops.
  double hop_delay = 1.0;
};

/// Simulates machine log data from the world's causal DAG: fault episodes
/// whose alarms follow trigger edges (Bernoulli per edge confidence) and
/// whose KPI values co-move with the alarms that affect them — the
/// correlation structure ANEnc is designed to encode (Sec. IV-B).
class LogGenerator {
 public:
  LogGenerator(const WorldModel& world, const LogConfig& config)
      : world_(world), config_(config) {}

  /// One fault episode from a random root alarm.
  Episode Simulate(Rng& rng) const;

  /// One fault episode from the given root alarm, restricted to the given
  /// subnet elements (used by the RCA state generator). `subnet` must be
  /// non-empty; events are placed on subnet elements only.
  Episode SimulateOnSubnet(int root_alarm, const std::vector<int>& subnet,
                           Rng& rng) const;

  /// `n` independent episodes.
  std::vector<Episode> SimulateMany(int n, Rng& rng) const;

  /// Normal background KPI stream (no faults), `count` readings.
  std::vector<KpiReading> NormalReadings(int count, Rng& rng) const;

  /// A normal (baseline + noise) value for one KPI type.
  float NormalValue(int kpi_type, Rng& rng) const;
  /// A fault-excursion value for one KPI type.
  float AnomalousValue(int kpi_type, Rng& rng) const;

 private:
  int PlaceEvent(int alarm_type, int near_element,
                 const std::vector<int>* subnet, Rng& rng) const;

  const WorldModel& world_;
  LogConfig config_;
};

}  // namespace synth
}  // namespace telekit

#endif  // TELEKIT_SYNTH_LOG_H_

#ifndef TELEKIT_SYNTH_TASK_DATA_H_
#define TELEKIT_SYNTH_TASK_DATA_H_

#include <string>
#include <vector>

#include "graph/gcn.h"
#include "kg/store.h"
#include "synth/log.h"
#include "synth/world.h"

namespace telekit {
namespace synth {

// ===== Root-cause analysis (Table III / IV) ==================================

/// One labelled state of the telecommunication system: a subnet graph, a
/// node-feature matrix of abnormal-event counts, and the root-cause node.
struct RcaStateGraph {
  /// World element ids of the subnet nodes (node i <-> elements[i]).
  std::vector<int> elements;
  /// Induced topology over local node ids 0..n-1.
  graph::Graph topology;
  /// [n][num_features] abnormal-event counts (x_ij = event j happened
  /// x_ij times on node i; Sec. V-B1).
  std::vector<std::vector<float>> features;
  /// Local node id of the labelled root cause.
  int root_node = 0;
};

struct RcaDataConfig {
  int num_graphs = 127;  // Table III
  int min_nodes = 8;
  int max_nodes = 14;
  /// Mean spurious (non-causal) events sprinkled per graph.
  double noise_events = 3.0;
};

/// The full RCA dataset plus the feature-id -> surface mapping used for
/// service-embedding node initialization.
struct RcaDataset {
  int num_features = 0;
  /// Natural-language surface of each abnormal-event feature (alarm names
  /// followed by KPI-anomaly descriptions).
  std::vector<std::string> feature_surfaces;
  std::vector<RcaStateGraph> graphs;

  double AverageNodes() const;
  double AverageEdges() const;
};

/// Generates RCA states by sampling subnets and simulating fault episodes
/// restricted to them.
class RcaDataGen {
 public:
  RcaDataGen(const WorldModel& world, const LogGenerator& logs)
      : world_(world), logs_(logs) {}

  RcaDataset Generate(const RcaDataConfig& config, Rng& rng) const;

 private:
  std::vector<int> SampleSubnet(int target_size, Rng& rng) const;

  const WorldModel& world_;
  const LogGenerator& logs_;
};

// ===== Event association prediction (Table V / VI) ============================

/// One labelled event pair: two events with the elements they occurred on
/// and their occurrence times (from the MDAF-package log data).
struct EapPairSample {
  int event_a = 0;  // alarm type id
  int event_b = 0;
  int element_a = 0;  // world element id
  int element_b = 0;
  double time_a = 0.0;
  double time_b = 0.0;
  bool positive = false;
};

struct EapDataConfig {
  /// Number of fault episodes mined for trigger observations
  /// (the paper's 104 MDAF packages).
  int num_packages = 104;
};

struct EapDataset {
  /// Surface of each event (indexed by alarm type id).
  std::vector<std::string> event_surfaces;
  /// Full NE topology (the paper's 31 network elements).
  graph::Graph topology;
  /// Balanced positive/negative pairs.
  std::vector<EapPairSample> pairs;
  /// Distinct events observed in at least one pair.
  int num_events_used = 0;
  int num_packages = 0;

  int NumPositive() const;
};

/// Mines trigger observations from simulated episodes and generates
/// matched negatives by event replacement (Sec. V-C3).
class EapDataGen {
 public:
  EapDataGen(const WorldModel& world, const LogGenerator& logs)
      : world_(world), logs_(logs) {}

  EapDataset Generate(const EapDataConfig& config, Rng& rng) const;

 private:
  const WorldModel& world_;
  const LogGenerator& logs_;
};

// ===== Fault chain tracing (Table VII / VIII) ==================================

struct FctDataConfig {
  /// Number of fault chains to instantiate.
  int num_chains = 70;
  /// Fraction of chains whose masked first hop goes to valid / test.
  double valid_fraction = 0.11;
  double test_fraction = 0.11;
};

/// The FCT dataset: an uncertain KG of alarm instances whose quadruples are
/// split into train / valid / test, where valid/test facts are the masked
/// first hops of held-out chains (Sec. V-D4).
struct FctDataset {
  kg::TripleStore store;
  std::vector<kg::Quadruple> train;
  std::vector<kg::Quadruple> valid;
  std::vector<kg::Quadruple> test;
  /// node_surfaces[e] = descriptive text of entity e (for KTeleBERT init).
  std::vector<std::string> node_surfaces;
};

/// Instantiates fault propagation chains on the topology and converts them
/// into probabilistic quadruples with NE-type-pair relations.
class FctDataGen {
 public:
  FctDataGen(const WorldModel& world, const LogGenerator& logs)
      : world_(world), logs_(logs) {}

  FctDataset Generate(const FctDataConfig& config, Rng& rng) const;

 private:
  const WorldModel& world_;
  const LogGenerator& logs_;
};

}  // namespace synth
}  // namespace telekit

#endif  // TELEKIT_SYNTH_TASK_DATA_H_

#ifndef TELEKIT_SYNTH_WORLD_H_
#define TELEKIT_SYNTH_WORLD_H_

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace telekit {
namespace synth {

/// Configuration of the synthetic telecom world. Defaults are laptop-scale;
/// the statistics tables of the paper (Tables III/V/VII) are matched by the
/// task-data generators built on top of this world.
struct WorldConfig {
  uint64_t seed = 42;
  /// Number of network elements (the EAP evaluation uses 31).
  int num_network_elements = 31;
  /// Alarm types in the catalogue.
  int num_alarm_types = 48;
  /// KPI types in the catalogue.
  int num_kpi_types = 28;
  /// Average extra topology edges per element beyond the spanning tree.
  double topology_extra_edges_per_node = 2.0;
  /// Probability that an alarm pair (i, j>i) with a shared service gains a
  /// trigger edge.
  double trigger_density = 0.45;
  /// Cross-service trigger probability = trigger_density / this scale.
  double cross_service_trigger_scale = 30.0;
  /// Number of service layers in the causal hierarchy. Faults propagate
  /// from low layers (infrastructure services) to high layers (user-facing
  /// services); root-cause alarms concentrate in low layers. This is the
  /// transferable structure that text-derived embeddings can exploit.
  int num_service_levels = 3;
  /// Scale applied to trigger_density for upward cross-service edges
  /// (level l -> level l+1). Kept small in absolute terms: each alarm has
  /// many one-level-up candidates, so the expected upward out-degree is
  /// roughly trigger_density * this * (#alarms per level).
  double upward_trigger_scale = 0.12;
  /// KPIs affected per alarm (1..max).
  int max_affected_kpis = 3;
};

/// A network-element type (e.g. "SMF"), part of the tele-schema hierarchy.
struct NeType {
  int id = 0;
  std::string name;
};

/// A concrete network element instance, e.g. "SMF-03".
struct NetworkElement {
  int id = 0;
  int type = 0;
  std::string name;
};

/// An alarm type from the catalogue, e.g.
/// "ALM-100072 | SMF session establishment times out".
struct AlarmType {
  int id = 0;
  std::string code;      // "ALM-100072"
  std::string name;      // human-readable surface
  std::string severity;  // critical / major / minor / warning
  int home_ne_type = 0;  // NE type that raises it
  int service = 0;       // service it concerns
};

/// A KPI type, e.g. "success rate of session establishment".
struct KpiType {
  int id = 0;
  std::string code;  // "KPI-1929480378"-style identifier
  std::string name;
  float baseline = 0.0f;  // normal operating level
  float scale = 1.0f;     // magnitude of fault excursions
  bool increases_on_fault = true;
  int service = 0;
};

/// A causal edge of the hidden ground-truth DAG: alarm -> alarm (trigger)
/// or alarm -> KPI (numeric impact).
struct CausalEdge {
  enum class Kind { kAlarmTriggersAlarm, kAlarmAffectsKpi };
  Kind kind = Kind::kAlarmTriggersAlarm;
  int src_alarm = 0;
  int dst = 0;  // alarm id or kpi id depending on kind
  float confidence = 1.0f;
};

/// The hidden ground truth everything else is generated from: NE taxonomy
/// and topology, alarm/KPI catalogues with compositional natural-language
/// names, service vocabulary, and the causal DAG connecting alarms to
/// downstream alarms and KPIs. All generators (corpus, logs, KG, task
/// datasets) read from one WorldModel instance, which is what makes the
/// text, the knowledge graph and the task labels mutually consistent — the
/// property the paper's pre-training gains rest on.
class WorldModel {
 public:
  explicit WorldModel(const WorldConfig& config);

  const WorldConfig& config() const { return config_; }

  const std::vector<NeType>& ne_types() const { return ne_types_; }
  const std::vector<NetworkElement>& elements() const { return elements_; }
  /// Undirected topology edges between elements.
  const std::vector<std::pair<int, int>>& topology() const {
    return topology_;
  }
  const std::vector<AlarmType>& alarms() const { return alarms_; }
  const std::vector<KpiType>& kpis() const { return kpis_; }
  const std::vector<std::string>& services() const { return services_; }
  const std::vector<CausalEdge>& causal_edges() const { return causal_edges_; }

  /// Downstream alarms triggered by `alarm` (with confidences).
  std::vector<std::pair<int, float>> TriggeredAlarms(int alarm) const;
  /// KPIs numerically affected by `alarm` (with confidences).
  std::vector<std::pair<int, float>> AffectedKpis(int alarm) const;
  /// Alarms with no upstream trigger (fault-episode roots).
  std::vector<int> RootAlarms() const;
  /// True if some trigger chain leads from `src` to `dst`.
  bool TriggersTransitively(int src_alarm, int dst_alarm) const;

  /// Causal-hierarchy level of a service (0 = infrastructure layer).
  int ServiceLevel(int service) const;
  /// Level of the service an alarm concerns.
  int AlarmLevel(int alarm) const;

  /// Elements of a given NE type.
  std::vector<int> ElementsOfType(int ne_type) const;
  /// Neighbor element ids in the topology (excluding self).
  std::vector<int> TopologyNeighbors(int element) const;

  /// Multi-word domain phrases (services, problem clauses) for the WWM
  /// segmentation lexicon.
  std::vector<std::string> DomainPhrases() const;

 private:
  void BuildTaxonomy(Rng& rng);
  void BuildTopology(Rng& rng);
  void BuildAlarms(Rng& rng);
  void BuildKpis(Rng& rng);
  void BuildCausalDag(Rng& rng);

  WorldConfig config_;
  std::vector<NeType> ne_types_;
  std::vector<NetworkElement> elements_;
  std::vector<std::pair<int, int>> topology_;
  std::vector<AlarmType> alarms_;
  std::vector<KpiType> kpis_;
  std::vector<std::string> services_;
  std::vector<std::string> problem_clauses_;
  std::vector<CausalEdge> causal_edges_;
};

}  // namespace synth
}  // namespace telekit

#endif  // TELEKIT_SYNTH_WORLD_H_

#include "synth/tickets.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"

namespace telekit {
namespace synth {
namespace {

std::string TicketTitle(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "TKT-%04d", i);
  return buf;
}

}  // namespace

std::vector<RetrievalDoc> SynthesizeTickets(const WorldModel& world,
                                            const TicketConfig& config) {
  std::vector<RetrievalDoc> docs;
  std::vector<int> roots = world.RootAlarms();
  if (roots.empty() || config.num_tickets <= 0) return docs;
  Rng rng(config.seed);
  const auto& alarms = world.alarms();
  const auto& kpis = world.kpis();
  const auto& services = world.services();
  docs.reserve(config.num_tickets);
  for (int i = 0; i < config.num_tickets; ++i) {
    int root = roots[rng.UniformInt(static_cast<int64_t>(roots.size()))];
    const AlarmType& root_alarm = alarms[root];
    RetrievalDoc doc;
    doc.kind = "ticket";
    doc.title = TicketTitle(i);
    doc.evidence_alarms.push_back(root_alarm.name);
    const std::string& service = services[root_alarm.service];
    std::string text = doc.title + " trouble ticket | customers report " +
                       service + " degradation | observed alarm " +
                       root_alarm.code + " " + root_alarm.name;
    // Walk up to two hops of the trigger chain for secondary symptoms.
    std::vector<std::pair<int, float>> triggered =
        world.TriggeredAlarms(root);
    int hops = static_cast<int>(
        std::min<size_t>(triggered.size(), 1 + rng.UniformInt(2)));
    for (int h = 0; h < hops; ++h) {
      int downstream =
          triggered[rng.UniformInt(static_cast<int64_t>(triggered.size()))]
              .first;
      const AlarmType& a = alarms[downstream];
      text += " | followed by " + a.code + " " + a.name;
      if (std::find(doc.evidence_alarms.begin(), doc.evidence_alarms.end(),
                    a.name) == doc.evidence_alarms.end()) {
        doc.evidence_alarms.push_back(a.name);
      }
    }
    std::vector<std::pair<int, float>> affected = world.AffectedKpis(root);
    if (!affected.empty()) {
      const KpiType& kpi =
          kpis[affected[rng.UniformInt(static_cast<int64_t>(affected.size()))]
                   .first];
      text += " | kpi deviation " + kpi.name;
    }
    text += " | suspected root cause " + root_alarm.name;
    doc.text = std::move(text);
    docs.push_back(std::move(doc));
  }
  return docs;
}

std::vector<RetrievalDoc> BuildRetrievalCorpus(const WorldModel& world,
                                               const TicketConfig& config) {
  std::vector<RetrievalDoc> docs;
  const auto& alarms = world.alarms();
  const auto& kpis = world.kpis();
  const auto& services = world.services();
  const auto& ne_types = world.ne_types();
  docs.reserve(alarms.size() + kpis.size() + services.size() +
               static_cast<size_t>(std::max(config.num_tickets, 0)));
  for (const AlarmType& a : alarms) {
    RetrievalDoc doc;
    doc.kind = "alarm";
    doc.title = a.code;
    doc.text = "alarm " + a.code + " " + a.name + " | severity " + a.severity +
               " | raised by " + ne_types[a.home_ne_type].name +
               " | service " + services[a.service];
    doc.evidence_alarms.push_back(a.name);
    docs.push_back(std::move(doc));
  }
  for (const KpiType& k : kpis) {
    RetrievalDoc doc;
    doc.kind = "kpi";
    doc.title = k.code;
    doc.text = "kpi " + k.code + " " + k.name + " | service " +
               services[k.service] + (k.increases_on_fault
                                          ? " | rises under fault"
                                          : " | drops under fault");
    // Evidence: every alarm whose causal edges numerically impact this KPI.
    for (const CausalEdge& e : world.causal_edges()) {
      if (e.kind == CausalEdge::Kind::kAlarmAffectsKpi && e.dst == k.id) {
        doc.evidence_alarms.push_back(alarms[e.src_alarm].name);
      }
    }
    docs.push_back(std::move(doc));
  }
  for (size_t s = 0; s < services.size(); ++s) {
    RetrievalDoc doc;
    doc.kind = "signaling";
    doc.title = "SIG-" + std::to_string(s);
    doc.text = "signaling procedure | " + services[s] +
               " session establishment request and response | rejects "
               "spike when carrier elements fault";
    for (const AlarmType& a : alarms) {
      if (a.service == static_cast<int>(s)) {
        doc.evidence_alarms.push_back(a.name);
      }
    }
    docs.push_back(std::move(doc));
  }
  std::vector<RetrievalDoc> tickets = SynthesizeTickets(world, config);
  for (RetrievalDoc& t : tickets) docs.push_back(std::move(t));
  for (size_t i = 0; i < docs.size(); ++i) docs[i].id = static_cast<int>(i);
  return docs;
}

}  // namespace synth
}  // namespace telekit

#ifndef TELEKIT_SYNTH_TICKETS_H_
#define TELEKIT_SYNTH_TICKETS_H_

#include <string>
#include <vector>

#include "synth/world.h"

namespace telekit {
namespace synth {

/// One retrievable document of the serving corpus (DESIGN.md §12). The
/// `text` surface is what gets embedded into the ANN index; ids are dense
/// and insertion-ordered, so they double as ANN vector ids.
struct RetrievalDoc {
  int id = 0;
  /// "alarm" | "kpi" | "signaling" | "ticket".
  std::string kind;
  /// Short display handle, e.g. "ALM-100072" or "TKT-0007".
  std::string title;
  /// The natural-language surface that gets embedded.
  std::string text;
  /// Alarm surfaces (world alarm names, the RCA catalogue's keys) this
  /// document is evidence for. The troubleshoot op chains retrieval into
  /// RCA over the union of these across the retrieved docs (the
  /// TeleDoCTR-style retrieve-then-diagnose pipeline).
  std::vector<std::string> evidence_alarms;
};

/// Trouble-ticket synthesis knobs.
struct TicketConfig {
  /// Number of synthesized trouble tickets appended to the catalogue docs.
  int num_tickets = 64;
  /// Seed for ticket sampling; fixed seed + world -> identical corpus.
  uint64_t seed = 7;
};

/// Synthesizes operator-style trouble tickets: each picks a root-cause
/// alarm, walks its trigger chain and KPI impacts in the world's causal
/// DAG, and narrates the incident. Deterministic for fixed world + config.
std::vector<RetrievalDoc> SynthesizeTickets(const WorldModel& world,
                                            const TicketConfig& config);

/// The full retrieval corpus: one document per alarm-catalogue entry, per
/// KPI-catalogue entry, and per signaling procedure (service), plus
/// `config.num_tickets` synthesized trouble tickets. Ids are dense from 0
/// in that order. Deterministic for fixed world + config.
std::vector<RetrievalDoc> BuildRetrievalCorpus(const WorldModel& world,
                                               const TicketConfig& config);

}  // namespace synth
}  // namespace telekit

#endif  // TELEKIT_SYNTH_TICKETS_H_

#include "synth/task_data.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/string_util.h"

namespace telekit {
namespace synth {

// ===== RCA =====================================================================

double RcaDataset::AverageNodes() const {
  if (graphs.empty()) return 0.0;
  double total = 0;
  for (const RcaStateGraph& g : graphs) total += g.topology.num_nodes;
  return total / static_cast<double>(graphs.size());
}

double RcaDataset::AverageEdges() const {
  if (graphs.empty()) return 0.0;
  double total = 0;
  for (const RcaStateGraph& g : graphs) total += g.topology.edges.size();
  return total / static_cast<double>(graphs.size());
}

std::vector<int> RcaDataGen::SampleSubnet(int target_size, Rng& rng) const {
  const int n = static_cast<int>(world_.elements().size());
  target_size = std::min(target_size, n);
  std::vector<int> subnet;
  std::unordered_set<int> in_subnet;
  std::deque<int> frontier;
  const int start = static_cast<int>(rng.UniformInt(n));
  subnet.push_back(start);
  in_subnet.insert(start);
  frontier.push_back(start);
  while (static_cast<int>(subnet.size()) < target_size && !frontier.empty()) {
    const int current = frontier.front();
    frontier.pop_front();
    std::vector<int> neighbors = world_.TopologyNeighbors(current);
    rng.Shuffle(neighbors);
    for (int next : neighbors) {
      if (static_cast<int>(subnet.size()) >= target_size) break;
      if (in_subnet.insert(next).second) {
        subnet.push_back(next);
        frontier.push_back(next);
      }
    }
  }
  return subnet;
}

RcaDataset RcaDataGen::Generate(const RcaDataConfig& config, Rng& rng) const {
  RcaDataset dataset;
  const int num_alarms = static_cast<int>(world_.alarms().size());
  const int num_kpis = static_cast<int>(world_.kpis().size());
  dataset.num_features = num_alarms + num_kpis;
  for (const AlarmType& alarm : world_.alarms()) {
    dataset.feature_surfaces.push_back(alarm.name);
  }
  for (const KpiType& kpi : world_.kpis()) {
    dataset.feature_surfaces.push_back(
        kpi.name + (kpi.increases_on_fault ? " increases abnormally"
                                           : " decreases abnormally"));
  }

  const std::vector<int> roots = world_.RootAlarms();
  TELEKIT_CHECK(!roots.empty());
  for (int g = 0; g < config.num_graphs; ++g) {
    const int target =
        config.min_nodes +
        static_cast<int>(rng.UniformInt(config.max_nodes - config.min_nodes +
                                        1));
    std::vector<int> subnet = SampleSubnet(target, rng);
    const int n = static_cast<int>(subnet.size());

    // Fault episode confined to the subnet.
    const int root_alarm =
        roots[static_cast<size_t>(rng.UniformInt(roots.size()))];
    const Episode episode = logs_.SimulateOnSubnet(root_alarm, subnet, rng);

    RcaStateGraph state;
    state.elements = subnet;
    std::unordered_map<int, int> local;  // world element -> node id
    for (int i = 0; i < n; ++i) local[subnet[static_cast<size_t>(i)]] = i;
    state.topology.num_nodes = n;
    for (const auto& [u, v] : world_.topology()) {
      auto iu = local.find(u);
      auto iv = local.find(v);
      if (iu != local.end() && iv != local.end()) {
        state.topology.edges.emplace_back(iu->second, iv->second);
      }
    }
    state.features.assign(
        static_cast<size_t>(n),
        std::vector<float>(static_cast<size_t>(dataset.num_features), 0.0f));
    for (const AlarmEvent& event : episode.events) {
      auto it = local.find(event.element);
      if (it == local.end()) continue;
      state.features[static_cast<size_t>(it->second)]
                    [static_cast<size_t>(event.alarm_type)] += 1.0f;
    }
    for (const KpiReading& reading : episode.readings) {
      if (!reading.anomalous) continue;
      auto it = local.find(reading.element);
      if (it == local.end()) continue;
      state.features[static_cast<size_t>(it->second)]
                    [static_cast<size_t>(num_alarms + reading.kpi_type)] +=
          1.0f;
    }
    // Spurious events: symptoms of unrelated minor issues.
    const int noise = static_cast<int>(rng.UniformInt(
        static_cast<int64_t>(2.0 * config.noise_events) + 1));
    for (int k = 0; k < noise; ++k) {
      const int node = static_cast<int>(rng.UniformInt(n));
      const int feature =
          static_cast<int>(rng.UniformInt(dataset.num_features));
      state.features[static_cast<size_t>(node)][static_cast<size_t>(feature)]
          += 1.0f;
    }
    state.root_node = local.at(episode.root_element);
    dataset.graphs.push_back(std::move(state));
  }
  return dataset;
}

// ===== EAP ======================================================================

int EapDataset::NumPositive() const {
  int count = 0;
  for (const EapPairSample& p : pairs) count += p.positive;
  return count;
}

EapDataset EapDataGen::Generate(const EapDataConfig& config, Rng& rng) const {
  EapDataset dataset;
  for (const AlarmType& alarm : world_.alarms()) {
    dataset.event_surfaces.push_back(alarm.name);
  }
  dataset.topology.num_nodes = static_cast<int>(world_.elements().size());
  dataset.topology.edges = world_.topology();
  dataset.num_packages = config.num_packages;

  // Mine direct trigger observations from the episodes.
  std::unordered_set<int> events_used;
  std::vector<EapPairSample> positives;
  std::unordered_set<int64_t> positive_keys;
  const int num_alarms = static_cast<int>(world_.alarms().size());
  auto key = [num_alarms](int a, int b) {
    return static_cast<int64_t>(a) * num_alarms + b;
  };
  for (int p = 0; p < config.num_packages; ++p) {
    const Episode episode = logs_.Simulate(rng);
    // Observed trigger instances are the propagation-tree edges.
    for (const AlarmEvent& b : episode.events) {
      if (b.parent_index < 0) continue;
      const AlarmEvent& a =
          episode.events[static_cast<size_t>(b.parent_index)];
      EapPairSample sample;
      sample.event_a = a.alarm_type;
      sample.event_b = b.alarm_type;
      sample.element_a = a.element;
      sample.element_b = b.element;
      sample.time_a = a.time;
      sample.time_b = b.time;
      sample.positive = true;
      positives.push_back(sample);
      positive_keys.insert(key(a.alarm_type, b.alarm_type));
      events_used.insert(a.alarm_type);
      events_used.insert(b.alarm_type);
    }
  }
  dataset.num_events_used = static_cast<int>(events_used.size());

  // One negative per positive: replace one side with a random event such
  // that the corrupted pair is not a known positive (Sec. V-C3).
  std::vector<EapPairSample> negatives;
  for (const EapPairSample& pos : positives) {
    EapPairSample neg = pos;
    neg.positive = false;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const int replacement = static_cast<int>(rng.UniformInt(num_alarms));
      if (rng.Bernoulli(0.5)) {
        neg.event_a = replacement;
        neg.event_b = pos.event_b;
      } else {
        neg.event_a = pos.event_a;
        neg.event_b = replacement;
      }
      if (positive_keys.count(key(neg.event_a, neg.event_b)) == 0 &&
          neg.event_a != neg.event_b) {
        break;
      }
    }
    // Perturb the times slightly: negatives lack the systematic
    // parent-before-child delay only in event identity, not timestamps.
    negatives.push_back(neg);
  }
  dataset.pairs = std::move(positives);
  dataset.pairs.insert(dataset.pairs.end(), negatives.begin(),
                       negatives.end());
  rng.Shuffle(dataset.pairs);
  return dataset;
}

// ===== FCT ========================================================================

FctDataset FctDataGen::Generate(const FctDataConfig& config, Rng& rng) const {
  FctDataset dataset;
  kg::TripleStore& store = dataset.store;

  struct Hop {
    kg::EntityId head;
    kg::RelationId relation;
    kg::EntityId tail;
    float confidence;
  };
  auto node_entity = [&](int alarm_type, int element) {
    const AlarmType& alarm =
        world_.alarms()[static_cast<size_t>(alarm_type)];
    const NetworkElement& ne =
        world_.elements()[static_cast<size_t>(element)];
    const kg::EntityId id =
        store.AddEntity(alarm.name + " at " + ne.name);
    return id;
  };
  auto hop_relation = [&](int element_a, int element_b) {
    const auto& types = world_.ne_types();
    const std::string& ta =
        types[static_cast<size_t>(
                  world_.elements()[static_cast<size_t>(element_a)].type)]
            .name;
    const std::string& tb =
        types[static_cast<size_t>(
                  world_.elements()[static_cast<size_t>(element_b)].type)]
            .name;
    return store.AddRelation("trigger from " + ta + " to " + tb);
  };

  // Instantiate chains as root-to-leaf paths of the propagation tree: each
  // hop is a genuine trigger edge of the episode.
  std::vector<std::vector<Hop>> chains;
  int guard = 0;
  while (static_cast<int>(chains.size()) < config.num_chains &&
         guard < config.num_chains * 20) {
    ++guard;
    const Episode episode = logs_.Simulate(rng);
    if (episode.events.size() < 2) continue;
    // Leaves of the propagation tree.
    std::vector<bool> has_child(episode.events.size(), false);
    for (const AlarmEvent& event : episode.events) {
      if (event.parent_index >= 0) {
        has_child[static_cast<size_t>(event.parent_index)] = true;
      }
    }
    for (size_t leaf = 0; leaf < episode.events.size(); ++leaf) {
      if (has_child[leaf] || episode.events[leaf].parent_index < 0) continue;
      if (static_cast<int>(chains.size()) >= config.num_chains) break;
      // Walk leaf -> root, then reverse into root -> leaf hops.
      std::vector<size_t> path;
      for (int at = static_cast<int>(leaf); at >= 0;
           at = episode.events[static_cast<size_t>(at)].parent_index) {
        path.push_back(static_cast<size_t>(at));
      }
      std::reverse(path.begin(), path.end());
      std::vector<Hop> chain;
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        const AlarmEvent& a = episode.events[path[i]];
        const AlarmEvent& b = episode.events[path[i + 1]];
        float confidence = 1.0f;
        for (const auto& [child, conf] :
             world_.TriggeredAlarms(a.alarm_type)) {
          if (child == b.alarm_type) {
            confidence = conf;
            break;
          }
        }
        Hop hop;
        hop.head = node_entity(a.alarm_type, a.element);
        hop.relation = hop_relation(a.element, b.element);
        hop.tail = node_entity(b.alarm_type, b.element);
        hop.confidence = confidence;
        chain.push_back(hop);
      }
      if (!chain.empty()) chains.push_back(std::move(chain));
    }
  }

  // Split: held-out chains contribute their masked FIRST hop to
  // valid/test; everything else trains.
  rng.Shuffle(chains);
  const int num_valid = std::max(
      1, static_cast<int>(config.valid_fraction *
                          static_cast<double>(chains.size())));
  const int num_test = std::max(
      1, static_cast<int>(config.test_fraction *
                          static_cast<double>(chains.size())));
  for (size_t c = 0; c < chains.size(); ++c) {
    const bool is_test = c < static_cast<size_t>(num_test);
    const bool is_valid =
        !is_test && c < static_cast<size_t>(num_test + num_valid);
    for (size_t h = 0; h < chains[c].size(); ++h) {
      const Hop& hop = chains[c][h];
      const kg::Quadruple quad{hop.head, hop.relation, hop.tail,
                               hop.confidence};
      if (h == 0 && is_test) {
        dataset.test.push_back(quad);
      } else if (h == 0 && is_valid) {
        dataset.valid.push_back(quad);
      } else {
        dataset.train.push_back(quad);
        store.AddQuadruple(hop.head, hop.relation, hop.tail, hop.confidence);
      }
    }
  }
  for (int e = 0; e < store.num_entities(); ++e) {
    dataset.node_surfaces.push_back(store.EntitySurface(e));
  }
  return dataset;
}

}  // namespace synth
}  // namespace telekit

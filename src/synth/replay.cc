#include "synth/replay.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <tuple>

#include "common/check.h"

namespace telekit {
namespace synth {

namespace {

/// Deterministic total order on stream events: arrival first, then
/// occurrence time, then kind, then payload identity. Two distinct events
/// never compare equal, so std::sort needs no stability guarantee for the
/// stream to be reproducible.
bool EventBefore(const StreamEvent& a, const StreamEvent& b) {
  auto key = [](const StreamEvent& e) {
    int id0 = 0;
    int id1 = 0;
    switch (e.kind) {
      case StreamEvent::Kind::kAlarm:
        id0 = e.alarm.alarm_type;
        id1 = e.alarm.element;
        break;
      case StreamEvent::Kind::kKpi:
        id0 = e.kpi.kpi_type;
        id1 = e.kpi.element;
        break;
      case StreamEvent::Kind::kSignaling:
        id0 = e.signaling.src_element;
        id1 = e.signaling.dst_element;
        break;
    }
    return std::make_tuple(e.arrival, e.time, static_cast<int>(e.kind),
                           e.episode_id, id0, id1);
  };
  return key(a) < key(b);
}

/// Re-bases a signaling run (whose generator stamps times on its own
/// 0..100 clock) so its first record lands at `start`, preserving the
/// intra-run spacing.
void RebaseRun(std::vector<SignalingRecord>* run, double start) {
  if (run->empty()) return;
  const double base = run->front().time;
  for (SignalingRecord& record : *run) {
    record.time = start + (record.time - base);
  }
}

}  // namespace

std::vector<ScheduledEpisode> ScheduleEpisodes(
    const LogGenerator& log_gen, const SignalingFlowGenerator& signaling_gen,
    const ReplayConfig& config, Rng& rng) {
  TELEKIT_CHECK_GE(config.num_episodes, 0);
  std::vector<ScheduledEpisode> episodes;
  episodes.reserve(static_cast<size_t>(config.num_episodes));
  double clock = 0.0;
  for (int i = 0; i < config.num_episodes; ++i) {
    // Exponential inter-arrival gap; episodes may overlap when a gap is
    // shorter than the previous episode's propagation span.
    clock += -config.mean_episode_gap * std::log(1.0 - rng.Uniform());
    ScheduledEpisode scheduled;
    scheduled.start_time = clock;
    scheduled.episode = log_gen.Simulate(rng);
    double episode_span = 0.0;
    for (const AlarmEvent& event : scheduled.episode.events) {
      episode_span = std::max(episode_span, event.time);
    }
    for (int run = 0; run < config.signaling_runs_per_episode; ++run) {
      std::vector<SignalingRecord> records =
          signaling_gen.SimulateDuringEpisode(scheduled.episode, rng);
      RebaseRun(&records, rng.Uniform(0.0, std::max(episode_span, 0.5)));
      scheduled.signaling.insert(scheduled.signaling.end(), records.begin(),
                                 records.end());
    }
    episodes.push_back(std::move(scheduled));
  }
  return episodes;
}

std::vector<StreamEvent> BuildReplayStream(
    const LogGenerator& log_gen, const SignalingFlowGenerator& signaling_gen,
    const std::vector<ScheduledEpisode>& episodes, const ReplayConfig& config,
    Rng& rng) {
  std::vector<StreamEvent> stream;
  double horizon = 1.0;

  auto jittered = [&config, &rng](double time) {
    return config.jitter > 0.0 ? time + rng.Uniform(0.0, config.jitter)
                               : time;
  };

  for (size_t i = 0; i < episodes.size(); ++i) {
    const ScheduledEpisode& scheduled = episodes[i];
    for (const AlarmEvent& alarm : scheduled.episode.events) {
      StreamEvent event;
      event.kind = StreamEvent::Kind::kAlarm;
      event.episode_id = static_cast<int>(i);
      event.alarm = alarm;
      event.time = scheduled.start_time + alarm.time;
      event.arrival = jittered(event.time);
      horizon = std::max(horizon, event.time);
      stream.push_back(std::move(event));
    }
    for (const KpiReading& reading : scheduled.episode.readings) {
      // Only the fault excursions belong to the episode's local timeline;
      // the episode's normal context readings are folded into background
      // traffic below instead (their generated times span a fixed window
      // unrelated to the episode).
      if (!reading.anomalous) continue;
      StreamEvent event;
      event.kind = StreamEvent::Kind::kKpi;
      event.episode_id = static_cast<int>(i);
      event.kpi = reading;
      event.time = scheduled.start_time + reading.time;
      event.arrival = jittered(event.time);
      horizon = std::max(horizon, event.time);
      stream.push_back(std::move(event));
    }
    for (const SignalingRecord& record : scheduled.signaling) {
      StreamEvent event;
      event.kind = StreamEvent::Kind::kSignaling;
      event.episode_id = static_cast<int>(i);
      event.signaling = record;
      event.time = scheduled.start_time + record.time;
      event.arrival = jittered(event.time);
      horizon = std::max(horizon, event.time);
      stream.push_back(std::move(event));
    }
  }

  // Background: normal KPI readings and healthy procedure runs spread over
  // the whole timeline. Their episode_id stays -1.
  std::vector<KpiReading> readings =
      log_gen.NormalReadings(config.background_readings, rng);
  for (KpiReading& reading : readings) {
    StreamEvent event;
    event.kind = StreamEvent::Kind::kKpi;
    reading.time = rng.Uniform(0.0, horizon);
    event.kpi = reading;
    event.time = reading.time;
    event.arrival = jittered(event.time);
    stream.push_back(std::move(event));
  }
  for (int i = 0; i < config.background_procedures; ++i) {
    std::vector<SignalingRecord> run = signaling_gen.SimulateProcedure(rng);
    RebaseRun(&run, rng.Uniform(0.0, horizon));
    for (const SignalingRecord& record : run) {
      StreamEvent event;
      event.kind = StreamEvent::Kind::kSignaling;
      event.signaling = record;
      event.time = record.time;
      event.arrival = jittered(event.time);
      stream.push_back(std::move(event));
    }
  }

  std::sort(stream.begin(), stream.end(), EventBefore);
  return stream;
}

void SimClock::SleepUntil(double sim_time) {
  if (!paced()) return;
  if (!started_) {
    epoch_ = std::chrono::steady_clock::now();
    started_ = true;
  }
  const auto due =
      epoch_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(sim_time / speedup_));
  std::this_thread::sleep_until(due);
}

}  // namespace synth
}  // namespace telekit

#include "synth/world.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/check.h"
#include "common/string_util.h"

namespace telekit {
namespace synth {

namespace {

// Core NE taxonomy of a 4G/5G packet core + RAN.
const char* const kNeTypeNames[] = {"AMF", "SMF",  "UPF", "PCF", "UDM",
                                    "MME", "SGW",  "PGW", "HSS", "NRF",
                                    "gNodeB", "eNodeB"};

const char* const kServices[] = {
    "session establishment", "initial registration",  "handover preparation",
    "paging procedure",      "bearer setup",          "subscriber authentication",
    "data forwarding",       "policy control",        "charging collection",
    "roaming signaling",     "slice selection",       "mobility management",
    "dns resolution",        "heartbeat detection"};

const char* const kProblemClauses[] = {
    "is unreachable",       "fails abnormally",   "times out",
    "is interrupted",       "loses heartbeat",    "rejects requests",
    "is congested",         "degrades severely",  "drops packets",
    "reports checksum errors"};

const char* const kSeverities[] = {"critical", "major", "minor", "warning"};

const char* const kKpiPatterns[] = {
    "number of %s requests", "success rate of %s", "average delay of %s",
    "failure count of %s", "peak throughput of %s"};

}  // namespace

WorldModel::WorldModel(const WorldConfig& config) : config_(config) {
  TELEKIT_CHECK_GE(config.num_network_elements, 2);
  TELEKIT_CHECK_GE(config.num_alarm_types, 4);
  TELEKIT_CHECK_GE(config.num_kpi_types, 2);
  Rng rng(config.seed);
  BuildTaxonomy(rng);
  BuildTopology(rng);
  BuildAlarms(rng);
  BuildKpis(rng);
  BuildCausalDag(rng);
}

void WorldModel::BuildTaxonomy(Rng& rng) {
  (void)rng;
  int id = 0;
  for (const char* name : kNeTypeNames) {
    ne_types_.push_back({id++, name});
  }
  for (const char* service : kServices) services_.emplace_back(service);
  for (const char* clause : kProblemClauses) {
    problem_clauses_.emplace_back(clause);
  }
}

void WorldModel::BuildTopology(Rng& rng) {
  const int n = config_.num_network_elements;
  elements_.reserve(static_cast<size_t>(n));
  std::vector<int> per_type_counter(ne_types_.size(), 0);
  for (int i = 0; i < n; ++i) {
    const int type = static_cast<int>(rng.UniformInt(
        static_cast<int64_t>(ne_types_.size())));
    const int ordinal = ++per_type_counter[static_cast<size_t>(type)];
    elements_.push_back(
        {i, type,
         StringPrintf("%s-%02d", ne_types_[static_cast<size_t>(type)]
                                     .name.c_str(),
                      ordinal)});
  }
  // Random spanning tree keeps the network connected...
  for (int i = 1; i < n; ++i) {
    const int parent = static_cast<int>(rng.UniformInt(i));
    topology_.emplace_back(parent, i);
  }
  // ...plus extra cross links for realistic meshing.
  const int extra = static_cast<int>(config_.topology_extra_edges_per_node *
                                     static_cast<double>(n));
  std::unordered_set<int64_t> seen;
  for (const auto& [u, v] : topology_) {
    seen.insert(static_cast<int64_t>(std::min(u, v)) * n + std::max(u, v));
  }
  int added = 0;
  int attempts = 0;
  while (added < extra && attempts < extra * 20) {
    ++attempts;
    const int u = static_cast<int>(rng.UniformInt(n));
    const int v = static_cast<int>(rng.UniformInt(n));
    if (u == v) continue;
    const int64_t key =
        static_cast<int64_t>(std::min(u, v)) * n + std::max(u, v);
    if (!seen.insert(key).second) continue;
    topology_.emplace_back(u, v);
    ++added;
  }
}

void WorldModel::BuildAlarms(Rng& rng) {
  alarms_.reserve(static_cast<size_t>(config_.num_alarm_types));
  for (int i = 0; i < config_.num_alarm_types; ++i) {
    AlarmType alarm;
    alarm.id = i;
    alarm.code = StringPrintf("ALM-%06d", 100000 + i * 7);
    alarm.home_ne_type = static_cast<int>(
        rng.UniformInt(static_cast<int64_t>(ne_types_.size())));
    // Alarm ids are the topological order of the causal DAG; aligning the
    // service level with the id makes faults propagate up the service
    // hierarchy (infrastructure -> user-facing) while keeping acyclicity.
    const int target_level =
        i * config_.num_service_levels / config_.num_alarm_types;
    std::vector<double> weights;
    weights.reserve(services_.size());
    for (size_t s = 0; s < services_.size(); ++s) {
      weights.push_back(
          ServiceLevel(static_cast<int>(s)) == target_level ? 8.0 : 1.0);
    }
    alarm.service = static_cast<int>(rng.Categorical(weights));
    const std::string& clause = problem_clauses_[static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(problem_clauses_.size())))];
    alarm.name = ne_types_[static_cast<size_t>(alarm.home_ne_type)].name +
                 " " + services_[static_cast<size_t>(alarm.service)] + " " +
                 clause;
    alarm.severity = kSeverities[rng.UniformInt(4)];
    alarms_.push_back(std::move(alarm));
  }
}

void WorldModel::BuildKpis(Rng& rng) {
  kpis_.reserve(static_cast<size_t>(config_.num_kpi_types));
  for (int i = 0; i < config_.num_kpi_types; ++i) {
    KpiType kpi;
    kpi.id = i;
    kpi.code = StringPrintf("KPI-%09d", 192948000 + i * 13);
    kpi.service = static_cast<int>(
        rng.UniformInt(static_cast<int64_t>(services_.size())));
    const char* pattern =
        kKpiPatterns[rng.UniformInt(static_cast<int64_t>(
            sizeof(kKpiPatterns) / sizeof(kKpiPatterns[0])))];
    kpi.name = StringPrintf(
        pattern, services_[static_cast<size_t>(kpi.service)].c_str());
    kpi.baseline = static_cast<float>(rng.Uniform(50.0, 500.0));
    kpi.scale = static_cast<float>(rng.Uniform(0.3, 0.9)) * kpi.baseline;
    kpi.increases_on_fault = rng.Bernoulli(0.5);
    kpis_.push_back(std::move(kpi));
  }
}

int WorldModel::ServiceLevel(int service) const {
  TELEKIT_CHECK(service >= 0 &&
                service < static_cast<int>(services_.size()));
  return service * config_.num_service_levels /
         static_cast<int>(services_.size());
}

int WorldModel::AlarmLevel(int alarm) const {
  TELEKIT_CHECK(alarm >= 0 && alarm < static_cast<int>(alarms_.size()));
  return ServiceLevel(alarms_[static_cast<size_t>(alarm)].service);
}

void WorldModel::BuildCausalDag(Rng& rng) {
  // Alarms are topologically ordered by id: edges only go i -> j with i < j,
  // guaranteeing an acyclic trigger structure. Edge density follows the
  // service hierarchy: same-service chains and one-level-upward
  // cross-service propagation dominate.
  for (int i = 0; i < config_.num_alarm_types; ++i) {
    for (int j = i + 1; j < config_.num_alarm_types; ++j) {
      const bool same_service = alarms_[static_cast<size_t>(i)].service ==
                                alarms_[static_cast<size_t>(j)].service;
      const bool upward = AlarmLevel(j) == AlarmLevel(i) + 1;
      double p = config_.trigger_density /
                 config_.cross_service_trigger_scale;
      if (same_service) {
        p = config_.trigger_density;
      } else if (upward) {
        p = config_.trigger_density * config_.upward_trigger_scale;
      }
      if (rng.Bernoulli(p)) {
        causal_edges_.push_back(
            {CausalEdge::Kind::kAlarmTriggersAlarm, i, j,
             static_cast<float>(rng.Uniform(0.55, 1.0))});
      }
    }
    // Each alarm perturbs 1..max KPIs, preferring its own service.
    const int num_kpis =
        1 + static_cast<int>(rng.UniformInt(config_.max_affected_kpis));
    for (int k = 0; k < num_kpis; ++k) {
      std::vector<double> weights;
      weights.reserve(kpis_.size());
      for (const KpiType& kpi : kpis_) {
        weights.push_back(
            kpi.service == alarms_[static_cast<size_t>(i)].service ? 6.0
                                                                   : 1.0);
      }
      const int kpi = static_cast<int>(rng.Categorical(weights));
      causal_edges_.push_back({CausalEdge::Kind::kAlarmAffectsKpi, i, kpi,
                               static_cast<float>(rng.Uniform(0.7, 1.0))});
    }
  }
}

std::vector<std::pair<int, float>> WorldModel::TriggeredAlarms(
    int alarm) const {
  std::vector<std::pair<int, float>> out;
  for (const CausalEdge& e : causal_edges_) {
    if (e.kind == CausalEdge::Kind::kAlarmTriggersAlarm &&
        e.src_alarm == alarm) {
      out.emplace_back(e.dst, e.confidence);
    }
  }
  return out;
}

std::vector<std::pair<int, float>> WorldModel::AffectedKpis(int alarm) const {
  std::vector<std::pair<int, float>> out;
  for (const CausalEdge& e : causal_edges_) {
    if (e.kind == CausalEdge::Kind::kAlarmAffectsKpi && e.src_alarm == alarm) {
      out.emplace_back(e.dst, e.confidence);
    }
  }
  return out;
}

std::vector<int> WorldModel::RootAlarms() const {
  std::vector<bool> has_parent(alarms_.size(), false);
  for (const CausalEdge& e : causal_edges_) {
    if (e.kind == CausalEdge::Kind::kAlarmTriggersAlarm) {
      has_parent[static_cast<size_t>(e.dst)] = true;
    }
  }
  std::vector<int> roots;
  for (size_t i = 0; i < alarms_.size(); ++i) {
    if (!has_parent[i]) roots.push_back(static_cast<int>(i));
  }
  return roots;
}

bool WorldModel::TriggersTransitively(int src_alarm, int dst_alarm) const {
  std::unordered_set<int> visited = {src_alarm};
  std::deque<int> frontier = {src_alarm};
  while (!frontier.empty()) {
    const int current = frontier.front();
    frontier.pop_front();
    for (const auto& [next, conf] : TriggeredAlarms(current)) {
      if (next == dst_alarm) return true;
      if (visited.insert(next).second) frontier.push_back(next);
    }
  }
  return false;
}

std::vector<int> WorldModel::ElementsOfType(int ne_type) const {
  std::vector<int> out;
  for (const NetworkElement& e : elements_) {
    if (e.type == ne_type) out.push_back(e.id);
  }
  return out;
}

std::vector<int> WorldModel::TopologyNeighbors(int element) const {
  std::vector<int> out;
  for (const auto& [u, v] : topology_) {
    if (u == element) out.push_back(v);
    if (v == element) out.push_back(u);
  }
  return out;
}

std::vector<std::string> WorldModel::DomainPhrases() const {
  std::vector<std::string> phrases = services_;
  for (const std::string& clause : problem_clauses_) phrases.push_back(clause);
  return phrases;
}

}  // namespace synth
}  // namespace telekit

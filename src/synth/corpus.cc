#include "synth/corpus.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"
#include "text/tokenizer.h"

namespace telekit {
namespace synth {

namespace {

const char* const kDescriptionTemplates[] = {
    "alarm %s indicates that the %s %s",
    "the %s raised %s when the %s was active",
    "event %s means the %s on this element %s",
};

// Non-causal filler; deliberately avoids causal keywords.
const char* const kFillerTemplates[] = {
    "the %s provides %s for the core network",
    "engineers monitor the %s during %s on every shift",
    "the %s handles %s with redundant links",
    "routine inspection of the %s covers %s and related interfaces",
};

// General-domain lexicon (disjoint topics) for the MacBERT surrogate.
const char* const kGeneralSubjects[] = {
    "the harbor crane",  "a delivery van",  "the morning forecast",
    "the sourdough loaf", "a midfield pass", "the garden sprinkler",
    "the museum exhibit", "a mountain trail"};
const char* const kGeneralVerbs[] = {
    "arrives near", "improves during", "slows down before", "brightens after",
    "rests beside",  "moves across"};
const char* const kGeneralObjects[] = {
    "the riverside market", "a quiet afternoon",  "the winter festival",
    "the city library",     "a long rehearsal",   "the coastal road",
    "the evening train",    "a crowded stadium"};

}  // namespace

const std::vector<std::string>& CorpusGenerator::CausalKeywords() {
  static const std::vector<std::string>* const kKeywords =
      new std::vector<std::string>{"leads to",     "triggers",  "causes",
                                   "results in",   "affects",   "due to",
                                   "consequently", "because of"};
  return *kKeywords;
}

std::string CorpusGenerator::TeleSentence(Rng& rng) const {
  const auto& alarms = world_.alarms();
  const auto& kpis = world_.kpis();
  const auto& services = world_.services();
  const auto& ne_types = world_.ne_types();
  const double roll = rng.Uniform();
  if (roll < 0.35) {
    // Alarm / event description.
    const AlarmType& alarm =
        alarms[static_cast<size_t>(rng.UniformInt(alarms.size()))];
    const char* tmpl = kDescriptionTemplates[rng.UniformInt(3)];
    // Split the name into its NE prefix and remainder for variety.
    return StringPrintf(tmpl, alarm.code.c_str(),
                        services[static_cast<size_t>(alarm.service)].c_str(),
                        alarm.name.c_str());
  }
  if (roll < 0.55) {
    // KPI / product doc sentence.
    const KpiType& kpi =
        kpis[static_cast<size_t>(rng.UniformInt(kpis.size()))];
    return StringPrintf("the %s should remain stable while %s runs normally",
                        kpi.name.c_str(),
                        services[static_cast<size_t>(kpi.service)].c_str());
  }
  // Filler over domain nouns.
  const char* tmpl = kFillerTemplates[rng.UniformInt(4)];
  const NeType& ne =
      ne_types[static_cast<size_t>(rng.UniformInt(ne_types.size()))];
  return StringPrintf(tmpl, ne.name.c_str(),
                      services[static_cast<size_t>(
                                   rng.UniformInt(services.size()))]
                          .c_str());
}

std::string CorpusGenerator::CausalSentence(Rng& rng) const {
  const auto& alarms = world_.alarms();
  const auto& kpis = world_.kpis();
  const auto& keywords = CausalKeywords();
  const std::string& keyword =
      keywords[static_cast<size_t>(rng.UniformInt(keywords.size()))];

  // Collect the true causal edges; with small probability emit noise
  // (a made-up pair), modelling imperfect documentation.
  const auto& edges = world_.causal_edges();
  const bool noisy = rng.Bernoulli(config_.causal_noise);
  if (!noisy && !edges.empty()) {
    const CausalEdge& edge =
        edges[static_cast<size_t>(rng.UniformInt(edges.size()))];
    const AlarmType& src = alarms[static_cast<size_t>(edge.src_alarm)];
    if (edge.kind == CausalEdge::Kind::kAlarmTriggersAlarm) {
      const AlarmType& dst = alarms[static_cast<size_t>(edge.dst)];
      return StringPrintf("%s always %s %s on the downstream element",
                          src.name.c_str(), keyword.c_str(),
                          dst.name.c_str());
    }
    const KpiType& kpi = kpis[static_cast<size_t>(edge.dst)];
    const char* direction = kpi.increases_on_fault ? "increases abnormally"
                                                   : "decreases suddenly";
    return StringPrintf("%s %s a state where the %s %s", src.name.c_str(),
                        keyword.c_str(), kpi.name.c_str(), direction);
  }
  // Noise: random (possibly untrue) pair.
  const AlarmType& a =
      alarms[static_cast<size_t>(rng.UniformInt(alarms.size()))];
  const AlarmType& b =
      alarms[static_cast<size_t>(rng.UniformInt(alarms.size()))];
  return StringPrintf("%s occasionally %s %s in rare scenarios",
                      a.name.c_str(), keyword.c_str(), b.name.c_str());
}

std::vector<std::string> CorpusGenerator::GenerateTeleCorpus(Rng& rng) const {
  std::vector<std::string> corpus;
  corpus.reserve(static_cast<size_t>(config_.num_tele_sentences));
  for (int i = 0; i < config_.num_tele_sentences; ++i) {
    // ~30% causal sentences so extraction yields a sizeable causal corpus.
    if (rng.Bernoulli(0.3)) {
      corpus.push_back(CausalSentence(rng));
    } else {
      corpus.push_back(TeleSentence(rng));
    }
  }
  return corpus;
}

std::vector<std::string> CorpusGenerator::GenerateGeneralCorpus(
    Rng& rng) const {
  std::vector<std::string> corpus;
  corpus.reserve(static_cast<size_t>(config_.num_general_sentences));
  for (int i = 0; i < config_.num_general_sentences; ++i) {
    const char* subject = kGeneralSubjects[rng.UniformInt(8)];
    const char* verb = kGeneralVerbs[rng.UniformInt(6)];
    const char* object = kGeneralObjects[rng.UniformInt(8)];
    corpus.push_back(StringPrintf("%s %s %s", subject, verb, object));
  }
  return corpus;
}

std::string CorpusGenerator::StripIds(const std::string& sentence) {
  std::vector<std::string> kept;
  for (const std::string& word :
       text::Tokenizer::SplitWords(sentence)) {
    if (StartsWith(word, "ALM-") || StartsWith(word, "KPI-")) continue;
    kept.push_back(word);
  }
  return JoinStrings(kept, " ");
}

std::vector<std::string> CorpusGenerator::ExtractCausalSentences(
    const std::vector<std::string>& corpus, int min_words) {
  std::vector<std::string> causal;
  for (const std::string& sentence : corpus) {
    bool has_keyword = false;
    for (const std::string& keyword : CausalKeywords()) {
      if (Contains(sentence, keyword)) {
        has_keyword = true;
        break;
      }
    }
    if (!has_keyword) continue;
    const std::string stripped = StripIds(sentence);
    if (static_cast<int>(text::Tokenizer::SplitWords(stripped).size()) <
        min_words) {
      continue;
    }
    causal.push_back(stripped);
  }
  return causal;
}

}  // namespace synth
}  // namespace telekit

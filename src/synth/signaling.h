#ifndef TELEKIT_SYNTH_SIGNALING_H_
#define TELEKIT_SYNTH_SIGNALING_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "synth/log.h"
#include "synth/world.h"
#include "text/prompt.h"

namespace telekit {
namespace synth {

/// One signaling message exchanged between two network elements as part of
/// a procedure run (e.g. "PDU Session Establishment Request" on N11).
struct SignalingRecord {
  int service = 0;       // procedure (world service id)
  std::string message;   // message name, e.g. "session establishment request"
  int src_element = 0;
  int dst_element = 0;
  double time = 0.0;
  bool success = true;   // false = reject / timeout
};

/// Signaling-flow generation parameters.
struct SignalingConfig {
  /// Messages per generated procedure run (request/answer hops).
  int max_hops = 4;
  /// Baseline reject probability on a healthy network.
  double base_reject_rate = 0.03;
  /// Reject probability on elements currently carrying a fault episode.
  double fault_reject_rate = 0.6;
};

/// Generates signaling flows over the world topology. The paper explicitly
/// defers signaling-flow and configuration data to future work (Sec. IV-B);
/// TeleKit implements the data source as an extension: procedure runs walk
/// topology edges, and runs touching elements involved in a fault episode
/// see elevated reject rates — giving the flows the same causal grounding
/// as alarms and KPIs.
class SignalingFlowGenerator {
 public:
  SignalingFlowGenerator(const WorldModel& world,
                         const SignalingConfig& config)
      : world_(world), config_(config) {}

  /// One healthy procedure run (no episode context).
  std::vector<SignalingRecord> SimulateProcedure(Rng& rng) const;

  /// A procedure run while `episode` is active: hops through elements that
  /// carry an alarm of the episode reject with fault_reject_rate.
  std::vector<SignalingRecord> SimulateDuringEpisode(const Episode& episode,
                                                     Rng& rng) const;

  /// `runs` healthy procedure runs concatenated.
  std::vector<SignalingRecord> SimulateMany(int runs, Rng& rng) const;

  /// Wraps one record in the prompt templates (an extension of Fig. 3
  /// built from the existing special tokens — no new vocabulary):
  /// "[DOC] signaling <procedure> <message> [LOC] <src> [ATTR] result |
  ///  <accepted|rejected>".
  text::PromptSequence ToPrompt(const SignalingRecord& record) const;

 private:
  std::vector<SignalingRecord> Simulate(const std::vector<int>* fault_elements,
                                        Rng& rng) const;

  const WorldModel& world_;
  SignalingConfig config_;
};

}  // namespace synth
}  // namespace telekit

#endif  // TELEKIT_SYNTH_SIGNALING_H_

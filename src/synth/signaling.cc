#include "synth/signaling.h"

#include <algorithm>

#include "common/check.h"

namespace telekit {
namespace synth {

namespace {

const char* const kRequestKinds[] = {"request", "update", "notify"};
const char* const kAnswerKinds[] = {"accept", "answer", "complete"};

}  // namespace

std::vector<SignalingRecord> SignalingFlowGenerator::Simulate(
    const std::vector<int>* fault_elements, Rng& rng) const {
  std::vector<SignalingRecord> records;
  const int service = static_cast<int>(
      rng.UniformInt(static_cast<int64_t>(world_.services().size())));
  const std::string& procedure =
      world_.services()[static_cast<size_t>(service)];
  int current = static_cast<int>(
      rng.UniformInt(static_cast<int64_t>(world_.elements().size())));
  double time = rng.Uniform(0.0, 100.0);
  const int hops = 1 + static_cast<int>(rng.UniformInt(config_.max_hops));
  for (int hop = 0; hop < hops; ++hop) {
    const std::vector<int> neighbors = world_.TopologyNeighbors(current);
    if (neighbors.empty()) break;
    const int next =
        neighbors[static_cast<size_t>(rng.UniformInt(neighbors.size()))];
    const bool src_faulty =
        fault_elements != nullptr &&
        (std::find(fault_elements->begin(), fault_elements->end(), current) !=
             fault_elements->end() ||
         std::find(fault_elements->begin(), fault_elements->end(), next) !=
             fault_elements->end());
    const double reject_rate =
        src_faulty ? config_.fault_reject_rate : config_.base_reject_rate;
    // Request hop.
    SignalingRecord request;
    request.service = service;
    request.message = procedure + " " + kRequestKinds[rng.UniformInt(3)];
    request.src_element = current;
    request.dst_element = next;
    request.time = time;
    request.success = true;
    records.push_back(request);
    time += rng.Uniform(0.01, 0.1);
    // Answer hop: reject aborts the procedure.
    SignalingRecord answer;
    answer.service = service;
    answer.src_element = next;
    answer.dst_element = current;
    answer.time = time;
    answer.success = !rng.Bernoulli(reject_rate);
    answer.message = procedure + " " +
                     (answer.success ? kAnswerKinds[rng.UniformInt(3)]
                                     : "reject");
    records.push_back(answer);
    if (!answer.success) break;
    current = next;
    time += rng.Uniform(0.01, 0.1);
  }
  return records;
}

std::vector<SignalingRecord> SignalingFlowGenerator::SimulateProcedure(
    Rng& rng) const {
  return Simulate(nullptr, rng);
}

std::vector<SignalingRecord> SignalingFlowGenerator::SimulateDuringEpisode(
    const Episode& episode, Rng& rng) const {
  std::vector<int> fault_elements;
  for (const AlarmEvent& event : episode.events) {
    fault_elements.push_back(event.element);
  }
  return Simulate(&fault_elements, rng);
}

std::vector<SignalingRecord> SignalingFlowGenerator::SimulateMany(
    int runs, Rng& rng) const {
  std::vector<SignalingRecord> records;
  for (int i = 0; i < runs; ++i) {
    auto run = SimulateProcedure(rng);
    records.insert(records.end(), run.begin(), run.end());
  }
  return records;
}

text::PromptSequence SignalingFlowGenerator::ToPrompt(
    const SignalingRecord& record) const {
  const NetworkElement& src =
      world_.elements()[static_cast<size_t>(record.src_element)];
  return text::PromptBuilder()
      .Document("signaling " + record.message)
      .Location(src.name)
      .Attribute("result", record.success ? "accepted" : "rejected")
      .Build();
}

}  // namespace synth
}  // namespace telekit

#ifndef TELEKIT_SYNTH_CORPUS_H_
#define TELEKIT_SYNTH_CORPUS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "synth/world.h"

namespace telekit {
namespace synth {

/// Corpus generation sizes (the paper's 20M-sentence Tele-Corpus, scaled).
struct CorpusConfig {
  int num_tele_sentences = 6000;
  int num_general_sentences = 6000;
  /// Minimum words for a causal sentence to survive extraction (the
  /// paper's heuristic rule constraints, Sec. IV-A1).
  int min_causal_words = 6;
  /// Fraction of causal statements that are noise (assert a causal link
  /// that is NOT in the world's ground-truth DAG).
  double causal_noise = 0.05;
};

/// Emits natural-language corpora over a WorldModel: the tele corpus whose
/// sentences describe the world's alarms, KPIs and (crucially) its causal
/// DAG, and a vocabulary-disjoint general corpus used to pre-train the
/// MacBERT-surrogate baseline.
class CorpusGenerator {
 public:
  CorpusGenerator(const WorldModel& world, const CorpusConfig& config)
      : world_(world), config_(config) {}

  /// Tele-domain sentences: alarm/product descriptions, maintenance cases,
  /// and causal sentences grounded in the causal DAG.
  std::vector<std::string> GenerateTeleCorpus(Rng& rng) const;

  /// General-domain sentences from a disjoint topic lexicon (weather,
  /// logistics, cooking); same grammar shapes, different vocabulary.
  std::vector<std::string> GenerateGeneralCorpus(Rng& rng) const;

  /// The causal keyword list used both for generation and extraction.
  static const std::vector<std::string>& CausalKeywords();

  /// Removes identifier tokens like "ALM-100072" / "KPI-192948013"
  /// (Sec. IV-A1: IDs are stripped before re-training).
  static std::string StripIds(const std::string& sentence);

  /// The paper's causal-sentence extraction: keep sentences containing a
  /// causal keyword and at least `min_words` words, with IDs stripped.
  static std::vector<std::string> ExtractCausalSentences(
      const std::vector<std::string>& corpus, int min_words);

 private:
  std::string TeleSentence(Rng& rng) const;
  std::string CausalSentence(Rng& rng) const;

  const WorldModel& world_;
  CorpusConfig config_;
};

}  // namespace synth
}  // namespace telekit

#endif  // TELEKIT_SYNTH_CORPUS_H_

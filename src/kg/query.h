#ifndef TELEKIT_KG_QUERY_H_
#define TELEKIT_KG_QUERY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "kg/store.h"

namespace telekit {
namespace kg {

/// One basic graph pattern of a query: subject / predicate / object.
/// Subject and object are either variables ("?x") or entity surfaces;
/// the predicate must be a concrete relation surface.
struct QueryPattern {
  std::string subject;
  std::string predicate;
  std::string object;
};

/// A parsed SELECT query.
struct ParsedQuery {
  std::vector<std::string> select;  // variable names incl. '?'
  std::vector<QueryPattern> where;
};

/// A result row: variable name -> bound entity id.
using Binding = std::map<std::string, EntityId>;

/// Parses a SPARQL-like query of the form
///
///   SELECT ?x ?y WHERE { ?x trigger ?y . ?y instanceOf KPI }
///
/// Multi-word surfaces are single-quoted:
///
///   SELECT ?k WHERE { 'SMF session establishment times out' affects ?k }
///
/// Keywords are case-insensitive; patterns are separated by '.'.
/// This is the query surface the paper describes experts using against
/// the Tele-KG (Sec. I), reproduced at a scale fit for the task benches.
StatusOr<ParsedQuery> ParseQuery(const std::string& text);

/// Executes parsed queries against a TripleStore by backtracking join over
/// the basic graph patterns (patterns are evaluated in the order given).
class QueryEngine {
 public:
  explicit QueryEngine(const TripleStore& store) : store_(store) {}

  /// Runs a parsed query; result rows contain exactly the selected
  /// variables. Fails if a selected variable never appears in WHERE, if a
  /// surface is unknown, or if a predicate is a variable.
  StatusOr<std::vector<Binding>> Execute(const ParsedQuery& query) const;

  /// Parses then executes.
  StatusOr<std::vector<Binding>> Execute(const std::string& text) const;

 private:
  const TripleStore& store_;
};

}  // namespace kg
}  // namespace telekit

#endif  // TELEKIT_KG_QUERY_H_

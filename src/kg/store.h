#ifndef TELEKIT_KG_STORE_H_
#define TELEKIT_KG_STORE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace telekit {
namespace kg {

using EntityId = int;
using RelationId = int;

/// A relational fact (h, r, t).
struct Triple {
  EntityId head = 0;
  RelationId relation = 0;
  EntityId tail = 0;

  friend bool operator==(const Triple& a, const Triple& b) = default;
};

/// A probabilistic fact (h, r, t, s) with confidence s in [0, 1]
/// (Sec. V-D of the paper: facts from experts and automatic algorithms).
struct Quadruple {
  EntityId head = 0;
  RelationId relation = 0;
  EntityId tail = 0;
  float confidence = 1.0f;
};

/// A numeric attribute triple (entity, attribute, value), e.g.
/// ("ALM-100072", "occurrence count", 17).
struct NumericAttribute {
  EntityId entity = 0;
  std::string attribute;
  float value = 0.0f;
};

/// A literal attribute triple (entity, attribute, "string value").
struct StringAttribute {
  EntityId entity = 0;
  std::string attribute;
  std::string value;
};

/// In-memory store for the Tele-KG: entity/relation registries (deduped by
/// surface form), relational triples, probabilistic quadruples, and
/// attribute triples, with the index structures needed for negative
/// sampling, schema traversal and pattern queries.
class TripleStore {
 public:
  TripleStore() = default;

  // --- Registries -----------------------------------------------------------

  /// Adds (or finds) an entity by surface form; returns its id.
  EntityId AddEntity(const std::string& surface);
  /// Adds (or finds) a relation by surface form; returns its id.
  RelationId AddRelation(const std::string& surface);

  /// Entity id for a surface, or NotFound.
  StatusOr<EntityId> FindEntity(const std::string& surface) const;
  /// Relation id for a surface, or NotFound.
  StatusOr<RelationId> FindRelation(const std::string& surface) const;

  const std::string& EntitySurface(EntityId id) const;
  const std::string& RelationSurface(RelationId id) const;

  int num_entities() const { return static_cast<int>(entity_surfaces_.size()); }
  int num_relations() const {
    return static_cast<int>(relation_surfaces_.size());
  }

  // --- Facts -----------------------------------------------------------------

  /// Adds a relational triple (idempotent).
  void AddTriple(EntityId head, RelationId relation, EntityId tail);
  /// Adds a probabilistic quadruple.
  void AddQuadruple(EntityId head, RelationId relation, EntityId tail,
                    float confidence);
  void AddNumericAttribute(EntityId entity, const std::string& attribute,
                           float value);
  void AddStringAttribute(EntityId entity, const std::string& attribute,
                          const std::string& value);

  const std::vector<Triple>& triples() const { return triples_; }
  const std::vector<Quadruple>& quadruples() const { return quadruples_; }
  const std::vector<NumericAttribute>& numeric_attributes() const {
    return numeric_attributes_;
  }
  const std::vector<StringAttribute>& string_attributes() const {
    return string_attributes_;
  }

  /// True if the exact triple is stored (used for filtered ranking and for
  /// rejecting false negatives during sampling).
  bool HasTriple(EntityId head, RelationId relation, EntityId tail) const;

  // --- Queries ------------------------------------------------------------------

  /// All t with (head, relation, t) in the store.
  std::vector<EntityId> Objects(EntityId head, RelationId relation) const;
  /// All h with (h, relation, tail) in the store.
  std::vector<EntityId> Subjects(RelationId relation, EntityId tail) const;

  /// Transitive closure of Objects over one relation (e.g. all
  /// superclasses through "subclassOf" chains). `start` is excluded.
  std::vector<EntityId> TransitiveObjects(EntityId start,
                                          RelationId relation) const;

  /// True if `entity` reaches `ancestor` via `relation` edges
  /// (schema check: IsSubclassOf).
  bool Reaches(EntityId entity, EntityId ancestor, RelationId relation) const;

  /// Mini-SPARQL pattern match: any combination of bound/unbound slots.
  std::vector<Triple> Match(std::optional<EntityId> head,
                            std::optional<RelationId> relation,
                            std::optional<EntityId> tail) const;

  /// Numeric attributes of one entity.
  std::vector<NumericAttribute> NumericAttributesOf(EntityId entity) const;
  /// String attributes of one entity.
  std::vector<StringAttribute> StringAttributesOf(EntityId entity) const;

 private:
  static uint64_t TripleKey(EntityId h, RelationId r, EntityId t) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(h)) << 40) ^
           (static_cast<uint64_t>(static_cast<uint32_t>(r)) << 20) ^
           static_cast<uint64_t>(static_cast<uint32_t>(t));
  }

  std::vector<std::string> entity_surfaces_;
  std::vector<std::string> relation_surfaces_;
  std::unordered_map<std::string, EntityId> entity_ids_;
  std::unordered_map<std::string, RelationId> relation_ids_;

  std::vector<Triple> triples_;
  std::vector<Quadruple> quadruples_;
  std::vector<NumericAttribute> numeric_attributes_;
  std::vector<StringAttribute> string_attributes_;
  std::unordered_set<uint64_t> triple_keys_;
};

}  // namespace kg
}  // namespace telekit

#endif  // TELEKIT_KG_STORE_H_

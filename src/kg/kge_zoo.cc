#include "kg/kge_zoo.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace telekit {
namespace kg {

namespace {

constexpr float kPi = 3.14159265358979323846f;

std::vector<std::vector<float>> RandomMatrix(int rows, int cols, float scale,
                                             Rng& rng) {
  std::vector<std::vector<float>> m(static_cast<size_t>(rows));
  for (auto& row : m) {
    row.resize(static_cast<size_t>(cols));
    for (float& v : row) v = static_cast<float>(rng.Uniform(-scale, scale));
  }
  return m;
}

}  // namespace

std::string KgeModelKindName(KgeModelKind kind) {
  switch (kind) {
    case KgeModelKind::kTransE:
      return "TransE";
    case KgeModelKind::kTransH:
      return "TransH";
    case KgeModelKind::kRotatE:
      return "RotatE";
    case KgeModelKind::kDistMult:
      return "DistMult";
  }
  return "?";
}

float KgeModel::MarginFor(const Quadruple& fact) const {
  return std::pow(std::max(fact.confidence, 1e-6f),
                  options_.confidence_alpha) *
         options_.margin;
}

float KgeModel::TrainEpoch(const std::vector<Quadruple>& facts,
                           const NegativeSampler& sampler, Rng& rng) {
  TELEKIT_CHECK(!facts.empty());
  std::vector<size_t> order(facts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  double total = 0.0;
  int64_t count = 0;
  for (size_t idx : order) {
    const Quadruple& pos = facts[idx];
    const Triple pos_triple{pos.head, pos.relation, pos.tail};
    for (int k = 0; k < options_.negatives; ++k) {
      const Triple neg = sampler.Corrupt(pos_triple, rng.Bernoulli(0.5), rng);
      total += UpdatePair(pos, neg);
      ++count;
    }
  }
  EndEpoch();
  return static_cast<float>(total / static_cast<double>(count));
}

float KgeModel::Fit(const std::vector<Quadruple>& facts,
                    const NegativeSampler& sampler, Rng& rng) {
  float last = 0.0f;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    last = TrainEpoch(facts, sampler, rng);
  }
  return last;
}

double KgeModel::RankOfTail(EntityId h, RelationId r, EntityId target,
                            const std::vector<EntityId>& candidates) const {
  const float target_score = Score(h, r, target);
  int better = 0;
  int ties = 0;
  for (EntityId t : candidates) {
    if (t == target) continue;
    const float s = Score(h, r, t);
    if (s > target_score) {
      ++better;
    } else if (s == target_score) {
      ++ties;
    }
  }
  return 1.0 + better + ties / 2.0;
}

namespace {

/// TransE under the KgeModel interface: the same pair update as
/// TranslationalKge (which remains the primary implementation used by the
/// FCT task), provided here so the scorer ablation compares like-for-like.
class TransEModel : public KgeModel {
 public:
  TransEModel(int num_entities, int num_relations, const KgeOptions& options,
              Rng& rng)
      : KgeModel(options),
        entities_(RandomMatrix(num_entities, options.dim,
                               options.init_scale, rng)),
        relations_(RandomMatrix(num_relations, options.dim,
                                options.init_scale, rng)) {}

  float Score(EntityId h, RelationId r, EntityId t) const override {
    return -Distance(h, r, t);
  }

  float UpdatePair(const Quadruple& pos, const Triple& neg) override {
    const float margin = MarginFor(pos);
    const float d_pos = Distance(pos.head, pos.relation, pos.tail);
    const float d_neg = Distance(neg.head, neg.relation, neg.tail);
    const float loss = d_pos - d_neg + margin;
    if (loss <= 0.0f) return 0.0f;
    Apply(pos.head, pos.relation, pos.tail, +1.0f, d_pos);
    Apply(neg.head, neg.relation, neg.tail, -1.0f, d_neg);
    return loss;
  }

 private:
  float Distance(EntityId h, RelationId r, EntityId t) const {
    const auto& eh = entities_[static_cast<size_t>(h)];
    const auto& er = relations_[static_cast<size_t>(r)];
    const auto& et = entities_[static_cast<size_t>(t)];
    float sq = 0;
    for (int i = 0; i < options_.dim; ++i) {
      const size_t si = static_cast<size_t>(i);
      const float d = eh[si] + er[si] - et[si];
      sq += d * d;
    }
    return std::sqrt(sq);
  }

  void Apply(EntityId h, RelationId r, EntityId t, float sign, float dist) {
    if (dist < 1e-9f) return;
    auto& eh = entities_[static_cast<size_t>(h)];
    auto& er = relations_[static_cast<size_t>(r)];
    auto& et = entities_[static_cast<size_t>(t)];
    const float scale = sign * options_.learning_rate / dist;
    for (int i = 0; i < options_.dim; ++i) {
      const size_t si = static_cast<size_t>(i);
      const float d = eh[si] + er[si] - et[si];
      eh[si] -= scale * d;
      er[si] -= scale * d;
      et[si] += scale * d;
    }
  }

  std::vector<std::vector<float>> entities_;
  std::vector<std::vector<float>> relations_;
};

}  // namespace

std::unique_ptr<KgeModel> MakeKgeModel(KgeModelKind kind, int num_entities,
                                       int num_relations,
                                       const KgeOptions& options, Rng& rng) {
  switch (kind) {
    case KgeModelKind::kTransE:
      return std::make_unique<TransEModel>(num_entities, num_relations,
                                           options, rng);
    case KgeModelKind::kTransH:
      return std::make_unique<TransH>(num_entities, num_relations, options,
                                      rng);
    case KgeModelKind::kRotatE:
      return std::make_unique<RotatE>(num_entities, num_relations, options,
                                      rng);
    case KgeModelKind::kDistMult:
      return std::make_unique<DistMult>(num_entities, num_relations, options,
                                        rng);
  }
  TELEKIT_CHECK(false) << "unknown KGE model kind";
  return nullptr;
}

// --- TransH -------------------------------------------------------------------

TransH::TransH(int num_entities, int num_relations, const KgeOptions& options,
               Rng& rng)
    : KgeModel(options),
      entities_(RandomMatrix(num_entities, options.dim, options.init_scale,
                             rng)),
      translations_(RandomMatrix(num_relations, options.dim,
                                 options.init_scale, rng)),
      normals_(RandomMatrix(num_relations, options.dim, 1.0f, rng)) {
  NormalizeNormals();
}

void TransH::NormalizeNormals() {
  for (auto& w : normals_) {
    float sq = 0;
    for (float v : w) sq += v * v;
    const float norm = std::sqrt(sq);
    if (norm > 1e-9f) {
      for (float& v : w) v /= norm;
    }
  }
}

float TransH::Distance(EntityId h, RelationId r, EntityId t,
                       std::vector<float>* delta) const {
  const auto& eh = entities_[static_cast<size_t>(h)];
  const auto& et = entities_[static_cast<size_t>(t)];
  const auto& dr = translations_[static_cast<size_t>(r)];
  const auto& w = normals_[static_cast<size_t>(r)];
  float wh = 0, wt = 0;
  for (int i = 0; i < options_.dim; ++i) {
    wh += w[static_cast<size_t>(i)] * eh[static_cast<size_t>(i)];
    wt += w[static_cast<size_t>(i)] * et[static_cast<size_t>(i)];
  }
  float sq = 0;
  std::vector<float> local;
  std::vector<float>& d = delta != nullptr ? *delta : local;
  d.resize(static_cast<size_t>(options_.dim));
  for (int i = 0; i < options_.dim; ++i) {
    const size_t si = static_cast<size_t>(i);
    const float h_perp = eh[si] - wh * w[si];
    const float t_perp = et[si] - wt * w[si];
    d[si] = h_perp + dr[si] - t_perp;
    sq += d[si] * d[si];
  }
  return std::sqrt(sq);
}

float TransH::Score(EntityId h, RelationId r, EntityId t) const {
  return -Distance(h, r, t);
}

void TransH::ApplyGradient(EntityId h, RelationId r, EntityId t, float sign,
                           float dist) {
  if (dist < 1e-9f) return;
  std::vector<float> delta;
  Distance(h, r, t, &delta);
  auto& eh = entities_[static_cast<size_t>(h)];
  auto& et = entities_[static_cast<size_t>(t)];
  auto& dr = translations_[static_cast<size_t>(r)];
  auto& w = normals_[static_cast<size_t>(r)];
  const float lr = options_.learning_rate;
  const float scale = sign * lr / dist;
  // delta' = delta / dist; gradients:
  //   d/dh   = (I - w w^T) delta'
  //   d/dt   = -(I - w w^T) delta'
  //   d/ddr  = delta'
  //   d/dw   = -(delta'.w)(h - t) - (w.(h - t)) delta'
  float delta_dot_w = 0, w_dot_hmt = 0;
  for (int i = 0; i < options_.dim; ++i) {
    const size_t si = static_cast<size_t>(i);
    delta_dot_w += delta[si] * w[si];
    w_dot_hmt += w[si] * (eh[si] - et[si]);
  }
  for (int i = 0; i < options_.dim; ++i) {
    const size_t si = static_cast<size_t>(i);
    const float projected = delta[si] - delta_dot_w * w[si];
    eh[si] -= scale * projected;
    et[si] += scale * projected;
    dr[si] -= scale * delta[si];
    const float grad_w =
        -(delta_dot_w * (eh[si] - et[si]) + w_dot_hmt * delta[si]);
    w[si] -= scale * grad_w;
  }
}

float TransH::UpdatePair(const Quadruple& pos, const Triple& neg) {
  const float margin = MarginFor(pos);
  const float d_pos = Distance(pos.head, pos.relation, pos.tail);
  const float d_neg = Distance(neg.head, neg.relation, neg.tail);
  const float loss = d_pos - d_neg + margin;
  if (loss <= 0.0f) return 0.0f;
  ApplyGradient(pos.head, pos.relation, pos.tail, +1.0f, d_pos);
  ApplyGradient(neg.head, neg.relation, neg.tail, -1.0f, d_neg);
  return loss;
}

void TransH::EndEpoch() { NormalizeNormals(); }

// --- RotatE --------------------------------------------------------------------

RotatE::RotatE(int num_entities, int num_relations, const KgeOptions& options,
               Rng& rng)
    : KgeModel(options), half_dim_(options.dim / 2) {
  TELEKIT_CHECK_EQ(options.dim % 2, 0) << "RotatE needs an even dim";
  entities_ = RandomMatrix(num_entities, options.dim, options.init_scale,
                           rng);
  phases_.resize(static_cast<size_t>(num_relations));
  for (auto& row : phases_) {
    row.resize(static_cast<size_t>(half_dim_));
    for (float& v : row) v = static_cast<float>(rng.Uniform(-kPi, kPi));
  }
}

float RotatE::Distance(EntityId h, RelationId r, EntityId t) const {
  const auto& eh = entities_[static_cast<size_t>(h)];
  const auto& et = entities_[static_cast<size_t>(t)];
  const auto& theta = phases_[static_cast<size_t>(r)];
  float sq = 0;
  for (int k = 0; k < half_dim_; ++k) {
    const size_t re = static_cast<size_t>(2 * k);
    const size_t im = re + 1;
    const float c = std::cos(theta[static_cast<size_t>(k)]);
    const float s = std::sin(theta[static_cast<size_t>(k)]);
    const float rot_re = eh[re] * c - eh[im] * s;
    const float rot_im = eh[re] * s + eh[im] * c;
    const float dre = rot_re - et[re];
    const float dim_ = rot_im - et[im];
    sq += dre * dre + dim_ * dim_;
  }
  return std::sqrt(sq);
}

float RotatE::Score(EntityId h, RelationId r, EntityId t) const {
  return -Distance(h, r, t);
}

void RotatE::ApplyGradient(EntityId h, RelationId r, EntityId t, float sign,
                           float dist) {
  if (dist < 1e-9f) return;
  auto& eh = entities_[static_cast<size_t>(h)];
  auto& et = entities_[static_cast<size_t>(t)];
  auto& theta = phases_[static_cast<size_t>(r)];
  const float scale = sign * options_.learning_rate / dist;
  for (int k = 0; k < half_dim_; ++k) {
    const size_t re = static_cast<size_t>(2 * k);
    const size_t im = re + 1;
    const float c = std::cos(theta[static_cast<size_t>(k)]);
    const float s = std::sin(theta[static_cast<size_t>(k)]);
    const float rot_re = eh[re] * c - eh[im] * s;
    const float rot_im = eh[re] * s + eh[im] * c;
    const float dre = rot_re - et[re];
    const float dim_ = rot_im - et[im];
    // d(dist^2)/2 partials; chain through the rotation for h.
    // d/d(eh_re) = dre * c + dim_ * s ; d/d(eh_im) = -dre * s + dim_ * c
    const float gh_re = dre * c + dim_ * s;
    const float gh_im = -dre * s + dim_ * c;
    // d/d(theta): rotation derivative = i * (h r), i.e. (-rot_im, rot_re).
    const float gtheta = dre * (-rot_im) + dim_ * rot_re;
    eh[re] -= scale * gh_re;
    eh[im] -= scale * gh_im;
    et[re] += scale * dre;
    et[im] += scale * dim_;
    theta[static_cast<size_t>(k)] -= scale * gtheta;
  }
}

float RotatE::UpdatePair(const Quadruple& pos, const Triple& neg) {
  const float margin = MarginFor(pos);
  const float d_pos = Distance(pos.head, pos.relation, pos.tail);
  const float d_neg = Distance(neg.head, neg.relation, neg.tail);
  const float loss = d_pos - d_neg + margin;
  if (loss <= 0.0f) return 0.0f;
  ApplyGradient(pos.head, pos.relation, pos.tail, +1.0f, d_pos);
  ApplyGradient(neg.head, neg.relation, neg.tail, -1.0f, d_neg);
  return loss;
}

// --- DistMult ------------------------------------------------------------------

DistMult::DistMult(int num_entities, int num_relations,
                   const KgeOptions& options, Rng& rng)
    : KgeModel(options),
      entities_(RandomMatrix(num_entities, options.dim, options.init_scale,
                             rng)),
      relations_(RandomMatrix(num_relations, options.dim, options.init_scale,
                              rng)) {}

float DistMult::Score(EntityId h, RelationId r, EntityId t) const {
  const auto& eh = entities_[static_cast<size_t>(h)];
  const auto& er = relations_[static_cast<size_t>(r)];
  const auto& et = entities_[static_cast<size_t>(t)];
  float score = 0;
  for (int i = 0; i < options_.dim; ++i) {
    const size_t si = static_cast<size_t>(i);
    score += eh[si] * er[si] * et[si];
  }
  return score;
}

void DistMult::ApplyLogisticGradient(const Triple& triple, float label_sign,
                                     float weight) {
  auto& eh = entities_[static_cast<size_t>(triple.head)];
  auto& er = relations_[static_cast<size_t>(triple.relation)];
  auto& et = entities_[static_cast<size_t>(triple.tail)];
  const float s = Score(triple.head, triple.relation, triple.tail);
  // L = softplus(-y s); dL/ds = -y sigmoid(-y s).
  const float sig = 1.0f / (1.0f + std::exp(label_sign * s));
  const float coeff =
      -label_sign * sig * weight * options_.learning_rate;
  for (int i = 0; i < options_.dim; ++i) {
    const size_t si = static_cast<size_t>(i);
    const float gh = er[si] * et[si];
    const float gr = eh[si] * et[si];
    const float gt = eh[si] * er[si];
    eh[si] -= coeff * gh;
    er[si] -= coeff * gr;
    et[si] -= coeff * gt;
  }
}

float DistMult::UpdatePair(const Quadruple& pos, const Triple& neg) {
  const Triple pos_triple{pos.head, pos.relation, pos.tail};
  const float s_pos = Score(pos.head, pos.relation, pos.tail);
  const float s_neg = Score(neg.head, neg.relation, neg.tail);
  // Confidence weights the positive term (uncertain facts push less).
  const float pos_weight = std::pow(std::max(pos.confidence, 1e-6f),
                                    options_.confidence_alpha);
  ApplyLogisticGradient(pos_triple, +1.0f, pos_weight);
  ApplyLogisticGradient(neg, -1.0f, 1.0f);
  const float loss_pos =
      std::log1p(std::exp(-std::min(s_pos, 30.0f))) * pos_weight;
  const float loss_neg = std::log1p(std::exp(std::min(s_neg, 30.0f)));
  return loss_pos + loss_neg;
}

}  // namespace kg
}  // namespace telekit

#include "kg/kge.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace telekit {
namespace kg {

Triple NegativeSampler::Corrupt(const Triple& triple, bool corrupt_tail,
                                Rng& rng) const {
  const int n = store_.num_entities();
  TELEKIT_CHECK_GT(n, 1) << "cannot corrupt with a single entity";
  Triple corrupted = triple;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const EntityId candidate = static_cast<EntityId>(rng.UniformInt(n));
    if (corrupt_tail) {
      corrupted.tail = candidate;
    } else {
      corrupted.head = candidate;
    }
    const bool unchanged = corrupt_tail ? candidate == triple.tail
                                        : candidate == triple.head;
    if (!unchanged &&
        !store_.HasTriple(corrupted.head, corrupted.relation,
                          corrupted.tail)) {
      return corrupted;
    }
  }
  // Dense graphs may exhaust attempts; the last candidate is still a valid
  // (if occasionally false-negative) corruption.
  return corrupted;
}

TranslationalKge::TranslationalKge(int num_entities, int num_relations,
                                   const KgeOptions& options, Rng& rng)
    : options_(options),
      num_entities_(num_entities),
      num_relations_(num_relations) {
  TELEKIT_CHECK_GT(num_entities, 0);
  TELEKIT_CHECK_GT(num_relations, 0);
  TELEKIT_CHECK_GT(options.dim, 0);
  auto init = [&](int rows) {
    std::vector<std::vector<float>> m(static_cast<size_t>(rows));
    for (auto& row : m) {
      row.resize(static_cast<size_t>(options_.dim));
      for (float& v : row) {
        v = static_cast<float>(rng.Uniform(-options_.init_scale,
                                           options_.init_scale));
      }
    }
    return m;
  };
  entities_ = init(num_entities);
  relations_ = init(num_relations);
  if (options_.normalize_entities) NormalizeEntityRows();
}

void TranslationalKge::InitializeEntities(
    const std::vector<std::vector<float>>& vectors) {
  TELEKIT_CHECK_EQ(static_cast<int>(vectors.size()), num_entities_);
  for (int e = 0; e < num_entities_; ++e) {
    TELEKIT_CHECK_EQ(static_cast<int>(vectors[static_cast<size_t>(e)].size()),
                     options_.dim)
        << "entity vector dim mismatch";
    entities_[static_cast<size_t>(e)] = vectors[static_cast<size_t>(e)];
  }
  if (options_.normalize_entities) NormalizeEntityRows();
}

float TranslationalKge::Distance(EntityId h, RelationId r, EntityId t) const {
  const auto& eh = entities_[static_cast<size_t>(h)];
  const auto& er = relations_[static_cast<size_t>(r)];
  const auto& et = entities_[static_cast<size_t>(t)];
  float sq = 0.0f;
  for (int i = 0; i < options_.dim; ++i) {
    const float d = eh[static_cast<size_t>(i)] + er[static_cast<size_t>(i)] -
                    et[static_cast<size_t>(i)];
    sq += d * d;
  }
  return std::sqrt(sq);
}

float TranslationalKge::Score(EntityId h, RelationId r, EntityId t) const {
  TELEKIT_CHECK(h >= 0 && h < num_entities_);
  TELEKIT_CHECK(r >= 0 && r < num_relations_);
  TELEKIT_CHECK(t >= 0 && t < num_entities_);
  return -Distance(h, r, t);
}

float TranslationalKge::UpdatePair(const Quadruple& pos, const Triple& neg) {
  // Margin scaled by confidence: s^alpha * M (Eq. 24). alpha = 0 -> TransE.
  const float margin =
      std::pow(std::max(pos.confidence, 1e-6f), options_.confidence_alpha) *
      options_.margin;
  const float d_pos = Distance(pos.head, pos.relation, pos.tail);
  const float d_neg = Distance(neg.head, neg.relation, neg.tail);
  const float loss = d_pos - d_neg + margin;
  if (loss <= 0.0f) return 0.0f;

  // Gradient of ||h + r - t||_2 w.r.t. h is (h+r-t)/d (and -that for t).
  const float lr = options_.learning_rate;
  auto apply = [&](EntityId h, RelationId r, EntityId t, float sign,
                   float dist) {
    if (dist < 1e-9f) return;
    auto& eh = entities_[static_cast<size_t>(h)];
    auto& er = relations_[static_cast<size_t>(r)];
    auto& et = entities_[static_cast<size_t>(t)];
    const float scale = sign * lr / dist;
    for (int i = 0; i < options_.dim; ++i) {
      const size_t si = static_cast<size_t>(i);
      const float diff = eh[si] + er[si] - et[si];
      eh[si] -= scale * diff;
      er[si] -= scale * diff;
      et[si] += scale * diff;
    }
  };
  // Descend on d_pos, ascend on d_neg.
  apply(pos.head, pos.relation, pos.tail, +1.0f, d_pos);
  apply(neg.head, neg.relation, neg.tail, -1.0f, d_neg);
  return loss;
}

float TranslationalKge::TrainEpoch(const std::vector<Quadruple>& facts,
                                   const NegativeSampler& sampler, Rng& rng) {
  TELEKIT_CHECK(!facts.empty());
  std::vector<size_t> order(facts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(order);
  double total = 0.0;
  int64_t count = 0;
  for (size_t idx : order) {
    const Quadruple& pos = facts[idx];
    const Triple pos_triple{pos.head, pos.relation, pos.tail};
    for (int k = 0; k < options_.negatives; ++k) {
      const Triple neg = sampler.Corrupt(pos_triple, rng.Bernoulli(0.5), rng);
      total += UpdatePair(pos, neg);
      ++count;
    }
  }
  if (options_.normalize_entities) NormalizeEntityRows();
  static obs::Counter& triples_scored =
      obs::MetricsRegistry::Global().GetCounter("kge/triples_scored");
  triples_scored.Increment(static_cast<uint64_t>(count));
  return static_cast<float>(total / static_cast<double>(count));
}

float TranslationalKge::Fit(const std::vector<Quadruple>& facts,
                            const NegativeSampler& sampler, Rng& rng) {
  obs::Span span("train/kge");
  obs::Histogram& epoch_ms =
      obs::MetricsRegistry::Global().GetHistogram("kge/epoch_ms");
  float last = 0.0f;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    obs::ScopedTimer timer(epoch_ms);
    last = TrainEpoch(facts, sampler, rng);
  }
  return last;
}

std::vector<float> TranslationalKge::ScoreTails(
    EntityId h, RelationId r, const std::vector<EntityId>& candidates) const {
  std::vector<float> scores;
  scores.reserve(candidates.size());
  for (EntityId t : candidates) scores.push_back(Score(h, r, t));
  return scores;
}

double TranslationalKge::RankOfTail(
    EntityId h, RelationId r, EntityId target,
    const std::vector<EntityId>& candidates) const {
  const float target_score = Score(h, r, target);
  int better = 0;
  int ties = 0;
  for (EntityId t : candidates) {
    if (t == target) continue;
    const float s = Score(h, r, t);
    if (s > target_score) {
      ++better;
    } else if (s == target_score) {
      ++ties;
    }
  }
  // Average over tie permutations.
  return 1.0 + better + ties / 2.0;
}

const std::vector<float>& TranslationalKge::entity_embedding(
    EntityId e) const {
  TELEKIT_CHECK(e >= 0 && e < num_entities_);
  return entities_[static_cast<size_t>(e)];
}

const std::vector<float>& TranslationalKge::relation_embedding(
    RelationId r) const {
  TELEKIT_CHECK(r >= 0 && r < num_relations_);
  return relations_[static_cast<size_t>(r)];
}

void TranslationalKge::NormalizeEntityRows() {
  for (auto& row : entities_) {
    float sq = 0.0f;
    for (float v : row) sq += v * v;
    const float norm = std::sqrt(sq);
    if (norm > 1e-9f) {
      for (float& v : row) v /= norm;
    }
  }
}

}  // namespace kg
}  // namespace telekit

#ifndef TELEKIT_KG_KGE_ZOO_H_
#define TELEKIT_KG_KGE_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kg/kge.h"
#include "kg/store.h"

namespace telekit {
namespace kg {

/// The KGE scorers provided by the paper's NeuralKG substrate (Sec. V-D
/// uses a translation-based model; the library also ships TransH, RotatE,
/// DistMult — reproduced here for the FCT scorer ablation).
enum class KgeModelKind { kTransE, kTransH, kRotatE, kDistMult };

/// Display name of a scorer.
std::string KgeModelKindName(KgeModelKind kind);

/// Common interface over knowledge-graph embedding models: margin- or
/// logistic-trained, manually differentiated (no autograd), confidence-
/// aware via the GTransE margin scaling where applicable.
class KgeModel {
 public:
  virtual ~KgeModel() = default;

  KgeModel(const KgeModel&) = delete;
  KgeModel& operator=(const KgeModel&) = delete;

  /// Plausibility score; higher is more plausible.
  virtual float Score(EntityId h, RelationId r, EntityId t) const = 0;

  /// One SGD update on a (positive, negative) pair; returns the pair loss.
  virtual float UpdatePair(const Quadruple& pos, const Triple& neg) = 0;

  /// Hook after each epoch (e.g. renormalization).
  virtual void EndEpoch() {}

  /// One epoch over the facts; returns the mean pair loss.
  float TrainEpoch(const std::vector<Quadruple>& facts,
                   const NegativeSampler& sampler, Rng& rng);

  /// options().epochs epochs; returns the final epoch's mean loss.
  float Fit(const std::vector<Quadruple>& facts,
            const NegativeSampler& sampler, Rng& rng);

  /// Rank (1-based, ties averaged) of `target` among `candidates`.
  double RankOfTail(EntityId h, RelationId r, EntityId target,
                    const std::vector<EntityId>& candidates) const;

  const KgeOptions& options() const { return options_; }

 protected:
  explicit KgeModel(const KgeOptions& options) : options_(options) {}

  /// GTransE-scaled margin for a fact (Eq. 24).
  float MarginFor(const Quadruple& fact) const;

  KgeOptions options_;
};

/// Factory. `dim` must be even for RotatE (complex pairs).
std::unique_ptr<KgeModel> MakeKgeModel(KgeModelKind kind, int num_entities,
                                       int num_relations,
                                       const KgeOptions& options, Rng& rng);

/// TransH (Wang et al. 2014): entities are projected onto a per-relation
/// hyperplane before translation; handles 1-N / N-1 relations better than
/// TransE.
class TransH : public KgeModel {
 public:
  TransH(int num_entities, int num_relations, const KgeOptions& options,
         Rng& rng);
  float Score(EntityId h, RelationId r, EntityId t) const override;
  float UpdatePair(const Quadruple& pos, const Triple& neg) override;
  void EndEpoch() override;

 private:
  float Distance(EntityId h, RelationId r, EntityId t,
                 std::vector<float>* delta = nullptr) const;
  void ApplyGradient(EntityId h, RelationId r, EntityId t, float sign,
                     float dist);
  void NormalizeNormals();

  std::vector<std::vector<float>> entities_;
  std::vector<std::vector<float>> translations_;  // d_r
  std::vector<std::vector<float>> normals_;       // w_r (unit)
};

/// RotatE (Sun et al. 2019): relations are rotations in the complex plane;
/// entities are complex vectors of dim/2 coordinates.
class RotatE : public KgeModel {
 public:
  RotatE(int num_entities, int num_relations, const KgeOptions& options,
         Rng& rng);
  float Score(EntityId h, RelationId r, EntityId t) const override;
  float UpdatePair(const Quadruple& pos, const Triple& neg) override;

 private:
  float Distance(EntityId h, RelationId r, EntityId t) const;
  void ApplyGradient(EntityId h, RelationId r, EntityId t, float sign,
                     float dist);

  int half_dim_;
  std::vector<std::vector<float>> entities_;  // interleaved re/im
  std::vector<std::vector<float>> phases_;    // theta per complex coord
};

/// DistMult (Yang et al. 2015): bilinear diagonal scorer, trained with
/// logistic loss on positive/negative pairs.
class DistMult : public KgeModel {
 public:
  DistMult(int num_entities, int num_relations, const KgeOptions& options,
           Rng& rng);
  float Score(EntityId h, RelationId r, EntityId t) const override;
  float UpdatePair(const Quadruple& pos, const Triple& neg) override;

 private:
  void ApplyLogisticGradient(const Triple& triple, float label_sign,
                             float weight);

  std::vector<std::vector<float>> entities_;
  std::vector<std::vector<float>> relations_;
};

}  // namespace kg
}  // namespace telekit

#endif  // TELEKIT_KG_KGE_ZOO_H_

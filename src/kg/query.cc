#include "kg/query.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <optional>

#include "common/string_util.h"

namespace telekit {
namespace kg {

namespace {

bool IsVariable(const std::string& token) {
  return !token.empty() && token[0] == '?';
}

// Splits the query into tokens; single-quoted runs become one token.
StatusOr<std::vector<std::string>> Lex(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  bool quoted = false;
  for (char c : text) {
    if (quoted) {
      if (c == '\'') {
        tokens.push_back(current);
        current.clear();
        quoted = false;
      } else {
        current += c;
      }
      continue;
    }
    if (c == '\'') {
      quoted = true;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else if (c == '{' || c == '}' || c == '.') {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
      tokens.emplace_back(1, c);
    } else {
      current += c;
    }
  }
  if (quoted) return Status::InvalidArgument("unterminated quote");
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

bool KeywordEquals(const std::string& token, const char* keyword) {
  return ToLower(token) == keyword;
}

}  // namespace

StatusOr<ParsedQuery> ParseQuery(const std::string& text) {
  auto tokens_or = Lex(text);
  TELEKIT_RETURN_IF_ERROR(tokens_or.status());
  const std::vector<std::string>& tokens = *tokens_or;
  size_t pos = 0;
  auto next = [&]() -> const std::string* {
    return pos < tokens.size() ? &tokens[pos++] : nullptr;
  };

  const std::string* token = next();
  if (token == nullptr || !KeywordEquals(*token, "select")) {
    return Status::InvalidArgument("query must start with SELECT");
  }
  ParsedQuery query;
  while ((token = next()) != nullptr && !KeywordEquals(*token, "where")) {
    if (!IsVariable(*token)) {
      return Status::InvalidArgument("SELECT expects variables, got: " +
                                     *token);
    }
    query.select.push_back(*token);
  }
  if (token == nullptr) return Status::InvalidArgument("missing WHERE");
  if (query.select.empty()) {
    return Status::InvalidArgument("SELECT needs at least one variable");
  }
  token = next();
  if (token == nullptr || *token != "{") {
    return Status::InvalidArgument("WHERE must open with '{'");
  }

  while (true) {
    const std::string* subject = next();
    if (subject == nullptr) {
      return Status::InvalidArgument("WHERE not closed with '}'");
    }
    if (*subject == "}") break;
    const std::string* predicate = next();
    const std::string* object = next();
    if (predicate == nullptr || object == nullptr || *predicate == "}" ||
        *object == "}") {
      return Status::InvalidArgument("incomplete pattern");
    }
    query.where.push_back({*subject, *predicate, *object});
    const std::string* separator = next();
    if (separator == nullptr) {
      return Status::InvalidArgument("WHERE not closed with '}'");
    }
    if (*separator == "}") break;
    if (*separator != ".") {
      return Status::InvalidArgument("patterns must be separated by '.'");
    }
  }
  if (query.where.empty()) {
    return Status::InvalidArgument("WHERE needs at least one pattern");
  }
  // Every selected variable must be bindable.
  for (const std::string& var : query.select) {
    bool appears = false;
    for (const QueryPattern& p : query.where) {
      appears |= p.subject == var || p.object == var;
    }
    if (!appears) {
      return Status::InvalidArgument("selected variable never bound: " + var);
    }
  }
  return query;
}

StatusOr<std::vector<Binding>> QueryEngine::Execute(
    const ParsedQuery& query) const {
  // Pre-resolve concrete surfaces.
  struct ResolvedPattern {
    std::optional<EntityId> subject;  // nullopt = variable
    std::string subject_var;
    RelationId relation = 0;
    std::optional<EntityId> object;
    std::string object_var;
  };
  std::vector<ResolvedPattern> patterns;
  for (const QueryPattern& p : query.where) {
    if (IsVariable(p.predicate)) {
      return Status::InvalidArgument("variable predicates are unsupported: " +
                                     p.predicate);
    }
    ResolvedPattern resolved;
    auto relation = store_.FindRelation(p.predicate);
    TELEKIT_RETURN_IF_ERROR(relation.status());
    resolved.relation = *relation;
    if (IsVariable(p.subject)) {
      resolved.subject_var = p.subject;
    } else {
      auto entity = store_.FindEntity(p.subject);
      TELEKIT_RETURN_IF_ERROR(entity.status());
      resolved.subject = *entity;
    }
    if (IsVariable(p.object)) {
      resolved.object_var = p.object;
    } else {
      auto entity = store_.FindEntity(p.object);
      TELEKIT_RETURN_IF_ERROR(entity.status());
      resolved.object = *entity;
    }
    patterns.push_back(std::move(resolved));
  }

  std::vector<Binding> results;
  Binding binding;
  // Backtracking join over patterns in order.
  std::function<void(size_t)> match = [&](size_t index) {
    if (index == patterns.size()) {
      Binding row;
      for (const std::string& var : query.select) {
        auto it = binding.find(var);
        TELEKIT_CHECK(it != binding.end());
        row.emplace(var, it->second);
      }
      // Distinct rows only.
      if (std::find(results.begin(), results.end(), row) == results.end()) {
        results.push_back(std::move(row));
      }
      return;
    }
    const ResolvedPattern& p = patterns[index];
    // Effective subject/object constraints given current bindings.
    std::optional<EntityId> subject = p.subject;
    if (!subject && binding.count(p.subject_var)) {
      subject = binding[p.subject_var];
    }
    std::optional<EntityId> object = p.object;
    if (!object && binding.count(p.object_var)) {
      object = binding[p.object_var];
    }
    for (const Triple& t : store_.Match(subject, p.relation, object)) {
      std::vector<std::string> newly_bound;
      bool consistent = true;
      auto bind = [&](const std::string& var, EntityId value) {
        if (var.empty()) return;
        auto it = binding.find(var);
        if (it == binding.end()) {
          binding.emplace(var, value);
          newly_bound.push_back(var);
        } else if (it->second != value) {
          consistent = false;
        }
      };
      if (!subject) bind(p.subject_var, t.head);
      if (!object) bind(p.object_var, t.tail);
      // Same variable on both sides of one pattern must self-agree.
      if (consistent && p.subject_var == p.object_var &&
          !p.subject_var.empty() && t.head != t.tail) {
        consistent = false;
      }
      if (consistent) match(index + 1);
      for (const std::string& var : newly_bound) binding.erase(var);
    }
  };
  match(0);
  return results;
}

StatusOr<std::vector<Binding>> QueryEngine::Execute(
    const std::string& text) const {
  auto parsed = ParseQuery(text);
  TELEKIT_RETURN_IF_ERROR(parsed.status());
  return Execute(*parsed);
}

}  // namespace kg
}  // namespace telekit

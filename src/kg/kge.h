#ifndef TELEKIT_KG_KGE_H_
#define TELEKIT_KG_KGE_H_

#include <vector>

#include "common/rng.h"
#include "kg/store.h"

namespace telekit {
namespace kg {

/// Corrupts triples for negative sampling: fixes the head and resamples the
/// tail (or vice versa), rejecting corruptions that are true triples in the
/// store (the paper's policy in Sec. IV-D).
class NegativeSampler {
 public:
  explicit NegativeSampler(const TripleStore& store) : store_(store) {}

  /// Returns a corrupted copy of `triple`. `corrupt_tail` selects which
  /// side to resample; alternate or randomize it at the call site.
  Triple Corrupt(const Triple& triple, bool corrupt_tail, Rng& rng) const;

 private:
  const TripleStore& store_;
};

/// Configuration for translational KG embedding training.
struct KgeOptions {
  int dim = 32;
  float learning_rate = 0.05f;
  float margin = 1.0f;
  int epochs = 100;
  /// Negatives per positive per epoch.
  int negatives = 4;
  /// GTransE confidence exponent alpha (Eq. 24). The margin for a fact with
  /// confidence s becomes s^alpha * margin; alpha = 0 recovers plain TransE
  /// (confidence-independent margin).
  float confidence_alpha = 1.0f;
  /// Embedding initialization scale.
  float init_scale = 0.1f;
  /// L2-normalize entity embeddings after each epoch (TransE convention).
  bool normalize_entities = true;
};

/// Translational knowledge-graph embedding: TransE (Bordes et al., Eq. 11)
/// with the GTransE uncertain-KG margin generalization (Kertkeidkachorn et
/// al., Eq. 24) used by the fault-chain-tracing task. Training is manual
/// SGD over margin-ranking loss (no autograd; the embeddings are plain
/// float matrices for speed).
class TranslationalKge {
 public:
  /// Random initialization for `num_entities` x `num_relations`.
  TranslationalKge(int num_entities, int num_relations,
                   const KgeOptions& options, Rng& rng);

  /// Overwrites entity embeddings with external vectors (row e = entity e),
  /// e.g. KTeleBERT service embeddings (Eq. 23). Dimensions must match
  /// options().dim.
  void InitializeEntities(const std::vector<std::vector<float>>& vectors);

  /// Negative score -||h + r - t||_2: higher is more plausible.
  float Score(EntityId h, RelationId r, EntityId t) const;

  /// One SGD epoch over the quadruples; returns mean margin-ranking loss.
  float TrainEpoch(const std::vector<Quadruple>& facts,
                   const NegativeSampler& sampler, Rng& rng);

  /// Runs options().epochs epochs; returns the last epoch's mean loss.
  float Fit(const std::vector<Quadruple>& facts, const NegativeSampler& sampler,
            Rng& rng);

  /// Scores (h, r, t) for every candidate tail; descending score order is
  /// the ranking used for link prediction.
  std::vector<float> ScoreTails(EntityId h, RelationId r,
                                const std::vector<EntityId>& candidates) const;

  /// Rank (1-based) of `target` among `candidates` for query (h, r, ?),
  /// with optimistic/pessimistic tie handling averaged.
  double RankOfTail(EntityId h, RelationId r, EntityId target,
                    const std::vector<EntityId>& candidates) const;

  const KgeOptions& options() const { return options_; }
  const std::vector<float>& entity_embedding(EntityId e) const;
  const std::vector<float>& relation_embedding(RelationId r) const;

 private:
  float Distance(EntityId h, RelationId r, EntityId t) const;
  /// Applies the margin-loss gradient for one (positive, negative) pair.
  /// Returns the pair's hinge loss.
  float UpdatePair(const Quadruple& pos, const Triple& neg);
  void NormalizeEntityRows();

  KgeOptions options_;
  int num_entities_;
  int num_relations_;
  std::vector<std::vector<float>> entities_;
  std::vector<std::vector<float>> relations_;
};

}  // namespace kg
}  // namespace telekit

#endif  // TELEKIT_KG_KGE_H_

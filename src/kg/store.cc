#include "kg/store.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace telekit {
namespace kg {

EntityId TripleStore::AddEntity(const std::string& surface) {
  TELEKIT_CHECK(!surface.empty());
  auto it = entity_ids_.find(surface);
  if (it != entity_ids_.end()) return it->second;
  const EntityId id = num_entities();
  entity_surfaces_.push_back(surface);
  entity_ids_.emplace(surface, id);
  return id;
}

RelationId TripleStore::AddRelation(const std::string& surface) {
  TELEKIT_CHECK(!surface.empty());
  auto it = relation_ids_.find(surface);
  if (it != relation_ids_.end()) return it->second;
  const RelationId id = num_relations();
  relation_surfaces_.push_back(surface);
  relation_ids_.emplace(surface, id);
  return id;
}

StatusOr<EntityId> TripleStore::FindEntity(const std::string& surface) const {
  auto it = entity_ids_.find(surface);
  if (it == entity_ids_.end()) {
    return Status::NotFound("entity: " + surface);
  }
  return it->second;
}

StatusOr<RelationId> TripleStore::FindRelation(
    const std::string& surface) const {
  auto it = relation_ids_.find(surface);
  if (it == relation_ids_.end()) {
    return Status::NotFound("relation: " + surface);
  }
  return it->second;
}

const std::string& TripleStore::EntitySurface(EntityId id) const {
  TELEKIT_CHECK(id >= 0 && id < num_entities()) << "entity id " << id;
  return entity_surfaces_[static_cast<size_t>(id)];
}

const std::string& TripleStore::RelationSurface(RelationId id) const {
  TELEKIT_CHECK(id >= 0 && id < num_relations()) << "relation id " << id;
  return relation_surfaces_[static_cast<size_t>(id)];
}

void TripleStore::AddTriple(EntityId head, RelationId relation,
                            EntityId tail) {
  TELEKIT_CHECK(head >= 0 && head < num_entities());
  TELEKIT_CHECK(relation >= 0 && relation < num_relations());
  TELEKIT_CHECK(tail >= 0 && tail < num_entities());
  if (triple_keys_.insert(TripleKey(head, relation, tail)).second) {
    triples_.push_back({head, relation, tail});
  }
}

void TripleStore::AddQuadruple(EntityId head, RelationId relation,
                               EntityId tail, float confidence) {
  TELEKIT_CHECK(confidence >= 0.0f && confidence <= 1.0f);
  AddTriple(head, relation, tail);
  quadruples_.push_back({head, relation, tail, confidence});
}

void TripleStore::AddNumericAttribute(EntityId entity,
                                      const std::string& attribute,
                                      float value) {
  TELEKIT_CHECK(entity >= 0 && entity < num_entities());
  numeric_attributes_.push_back({entity, attribute, value});
}

void TripleStore::AddStringAttribute(EntityId entity,
                                     const std::string& attribute,
                                     const std::string& value) {
  TELEKIT_CHECK(entity >= 0 && entity < num_entities());
  string_attributes_.push_back({entity, attribute, value});
}

bool TripleStore::HasTriple(EntityId head, RelationId relation,
                            EntityId tail) const {
  return triple_keys_.count(TripleKey(head, relation, tail)) > 0;
}

std::vector<EntityId> TripleStore::Objects(EntityId head,
                                           RelationId relation) const {
  std::vector<EntityId> out;
  for (const Triple& t : triples_) {
    if (t.head == head && t.relation == relation) out.push_back(t.tail);
  }
  return out;
}

std::vector<EntityId> TripleStore::Subjects(RelationId relation,
                                            EntityId tail) const {
  std::vector<EntityId> out;
  for (const Triple& t : triples_) {
    if (t.tail == tail && t.relation == relation) out.push_back(t.head);
  }
  return out;
}

std::vector<EntityId> TripleStore::TransitiveObjects(
    EntityId start, RelationId relation) const {
  std::vector<EntityId> out;
  std::unordered_set<EntityId> visited = {start};
  std::deque<EntityId> frontier = {start};
  while (!frontier.empty()) {
    const EntityId current = frontier.front();
    frontier.pop_front();
    for (EntityId next : Objects(current, relation)) {
      if (visited.insert(next).second) {
        out.push_back(next);
        frontier.push_back(next);
      }
    }
  }
  return out;
}

bool TripleStore::Reaches(EntityId entity, EntityId ancestor,
                          RelationId relation) const {
  const auto ancestors = TransitiveObjects(entity, relation);
  return std::find(ancestors.begin(), ancestors.end(), ancestor) !=
         ancestors.end();
}

std::vector<Triple> TripleStore::Match(std::optional<EntityId> head,
                                       std::optional<RelationId> relation,
                                       std::optional<EntityId> tail) const {
  std::vector<Triple> out;
  for (const Triple& t : triples_) {
    if (head && t.head != *head) continue;
    if (relation && t.relation != *relation) continue;
    if (tail && t.tail != *tail) continue;
    out.push_back(t);
  }
  return out;
}

std::vector<NumericAttribute> TripleStore::NumericAttributesOf(
    EntityId entity) const {
  std::vector<NumericAttribute> out;
  for (const NumericAttribute& a : numeric_attributes_) {
    if (a.entity == entity) out.push_back(a);
  }
  return out;
}

std::vector<StringAttribute> TripleStore::StringAttributesOf(
    EntityId entity) const {
  std::vector<StringAttribute> out;
  for (const StringAttribute& a : string_attributes_) {
    if (a.entity == entity) out.push_back(a);
  }
  return out;
}

}  // namespace kg
}  // namespace telekit

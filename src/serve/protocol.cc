#include "serve/protocol.h"

#include <utility>

#include "obs/trace.h"

namespace telekit {
namespace serve {

std::string ServiceModeName(core::ServiceMode mode) {
  switch (mode) {
    case core::ServiceMode::kOnlyName:
      return "name";
    case core::ServiceMode::kEntityNoAttr:
      return "entity";
    case core::ServiceMode::kEntityWithAttr:
      return "entity_attr";
  }
  return "unknown";
}

bool ParseServiceMode(const std::string& name, core::ServiceMode* mode) {
  if (name == "name") {
    *mode = core::ServiceMode::kOnlyName;
  } else if (name == "entity") {
    *mode = core::ServiceMode::kEntityNoAttr;
  } else if (name == "entity_attr") {
    *mode = core::ServiceMode::kEntityWithAttr;
  } else {
    return false;
  }
  return true;
}

bool ParseTaskOp(const std::string& name, TaskOp* op) {
  if (name == "encode") {
    *op = TaskOp::kEncode;
  } else if (name == "rca") {
    *op = TaskOp::kRca;
  } else if (name == "eap") {
    *op = TaskOp::kEap;
  } else if (name == "fct") {
    *op = TaskOp::kFct;
  } else if (name == "retrieve") {
    *op = TaskOp::kRetrieve;
  } else if (name == "troubleshoot") {
    *op = TaskOp::kTroubleshoot;
  } else {
    return false;
  }
  return true;
}

bool ParsePrecision(const std::string& name, Precision* precision) {
  if (name == "fp32") {
    *precision = Precision::kFp32;
  } else if (name == "int8") {
    *precision = Precision::kInt8;
  } else {
    return false;
  }
  return true;
}

Status ParseRequest(const obs::JsonValue& json, Request* request) {
  if (!json.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  *request = Request();
  if (const obs::JsonValue* op = json.Find("op")) {
    if (!op->is_string() || !ParseTaskOp(op->AsString(), &request->op)) {
      return Status::InvalidArgument(
          "bad op (want encode|rca|eap|fct|retrieve|troubleshoot): " +
          op->Dump());
    }
  }
  const obs::JsonValue* text = json.Find("text");
  if (text == nullptr || !text->is_string()) {
    return Status::InvalidArgument("missing string field 'text'");
  }
  request->text = text->AsString();
  if (request->text.empty()) {
    return Status::InvalidArgument("'text' must be non-empty");
  }
  if (const obs::JsonValue* mode = json.Find("mode")) {
    if (!mode->is_string() ||
        !ParseServiceMode(mode->AsString(), &request->mode)) {
      return Status::InvalidArgument(
          "bad mode (want name|entity|entity_attr): " + mode->Dump());
    }
  }
  if (const obs::JsonValue* model = json.Find("model")) {
    if (!model->is_string()) {
      return Status::InvalidArgument("'model' must be a string: " +
                                     model->Dump());
    }
    request->model = model->AsString();
  }
  if (const obs::JsonValue* precision = json.Find("precision")) {
    if (!precision->is_string() ||
        !ParsePrecision(precision->AsString(), &request->precision)) {
      return Status::InvalidArgument("bad precision (want fp32|int8): " +
                                     precision->Dump());
    }
  }
  if (const obs::JsonValue* top_k = json.Find("top_k")) {
    if (!top_k->is_number()) {
      return Status::InvalidArgument("'top_k' must be a number");
    }
    request->top_k = static_cast<int>(top_k->AsNumber());
  }
  if (const obs::JsonValue* ef = json.Find("ef_search")) {
    if (!ef->is_number() || ef->AsNumber() < 0.0) {
      return Status::InvalidArgument("'ef_search' must be a number >= 0");
    }
    request->ef_search = static_cast<int>(ef->AsNumber());
  }
  if (const obs::JsonValue* deadline = json.Find("deadline_ms")) {
    if (!deadline->is_number() || deadline->AsNumber() < 0.0) {
      return Status::InvalidArgument("'deadline_ms' must be >= 0");
    }
    request->deadline_ms = deadline->AsNumber();
  }
  if (const obs::JsonValue* trace = json.Find("trace")) {
    if (trace->is_string()) {
      if (!obs::ParseTraceIdHex(trace->AsString(), &request->trace_id)) {
        return Status::InvalidArgument(
            "'trace' must be 1-16 hex digits or a boolean: " + trace->Dump());
      }
      request->echo_timing = true;
    } else if (trace->is_bool()) {
      // true: server assigns the id; either way the client asked to trace.
      request->echo_timing = trace->AsBool();
    } else if (!trace->is_null()) {
      return Status::InvalidArgument(
          "'trace' must be a hex string or boolean: " + trace->Dump());
    }
  }
  if (const obs::JsonValue* parent = json.Find("parent_span")) {
    if (parent->is_string()) {
      if (!obs::ParseTraceIdHex(parent->AsString(),
                                &request->parent_span)) {
        return Status::InvalidArgument(
            "'parent_span' must be 1-16 hex digits: " + parent->Dump());
      }
    } else if (!parent->is_null()) {
      return Status::InvalidArgument(
          "'parent_span' must be a hex string: " + parent->Dump());
    }
  }
  return Status::Ok();
}

Status ParseRequestLine(const std::string& line, Request* request) {
  obs::JsonValue json;
  std::string error;
  if (!obs::JsonValue::Parse(line, &json, &error)) {
    return Status::InvalidArgument("bad JSON: " + error);
  }
  return ParseRequest(json, request);
}

namespace {

void SetId(obs::JsonValue* out, const obs::JsonValue* id) {
  out->Set("id", id != nullptr ? *id : obs::JsonValue());
}

void SetTrace(obs::JsonValue* out, uint64_t trace_id) {
  out->Set("trace", trace_id != 0
                        ? obs::JsonValue(obs::TraceIdToHex(trace_id))
                        : obs::JsonValue());
}

}  // namespace

obs::JsonValue ResponseToJson(const Request& request, const Response& response,
                              const obs::JsonValue* id) {
  if (!response.status.ok()) {
    obs::JsonValue out = ErrorToJson(response.status, id, response.trace_id);
    if (request.echo_timing) {
      obs::JsonValue timing = obs::JsonValue::Object();
      timing.Set("queue_us",
                 obs::JsonValue(static_cast<double>(response.queue_ms * 1e3)));
      timing.Set("total_us",
                 obs::JsonValue(static_cast<double>(response.total_ms * 1e3)));
      out.Set("timing", std::move(timing));
    }
    return out;
  }
  obs::JsonValue out = obs::JsonValue::Object();
  SetId(&out, id);
  SetTrace(&out, response.trace_id);
  out.Set("ok", obs::JsonValue(true));
  out.Set("op", obs::JsonValue(TaskOpName(request.op)));
  if (request.op == TaskOp::kEncode) {
    obs::JsonValue vec = obs::JsonValue::Array();
    for (float v : response.vector) {
      vec.Append(obs::JsonValue(static_cast<double>(v)));
    }
    out.Set("vector", std::move(vec));
  } else {
    // retrieve answers with docs only; troubleshoot with docs (the
    // retrieved context) plus results (the RCA verdict over their
    // evidence); rca/eap/fct with results only.
    if (request.op == TaskOp::kRetrieve ||
        request.op == TaskOp::kTroubleshoot) {
      obs::JsonValue docs = obs::JsonValue::Array();
      for (const RetrievedDoc& doc : response.docs) {
        obs::JsonValue item = obs::JsonValue::Object();
        item.Set("doc_id", obs::JsonValue(doc.doc_id));
        item.Set("title", obs::JsonValue(doc.title));
        item.Set("kind", obs::JsonValue(doc.kind));
        item.Set("score", obs::JsonValue(static_cast<double>(doc.score)));
        docs.Append(std::move(item));
      }
      out.Set("docs", std::move(docs));
    }
    if (request.op != TaskOp::kRetrieve) {
      obs::JsonValue results = obs::JsonValue::Array();
      for (const tasks::ScoredCandidate& candidate : response.results) {
        obs::JsonValue item = obs::JsonValue::Object();
        item.Set("name", obs::JsonValue(candidate.name));
        item.Set("score",
                 obs::JsonValue(static_cast<double>(candidate.score)));
        results.Append(std::move(item));
      }
      out.Set("results", std::move(results));
    }
  }
  out.Set("cache_hit", obs::JsonValue(response.cache_hit));
  out.Set("batch_size", obs::JsonValue(response.batch_size));
  out.Set("queue_ms", obs::JsonValue(response.queue_ms));
  out.Set("total_ms", obs::JsonValue(response.total_ms));
  if (request.echo_timing) {
    obs::JsonValue timing = obs::JsonValue::Object();
    timing.Set("queue_us",
               obs::JsonValue(static_cast<double>(response.queue_ms * 1e3)));
    timing.Set("batch_us",
               obs::JsonValue(static_cast<double>(response.batch_ms * 1e3)));
    timing.Set("encode_us",
               obs::JsonValue(static_cast<double>(response.encode_ms * 1e3)));
    timing.Set("score_us",
               obs::JsonValue(static_cast<double>(response.score_ms * 1e3)));
    if (request.op == TaskOp::kRetrieve ||
        request.op == TaskOp::kTroubleshoot) {
      timing.Set("search_us",
                 obs::JsonValue(static_cast<double>(response.search_ms * 1e3)));
    }
    timing.Set("total_us",
               obs::JsonValue(static_cast<double>(response.total_ms * 1e3)));
    out.Set("timing", std::move(timing));
  }
  return out;
}

obs::JsonValue ErrorToJson(const Status& status, const obs::JsonValue* id,
                           uint64_t trace_id) {
  obs::JsonValue out = obs::JsonValue::Object();
  SetId(&out, id);
  SetTrace(&out, trace_id);
  out.Set("ok", obs::JsonValue(false));
  obs::JsonValue error = obs::JsonValue::Object();
  error.Set("code", obs::JsonValue(static_cast<int>(status.code())));
  error.Set("message", obs::JsonValue(status.message()));
  error.Set("status", obs::JsonValue(status.ToString()));
  out.Set("error", std::move(error));
  return out;
}

}  // namespace serve
}  // namespace telekit

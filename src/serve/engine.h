#ifndef TELEKIT_SERVE_ENGINE_H_
#define TELEKIT_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/service.h"
#include "index/corpus_index.h"
#include "serve/batcher.h"
#include "serve/embedding_cache.h"
#include "tasks/scoring.h"

namespace telekit {
namespace serve {

/// The online fault-analysis operations of the paper's deployment
/// (Sec. V): raw service-vector encoding, nearest-neighbour retrieval
/// against per-task catalogues for root-cause analysis, alarm/event
/// association prediction, and fault-chain tracing — plus the two
/// index-backed retrieval workloads (DESIGN.md §12): ANN document
/// retrieval over the synthetic corpus and the TeleDoCTR-style
/// troubleshoot chain (retrieve context docs, then RCA over the union of
/// their evidence).
enum class TaskOp { kEncode, kRca, kEap, kFct, kRetrieve, kTroubleshoot };

/// Number of TaskOp values (metrics arrays are indexed by the op).
inline constexpr int kNumTaskOps = 6;

/// Display/protocol name ("encode", "rca", "eap", "fct", "retrieve",
/// "troubleshoot").
std::string TaskOpName(TaskOp op);

/// Numeric precision of the encode forward pass. kDefault defers to the
/// engine's EngineOptions::default_precision; kInt8 routes the request
/// through the bundle's QuantizedEncoder (int8 GEMMs with fp32 dequant,
/// DESIGN.md §3) and fails FAILED_PRECONDITION when the engine has none.
enum class Precision { kDefault, kFp32, kInt8 };

/// Display/protocol name ("default", "fp32", "int8").
std::string PrecisionName(Precision precision);

/// One inference request.
struct Request {
  TaskOp op = TaskOp::kEncode;
  /// Target surface (alarm name, entity name, log text...).
  std::string text;
  /// Service-delivery format for prompt construction (Sec. V-A3).
  core::ServiceMode mode = core::ServiceMode::kEntityNoAttr;
  /// Model variant this request targets ("" = the host's default). The
  /// engine itself is single-model; serve::ModelHost resolves this field
  /// to a bundle before Submit, and the router forwards it untouched.
  std::string model;
  /// Candidates returned for task ops (<= 0 means the whole catalogue).
  int top_k = 5;
  /// Total time budget inside the engine; 0 disables the deadline.
  /// Requests whose deadline lapses while queued are failed without being
  /// encoded.
  double deadline_ms = 0.0;
  /// Request-scoped trace id: correlates the response, slow-request log
  /// lines, and /tracez entries. 0 means "assign one for me" (Submit and
  /// Process generate an id via obs::NextTraceId()).
  uint64_t trace_id = 0;
  /// Distributed-trace hop parent: the caller-side span (the router's
  /// per-attempt span) this request's serve spans nest under. 0 = this
  /// process is the trace root.
  uint64_t parent_span = 0;
  /// When true the protocol layer echoes the per-stage timing breakdown
  /// in the response JSON. Set by ParseRequest for requests carrying a
  /// "trace" field.
  bool echo_timing = false;
  /// Encode-path precision for this request ("precision" wire field).
  Precision precision = Precision::kDefault;
  /// ANN beam width for retrieve/troubleshoot ("ef_search" wire field);
  /// <= 0 uses the index's constructed default. Ignored by other ops.
  int ef_search = 0;
};

/// One retrieved document in a retrieve/troubleshoot response, resolved to
/// its display handle so the wire layer needs no index access.
struct RetrievedDoc {
  int doc_id = 0;
  std::string title;
  std::string kind;
  float score = 0.0f;
};

/// One inference response.
struct Response {
  Status status;
  /// kEncode: the service vector.
  std::vector<float> vector;
  /// Task ops (rca/eap/fct, and the troubleshoot verdict): ranked
  /// catalogue candidates.
  std::vector<tasks::ScoredCandidate> results;
  /// retrieve/troubleshoot: ANN hits in descending-score order.
  std::vector<RetrievedDoc> docs;
  /// True when the service vector came from the EmbeddingCache.
  bool cache_hit = false;
  /// Size of the micro-batch this request rode in (1 = unbatched).
  int batch_size = 0;
  /// The trace id of the request this answers (assigned if it carried 0).
  uint64_t trace_id = 0;
  double queue_ms = 0.0;
  /// Wall time of the whole micro-batch this request rode in (pop ->
  /// fulfilment); 0 for the synchronous Process path.
  double batch_ms = 0.0;
  double encode_ms = 0.0;
  /// Catalogue-scoring time for this request (includes search_ms for the
  /// index-backed ops).
  double score_ms = 0.0;
  /// ANN index search time (retrieve/troubleshoot only).
  double search_ms = 0.0;
  double total_ms = 0.0;
};

/// Engine tuning knobs.
struct EngineOptions {
  int num_workers = 4;
  /// Micro-batching (see BatcherOptions).
  size_t queue_capacity = 1024;
  int max_batch = 8;
  int64_t max_wait_us = 2000;
  bool enable_batching = true;
  /// Service-vector memoization.
  size_t cache_capacity = 4096;
  int cache_shards = 8;
  bool enable_cache = true;
  /// Requests whose total_ms meets or exceeds this are logged (WARN, with
  /// the per-stage breakdown) and recorded in obs::SlowTraceRing::Global()
  /// for /tracez. 0 disables slow-request capture.
  double slow_request_ms = 0.0;
  /// Intra-op tensor::ComputePool threads (process-wide). > 0 calls
  /// tensor::SetComputeThreads in the engine ctor; <= 0 leaves the
  /// TELEKIT_COMPUTE_THREADS / hardware default untouched.
  int compute_threads = 0;
  /// Precision used when a request carries Precision::kDefault
  /// (telekit_serve --precision). kDefault here means kFp32.
  Precision default_precision = Precision::kFp32;
};

/// Point-in-time engine counters for /statusz and /readyz.
struct EngineStats {
  size_t queue_depth = 0;
  size_t queue_capacity = 0;
  int num_workers = 0;
  /// Workers currently inside ProcessBatch (the rest are blocked popping).
  int busy_workers = 0;
  uint64_t requests = 0;
  uint64_t rejected = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double cache_hit_rate = 0.0;
  size_t cache_size = 0;
  /// True when the queue is at capacity: the next Submit would be rejected.
  bool saturated = false;
};

/// Multi-threaded batched inference engine over one ServiceEncoder:
///
///   Submit() -> bounded deadline queue -> worker pool -> micro-batch
///   -> tokenize -> EmbeddingCache probe -> batched encoder forward for
///   the misses -> per-task catalogue scoring -> promise fulfilment
///
/// Every stage reports to telekit::obs (serve/* metrics and spans).
///
/// Thread-safety: Submit/Process/LoadCatalog are safe from any thread;
/// a catalogue may be (re)loaded while requests for other ops are in
/// flight. LoadCatalog for an op must still complete before requests for
/// *that* op are submitted (they fail FAILED_PRECONDITION otherwise). The
/// ServiceEncoder (and the model behind it) must stay alive and unmodified
/// for the engine's lifetime.
class ServeEngine {
 public:
  /// `service` is borrowed. With num_workers == 0 the engine never drains
  /// its queue (useful for deterministic backpressure tests); Stop() then
  /// fails the queued requests as Unavailable.
  ///
  /// `int8_encoder` (borrowed, may be null) is the quantized twin of the
  /// service encoder used for Precision::kInt8 requests; it must encode
  /// the same inputs to the same dimensionality. Null fails int8 requests
  /// with FAILED_PRECONDITION.
  ///
  /// `corpus_index` (borrowed, may be null) backs the retrieve and
  /// troubleshoot ops; null fails those ops with FAILED_PRECONDITION. It
  /// must be immutable for the engine's lifetime (hot reload swaps the
  /// whole bundle — engine and index together — rather than mutating it).
  ServeEngine(const core::ServiceEncoder* service,
              const EngineOptions& options,
              const core::TextEncoder* int8_encoder = nullptr,
              const index::CorpusIndex* corpus_index = nullptr);
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Registers the candidate catalogue for a task op, encoding every name
  /// through the batched path (and warming the cache). Replaces any
  /// previous catalogue for that op.
  Status LoadCatalog(TaskOp op, const std::vector<std::string>& names);

  /// Number of candidates in the catalogue for `op` (0 when absent).
  size_t CatalogSize(TaskOp op) const;

  /// Enqueues a request. The future is always fulfilled: with the result,
  /// or with Unavailable (queue full / shutdown) or DeadlineExceeded.
  ///
  /// `max_block_ms` is the backpressure hook for streaming ingestion: when
  /// > 0 and the bounded queue is full, Submit blocks up to that long for
  /// a worker to make room before rejecting — so a saturated engine
  /// throttles the producer instead of forcing it to buffer or shed. 0
  /// keeps the historical fail-fast behaviour.
  std::future<Response> Submit(Request request, double max_block_ms = 0.0);

  /// Synchronous single-input path: no queue, no batching, optional cache.
  /// This is the "unbatched baseline" the load generator compares against
  /// (with enable_cache = false).
  Response Process(const Request& request) const;

  /// Stops workers and fails everything still queued. Idempotent; also
  /// called by the destructor.
  void Stop();

  /// Point-in-time counters for the admin endpoints; safe from any thread.
  EngineStats GetStats() const;

  const EngineOptions& options() const { return options_; }
  const EmbeddingCache& cache() const { return cache_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Request request;
    std::promise<Response> promise;
    Clock::time_point enqueued;
    /// Zero time_point when the request carries no deadline.
    Clock::time_point deadline;
    /// Filled in by the worker when the batch is popped.
    double queue_ms = 0.0;
  };

  struct Catalog {
    std::vector<std::string> names;
    std::vector<std::vector<float>> embeddings;
    /// name -> index into names/embeddings; troubleshoot restricts RCA
    /// scoring to the retrieved docs' evidence via this map.
    std::map<std::string, size_t> by_name;
  };

  void WorkerLoop();
  void ProcessBatch(std::vector<std::unique_ptr<Pending>> batch) const;
  /// Scores a vector against the op's catalogue into `response`.
  void FinishRequest(const Request& request, std::vector<float> vector,
                     Response* response) const;

  /// The request's effective precision under this engine's default.
  Precision EffectivePrecision(const Request& request) const;

  const core::ServiceEncoder* service_;
  const core::TextEncoder* int8_encoder_;
  const index::CorpusIndex* corpus_index_;
  EngineOptions options_;
  mutable EmbeddingCache cache_;
  MicroBatchQueue<std::unique_ptr<Pending>> queue_;
  /// Exclusive in LoadCatalog, shared in FinishRequest/CatalogSize: a
  /// catalogue reload must not race workers scoring against the map.
  mutable std::shared_mutex catalogs_mutex_;
  std::map<TaskOp, Catalog> catalogs_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  mutable std::atomic<int> busy_workers_{0};
};

}  // namespace serve
}  // namespace telekit

#endif  // TELEKIT_SERVE_ENGINE_H_

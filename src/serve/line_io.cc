#include "serve/line_io.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace telekit {
namespace serve {

LineReader::LineReader(int fd, size_t max_line)
    : read_([fd](char* buffer, size_t n) {
        return static_cast<long>(::recv(fd, buffer, n, 0));
      }),
      max_line_(max_line) {}

LineReader::LineReader(ReadFn read, size_t max_line)
    : read_(std::move(read)), max_line_(max_line) {}

bool LineReader::ReadLine(std::string* line) {
  while (true) {
    // Scan only the bytes not yet examined; '\n' can never hide in the
    // prefix already scanned.
    const size_t pos = buffer_.find('\n', scan_from_);
    if (pos != std::string::npos) {
      size_t end = pos;
      if (end > 0 && buffer_[end - 1] == '\r') --end;
      line->assign(buffer_, 0, end);
      buffer_.erase(0, pos + 1);
      scan_from_ = 0;
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      // Final unterminated line.
      size_t end = buffer_.size();
      if (buffer_[end - 1] == '\r') --end;
      line->assign(buffer_, 0, end);
      buffer_.clear();
      scan_from_ = 0;
      return true;
    }
    if (buffer_.size() >= max_line_) {
      overflowed_ = true;
      return false;
    }
    char chunk[4096];
    long n;
    do {
      n = read_(chunk, sizeof(chunk));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      eof_ = true;
      continue;  // flush any unterminated remainder
    }
    scan_from_ = buffer_.size();
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

bool SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

bool SendLine(int fd, const std::string& line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  return SendAll(fd, framed.data(), framed.size());
}

int ConnectTcp(const std::string& host, int port, double timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  // Non-blocking connect so a dead host costs timeout_ms, not the kernel's
  // multi-minute SYN retry budget.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool WaitReadable(int fd, double timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  } while (rc < 0 && errno == EINTR);
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0;
}

}  // namespace serve
}  // namespace telekit

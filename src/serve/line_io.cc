#include "serve/line_io.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace telekit {
namespace serve {

LineReader::LineReader(int fd, size_t max_line)
    : read_([fd](char* buffer, size_t n) {
        return static_cast<long>(::recv(fd, buffer, n, 0));
      }),
      max_line_(max_line) {}

LineReader::LineReader(ReadFn read, size_t max_line)
    : read_(std::move(read)), max_line_(max_line) {}

bool LineReader::ReadLine(std::string* line) {
  if (failed_) return false;
  while (true) {
    // Scan only the bytes not yet examined; '\n' can never hide in the
    // prefix already scanned.
    const size_t pos = buffer_.find('\n', scan_from_);
    if (pos != std::string::npos) {
      size_t end = pos;
      if (end > 0 && buffer_[end - 1] == '\r') --end;
      line->assign(buffer_, 0, end);
      buffer_.erase(0, pos + 1);
      scan_from_ = 0;
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      // Final unterminated line.
      size_t end = buffer_.size();
      if (buffer_[end - 1] == '\r') --end;
      line->assign(buffer_, 0, end);
      buffer_.clear();
      scan_from_ = 0;
      return true;
    }
    if (buffer_.size() >= max_line_) {
      overflowed_ = true;
      return false;
    }
    char chunk[4096];
    long n;
    do {
      n = read_(chunk, sizeof(chunk));
    } while (n < 0 && errno == EINTR);
    if (n == 0) {
      eof_ = true;
      continue;  // flush any unterminated remainder
    }
    if (n < 0) {
      // Timeout (EAGAIN under SO_RCVTIMEO) or hard error: the stream is in
      // an unknown state. A partially-buffered line must NOT be flushed as
      // if it were complete — the caller sees failure and drops the
      // connection.
      failed_ = true;
      return false;
    }
    scan_from_ = buffer_.size();
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

bool SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

bool SendLine(int fd, const std::string& line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  return SendAll(fd, framed.data(), framed.size());
}

namespace {

/// Non-blocking connect to one resolved address so a dead host costs
/// timeout_ms, not the kernel's multi-minute SYN retry budget.
int ConnectOne(const addrinfo* ai, double timeout_ms) {
  const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
  if (fd < 0) return -1;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

int ConnectTcp(const std::string& host, int port, double timeout_ms) {
  // getaddrinfo handles IPv4/IPv6 literals and hostnames alike — replica
  // specs are documented as "host:port", not "IPv4-literal:port".
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  addrinfo* results = nullptr;
  if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                    &results) != 0) {
    return -1;
  }
  int fd = -1;
  for (const addrinfo* ai = results; ai != nullptr && fd < 0;
       ai = ai->ai_next) {
    fd = ConnectOne(ai, timeout_ms);
  }
  ::freeaddrinfo(results);
  return fd;
}

bool WaitReadable(int fd, double timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  } while (rc < 0 && errno == EINTR);
  return rc > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0;
}

}  // namespace serve
}  // namespace telekit

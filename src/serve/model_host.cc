#include "serve/model_host.h"

#include <mutex>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "tensor/ops.h"

namespace telekit {
namespace serve {

bool ParseServeModel(const std::string& name, core::ModelKind* kind) {
  if (name == "telebert" || name.empty()) {
    *kind = core::ModelKind::kTeleBert;
  } else if (name == "ktelebert_stl") {
    *kind = core::ModelKind::kKTeleBertStl;
  } else if (name == "ktelebert_pmtl") {
    *kind = core::ModelKind::kKTeleBertPmtl;
  } else if (name == "ktelebert_imtl") {
    *kind = core::ModelKind::kKTeleBertImtl;
  } else {
    return false;
  }
  return true;
}

std::string ServeModelName(core::ModelKind kind) {
  switch (kind) {
    case core::ModelKind::kTeleBert:
      return "telebert";
    case core::ModelKind::kKTeleBertStl:
      return "ktelebert_stl";
    case core::ModelKind::kKTeleBertPmtl:
      return "ktelebert_pmtl";
    case core::ModelKind::kKTeleBertImtl:
      return "ktelebert_imtl";
    default:
      return core::ModelKindName(kind);
  }
}

StatusOr<std::shared_ptr<ModelBundle>> BuildModelBundle(
    const std::string& model, std::shared_ptr<core::ModelZoo> zoo,
    const EngineOptions& options) {
  return BuildModelBundle(model, std::move(zoo), options,
                          BundleIndexOptions{});
}

StatusOr<std::shared_ptr<ModelBundle>> BuildModelBundle(
    const std::string& model, std::shared_ptr<core::ModelZoo> zoo,
    const EngineOptions& options, const BundleIndexOptions& index_options) {
  core::ModelKind kind;
  if (!ParseServeModel(model, &kind)) {
    return Status::InvalidArgument(
        "unknown model (want telebert|ktelebert_stl|ktelebert_pmtl|"
        "ktelebert_imtl): " +
        model);
  }
  if (zoo == nullptr) {
    return Status::InvalidArgument("BuildModelBundle needs a zoo");
  }
  auto bundle = std::make_shared<ModelBundle>();
  bundle->model = ServeModelName(kind);
  bundle->kind = kind;
  bundle->seed = zoo->config().seed;
  bundle->zoo = std::move(zoo);
  if (kind == core::ModelKind::kTeleBert) {
    // TeleBERT needs only the stage-one pre-trained stack; KTeleBERT
    // variants need the full re-training build below.
    bundle->zoo->BuildData();
    bundle->zoo->BuildPretrained();
    bundle->adapter =
        std::make_unique<core::TeleBertEncoder>(&bundle->zoo->telebert());
    bundle->service = std::make_unique<core::ServiceEncoder>(
        bundle->adapter.get(), &bundle->zoo->tokenizer(),
        &bundle->zoo->store(), &bundle->zoo->normalizer());
  } else {
    bundle->zoo->Build();
    bundle->service = std::make_unique<core::ServiceEncoder>(
        bundle->zoo->MakeServiceEncoder(kind));
  }
  std::vector<std::string> alarm_names;
  alarm_names.reserve(bundle->zoo->world().alarms().size());
  for (const auto& alarm : bundle->zoo->world().alarms()) {
    alarm_names.push_back(alarm.name);
  }
  // Int8 twin for --precision=int8 requests: snapshot the trained encoder
  // weights, then calibrate activation ranges over the same catalogue the
  // engine serves (the bundle's representative corpus).
  if (kind == core::ModelKind::kTeleBert) {
    bundle->quantized = std::make_unique<core::QuantizedEncoder>(
        bundle->zoo->telebert().encoder());
  } else {
    const core::KTeleBert* ktb = &bundle->zoo->ktelebert(kind);
    core::QuantizedEncoder::OverrideHook hook;
    if (ktb->config().use_anenc) {
      // ANEnc stays fp32 (it is tiny next to the encoder GEMMs); the hook
      // reproduces KTeleBert::Hidden's numeric-slot substitution.
      hook = [ktb](const text::EncodedInput& input) {
        std::vector<std::pair<int, std::vector<float>>> overrides;
        tensor::NoGradGuard no_grad;
        for (const text::NumericSlot& slot : input.numeric_slots) {
          if (slot.position >= input.length) continue;
          tensor::Tensor tag = ktb->encoder().MeanTokenEmbedding(slot.tag_ids);
          overrides.emplace_back(slot.position,
                                 ktb->anenc().Forward(tag, slot.value).data());
        }
        return overrides;
      };
    }
    bundle->quantized = std::make_unique<core::QuantizedEncoder>(
        ktb->encoder(), std::move(hook));
  }
  {
    std::vector<text::EncodedInput> inputs;
    inputs.reserve(alarm_names.size());
    std::vector<const text::EncodedInput*> ptrs;
    ptrs.reserve(alarm_names.size());
    for (const std::string& name : alarm_names) {
      inputs.push_back(bundle->service->BuildInput(
          name, core::ServiceMode::kEntityNoAttr));
      ptrs.push_back(&inputs.back());
    }
    bundle->quantized->Calibrate(ptrs);
  }
  if (index_options.enable) {
    synth::TicketConfig tickets;
    tickets.num_tickets = index_options.num_tickets;
    tickets.seed = bundle->seed;
    std::vector<synth::RetrievalDoc> docs =
        synth::BuildRetrievalCorpus(bundle->zoo->world(), tickets);
    const core::ServiceEncoder* service = bundle->service.get();
    auto built = index::CorpusIndex::BuildOrLoad(
        std::move(docs), service->dim(), bundle->model,
        [service](const std::vector<std::string>& texts) {
          std::vector<text::EncodedInput> inputs;
          inputs.reserve(texts.size());
          std::vector<const text::EncodedInput*> ptrs;
          ptrs.reserve(texts.size());
          for (const std::string& t : texts) {
            inputs.push_back(
                service->BuildInput(t, core::ServiceMode::kEntityNoAttr));
            ptrs.push_back(&inputs.back());
          }
          return service->EncodeInputs(ptrs);
        },
        index_options.hnsw, index_options.snapshot_path);
    if (!built.ok()) return built.status();
    bundle->index = std::move(*built);
  }
  bundle->engine = std::make_unique<ServeEngine>(
      bundle->service.get(), options, bundle->quantized.get(),
      bundle->index.get());
  for (TaskOp op : {TaskOp::kRca, TaskOp::kEap, TaskOp::kFct}) {
    TELEKIT_RETURN_IF_ERROR(bundle->engine->LoadCatalog(op, alarm_names));
  }
  return bundle;
}

ModelHost::ModelHost(std::string default_model)
    : default_model_(std::move(default_model)) {}

void ModelHost::Install(std::shared_ptr<ModelBundle> bundle) {
  TELEKIT_CHECK(bundle != nullptr && !bundle->model.empty());
  std::shared_ptr<ModelBundle> replaced;
  {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto it = bundles_.find(bundle->model);
    const uint64_t previous =
        it != bundles_.end() ? it->second->generation : 0;
    bundle->generation = previous + 1;
    if (it != bundles_.end()) replaced = std::move(it->second);
    bundles_[bundle->model] = bundle;
    ++installs_;
  }
  obs::MetricsRegistry::Global().GetCounter("serve/model_installs")
      .Increment();
  // Per-variant generation gauge: lets /metrics (and the router's
  // /fleetmetricz) show which bundle generation each replica serves
  // without hitting /statusz.
  obs::MetricsRegistry::Global()
      .GetGauge("serve/model/" + bundle->model + "/generation")
      .Set(static_cast<double>(bundle->generation));
  TELEKIT_LOG(INFO) << "serve: installed model"
                    << obs::F("model", bundle->model)
                    << obs::F("generation", bundle->generation)
                    << obs::F("seed", bundle->seed)
                    << obs::F("replaced", replaced != nullptr);
  // `replaced` dies here (or later, wherever the last in-flight holder
  // releases it); ~ModelBundle drains its engine either way.
}

ModelHost::BundlePtr ModelHost::Resolve(const std::string& model) const {
  const std::string& name = model.empty() ? default_model_ : model;
  std::shared_lock<std::shared_mutex> lock(mutex_);
  auto it = bundles_.find(name);
  return it == bundles_.end() ? nullptr : it->second;
}

std::vector<std::string> ModelHost::Models() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(bundles_.size());
  for (const auto& [name, bundle] : bundles_) names.push_back(name);
  return names;
}

std::vector<ModelHost::BundlePtr> ModelHost::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  std::vector<BundlePtr> bundles;
  bundles.reserve(bundles_.size());
  for (const auto& [name, bundle] : bundles_) bundles.push_back(bundle);
  return bundles;
}

uint64_t ModelHost::installs() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return installs_;
}

obs::JsonValue ModelHost::StatusJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("default", obs::JsonValue(default_model_));
  out.Set("installs", obs::JsonValue(installs()));
  obs::JsonValue models = obs::JsonValue::Array();
  for (const BundlePtr& bundle : Snapshot()) {
    obs::JsonValue item = obs::JsonValue::Object();
    item.Set("model", obs::JsonValue(bundle->model));
    item.Set("generation", obs::JsonValue(bundle->generation));
    item.Set("seed", obs::JsonValue(bundle->seed));
    const EngineStats stats = bundle->engine->GetStats();
    obs::JsonValue engine = obs::JsonValue::Object();
    engine.Set("queue_depth", obs::JsonValue(stats.queue_depth));
    engine.Set("workers", obs::JsonValue(stats.num_workers));
    engine.Set("cache_size", obs::JsonValue(stats.cache_size));
    engine.Set("cache_hit_rate", obs::JsonValue(stats.cache_hit_rate));
    engine.Set("saturated", obs::JsonValue(stats.saturated));
    item.Set("engine", std::move(engine));
    if (bundle->index != nullptr) {
      const index::CorpusIndexStats& istats = bundle->index->stats();
      obs::JsonValue idx = obs::JsonValue::Object();
      idx.Set("size", obs::JsonValue(istats.size));
      idx.Set("dim", obs::JsonValue(istats.dim));
      idx.Set("build_ms", obs::JsonValue(istats.build_ms));
      idx.Set("loaded_from_snapshot",
              obs::JsonValue(istats.loaded_from_snapshot));
      idx.Set("M", obs::JsonValue(istats.M));
      idx.Set("ef_construction", obs::JsonValue(istats.ef_construction));
      idx.Set("ef_search", obs::JsonValue(istats.ef_search_default));
      item.Set("index", std::move(idx));
    }
    models.Append(std::move(item));
  }
  out.Set("models", std::move(models));
  return out;
}

}  // namespace serve
}  // namespace telekit

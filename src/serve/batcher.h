#ifndef TELEKIT_SERVE_BATCHER_H_
#define TELEKIT_SERVE_BATCHER_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace telekit {
namespace serve {

/// Tuning knobs for a MicroBatchQueue.
struct BatcherOptions {
  /// Bounded backpressure: Push() fails fast once this many items wait.
  size_t capacity = 1024;
  /// Flush a batch as soon as it reaches this size...
  int max_batch = 8;
  /// ...or once the oldest queued item has waited this long.
  int64_t max_wait_us = 2000;
  /// false degrades PopBatch() to one item at a time (baseline mode).
  bool enable_batching = true;
};

/// Bounded MPMC queue that coalesces items into dynamically-sized
/// micro-batches: a consumer popping from a non-empty queue waits up to
/// `max_wait_us` (measured from the oldest item's enqueue) for the batch
/// to fill to `max_batch`, then takes whatever has accumulated. Under
/// load batches are full and no one waits; under trickle traffic the
/// max-wait bound caps added latency.
///
/// Thread-safety: all methods are safe from any thread.
template <typename T>
class MicroBatchQueue {
 public:
  explicit MicroBatchQueue(const BatcherOptions& options)
      : options_(options) {}

  /// Enqueues an item; false when the queue is full or closed. On failure
  /// `item` is left untouched, so the caller keeps ownership and can
  /// reject the request.
  bool Push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || queue_.size() >= options_.capacity) return false;
      queue_.emplace_back(std::move(item), Clock::now());
    }
    cv_.notify_one();
    return true;
  }

  /// Like Push, but when the queue is full blocks up to `max_wait_us` for
  /// a consumer to make room — the backpressure primitive for ingestion
  /// paths that must throttle rather than shed. Still fails fast when
  /// closed, and fails (leaving `item` untouched) when the wait expires
  /// with the queue still full.
  bool PushBlocking(T&& item, int64_t max_wait_us) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      space_cv_.wait_for(lock, std::chrono::microseconds(max_wait_us), [&] {
        return closed_ || queue_.size() < options_.capacity;
      });
      if (closed_ || queue_.size() >= options_.capacity) return false;
      queue_.emplace_back(std::move(item), Clock::now());
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until a batch is ready (or the queue is closed and drained);
  /// an empty result means "closed, nothing left" — never "another
  /// consumer beat me to the items".
  std::vector<T> PopBatch() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return {};  // closed and drained
      const size_t want =
          options_.enable_batching
              ? static_cast<size_t>(std::max(options_.max_batch, 1))
              : 1;
      if (options_.enable_batching && queue_.size() < want && !closed_) {
        const auto flush_at = queue_.front().second +
                              std::chrono::microseconds(options_.max_wait_us);
        cv_.wait_until(lock, flush_at,
                       [&] { return closed_ || queue_.size() >= want; });
      }
      // Two consumers can pass the first wait on the same non-empty queue;
      // whichever loses the race to pop finds it drained here and must go
      // back to waiting, not return an empty batch on an open queue.
      if (queue_.empty()) {
        if (closed_) return {};
        continue;
      }
      std::vector<T> batch;
      batch.reserve(std::min(want, queue_.size()));
      while (!queue_.empty() && batch.size() < want) {
        batch.push_back(std::move(queue_.front().first));
        queue_.pop_front();
      }
      // More items may remain; let another consumer start on them, and
      // wake producers blocked on a full queue (the pop made room).
      if (!queue_.empty()) cv_.notify_one();
      space_cv_.notify_all();
      return batch;
    }
  }

  /// Wakes all consumers; PopBatch drains the remainder, then returns
  /// empty. Push fails after Close.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
    space_cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  const BatcherOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  BatcherOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Signalled when a pop (or Close) makes room for blocked producers.
  std::condition_variable space_cv_;
  std::deque<std::pair<T, Clock::time_point>> queue_;
  bool closed_ = false;
};

}  // namespace serve
}  // namespace telekit

#endif  // TELEKIT_SERVE_BATCHER_H_

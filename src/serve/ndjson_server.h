#ifndef TELEKIT_SERVE_NDJSON_SERVER_H_
#define TELEKIT_SERVE_NDJSON_SERVER_H_

#include <atomic>
#include <functional>
#include <future>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/line_io.h"
#include "serve/model_host.h"

namespace telekit {
namespace serve {

/// Dispatches one NDJSON request line; the returned future resolves to the
/// response line (no trailing '\n'). Handlers are called from connection
/// reader threads and must be thread-safe; the future's get() runs on the
/// connection writer thread (a deferred future defers the rendering
/// there, which is how the serve handler keeps the reader pipelining).
using LineHandler = std::function<std::future<std::string>(std::string)>;

/// The telekit_serve request handler over a ModelHost: parses the line,
/// resolves the request's `model` field to a live bundle (holding the
/// bundle shared_ptr across the request, so hot-reload swaps never drop
/// in-flight work), submits to that bundle's engine, and renders the
/// response with `model` + `generation` attribution. While `*draining` is
/// true every new request is rejected UNAVAILABLE ("draining") — the
/// /quitquitquit path. `draining` may be null (never drains).
LineHandler MakeServeLineHandler(ModelHost* host,
                                 const std::atomic<bool>* draining);

/// One client session: reads lines with `reader`, dispatches through
/// `handler`, and writes responses in request order via a dedicated writer
/// thread (a synchronous client waiting for each reply must not deadlock
/// against a reader blocked on the next line). `write_line` must frame and
/// flush one full line; returning false stops the writer.
/// `in_flight` (optional) is incremented per dispatched request and
/// decremented once its response is written or abandoned.
void ServeNdjsonSession(const LineHandler& handler, LineReader& reader,
                        const std::function<bool(const std::string&)>& write,
                        std::atomic<int64_t>* in_flight = nullptr);

/// Stdin/stdout convenience wrapper over ServeNdjsonSession.
void ServeNdjsonStdio(const LineHandler& handler, std::istream& in,
                      std::ostream& out);

/// Loopback NDJSON-over-TCP server: one thread per connection running
/// ServeNdjsonSession over the socket. Start/Drain/Stop are safe from any
/// thread.
///
/// Stop() is a *hard* stop: it shuts down the listener and every live
/// connection socket mid-stream (in-flight requests surface to peers as
/// connection errors), which is what the route bench uses to simulate a
/// SIGKILLed replica in-process. Drain() is the graceful half: stop
/// accepting, let existing sessions finish, reject new work via the
/// handler's draining flag.
class NdjsonServer {
 public:
  NdjsonServer();
  ~NdjsonServer();

  NdjsonServer(const NdjsonServer&) = delete;
  NdjsonServer& operator=(const NdjsonServer&) = delete;

  /// Binds 127.0.0.1:port (0 = ephemeral) and starts accepting. False when
  /// already running or the bind fails. May be called again after Stop().
  bool Start(int port, LineHandler handler);

  /// Stops accepting new connections; existing sessions continue.
  void Drain();

  /// Hard stop: closes the listener and all connection sockets, joins all
  /// session threads. Idempotent.
  void Stop();

  int port() const { return port_.load(); }
  bool running() const { return running_.load(); }
  bool draining() const { return draining_.load(); }
  /// Requests dispatched but not yet answered, across all connections.
  int64_t in_flight() const { return in_flight_.load(); }
  /// Tracked connections (live sessions plus finished ones not yet
  /// reaped) — observability for the fd-leak regression test.
  size_t tracked_connections() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    /// Set by the session thread on exit; the accept loop reaps (joins +
    /// closes) done connections so a long-running server does not leak one
    /// fd + thread per finished client until Stop().
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  /// Joins and closes every connection whose session has finished.
  void ReapFinished();

  LineHandler handler_;
  int listener_ = -1;
  std::atomic<int> port_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> in_flight_{0};
  std::thread accept_thread_;
  mutable std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace serve
}  // namespace telekit

#endif  // TELEKIT_SERVE_NDJSON_SERVER_H_

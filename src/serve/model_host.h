#ifndef TELEKIT_SERVE_MODEL_HOST_H_
#define TELEKIT_SERVE_MODEL_HOST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/model_zoo.h"
#include "core/qencode.h"
#include "index/corpus_index.h"
#include "obs/json.h"
#include "serve/engine.h"
#include "synth/tickets.h"

namespace telekit {
namespace serve {

/// One servable model variant: the zoo (or a share of it) that owns the
/// weights, the encoder adapter, the prompt-building ServiceEncoder, and a
/// dedicated ServeEngine (own worker pool, embedding cache, and per-task
/// catalogues). Bundles are immutable once installed; a hot-reload builds
/// a fresh bundle and swaps the pointer.
///
/// Member order is the destruction contract: the engine is declared last
/// so ~ModelBundle stops (and drains) it before the encoder or zoo it
/// borrows from goes away. ~ServeEngine finishes everything still queued,
/// so a swapped-out generation fulfils its in-flight requests — the
/// zero-downtime guarantee.
struct ModelBundle {
  std::string model;        // wire name ("telebert", "ktelebert_stl", ...)
  core::ModelKind kind = core::ModelKind::kTeleBert;
  uint64_t generation = 0;  // assigned by ModelHost::Install
  uint64_t seed = 0;
  std::shared_ptr<core::ModelZoo> zoo;
  std::unique_ptr<core::TextEncoder> adapter;  // null when zoo-owned
  std::unique_ptr<core::ServiceEncoder> service;
  /// Int8 twin of the service encoder (--precision=int8 requests),
  /// calibrated over the task catalogue at build time. Declared before
  /// the engine so it outlives the workers borrowing it.
  std::unique_ptr<core::QuantizedEncoder> quantized;
  /// ANN retrieval index over the synthetic corpus (retrieve/troubleshoot
  /// ops); null when the bundle was built without one. Declared before
  /// the engine so it outlives the workers searching it — hot reload
  /// rebuilds index and engine together, so a generation swap can never
  /// serve a stale index.
  std::unique_ptr<index::CorpusIndex> index;
  std::unique_ptr<ServeEngine> engine;
};

/// Retrieval-index build knobs for BuildModelBundle.
struct BundleIndexOptions {
  /// Build (or snapshot-load) a CorpusIndex into the bundle.
  bool enable = false;
  index::HnswOptions hnsw;
  /// Synthesized trouble tickets appended to the catalogue docs.
  int num_tickets = 64;
  /// Snapshot file ("" = no persistence). A valid snapshot with a matching
  /// fingerprint skips the encode + graph build entirely.
  std::string snapshot_path;
};

/// Wire-name round trip for the servable variants (the paper's table
/// rows the deployment actually exposes): "telebert", "ktelebert_stl",
/// "ktelebert_pmtl", "ktelebert_imtl".
bool ParseServeModel(const std::string& name, core::ModelKind* kind);
std::string ServeModelName(core::ModelKind kind);

/// Builds a ready-to-serve bundle for `model`: builds the zoo stage the
/// variant needs (BuildPretrained for TeleBERT, full Build for KTeleBERT
/// variants — both single-flight, so sharing `zoo` across bundles is
/// safe), constructs the encoder adapter + ServiceEncoder, starts a
/// ServeEngine with `options`, and loads the world's alarm catalogue for
/// every task op.
StatusOr<std::shared_ptr<ModelBundle>> BuildModelBundle(
    const std::string& model, std::shared_ptr<core::ModelZoo> zoo,
    const EngineOptions& options);

/// As above, plus a retrieval index over the world's document corpus when
/// `index_options.enable` is set (built from this bundle's embeddings, or
/// loaded from `index_options.snapshot_path` when the fingerprint
/// matches).
StatusOr<std::shared_ptr<ModelBundle>> BuildModelBundle(
    const std::string& model, std::shared_ptr<core::ModelZoo> zoo,
    const EngineOptions& options, const BundleIndexOptions& index_options);

/// The per-request model table behind `telekit_serve`: maps the request's
/// `model` field to a live ModelBundle. This generalizes the engine's
/// catalogue shared_mutex swap to whole model variants — Resolve hands out
/// a shared_ptr, so Install can replace a generation while requests on the
/// old one are still in flight; the old bundle drains and dies when its
/// last request completes.
///
/// Thread-safety: all methods are safe from any thread. Handlers must
/// hold the returned BundlePtr for as long as they use bundle->engine.
class ModelHost {
 public:
  using BundlePtr = std::shared_ptr<const ModelBundle>;

  explicit ModelHost(std::string default_model = "telebert");

  /// Publishes `bundle` under bundle->model, replacing any previous
  /// generation (generation is assigned here: previous + 1). The swapped-
  /// out bundle is released, not stopped — in-flight holders finish first.
  void Install(std::shared_ptr<ModelBundle> bundle);

  /// The bundle for `model` ("" resolves the default); null when unknown.
  BundlePtr Resolve(const std::string& model) const;

  std::vector<std::string> Models() const;
  std::vector<BundlePtr> Snapshot() const;
  const std::string& default_model() const { return default_model_; }

  /// Total Install calls (across all models) — a cheap "did a reload
  /// happen" signal for /statusz.
  uint64_t installs() const;

  /// {"default": ..., "models": [{"model", "generation", "seed",
  ///  "engine": {...queue/cache stats...}}]} for the /modelz endpoint.
  obs::JsonValue StatusJson() const;

 private:
  const std::string default_model_;
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::shared_ptr<ModelBundle>> bundles_;
  uint64_t installs_ = 0;
};

}  // namespace serve
}  // namespace telekit

#endif  // TELEKIT_SERVE_MODEL_HOST_H_

#include "serve/ndjson_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <deque>
#include <utility>

#include "obs/log.h"
#include "obs/trace.h"
#include "serve/protocol.h"

namespace telekit {
namespace serve {

LineHandler MakeServeLineHandler(ModelHost* host,
                                 const std::atomic<bool>* draining) {
  TELEKIT_CHECK(host != nullptr);
  return [host, draining](std::string line) -> std::future<std::string> {
    // Everything up to Submit happens on the reader thread; the returned
    // deferred future renders (and blocks on the engine) in the writer.
    obs::JsonValue json;
    std::string parse_error;
    auto id = std::unique_ptr<obs::JsonValue>();
    uint64_t salvaged_trace = 0;
    Request request;
    Status status;
    if (!obs::JsonValue::Parse(line, &json, &parse_error)) {
      status = Status::InvalidArgument("bad JSON: " + parse_error);
    } else {
      if (const obs::JsonValue* found = json.Find("id")) {
        id = std::make_unique<obs::JsonValue>(*found);
      }
      // Salvaged before validation: a reply to a malformed request must
      // still echo the caller's correlation fields.
      if (const obs::JsonValue* trace = json.Find("trace")) {
        if (trace->is_string()) {
          obs::ParseTraceIdHex(trace->AsString(), &salvaged_trace);
        }
      }
      status = ParseRequest(json, &request);
    }
    if (status.ok() && draining != nullptr && draining->load()) {
      status = Status::Unavailable("draining");
    }
    ModelHost::BundlePtr bundle;
    if (status.ok()) {
      bundle = host->Resolve(request.model);
      if (bundle == nullptr) {
        status = Status::NotFound("unknown model: " + request.model);
      }
    }
    if (!status.ok()) {
      const uint64_t trace_id =
          request.trace_id != 0 ? request.trace_id : salvaged_trace;
      std::string rendered =
          ErrorToJson(status, id.get(), trace_id).Dump();
      std::promise<std::string> ready;
      ready.set_value(std::move(rendered));
      return ready.get_future();
    }
    std::future<Response> response = bundle->engine->Submit(request);
    // Deferred: the writer thread performs the blocking get() + render.
    // The lambda holds `bundle`, so a hot-reload swap cannot destroy the
    // engine while this request is in flight.
    return std::async(
        std::launch::deferred,
        [request = std::move(request), bundle = std::move(bundle),
         id = std::shared_ptr<obs::JsonValue>(std::move(id)),
         response = std::move(response)]() mutable -> std::string {
          obs::JsonValue out =
              ResponseToJson(request, response.get(), id.get());
          out.Set("model", obs::JsonValue(bundle->model));
          out.Set("generation", obs::JsonValue(bundle->generation));
          return out.Dump();
        });
  };
}

void ServeNdjsonSession(const LineHandler& handler, LineReader& reader,
                        const std::function<bool(const std::string&)>& write,
                        std::atomic<int64_t>* in_flight) {
  std::deque<std::future<std::string>> pending;
  std::mutex mutex;
  std::condition_variable cv;
  bool reader_done = false;
  bool write_failed = false;

  std::thread writer([&] {
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      cv.wait(lock, [&] { return reader_done || !pending.empty(); });
      if (pending.empty()) return;  // reader done and queue drained
      std::future<std::string> next = std::move(pending.front());
      pending.pop_front();
      lock.unlock();
      // get() blocks outside the lock so the reader keeps enqueueing lines
      // and micro-batches still form for one client. After a write failure
      // responses are still harvested (the engine fulfils them regardless)
      // but not sent.
      std::string rendered = next.get();
      bool sent = false;
      if (!write_failed) sent = write(rendered);
      lock.lock();
      if (!sent) write_failed = true;
      if (in_flight != nullptr) {
        in_flight->fetch_sub(1, std::memory_order_relaxed);
      }
    }
  });

  std::string line;
  while (reader.ReadLine(&line)) {
    if (line.empty()) continue;
    if (in_flight != nullptr) {
      in_flight->fetch_add(1, std::memory_order_relaxed);
    }
    std::future<std::string> future = handler(std::move(line));
    {
      std::lock_guard<std::mutex> lock(mutex);
      pending.push_back(std::move(future));
    }
    cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    reader_done = true;
  }
  cv.notify_one();
  writer.join();
}

void ServeNdjsonStdio(const LineHandler& handler, std::istream& in,
                      std::ostream& out) {
  LineReader reader([&in](char* buffer, size_t n) -> long {
    in.read(buffer, static_cast<std::streamsize>(n));
    const std::streamsize got = in.gcount();
    return got > 0 ? static_cast<long>(got) : 0;
  });
  std::mutex out_mutex;
  ServeNdjsonSession(handler, reader, [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(out_mutex);
    out << line << "\n";
    out.flush();
    return static_cast<bool>(out);
  });
}

NdjsonServer::NdjsonServer() = default;

NdjsonServer::~NdjsonServer() { Stop(); }

bool NdjsonServer::Start(int port, LineHandler handler) {
  if (running_.load()) return false;
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return false;
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listener, 64) < 0) {
    TELEKIT_LOG(ERROR) << "ndjson server bind failed"
                       << obs::F("port", port)
                       << obs::F("errno", std::strerror(errno));
    ::close(listener);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&bound), &len);
  handler_ = std::move(handler);
  listener_ = listener;
  port_.store(ntohs(bound.sin_port));
  stopping_.store(false);
  draining_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void NdjsonServer::AcceptLoop() {
  // A receive timeout on the listener bounds each accept() wait so
  // finished sessions are reaped periodically even when no new client
  // ever connects.
  timeval tv{};
  tv.tv_sec = 1;
  ::setsockopt(listener_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  while (!stopping_.load()) {
    ReapFinished();
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load() || draining_.load()) break;
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] {
      LineReader reader(raw->fd);
      ServeNdjsonSession(
          handler_, reader,
          [raw](const std::string& line) { return SendLine(raw->fd, line); },
          &in_flight_);
      // Session over (client EOF or error): signal EOF to the client.
      // The fd itself is closed by the reaper (or Stop()) — closing here
      // would race their shutdown on a reused descriptor.
      ::shutdown(raw->fd, SHUT_RDWR);
      raw->done.store(true);
    });
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::move(connection));
  }
}

size_t NdjsonServer::tracked_connections() const {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  return connections_.size();
}

void NdjsonServer::ReapFinished() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    auto it = connections_.begin();
    while (it != connections_.end()) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join + close outside the lock; done sessions exit promptly.
  for (auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
    ::close(connection->fd);
  }
}

void NdjsonServer::Drain() {
  if (!running_.load() || draining_.exchange(true)) return;
  // Wake the accept loop; existing connections keep their sockets.
  ::shutdown(listener_, SHUT_RDWR);
}

void NdjsonServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  ::shutdown(listener_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listener_);
  listener_ = -1;
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
    ::close(connection->fd);
  }
  port_.store(0);
  draining_.store(false);
}

}  // namespace serve
}  // namespace telekit

#ifndef TELEKIT_SERVE_EMBEDDING_CACHE_H_
#define TELEKIT_SERVE_EMBEDDING_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace telekit {
namespace serve {

/// Sharded LRU cache from a token-id hash to a service vector. Shards are
/// selected by key bits, each shard holds its own mutex + LRU list, so
/// concurrent workers on different shards never contend. Eviction is
/// per-shard (capacity is split evenly across shards), which approximates
/// global LRU well when keys hash uniformly.
///
/// Thread-safety: Get/Put/size are safe from any thread. Statistics are
/// relaxed atomics — monotonically consistent, not a snapshot.
class EmbeddingCache {
 public:
  /// `capacity` is the total number of cached vectors across all shards
  /// (minimum 1 per shard); `num_shards` is rounded up to a power of two.
  EmbeddingCache(size_t capacity, int num_shards = 8);

  /// Copies the cached vector into `out` and promotes the entry to
  /// most-recently-used. False on miss.
  bool Get(uint64_t key, std::vector<float>* out);

  /// Inserts (or refreshes) an entry, evicting the shard's LRU tail when
  /// the shard is at capacity.
  void Put(uint64_t key, std::vector<float> value);

  /// Drops every entry (statistics are kept).
  void Clear();

  /// FNV-1a-style hash of the first `length` token ids, the standard cache
  /// key for an encoded input (ids past `length` are [PAD] and ignored).
  static uint64_t HashIds(const std::vector<int>& ids, int length);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// hits / (hits + misses); 0 when empty.
  double HitRate() const;

 private:
  struct Shard {
    std::mutex mutex;
    /// Front = most recently used.
    std::list<std::pair<uint64_t, std::vector<float>>> lru;
    std::unordered_map<
        uint64_t,
        std::list<std::pair<uint64_t, std::vector<float>>>::iterator>
        index;
  };

  Shard& ShardFor(uint64_t key) {
    return *shards_[key & (shards_.size() - 1)];
  }

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace serve
}  // namespace telekit

#endif  // TELEKIT_SERVE_EMBEDDING_CACHE_H_

#ifndef TELEKIT_SERVE_EMBEDDING_CACHE_H_
#define TELEKIT_SERVE_EMBEDDING_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace telekit {
namespace serve {

/// 128-bit cache key: two independently-mixed hashes of the same token
/// ids. The full key is stored in each entry and compared on Get, so a
/// lookup only returns a wrong vector if two inputs collide in all 128
/// bits — negligible (~2^-64 per pair) versus a bare 64-bit key, whose
/// birthday bound is within reach of a long-lived cache and would silently
/// serve the wrong embedding (and wrong RCA/EAP/FCT results).
struct CacheKey {
  uint64_t lo = 0;
  uint64_t hi = 0;

  /// Plain-integer keys (tests, synthetic workloads): `hi` is derived from
  /// `lo` by a fixed mixer, keeping distinct integers distinct.
  constexpr CacheKey(uint64_t raw = 0)
      : lo(raw), hi((raw ^ (raw >> 31)) * 0x9E3779B97F4A7C15ULL + 1) {}
  constexpr CacheKey(uint64_t lo_in, uint64_t hi_in)
      : lo(lo_in), hi(hi_in) {}

  friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// Sharded LRU cache from a token-id hash to a service vector. Shards are
/// selected by key bits, each shard holds its own mutex + LRU list, so
/// concurrent workers on different shards never contend. Eviction is
/// per-shard (capacity is split evenly across shards), which approximates
/// global LRU well when keys hash uniformly.
///
/// Thread-safety: Get/Put/size are safe from any thread. Statistics are
/// relaxed atomics — monotonically consistent, not a snapshot.
class EmbeddingCache {
 public:
  /// `capacity` is the total number of cached vectors across all shards
  /// (minimum 1 per shard); `num_shards` is rounded up to a power of two.
  EmbeddingCache(size_t capacity, int num_shards = 8);

  /// Copies the cached vector into `out` and promotes the entry to
  /// most-recently-used. False on miss; a hit requires the stored 128-bit
  /// key to match exactly.
  bool Get(const CacheKey& key, std::vector<float>* out);

  /// Inserts (or refreshes) an entry, evicting the shard's LRU tail when
  /// the shard is at capacity.
  void Put(const CacheKey& key, std::vector<float> value);

  /// Drops every entry (statistics are kept).
  void Clear();

  /// Hashes the first `length` token ids into a 128-bit key: FNV-1a for
  /// `lo` plus an independent multiply-xorshift accumulation for `hi`
  /// (ids past `length` are [PAD] and ignored; `length` itself is mixed
  /// in, so truncations of the same ids get distinct keys). `salt`
  /// partitions the key space — the serve engine uses it to keep fp32 and
  /// int8 vectors of the same input from aliasing each other.
  static CacheKey HashIds(const std::vector<int>& ids, int length,
                          uint64_t salt = 0);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// hits / (hits + misses); 0 when empty.
  double HitRate() const;

 private:
  /// Buckets by `lo`; equality (via CacheKey::operator==) still checks all
  /// 128 bits, which is what makes hits collision-checked.
  struct KeyHash {
    size_t operator()(const CacheKey& key) const noexcept {
      return static_cast<size_t>(key.lo);
    }
  };

  struct Shard {
    std::mutex mutex;
    /// Front = most recently used.
    std::list<std::pair<CacheKey, std::vector<float>>> lru;
    std::unordered_map<
        CacheKey,
        std::list<std::pair<CacheKey, std::vector<float>>>::iterator, KeyHash>
        index;
  };

  Shard& ShardFor(const CacheKey& key) {
    return *shards_[key.lo & (shards_.size() - 1)];
  }

  size_t capacity_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace serve
}  // namespace telekit

#endif  // TELEKIT_SERVE_EMBEDDING_CACHE_H_

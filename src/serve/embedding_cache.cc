#include "serve/embedding_cache.h"

#include <algorithm>

#include "common/check.h"

namespace telekit {
namespace serve {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EmbeddingCache::EmbeddingCache(size_t capacity, int num_shards)
    : capacity_(std::max<size_t>(capacity, 1)) {
  TELEKIT_CHECK_GT(num_shards, 0);
  const size_t shards =
      RoundUpPow2(static_cast<size_t>(num_shards));
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  per_shard_capacity_ = std::max<size_t>(capacity_ / shards, 1);
}

bool EmbeddingCache::Get(const CacheKey& key, std::vector<float>* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (out != nullptr) *out = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void EmbeddingCache::Put(const CacheKey& key, std::vector<float> value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
}

void EmbeddingCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

CacheKey EmbeddingCache::HashIds(const std::vector<int>& ids, int length,
                                 uint64_t salt) {
  uint64_t lo = 0xCBF29CE484222325ULL ^ salt;  // FNV offset basis
  uint64_t hi = (0x9E3779B97F4A7C15ULL + salt) *
                0xC2B2AE3D27D4EB4FULL;  // golden-ratio basis, salt-mixed
  const int n = std::min<int>(length, static_cast<int>(ids.size()));
  for (int i = 0; i < n; ++i) {
    const uint64_t v = static_cast<uint64_t>(static_cast<uint32_t>(ids[i]));
    lo = (lo ^ v) * 0x100000001B3ULL;  // FNV prime
    hi = (hi + v) * 0xC2B2AE3D27D4EB4FULL;
    hi ^= hi >> 29;
  }
  const uint64_t tail = static_cast<uint64_t>(static_cast<uint32_t>(n));
  lo = (lo ^ tail) * 0x100000001B3ULL;
  hi = (hi + tail) * 0xC2B2AE3D27D4EB4FULL;
  hi ^= hi >> 29;
  return {lo, hi};
}

size_t EmbeddingCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

double EmbeddingCache::HitRate() const {
  const uint64_t h = hits();
  const uint64_t m = misses();
  return (h + m) == 0 ? 0.0
                      : static_cast<double>(h) / static_cast<double>(h + m);
}

}  // namespace serve
}  // namespace telekit

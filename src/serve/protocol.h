#ifndef TELEKIT_SERVE_PROTOCOL_H_
#define TELEKIT_SERVE_PROTOCOL_H_

#include <string>

#include "common/status.h"
#include "obs/json.h"
#include "serve/engine.h"

namespace telekit {
namespace serve {

/// Newline-delimited JSON wire protocol for telekit_serve. One request
/// object per line in, one response object per line out:
///
///   {"op": "rca", "text": "ospf neighbor down", "top_k": 3}
///   -> {"id": null, "ok": true, "op": "rca", "results": [
///        {"name": "...", "score": 0.93}, ...], "cache_hit": false, ...}
///
/// Fields: `op` ("encode" | "rca" | "eap" | "fct", default "encode"),
/// `text` (required), `mode` ("name" | "entity" | "entity_attr", default
/// "entity"), `top_k`, `deadline_ms`, and a free-form `id` echoed back for
/// client-side correlation.

/// Parses one request line. On error the returned Status describes the
/// problem and `request` is unspecified.
Status ParseRequest(const obs::JsonValue& json, Request* request);

/// Convenience: parse from raw text (must be a JSON object).
Status ParseRequestLine(const std::string& line, Request* request);

/// Serializes a response; `id` is echoed verbatim (null when absent in the
/// request). Errors come back as {"ok": false, "error": {"code", "message"}}.
obs::JsonValue ResponseToJson(const Request& request, const Response& response,
                              const obs::JsonValue* id);

/// Error reply for lines that never produced a Request (parse failures).
obs::JsonValue ErrorToJson(const Status& status, const obs::JsonValue* id);

/// Round-trips a ServiceMode to/from its wire name.
std::string ServiceModeName(core::ServiceMode mode);
bool ParseServiceMode(const std::string& name, core::ServiceMode* mode);

/// Round-trips a TaskOp from its wire name (TaskOpName is the inverse).
bool ParseTaskOp(const std::string& name, TaskOp* op);

}  // namespace serve
}  // namespace telekit

#endif  // TELEKIT_SERVE_PROTOCOL_H_

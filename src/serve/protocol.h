#ifndef TELEKIT_SERVE_PROTOCOL_H_
#define TELEKIT_SERVE_PROTOCOL_H_

#include <string>

#include "common/status.h"
#include "obs/json.h"
#include "serve/engine.h"

namespace telekit {
namespace serve {

/// Newline-delimited JSON wire protocol for telekit_serve. One request
/// object per line in, one response object per line out:
///
///   {"op": "rca", "text": "ospf neighbor down", "top_k": 3}
///   -> {"id": null, "ok": true, "op": "rca", "results": [
///        {"name": "...", "score": 0.93}, ...], "cache_hit": false, ...}
///
/// Fields: `op` ("encode" | "rca" | "eap" | "fct" | "retrieve" |
/// "troubleshoot", default "encode"), `text` (required), `mode` ("name" |
/// "entity" | "entity_attr", default "entity"), `model` (variant name,
/// e.g. "telebert" | "ktelebert_stl"; "" = server default), `precision`
/// ("fp32" | "int8"; omitted = the server's --precision default), `top_k`,
/// `deadline_ms`, `ef_search` (retrieve/troubleshoot: per-request ANN beam
/// width, 0/omitted = the index default), a free-form `id` echoed back for
/// client-side correlation, and an optional `trace` field: a 16-hex-digit
/// string supplies the request's trace id (64-bit ids ride JSON as hex
/// strings — JSON numbers are doubles), `true` asks the server to assign
/// one. Either form also opts the response into a per-stage `timing`
/// breakdown. Every response carries the request's trace id back as
/// `trace` (hex, null only when no id was ever assigned).
///
/// Distributed tracing adds an optional `parent_span` field (hex, same
/// encoding as `trace`): the caller-side span this hop nests under. The
/// router stamps a distinct parent_span per forwarding attempt so the
/// replica's serve spans attach to the right retry/hedge leg in the
/// assembled cross-process trace.
///
/// The index-backed ops (DESIGN.md §12) answer with a `docs` array
/// ({"doc_id", "title", "kind", "score"}, descending score): retrieve
/// returns docs only; troubleshoot returns docs plus `results` — the RCA
/// verdict ranked over the union of the retrieved docs' evidence alarms.

/// Parses one request line. On error the returned Status describes the
/// problem and `request` is unspecified.
Status ParseRequest(const obs::JsonValue& json, Request* request);

/// Convenience: parse from raw text (must be a JSON object).
Status ParseRequestLine(const std::string& line, Request* request);

/// Serializes a response; `id` is echoed verbatim (null when absent in the
/// request) and `trace` carries the response's trace id in hex. Errors come
/// back as {"ok": false, "error": {"code", "message"}} — still with `id`
/// and `trace`. When the request asked for timing (`echo_timing`) the reply
/// gains {"timing": {"queue_us", "batch_us", "encode_us", "score_us",
/// "total_us"}}.
obs::JsonValue ResponseToJson(const Request& request, const Response& response,
                              const obs::JsonValue* id);

/// Error reply for lines that never produced a Request (parse failures).
/// `trace_id` 0 (no id ever assigned) serializes as a null `trace`.
obs::JsonValue ErrorToJson(const Status& status, const obs::JsonValue* id,
                           uint64_t trace_id = 0);

/// Round-trips a ServiceMode to/from its wire name.
std::string ServiceModeName(core::ServiceMode mode);
bool ParseServiceMode(const std::string& name, core::ServiceMode* mode);

/// Round-trips a TaskOp from its wire name (TaskOpName is the inverse).
bool ParseTaskOp(const std::string& name, TaskOp* op);

/// Parses a request "precision" field: "fp32" | "int8" ("default" is not
/// a wire value — omit the field to use the server default).
bool ParsePrecision(const std::string& name, Precision* precision);

}  // namespace serve
}  // namespace telekit

#endif  // TELEKIT_SERVE_PROTOCOL_H_

#ifndef TELEKIT_SERVE_LINE_IO_H_
#define TELEKIT_SERVE_LINE_IO_H_

#include <functional>
#include <string>

namespace telekit {
namespace serve {

/// Incremental NDJSON line framing over a byte stream.
///
/// TCP delivers arbitrary segment boundaries: one request line may arrive
/// split across many recv() calls, and one segment may carry several
/// coalesced lines (a pipelining client). LineReader owns the carry buffer
/// between reads so both cases frame correctly — ReadLine returns exactly
/// the bytes up to (not including) the next '\n', however they arrived.
/// A trailing '\r' is stripped so CRLF clients work. There is no line
/// length cap beyond `max_line` (guards a peer that never sends '\n').
class LineReader {
 public:
  /// `read` fills up to n bytes and returns the byte count, 0 on orderly
  /// EOF, < 0 on error (errno semantics). The fd convenience constructor
  /// wraps ::recv.
  using ReadFn = std::function<long(char* buffer, size_t n)>;

  explicit LineReader(int fd, size_t max_line = 1 << 20);
  explicit LineReader(ReadFn read, size_t max_line = 1 << 20);

  /// Next complete line (without the terminator). False on EOF/error with
  /// nothing framed. Orderly EOF (read returns 0) flushes a final
  /// unterminated line as a line (curl-style tolerance), then the next
  /// call reports EOF. A read *error* (< 0 — including EAGAIN from a
  /// receive timeout) never flushes partial bytes: the stream state is
  /// unknown, so ReadLine fails immediately, `failed()` turns true, and
  /// every later call fails too — the connection should be dropped.
  bool ReadLine(std::string* line);

  /// True when the last ReadLine failure was an oversize line rather than
  /// EOF (the connection should be dropped, not drained).
  bool overflowed() const { return overflowed_; }

  /// True when a read error (timeout or transport failure) poisoned the
  /// stream — distinguishes "peer closed cleanly" from "exchange failed".
  bool failed() const { return failed_; }

 private:
  ReadFn read_;
  std::string buffer_;  // carry across read boundaries
  size_t scan_from_ = 0;
  bool eof_ = false;
  bool overflowed_ = false;
  bool failed_ = false;
  size_t max_line_;
};

/// Writes all n bytes, retrying partial sends (and EINTR). False on error.
/// Uses MSG_NOSIGNAL so a dead peer surfaces as EPIPE, not SIGPIPE.
bool SendAll(int fd, const char* data, size_t n);

/// Writes `line` plus a terminating '\n' in full.
bool SendLine(int fd, const std::string& line);

/// Connects to host:port with a connect timeout; -1 on failure. `host`
/// may be an IPv4/IPv6 literal or a hostname (getaddrinfo, each resolved
/// address tried in order). The returned socket is blocking.
int ConnectTcp(const std::string& host, int port, double timeout_ms);

/// Blocks until fd is readable or `timeout_ms` lapses. Returns false on
/// timeout or poll error.
bool WaitReadable(int fd, double timeout_ms);

}  // namespace serve
}  // namespace telekit

#endif  // TELEKIT_SERVE_LINE_IO_H_

#include "serve/engine.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/requestlog.h"
#include "obs/spanstore.h"
#include "obs/trace.h"
#include "tensor/compute_pool.h"

namespace telekit {
namespace serve {

namespace {

struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& errors;
  obs::Counter& rejected;
  obs::Counter& deadline_exceeded;
  obs::Counter& slow_requests;
  /// Requests whose effective encode precision resolved to int8.
  obs::Counter& int8_requests;
  obs::Gauge& queue_depth;
  obs::Histogram& batch_size;
  // Log-bucketed so /metrics and BENCH_serve.json can report p50/p95/p99
  // with bounded relative error instead of fixed-bucket resolution.
  obs::LatencyHistogram& queue_ms;
  obs::LatencyHistogram& encode_ms;
  obs::LatencyHistogram& request_ms;
  // Per-TaskOp split (serve/<op>/...) so mixed traffic — e.g. the stream
  // pipeline's rca/eap/fct fan-out — stays attributable per task in the
  // Prometheus exposition. Indexed by static_cast<int>(TaskOp).
  obs::Counter* op_requests[kNumTaskOps];
  obs::Counter* op_errors[kNumTaskOps];
  obs::LatencyHistogram* op_request_ms[kNumTaskOps];

  void RecordRequest(TaskOp op, double total_ms, bool ok) {
    requests.Increment();
    request_ms.Observe(total_ms);
    const int i = static_cast<int>(op);
    op_requests[i]->Increment();
    op_request_ms[i]->Observe(total_ms);
    if (!ok) {
      errors.Increment();
      op_errors[i]->Increment();
    }
  }

  static ServeMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static ServeMetrics m = [&reg] {
      ServeMetrics metrics{
          reg.GetCounter("serve/requests"),
          reg.GetCounter("serve/errors"),
          reg.GetCounter("serve/rejected"),
          reg.GetCounter("serve/deadline_exceeded"),
          reg.GetCounter("serve/slow_requests"),
          reg.GetCounter("serve/precision_int8_requests"),
          reg.GetGauge("serve/queue_depth"),
          reg.GetHistogram("serve/batch_size",
                           {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}),
          reg.GetLatencyHistogram("serve/queue_ms"),
          reg.GetLatencyHistogram("serve/encode_ms"),
          reg.GetLatencyHistogram("serve/request_ms"),
          {},
          {},
          {},
      };
      for (TaskOp op :
           {TaskOp::kEncode, TaskOp::kRca, TaskOp::kEap, TaskOp::kFct,
            TaskOp::kRetrieve, TaskOp::kTroubleshoot}) {
        const int i = static_cast<int>(op);
        metrics.op_requests[i] =
            &reg.GetCounter("serve/" + TaskOpName(op) + "/requests");
        metrics.op_errors[i] =
            &reg.GetCounter("serve/" + TaskOpName(op) + "/errors");
        metrics.op_request_ms[i] =
            &reg.GetLatencyHistogram("serve/" + TaskOpName(op) +
                                     "/request_ms");
      }
      return metrics;
    }();
    return m;
  }
};

double MsSince(std::chrono::steady_clock::time_point start,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - start).count();
}

uint64_t MsToUs(double ms) {
  return ms > 0.0 ? static_cast<uint64_t>(ms * 1000.0) : 0;
}

/// When the request crossed the slow threshold: one WARN line with the
/// full per-stage breakdown plus a SlowTraceRing entry backing /tracez.
void MaybeCaptureSlow(double slow_request_ms, const Request& request,
                      const Response& response) {
  if (slow_request_ms <= 0.0 || response.total_ms < slow_request_ms) return;
  ServeMetrics::Get().slow_requests.Increment();
  obs::RequestTrace trace;
  trace.trace_id = response.trace_id;
  trace.op = TaskOpName(request.op);
  trace.detail = request.text.size() > 80
                     ? request.text.substr(0, 77) + "..."
                     : request.text;
  trace.total_us = MsToUs(response.total_ms);
  const uint64_t now_us = obs::TraceNowUs();
  trace.start_us = now_us > trace.total_us ? now_us - trace.total_us : 0;
  trace.queue_us = MsToUs(response.queue_ms);
  trace.batch_us = MsToUs(response.batch_ms);
  trace.encode_us = MsToUs(response.encode_ms);
  trace.score_us = MsToUs(response.score_ms);
  trace.ok = response.status.ok();
  obs::SlowTraceRing::Global().Record(std::move(trace));
  TELEKIT_LOG(WARN) << "slow request"
                    << obs::F("trace", obs::TraceIdToHex(response.trace_id))
                    << obs::F("op", TaskOpName(request.op))
                    << obs::F("total_ms", response.total_ms)
                    << obs::F("queue_ms", response.queue_ms)
                    << obs::F("batch_ms", response.batch_ms)
                    << obs::F("encode_ms", response.encode_ms)
                    << obs::F("score_ms", response.score_ms)
                    << obs::F("batch_size", response.batch_size)
                    << obs::F("cache_hit", response.cache_hit)
                    << obs::F("status", response.status.ok()
                                       ? "ok"
                                       : response.status.message());
}

/// Distributed-trace spans for one completed request: a "serve/request"
/// span parented to the caller's hop (request.parent_span — the router's
/// attempt span — or a trace root when absent) plus queue/encode/score
/// children reconstructed from the response's stage timings. Recorded on
/// the wall clock so the /tracezd assembler can align this process's
/// spans with the router's and annotate the residual skew.
void RecordServeSpans(const Request& request, const Response& response) {
  auto& store = obs::SpanStore::Global();
  if (!store.enabled()) return;
  const uint64_t total_us = MsToUs(response.total_ms);
  const double start_unix_us = obs::UnixNowUs() -
                               static_cast<double>(total_us);
  obs::SpanRecord root;
  root.trace_id = response.trace_id;
  root.span_id = obs::NextTraceId();
  root.parent_span = request.parent_span;
  root.name = "serve/request";
  root.ok = response.status.ok();
  root.outcome = root.ok ? "ok" : "failed";
  root.start_unix_us = start_unix_us;
  root.dur_us = total_us;
  // Stage children laid back-to-back inside the request window: queued
  // first, then the encode share, with scoring ending at completion.
  const uint64_t queue_us = MsToUs(response.queue_ms);
  const uint64_t encode_us = MsToUs(response.encode_ms);
  const uint64_t score_us = MsToUs(response.score_ms);
  const uint64_t search_us = std::min(MsToUs(response.search_ms), score_us);
  const double score_start =
      start_unix_us + static_cast<double>(total_us - score_us);
  struct Stage {
    const char* name;
    double start;
    uint64_t dur;
  };
  std::vector<Stage> stages = {
      {"serve/queue", start_unix_us, queue_us},
      {"serve/encode", start_unix_us + static_cast<double>(queue_us),
       encode_us},
  };
  // The score window splits per op: the index-backed ops lead with the ANN
  // search ("index/search"), and troubleshoot spends the remainder in the
  // RCA-over-evidence chain ("serve/troubleshoot") — both parented under
  // serve/request so /tracezd shows the retrieve -> diagnose chain.
  if (request.op == TaskOp::kRetrieve ||
      request.op == TaskOp::kTroubleshoot) {
    stages.push_back({"index/search", score_start, search_us});
    if (request.op == TaskOp::kTroubleshoot) {
      stages.push_back({"serve/troubleshoot",
                        score_start + static_cast<double>(search_us),
                        score_us - search_us});
    }
  } else {
    stages.push_back({"serve/score", score_start, score_us});
  }
  for (const Stage& stage : stages) {
    if (stage.dur == 0) continue;
    obs::SpanRecord child;
    child.trace_id = response.trace_id;
    child.span_id = obs::NextTraceId();
    child.parent_span = root.span_id;
    child.name = stage.name;
    child.ok = root.ok;
    child.start_unix_us = stage.start;
    child.dur_us = stage.dur;
    store.Record(std::move(child));
  }
  store.Record(std::move(root));
}

/// One wide event per completed request, whichever path fulfilled it
/// (batch, deadline expiry, synchronous Process). The ring backs
/// /requestz; an attached --request-log sink persists the same record.
/// The same hook records the request's distributed-trace spans — both
/// fire once per completion, on every fulfilment path.
void RecordWideEvent(const Request& request, const Response& response) {
  RecordServeSpans(request, response);
  obs::WideEvent event;
  event.trace_id = response.trace_id;
  event.op = TaskOpName(request.op);
  event.batch_size = response.batch_size;
  event.cache_hit = response.cache_hit;
  event.queue_us = MsToUs(response.queue_ms);
  event.encode_us = MsToUs(response.encode_ms);
  event.score_us = MsToUs(response.score_ms);
  event.total_us = MsToUs(response.total_ms);
  event.ok = response.status.ok();
  event.status = event.ok ? "ok" : response.status.message();
  if (!response.results.empty()) event.verdict = response.results[0].name;
  obs::RequestLog::Global().Record(std::move(event));
  // Exemplars tie the latency histograms' buckets back to this trace id,
  // so a /metrics scrape showing a slow bucket resolves via /requestz.
  obs::ExemplarStore::Global().Record("serve/request_ms", response.total_ms,
                                      response.trace_id);
  obs::ExemplarStore::Global().Record(
      "serve/" + TaskOpName(request.op) + "/request_ms", response.total_ms,
      response.trace_id);
}

}  // namespace

std::string PrecisionName(Precision precision) {
  switch (precision) {
    case Precision::kDefault:
      return "default";
    case Precision::kFp32:
      return "fp32";
    case Precision::kInt8:
      return "int8";
  }
  return "unknown";
}

std::string TaskOpName(TaskOp op) {
  switch (op) {
    case TaskOp::kEncode:
      return "encode";
    case TaskOp::kRca:
      return "rca";
    case TaskOp::kEap:
      return "eap";
    case TaskOp::kFct:
      return "fct";
    case TaskOp::kRetrieve:
      return "retrieve";
    case TaskOp::kTroubleshoot:
      return "troubleshoot";
  }
  return "unknown";
}

ServeEngine::ServeEngine(const core::ServiceEncoder* service,
                         const EngineOptions& options,
                         const core::TextEncoder* int8_encoder,
                         const index::CorpusIndex* corpus_index)
    : service_(service),
      int8_encoder_(int8_encoder),
      corpus_index_(corpus_index),
      options_(options),
      cache_(std::max<size_t>(options.cache_capacity, 1),
             std::max(options.cache_shards, 1)),
      queue_(BatcherOptions{options.queue_capacity,
                            std::max(options.max_batch, 1),
                            options.max_wait_us, options.enable_batching}) {
  TELEKIT_CHECK(service_ != nullptr);
  TELEKIT_CHECK_GE(options_.num_workers, 0);
  if (options_.compute_threads > 0) {
    tensor::SetComputeThreads(options_.compute_threads);
  }
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServeEngine::~ServeEngine() { Stop(); }

Status ServeEngine::LoadCatalog(TaskOp op,
                                const std::vector<std::string>& names) {
  if (op == TaskOp::kEncode || op == TaskOp::kRetrieve ||
      op == TaskOp::kTroubleshoot) {
    return Status::InvalidArgument(TaskOpName(op) + " takes no catalogue");
  }
  if (names.empty()) {
    return Status::InvalidArgument("empty catalogue for op " + TaskOpName(op));
  }
  TELEKIT_SPAN("serve/load_catalog");
  Catalog catalog;
  catalog.names = names;
  // One batched forward over the whole catalogue; also warms the cache so
  // queries that coincide with catalogue entries hit immediately.
  std::vector<text::EncodedInput> inputs;
  inputs.reserve(names.size());
  std::vector<const text::EncodedInput*> ptrs;
  ptrs.reserve(names.size());
  for (const std::string& name : names) {
    inputs.push_back(
        service_->BuildInput(name, core::ServiceMode::kEntityNoAttr));
    ptrs.push_back(&inputs.back());
  }
  catalog.embeddings = service_->EncodeInputs(ptrs);
  for (size_t i = 0; i < catalog.names.size(); ++i) {
    catalog.by_name[catalog.names[i]] = i;
  }
  if (options_.enable_cache) {
    for (size_t i = 0; i < inputs.size(); ++i) {
      cache_.Put(EmbeddingCache::HashIds(inputs[i].ids, inputs[i].length),
                 catalog.embeddings[i]);
    }
  }
  TELEKIT_LOG(INFO) << "serve: loaded catalogue op=" << TaskOpName(op)
                    << " size=" << catalog.names.size();
  {
    std::unique_lock<std::shared_mutex> lock(catalogs_mutex_);
    catalogs_[op] = std::move(catalog);
  }
  return Status::Ok();
}

size_t ServeEngine::CatalogSize(TaskOp op) const {
  std::shared_lock<std::shared_mutex> lock(catalogs_mutex_);
  auto it = catalogs_.find(op);
  return it == catalogs_.end() ? 0 : it->second.names.size();
}

std::future<Response> ServeEngine::Submit(Request request,
                                          double max_block_ms) {
  auto pending = std::make_unique<Pending>();
  if (request.trace_id == 0) request.trace_id = obs::NextTraceId();
  pending->request = std::move(request);
  pending->enqueued = Clock::now();
  if (pending->request.deadline_ms > 0.0) {
    pending->deadline =
        pending->enqueued +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                pending->request.deadline_ms));
  }
  std::future<Response> future = pending->promise.get_future();
  const bool pushed =
      max_block_ms > 0.0
          ? queue_.PushBlocking(std::move(pending),
                                static_cast<int64_t>(max_block_ms * 1000.0))
          : queue_.Push(std::move(pending));
  if (pushed) {
    ServeMetrics::Get().queue_depth.Set(static_cast<double>(queue_.size()));
    return future;
  }
  // Push leaves `pending` intact on failure: reject here so the future is
  // still fulfilled.
  ServeMetrics::Get().rejected.Increment();
  Response response;
  response.trace_id = pending->request.trace_id;
  response.status =
      Status::Unavailable(stopped_.load() ? "engine stopped"
                                          : "serve queue full");
  pending->promise.set_value(std::move(response));
  return future;
}

void ServeEngine::WorkerLoop() {
  ServeMetrics& metrics = ServeMetrics::Get();
  while (true) {
    std::vector<std::unique_ptr<Pending>> batch = queue_.PopBatch();
    if (batch.empty()) return;  // closed and drained
    metrics.queue_depth.Set(static_cast<double>(queue_.size()));
    metrics.batch_size.Observe(static_cast<double>(batch.size()));
    busy_workers_.fetch_add(1, std::memory_order_relaxed);
    ProcessBatch(std::move(batch));
    busy_workers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ServeEngine::ProcessBatch(
    std::vector<std::unique_ptr<Pending>> batch) const {
  TELEKIT_SPAN("serve/batch");
  ServeMetrics& metrics = ServeMetrics::Get();
  const int batch_size = static_cast<int>(batch.size());
  const Clock::time_point started = Clock::now();

  struct Live {
    Pending* pending = nullptr;
    text::EncodedInput input;
    CacheKey key;
    std::vector<float> vector;
    bool cache_hit = false;
    Precision precision = Precision::kFp32;
  };
  std::vector<Live> live;
  live.reserve(batch.size());

  // Expire requests whose deadline lapsed while queued.
  for (auto& pending : batch) {
    pending->queue_ms = MsSince(pending->enqueued, started);
    if (pending->deadline != Clock::time_point() &&
        started > pending->deadline) {
      metrics.deadline_exceeded.Increment();
      Response response;
      response.status = Status::DeadlineExceeded(
          "deadline lapsed after " + std::to_string(pending->queue_ms) +
          " ms in queue");
      response.batch_size = batch_size;
      response.trace_id = pending->request.trace_id;
      response.queue_ms = pending->queue_ms;
      response.total_ms = pending->queue_ms;
      // A lapsed deadline is a slow request by definition; record it
      // (ok=false) so /tracez shows where the time went. It is also a
      // served error for the availability SLO — per-op requests counters
      // only count scored requests, so errors may outpace them (the burn
      // computation clamps for that).
      metrics.errors.Increment();
      metrics.op_errors[static_cast<int>(pending->request.op)]->Increment();
      MaybeCaptureSlow(options_.slow_request_ms, pending->request, response);
      RecordWideEvent(pending->request, response);
      pending->promise.set_value(std::move(response));
      pending.reset();
      continue;
    }
    Live item;
    item.pending = pending.get();
    live.push_back(std::move(item));
  }

  // Resolve precision, failing int8 requests early when the engine has no
  // quantized encoder — they must not reach the encode stage.
  for (size_t i = 0; i < live.size();) {
    Live& item = live[i];
    item.precision = EffectivePrecision(item.pending->request);
    if (item.precision == Precision::kInt8) {
      metrics.int8_requests.Increment();
      if (int8_encoder_ == nullptr) {
        Response response;
        response.status = Status::FailedPrecondition(
            "precision int8 requested but this model has no quantized "
            "encoder");
        response.batch_size = batch_size;
        response.trace_id = item.pending->request.trace_id;
        response.queue_ms = item.pending->queue_ms;
        response.total_ms = item.pending->queue_ms;
        metrics.RecordRequest(item.pending->request.op, response.total_ms,
                              /*ok=*/false);
        RecordWideEvent(item.pending->request, response);
        item.pending->promise.set_value(std::move(response));
        live.erase(live.begin() + static_cast<ptrdiff_t>(i));
        continue;
      }
    }
    ++i;
  }

  // Tokenize + prompt-build (const tokenizer: safe concurrently). The
  // cache key is salted by precision so an int8 vector can never be
  // served to an fp32 request (or vice versa).
  {
    TELEKIT_SPAN("serve/tokenize");
    for (Live& item : live) {
      item.input = service_->BuildInput(item.pending->request.text,
                                        item.pending->request.mode);
      item.key = EmbeddingCache::HashIds(
          item.input.ids, item.input.length,
          item.precision == Precision::kInt8 ? 1 : 0);
    }
  }

  // Cache probe, then one batched forward per precision over the misses.
  std::vector<size_t> miss_indices;
  miss_indices.reserve(live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    if (options_.enable_cache && cache_.Get(live[i].key, &live[i].vector)) {
      live[i].cache_hit = true;
    } else {
      miss_indices.push_back(i);
    }
  }
  double encode_ms = 0.0;
  if (!miss_indices.empty()) {
    TELEKIT_SPAN("serve/encode");
    obs::ScopedTimer timer(metrics.encode_ms);
    for (Precision precision : {Precision::kFp32, Precision::kInt8}) {
      std::vector<size_t> group;
      group.reserve(miss_indices.size());
      for (size_t i : miss_indices) {
        if (live[i].precision == precision) group.push_back(i);
      }
      if (group.empty()) continue;
      std::vector<const text::EncodedInput*> inputs;
      inputs.reserve(group.size());
      for (size_t i : group) inputs.push_back(&live[i].input);
      std::vector<std::vector<float>> vectors =
          precision == Precision::kInt8 ? int8_encoder_->EncodeBatch(inputs)
                                        : service_->EncodeInputs(inputs);
      for (size_t j = 0; j < group.size(); ++j) {
        Live& item = live[group[j]];
        item.vector = std::move(vectors[j]);
        if (options_.enable_cache) cache_.Put(item.key, item.vector);
      }
    }
    encode_ms = timer.ElapsedMs();
  }

  // Score against the per-op catalogue and fulfil.
  {
    TELEKIT_SPAN("serve/score");
    for (Live& item : live) {
      Response response;
      response.cache_hit = item.cache_hit;
      response.batch_size = batch_size;
      response.trace_id = item.pending->request.trace_id;
      response.queue_ms = item.pending->queue_ms;
      response.encode_ms = item.cache_hit ? 0.0 : encode_ms;
      const Clock::time_point score_start = Clock::now();
      FinishRequest(item.pending->request, std::move(item.vector), &response);
      const Clock::time_point done = Clock::now();
      response.score_ms = MsSince(score_start, done);
      response.batch_ms = MsSince(started, done);
      response.total_ms = MsSince(item.pending->enqueued, done);
      metrics.RecordRequest(item.pending->request.op, response.total_ms,
                            response.status.ok());
      metrics.queue_ms.Observe(response.queue_ms);
      MaybeCaptureSlow(options_.slow_request_ms, item.pending->request,
                       response);
      RecordWideEvent(item.pending->request, response);
      item.pending->promise.set_value(std::move(response));
    }
  }
}

Response ServeEngine::Process(const Request& request) const {
  TELEKIT_SPAN("serve/process");
  ServeMetrics& metrics = ServeMetrics::Get();
  const Clock::time_point started = Clock::now();
  Response response;
  response.batch_size = 1;
  response.trace_id =
      request.trace_id != 0 ? request.trace_id : obs::NextTraceId();

  const Precision precision = EffectivePrecision(request);
  if (precision == Precision::kInt8) {
    metrics.int8_requests.Increment();
    if (int8_encoder_ == nullptr) {
      response.status = Status::FailedPrecondition(
          "precision int8 requested but this model has no quantized "
          "encoder");
      response.total_ms = MsSince(started, Clock::now());
      metrics.RecordRequest(request.op, response.total_ms, /*ok=*/false);
      RecordWideEvent(request, response);
      return response;
    }
  }

  text::EncodedInput input;
  {
    TELEKIT_SPAN("serve/tokenize");
    input = service_->BuildInput(request.text, request.mode);
  }
  const CacheKey key = EmbeddingCache::HashIds(
      input.ids, input.length, precision == Precision::kInt8 ? 1 : 0);
  std::vector<float> vector;
  if (options_.enable_cache && cache_.Get(key, &vector)) {
    response.cache_hit = true;
  } else {
    TELEKIT_SPAN("serve/encode");
    obs::ScopedTimer timer(metrics.encode_ms);
    std::vector<const text::EncodedInput*> one{&input};
    vector = precision == Precision::kInt8
                 ? std::move(int8_encoder_->EncodeBatch(one)[0])
                 : std::move(service_->EncodeInputs(one)[0]);
    response.encode_ms = timer.ElapsedMs();
    if (options_.enable_cache) cache_.Put(key, vector);
  }
  const Clock::time_point score_start = Clock::now();
  FinishRequest(request, std::move(vector), &response);
  response.score_ms = MsSince(score_start, Clock::now());
  response.total_ms = MsSince(started, Clock::now());
  metrics.RecordRequest(request.op, response.total_ms,
                        response.status.ok());
  metrics.batch_size.Observe(1.0);
  MaybeCaptureSlow(options_.slow_request_ms, request, response);
  RecordWideEvent(request, response);
  return response;
}

Precision ServeEngine::EffectivePrecision(const Request& request) const {
  const Precision p = request.precision != Precision::kDefault
                          ? request.precision
                          : options_.default_precision;
  return p == Precision::kDefault ? Precision::kFp32 : p;
}

void ServeEngine::FinishRequest(const Request& request,
                                std::vector<float> vector,
                                Response* response) const {
  if (request.op == TaskOp::kEncode) {
    response->vector = std::move(vector);
    response->status = Status::Ok();
    return;
  }
  if (request.op == TaskOp::kRetrieve ||
      request.op == TaskOp::kTroubleshoot) {
    if (corpus_index_ == nullptr) {
      response->status = Status::FailedPrecondition(
          "no retrieval index loaded for op " + TaskOpName(request.op));
      return;
    }
    const int k = request.top_k > 0 ? request.top_k : 5;
    const Clock::time_point search_start = Clock::now();
    std::vector<index::ScoredDoc> hits =
        corpus_index_->Search(vector.data(), k, request.ef_search);
    response->search_ms = MsSince(search_start, Clock::now());
    response->docs.reserve(hits.size());
    for (const index::ScoredDoc& hit : hits) {
      const synth::RetrievalDoc& doc = corpus_index_->doc(hit.doc_id);
      response->docs.push_back({hit.doc_id, doc.title, doc.kind, hit.score});
    }
    if (request.op == TaskOp::kRetrieve) {
      response->status = Status::Ok();
      return;
    }
    // Troubleshoot: rank root-cause candidates over the union of the
    // retrieved docs' evidence alarms (the TeleDoCTR retrieve-then-diagnose
    // chain). Falls back to the whole RCA catalogue when the retrieved
    // evidence resolves to nothing.
    std::shared_lock<std::shared_mutex> lock(catalogs_mutex_);
    auto rca = catalogs_.find(TaskOp::kRca);
    if (rca == catalogs_.end()) {
      response->status = Status::FailedPrecondition(
          "troubleshoot requires the rca catalogue");
      return;
    }
    const Catalog& catalog = rca->second;
    std::vector<std::string> names;
    std::vector<std::vector<float>> embeddings;
    for (const index::ScoredDoc& hit : hits) {
      for (const std::string& alarm :
           corpus_index_->doc(hit.doc_id).evidence_alarms) {
        auto entry = catalog.by_name.find(alarm);
        if (entry == catalog.by_name.end()) continue;
        if (std::find(names.begin(), names.end(), alarm) != names.end()) {
          continue;
        }
        names.push_back(alarm);
        embeddings.push_back(catalog.embeddings[entry->second]);
      }
    }
    response->results =
        names.empty()
            ? tasks::TopKByCosine(vector, catalog.names, catalog.embeddings,
                                  request.top_k)
            : tasks::TopKByCosine(vector, names, embeddings, request.top_k);
    response->status = Status::Ok();
    return;
  }
  // Shared lock held across the scoring: LoadCatalog may replace this
  // Catalog (destroying the vectors we read) at any time.
  std::shared_lock<std::shared_mutex> lock(catalogs_mutex_);
  auto it = catalogs_.find(request.op);
  if (it == catalogs_.end()) {
    response->status = Status::FailedPrecondition(
        "no catalogue loaded for op " + TaskOpName(request.op));
    return;
  }
  response->results = tasks::TopKByCosine(vector, it->second.names,
                                          it->second.embeddings,
                                          request.top_k);
  response->status = Status::Ok();
}

void ServeEngine::Stop() {
  if (stopped_.exchange(true)) return;
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  // With num_workers == 0 (or a race against Close) items may still sit in
  // the queue; fail them so every Submit() future is fulfilled.
  while (true) {
    std::vector<std::unique_ptr<Pending>> remainder = queue_.PopBatch();
    if (remainder.empty()) break;
    for (auto& pending : remainder) {
      Response response;
      response.trace_id = pending->request.trace_id;
      response.status = Status::Unavailable("engine stopped");
      response.queue_ms = MsSince(pending->enqueued, Clock::now());
      response.total_ms = response.queue_ms;
      pending->promise.set_value(std::move(response));
    }
  }
  ServeMetrics::Get().queue_depth.Set(0.0);
}

EngineStats ServeEngine::GetStats() const {
  ServeMetrics& metrics = ServeMetrics::Get();
  EngineStats stats;
  stats.queue_depth = queue_.size();
  stats.queue_capacity = options_.queue_capacity;
  stats.num_workers = options_.num_workers;
  stats.busy_workers = busy_workers_.load(std::memory_order_relaxed);
  stats.requests = metrics.requests.value();
  stats.rejected = metrics.rejected.value();
  stats.deadline_exceeded = metrics.deadline_exceeded.value();
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.cache_hit_rate = cache_.HitRate();
  stats.cache_size = cache_.size();
  stats.saturated = stats.queue_depth >= stats.queue_capacity;
  return stats;
}

}  // namespace serve
}  // namespace telekit

// telekit_serve: newline-delimited-JSON fault-analysis server.
//
// Reads one JSON request per line from stdin (default) or from TCP
// connections (--port=N), answers one JSON object per line. See
// serve/protocol.h for the wire format and README.md for a quick-start
// session.
//
// By default the model is an untrained TeleBERT over a small synthetic
// world so the server starts in seconds; pass --pretrain-steps=N to
// pre-train first (or point TELEKIT_CACHE at an existing checkpoint dir).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <atomic>

#include "core/model_zoo.h"
#include "obs/admin.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/requestlog.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "tensor/compute_pool.h"

namespace telekit {
namespace serve {
namespace {

struct Flags {
  int port = 0;        // 0 = stdin/stdout
  int admin_port = -1;  // -1 = disabled, 0 = ephemeral
  double slow_request_ms = 100.0;
  int workers = 4;
  int max_batch = 8;
  int64_t max_wait_us = 2000;
  size_t queue_capacity = 1024;
  size_t cache_capacity = 4096;
  int cache_shards = 8;
  bool batching = true;
  bool cache = true;
  int compute_threads = 0;  // 0 = TELEKIT_COMPUTE_THREADS / hardware default
  int pretrain_steps = 0;
  uint64_t seed = 20230401;
  std::string obs_json;
  std::string request_log;      // NDJSON wide-event sink ("" = off)
  double ts_interval_s = 1.0;   // time-series sampler period
  size_t ts_capacity = 600;     // ring slots per series
  double slo_latency_ms = 50.0;  // latency objective good/bad boundary
  double slo_fast_s = 60.0;     // burn-rate fast window
  double slo_slow_s = 300.0;    // burn-rate slow window
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

void PrintUsage() {
  std::cerr
      << "usage: telekit_serve [options]\n"
      << "  --port=N            serve TCP instead of stdin/stdout\n"
      << "  --admin-port=N      HTTP admin endpoints on 127.0.0.1:N\n"
      << "                      (0 = ephemeral; default off)\n"
      << "  --slow-request-ms=X log + /tracez requests slower than X ms\n"
      << "                      (default 100; 0 = off)\n"
      << "  --workers=N         engine worker threads (default 4)\n"
      << "  --max-batch=N       micro-batch size cap (default 8)\n"
      << "  --max-wait-us=N     micro-batch flush deadline (default 2000)\n"
      << "  --queue-capacity=N  bounded queue size (default 1024)\n"
      << "  --cache-capacity=N  embedding cache entries (default 4096)\n"
      << "  --cache-shards=N    embedding cache shards (default 8)\n"
      << "  --no-batching       one request per forward\n"
      << "  --no-cache          disable the embedding cache\n"
      << "  --compute-threads=N intra-op tensor threads (default: \n"
      << "                      TELEKIT_COMPUTE_THREADS env, else hardware;\n"
      << "                      1 = serial)\n"
      << "  --pretrain-steps=N  TeleBERT pre-training steps (default 0)\n"
      << "  --seed=N            world/model seed\n"
      << "  --obs-json=PATH     write metrics/trace report on exit\n"
      << "  --request-log=PATH  append one NDJSON wide event per request\n"
      << "  --ts-interval-s=X   time-series sample period (default 1)\n"
      << "  --ts-capacity=N     time-series ring slots (default 600)\n"
      << "  --slo-latency-ms=X  latency SLO threshold (default 50)\n"
      << "  --slo-fast-s=X      SLO fast burn window (default 60)\n"
      << "  --slo-slow-s=X      SLO slow burn window (default 300)\n"
      << "  --log-level=LEVEL   debug|info|warn|error|off\n";
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "port", &v)) {
      flags->port = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "admin-port", &v)) {
      flags->admin_port = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "slow-request-ms", &v)) {
      flags->slow_request_ms = std::atof(v.c_str());
    } else if (ParseFlag(arg, "workers", &v)) {
      flags->workers = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "max-batch", &v)) {
      flags->max_batch = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "max-wait-us", &v)) {
      flags->max_wait_us = std::atoll(v.c_str());
    } else if (ParseFlag(arg, "queue-capacity", &v)) {
      flags->queue_capacity = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(arg, "cache-capacity", &v)) {
      flags->cache_capacity = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(arg, "cache-shards", &v)) {
      flags->cache_shards = std::atoi(v.c_str());
    } else if (arg == "--no-batching") {
      flags->batching = false;
    } else if (arg == "--no-cache") {
      flags->cache = false;
    } else if (ParseFlag(arg, "compute-threads", &v)) {
      flags->compute_threads = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "pretrain-steps", &v)) {
      flags->pretrain_steps = std::atoi(v.c_str());
    } else if (ParseFlag(arg, "seed", &v)) {
      flags->seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(arg, "obs-json", &v)) {
      flags->obs_json = v;
    } else if (ParseFlag(arg, "request-log", &v)) {
      flags->request_log = v;
    } else if (ParseFlag(arg, "ts-interval-s", &v)) {
      flags->ts_interval_s = std::atof(v.c_str());
    } else if (ParseFlag(arg, "ts-capacity", &v)) {
      flags->ts_capacity = static_cast<size_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(arg, "slo-latency-ms", &v)) {
      flags->slo_latency_ms = std::atof(v.c_str());
    } else if (ParseFlag(arg, "slo-fast-s", &v)) {
      flags->slo_fast_s = std::atof(v.c_str());
    } else if (ParseFlag(arg, "slo-slow-s", &v)) {
      flags->slo_slow_s = std::atof(v.c_str());
    } else if (ParseFlag(arg, "log-level", &v)) {
      obs::Logger::Global().set_level(obs::ParseLogLevel(v));
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      PrintUsage();
      return false;
    }
  }
  return true;
}

/// Small, fast-to-build zoo sized for interactive startup.
core::ZooConfig ServeZooConfig(const Flags& flags) {
  core::ZooConfig config;
  config.seed = flags.seed;
  config.world.num_alarm_types = 48;
  config.world.num_kpi_types = 24;
  config.corpus.num_tele_sentences = 1500;
  config.corpus.num_general_sentences = 1500;
  config.num_episodes = 40;
  config.pretrain.steps = flags.pretrain_steps;
  config.cache_dir = "";  // TELEKIT_CACHE env still overrides
  return config;
}

/// One client connection (or the stdin/stdout session): parses NDJSON
/// requests, pipelines them through the engine (so micro-batches can form
/// even for a single client), and writes responses in request order.
///
/// A dedicated writer thread blocks on the oldest in-flight future while
/// this thread blocks in getline. Draining responses only from the reader
/// loop would deadlock a synchronous client that waits for each reply
/// before sending its next line (the reply would only flush when the next
/// line arrived). Parse errors ride the same queue so output stays in
/// request order with a single thread touching `out`.
void ServeStream(ServeEngine& engine, std::istream& in, std::ostream& out) {
  struct InFlight {
    Request request;
    std::unique_ptr<obs::JsonValue> id;
    /// Trace id salvaged from the raw JSON for lines that fail validation,
    /// so even error replies correlate (0 = none supplied).
    uint64_t trace_id = 0;
    /// Invalid when the line never produced a request; `error` then holds
    /// the parse failure.
    std::future<Response> future;
    Status error;
  };
  std::deque<InFlight> in_flight;
  std::mutex mutex;
  std::condition_variable cv;
  bool reader_done = false;

  std::thread writer([&] {
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      cv.wait(lock, [&] { return reader_done || !in_flight.empty(); });
      if (in_flight.empty()) return;  // reader done and queue drained
      InFlight item = std::move(in_flight.front());
      in_flight.pop_front();
      lock.unlock();
      // future.get() blocks outside the lock so the reader keeps
      // enqueueing lines and micro-batches still form for one client.
      const obs::JsonValue json =
          item.future.valid()
              ? ResponseToJson(item.request, item.future.get(), item.id.get())
              : ErrorToJson(item.error, item.id.get(), item.trace_id);
      out << json.Dump() << "\n";
      out.flush();
      lock.lock();
    }
  });

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    obs::JsonValue json;
    std::string parse_error;
    InFlight item;
    Status status;
    if (!obs::JsonValue::Parse(line, &json, &parse_error)) {
      status = Status::InvalidArgument("bad JSON: " + parse_error);
    } else {
      if (const obs::JsonValue* found = json.Find("id")) {
        item.id = std::make_unique<obs::JsonValue>(*found);
      }
      // Salvaged before validation: a reply to a malformed request must
      // still echo the caller's correlation fields.
      if (const obs::JsonValue* trace = json.Find("trace")) {
        if (trace->is_string()) {
          obs::ParseTraceIdHex(trace->AsString(), &item.trace_id);
        }
      }
      status = ParseRequest(json, &item.request);
    }
    if (status.ok()) {
      item.future = engine.Submit(item.request);
    } else {
      item.error = status;
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      in_flight.push_back(std::move(item));
    }
    cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    reader_done = true;
  }
  cv.notify_one();
  writer.join();
}

/// Minimal buffered istream over a connected socket, enough for getline.
class SocketStreamBuf : public std::streambuf {
 public:
  explicit SocketStreamBuf(int fd) : fd_(fd) {}

 protected:
  int underflow() override {
    const ssize_t n = ::recv(fd_, buffer_, sizeof(buffer_), 0);
    if (n <= 0) return traits_type::eof();
    setg(buffer_, buffer_, buffer_ + n);
    return traits_type::to_int_type(*gptr());
  }

  std::streamsize xsputn(const char* s, std::streamsize n) override {
    std::streamsize sent = 0;
    while (sent < n) {
      const ssize_t w = ::send(fd_, s + sent,
                               static_cast<size_t>(n - sent), MSG_NOSIGNAL);
      if (w <= 0) return sent;
      sent += w;
    }
    return sent;
  }

  int overflow(int c) override {
    if (c == traits_type::eof()) return traits_type::eof();
    const char ch = static_cast<char>(c);
    return xsputn(&ch, 1) == 1 ? c : traits_type::eof();
  }

 private:
  int fd_;
  char buffer_[4096];
};

int ServeTcp(ServeEngine& engine, int port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "socket(): " << std::strerror(errno) << "\n";
    return 1;
  }
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listener, 64) < 0) {
    std::cerr << "bind/listen on 127.0.0.1:" << port << ": "
              << std::strerror(errno) << "\n";
    ::close(listener);
    return 1;
  }
  std::cerr << "telekit_serve listening on 127.0.0.1:" << port << "\n";
  std::vector<std::thread> connections;
  while (true) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    connections.emplace_back([&engine, fd] {
      SocketStreamBuf buf(fd);
      std::istream in(&buf);
      std::ostream out(&buf);
      ServeStream(engine, in, out);
      ::close(fd);
    });
  }
  ::close(listener);
  for (std::thread& t : connections) t.join();
  return 0;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 1;
  if (!flags.obs_json.empty()) {
    obs::TraceCollector::Global().set_recording(true);
  }
  const auto start_time = std::chrono::steady_clock::now();

  if (!flags.request_log.empty() &&
      !obs::RequestLog::Global().SetSinkFile(flags.request_log)) {
    std::cerr << "failed to open --request-log=" << flags.request_log << "\n";
    return 1;
  }

  // Time-series + SLO engines are declared before the admin server so the
  // admin (whose handlers reference them) is destroyed first; the sampler
  // thread itself only starts once startup can no longer early-return.
  obs::TimeSeriesOptions ts_options;
  ts_options.interval_s = flags.ts_interval_s;
  ts_options.capacity = flags.ts_capacity;
  obs::TimeSeriesStore timeseries(ts_options);
  obs::SloConfig slo_config;
  slo_config.fast_window_s = flags.slo_fast_s;
  slo_config.slow_window_s = flags.slo_slow_s;
  slo_config.budget_window_s = flags.slo_slow_s * 6.0;
  obs::SloEngine slo(&timeseries, slo_config);
  for (obs::SloObjective& objective :
       obs::DefaultServeObjectives(flags.slo_latency_ms, 0.999, 0.95)) {
    slo.AddObjective(std::move(objective));
  }
  timeseries.SetOnSample([&slo](double now_s) { slo.Evaluate(now_s); });

  // The admin server comes up before the model builds so /healthz answers
  // (and /readyz correctly says 503) during the slow startup phase.
  std::atomic<bool> ready{false};
  std::atomic<ServeEngine*> engine_ptr{nullptr};
  obs::AdminServer admin;
  admin.Handle("/timeseriesz", [&timeseries](const obs::HttpRequest& request) {
    return timeseries.HandleQuery(request);
  });
  admin.Handle("/alertz", [&slo](const obs::HttpRequest& request) {
    return slo.HandleQuery(request);
  });
  admin.Handle("/readyz", [&ready, &engine_ptr](const obs::HttpRequest&) {
    ServeEngine* engine = engine_ptr.load();
    if (!ready.load() || engine == nullptr) {
      return obs::HttpResponse::Text(503, "loading\n");
    }
    if (engine->GetStats().saturated) {
      return obs::HttpResponse::Text(503, "queue saturated\n");
    }
    return obs::HttpResponse::Text(200, "ready\n");
  });
  admin.Handle("/statusz", [&ready, &engine_ptr, &timeseries, &slo,
                            start_time](const obs::HttpRequest&) {
    obs::JsonValue out = obs::JsonValue::Object();
    out.Set("server", obs::JsonValue("telekit_serve"));
    obs::JsonValue build = obs::JsonValue::Object();
    build.Set("compiler", obs::JsonValue(__VERSION__));
    build.Set("cpp_standard", obs::JsonValue(static_cast<double>(__cplusplus)));
    out.Set("build", std::move(build));
    out.Set("uptime_s",
            obs::JsonValue(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_time)
                               .count()));
    out.Set("ready", obs::JsonValue(ready.load()));
    if (ServeEngine* engine = engine_ptr.load()) {
      const EngineStats stats = engine->GetStats();
      obs::JsonValue e = obs::JsonValue::Object();
      e.Set("queue_depth", obs::JsonValue(stats.queue_depth));
      e.Set("queue_capacity", obs::JsonValue(stats.queue_capacity));
      e.Set("saturated", obs::JsonValue(stats.saturated));
      obs::JsonValue workers = obs::JsonValue::Object();
      workers.Set("total", obs::JsonValue(stats.num_workers));
      workers.Set("busy", obs::JsonValue(stats.busy_workers));
      workers.Set("idle",
                  obs::JsonValue(stats.num_workers - stats.busy_workers));
      e.Set("workers", std::move(workers));
      e.Set("requests", obs::JsonValue(stats.requests));
      e.Set("rejected", obs::JsonValue(stats.rejected));
      e.Set("deadline_exceeded", obs::JsonValue(stats.deadline_exceeded));
      obs::JsonValue cache = obs::JsonValue::Object();
      cache.Set("hits", obs::JsonValue(stats.cache_hits));
      cache.Set("misses", obs::JsonValue(stats.cache_misses));
      cache.Set("hit_rate", obs::JsonValue(stats.cache_hit_rate));
      cache.Set("size", obs::JsonValue(stats.cache_size));
      e.Set("cache", std::move(cache));
      out.Set("engine", std::move(e));
    }
    if (const obs::LatencyHistogram* h =
            obs::MetricsRegistry::Global().FindLatencyHistogram(
                "serve/request_ms")) {
      out.Set("request_latency", obs::LatencySummaryJson(*h));
    }
    obs::JsonValue ts = obs::JsonValue::Object();
    ts.Set("running", obs::JsonValue(timeseries.running()));
    ts.Set("interval_s", obs::JsonValue(timeseries.options().interval_s));
    ts.Set("samples_taken", obs::JsonValue(timeseries.samples_taken()));
    out.Set("timeseries", std::move(ts));
    obs::JsonValue slo_json = obs::JsonValue::Object();
    slo_json.Set("objectives",
                 obs::JsonValue(static_cast<uint64_t>(slo.Snapshot().size())));
    slo_json.Set("firing",
                 obs::JsonValue(static_cast<uint64_t>(slo.firing_count())));
    out.Set("slo", std::move(slo_json));
    obs::JsonValue rlog = obs::JsonValue::Object();
    rlog.Set("size",
             obs::JsonValue(static_cast<uint64_t>(
                 obs::RequestLog::Global().size())));
    rlog.Set("total_recorded",
             obs::JsonValue(obs::RequestLog::Global().total_recorded()));
    rlog.Set("sink", obs::JsonValue(obs::RequestLog::Global().sink_path()));
    out.Set("request_log", std::move(rlog));
    return obs::HttpResponse::Json(200, out);
  });
  if (flags.admin_port >= 0 && !admin.Start(flags.admin_port)) {
    std::cerr << "failed to start admin server on 127.0.0.1:"
              << flags.admin_port << "\n";
    return 1;
  }

  // Apply before the model build so --pretrain-steps training is also
  // parallel; the engine ctor re-applies it via options (idempotent).
  if (flags.compute_threads > 0) {
    tensor::SetComputeThreads(flags.compute_threads);
  }

  std::cerr << "telekit_serve: building model (pretrain_steps="
            << flags.pretrain_steps << ")...\n";
  core::ModelZoo zoo(ServeZooConfig(flags));
  zoo.BuildData();
  zoo.BuildPretrained();
  core::TeleBertEncoder encoder(&zoo.telebert());
  core::ServiceEncoder service(&encoder, &zoo.tokenizer(), &zoo.store(),
                               &zoo.normalizer());

  EngineOptions options;
  options.num_workers = flags.workers;
  options.queue_capacity = flags.queue_capacity;
  options.max_batch = flags.max_batch;
  options.max_wait_us = flags.max_wait_us;
  options.enable_batching = flags.batching;
  options.cache_capacity = flags.cache_capacity;
  options.cache_shards = flags.cache_shards;
  options.enable_cache = flags.cache;
  options.slow_request_ms = flags.slow_request_ms;
  options.compute_threads = flags.compute_threads;
  ServeEngine engine(&service, options);
  engine_ptr.store(&engine);

  // Task catalogues come from the synthetic world's alarm book: all three
  // retrieval ops rank alarm surfaces.
  std::vector<std::string> alarm_names;
  alarm_names.reserve(zoo.world().alarms().size());
  for (const auto& alarm : zoo.world().alarms()) {
    alarm_names.push_back(alarm.name);
  }
  for (TaskOp op : {TaskOp::kRca, TaskOp::kEap, TaskOp::kFct}) {
    const Status status = engine.LoadCatalog(op, alarm_names);
    if (!status.ok()) {
      std::cerr << "LoadCatalog(" << TaskOpName(op)
                << "): " << status.ToString() << "\n";
      return 1;
    }
  }
  // Start sampling only now that startup can no longer early-return: the
  // sampler's on-sample callback reaches into `slo`, so no sampler thread
  // may be live on any path where `slo` is destroyed before `timeseries`
  // stops.
  timeseries.Start();
  ready.store(true);
  std::cerr << "telekit_serve: ready (" << alarm_names.size()
            << " catalogue entries, " << flags.workers << " workers)\n";
  if (admin.running()) {
    std::cerr << "telekit_serve: admin endpoints on 127.0.0.1:"
              << admin.port() << "\n";
  }

  int rc = 0;
  if (flags.port > 0) {
    rc = ServeTcp(engine, flags.port);
  } else {
    ServeStream(engine, std::cin, std::cout);
  }
  ready.store(false);
  admin.Stop();
  timeseries.Stop();
  engine_ptr.store(nullptr);
  engine.Stop();
  std::cerr << "telekit_serve: done; cache hit rate "
            << engine.cache().HitRate() << "\n";
  if (!flags.obs_json.empty()) obs::WriteReport(flags.obs_json);
  return rc;
}

}  // namespace
}  // namespace serve
}  // namespace telekit

int main(int argc, char** argv) {
  return telekit::serve::Main(argc, argv);
}

// telekit_serve: newline-delimited-JSON fault-analysis server.
//
// Reads one JSON request per line from stdin (default) or from TCP
// connections (--port=N), answers one JSON object per line. See
// serve/protocol.h for the wire format and README.md for a quick-start
// session. Requests may carry a `model` field selecting a hosted variant
// (--models=telebert,ktelebert_stl,...); /reloadz hot-swaps a variant's
// checkpoint without dropping in-flight requests and /quitquitquit drains
// gracefully (stop accepting, finish in-flight, flip /readyz to 503).
//
// By default the model is an untrained TeleBERT over a small synthetic
// world so the server starts in seconds; pass --pretrain-steps=N to
// pre-train first (or point TELEKIT_CACHE at an existing checkpoint dir).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/flag_parse.h"
#include "common/string_util.h"
#include "core/model_zoo.h"
#include "obs/admin.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/requestlog.h"
#include "obs/slo.h"
#include "obs/spanstore.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/engine.h"
#include "serve/model_host.h"
#include "serve/ndjson_server.h"
#include "serve/protocol.h"
#include "tensor/compute_pool.h"

namespace telekit {
namespace serve {
namespace {

struct Flags {
  int port = 0;        // 0 = stdin/stdout
  int admin_port = -1;  // -1 = disabled, 0 = ephemeral
  double slow_request_ms = 100.0;
  int workers = 4;
  int max_batch = 8;
  int64_t max_wait_us = 2000;
  size_t queue_capacity = 1024;
  size_t cache_capacity = 4096;
  int cache_shards = 8;
  bool batching = true;
  bool cache = true;
  int compute_threads = 0;  // 0 = TELEKIT_COMPUTE_THREADS / hardware default
  Precision precision = Precision::kFp32;  // default for untagged requests
  bool index_enabled = true;   // build the retrieval index at startup
  std::string index_path;      // index snapshot file ("" = rebuild always)
  int ef_search = 32;          // default ANN beam width
  int index_tickets = 64;      // synthesized trouble tickets in the corpus
  int pretrain_steps = 0;
  uint64_t seed = 20230401;
  std::string models = "telebert";  // comma-separated variant list
  std::string obs_json;
  std::string request_log;      // NDJSON wide-event sink ("" = off)
  double ts_interval_s = 1.0;   // time-series sampler period
  size_t ts_capacity = 600;     // ring slots per series
  double slo_latency_ms = 50.0;  // latency objective good/bad boundary
  double slo_fast_s = 60.0;     // burn-rate fast window
  double slo_slow_s = 300.0;    // burn-rate slow window
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

void PrintUsage() {
  std::cerr
      << "usage: telekit_serve [options]\n"
      << "  --port=N            serve TCP instead of stdin/stdout\n"
      << "  --admin-port=N      HTTP admin endpoints on 127.0.0.1:N\n"
      << "                      (0 = ephemeral; default off)\n"
      << "  --models=LIST       comma-separated variants to host (default\n"
      << "                      telebert; also ktelebert_stl|pmtl|imtl)\n"
      << "  --slow-request-ms=X log + /tracez requests slower than X ms\n"
      << "                      (default 100; 0 = off)\n"
      << "  --workers=N         engine worker threads (default 4)\n"
      << "  --max-batch=N       micro-batch size cap (default 8)\n"
      << "  --max-wait-us=N     micro-batch flush deadline (default 2000)\n"
      << "  --queue-capacity=N  bounded queue size (default 1024)\n"
      << "  --cache-capacity=N  embedding cache entries (default 4096)\n"
      << "  --cache-shards=N    embedding cache shards (default 8)\n"
      << "  --no-batching       one request per forward\n"
      << "  --no-cache          disable the embedding cache\n"
      << "  --compute-threads=N intra-op tensor threads (default: \n"
      << "                      TELEKIT_COMPUTE_THREADS env, else hardware;\n"
      << "                      1 = serial)\n"
      << "  --precision=P       encode precision for requests without a\n"
      << "                      'precision' field: fp32|int8 (default fp32)\n"
      << "  --index-path=PATH   retrieval-index snapshot: loaded when valid\n"
      << "                      (skipping the rebuild), written after a\n"
      << "                      cold build (default: rebuild every start)\n"
      << "  --ef-search=N       default ANN beam width for retrieve/\n"
      << "                      troubleshoot (default 32; requests override\n"
      << "                      via 'ef_search')\n"
      << "  --index-tickets=N   synthesized trouble tickets in the corpus\n"
      << "                      (default 64)\n"
      << "  --no-index          skip the retrieval index (retrieve/\n"
      << "                      troubleshoot fail FAILED_PRECONDITION)\n"
      << "  --pretrain-steps=N  TeleBERT pre-training steps (default 0)\n"
      << "  --seed=N            world/model seed\n"
      << "  --obs-json=PATH     write metrics/trace report on exit\n"
      << "  --request-log=PATH  append one NDJSON wide event per request\n"
      << "  --ts-interval-s=X   time-series sample period (default 1)\n"
      << "  --ts-capacity=N     time-series ring slots (default 600)\n"
      << "  --slo-latency-ms=X  latency SLO threshold (default 50)\n"
      << "  --slo-fast-s=X      SLO fast burn window (default 60)\n"
      << "  --slo-slow-s=X      SLO slow burn window (default 300)\n"
      << "  --log-level=LEVEL   debug|info|warn|error|off\n";
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "port", &v)) {
      flags->port = static_cast<int>(ParseIntFlagOrDie("port", v, 0, 65535));
    } else if (ParseFlag(arg, "admin-port", &v)) {
      flags->admin_port =
          static_cast<int>(ParseIntFlagOrDie("admin-port", v, -1, 65535));
    } else if (ParseFlag(arg, "models", &v)) {
      flags->models = v;
    } else if (ParseFlag(arg, "slow-request-ms", &v)) {
      flags->slow_request_ms =
          ParseDoubleFlagOrDie("slow-request-ms", v, 0.0, 1e9);
    } else if (ParseFlag(arg, "workers", &v)) {
      flags->workers =
          static_cast<int>(ParseIntFlagOrDie("workers", v, 1, 1024));
    } else if (ParseFlag(arg, "max-batch", &v)) {
      flags->max_batch =
          static_cast<int>(ParseIntFlagOrDie("max-batch", v, 1, 1 << 20));
    } else if (ParseFlag(arg, "max-wait-us", &v)) {
      flags->max_wait_us = ParseIntFlagOrDie("max-wait-us", v, 0, int64_t{1}
                                                                     << 40);
    } else if (ParseFlag(arg, "queue-capacity", &v)) {
      flags->queue_capacity = static_cast<size_t>(
          ParseIntFlagOrDie("queue-capacity", v, 1, int64_t{1} << 30));
    } else if (ParseFlag(arg, "cache-capacity", &v)) {
      flags->cache_capacity = static_cast<size_t>(
          ParseIntFlagOrDie("cache-capacity", v, 0, int64_t{1} << 30));
    } else if (ParseFlag(arg, "cache-shards", &v)) {
      flags->cache_shards =
          static_cast<int>(ParseIntFlagOrDie("cache-shards", v, 1, 4096));
    } else if (arg == "--no-batching") {
      flags->batching = false;
    } else if (arg == "--no-cache") {
      flags->cache = false;
    } else if (ParseFlag(arg, "compute-threads", &v)) {
      flags->compute_threads =
          static_cast<int>(ParseIntFlagOrDie("compute-threads", v, 0, 4096));
    } else if (ParseFlag(arg, "precision", &v)) {
      if (!ParsePrecision(v, &flags->precision)) {
        std::cerr << "bad value for --precision: '" << v
                  << "' (want fp32|int8)\n";
        std::exit(64);
      }
    } else if (ParseFlag(arg, "index-path", &v)) {
      flags->index_path = v;
    } else if (ParseFlag(arg, "ef-search", &v)) {
      flags->ef_search =
          static_cast<int>(ParseIntFlagOrDie("ef-search", v, 1, 1 << 20));
    } else if (ParseFlag(arg, "index-tickets", &v)) {
      flags->index_tickets = static_cast<int>(
          ParseIntFlagOrDie("index-tickets", v, 0, 1 << 20));
    } else if (arg == "--no-index") {
      flags->index_enabled = false;
    } else if (ParseFlag(arg, "pretrain-steps", &v)) {
      flags->pretrain_steps = static_cast<int>(
          ParseIntFlagOrDie("pretrain-steps", v, 0, 1000000000));
    } else if (ParseFlag(arg, "seed", &v)) {
      flags->seed = static_cast<uint64_t>(
          ParseIntFlagOrDie("seed", v, 0, std::numeric_limits<int64_t>::max()));
    } else if (ParseFlag(arg, "obs-json", &v)) {
      flags->obs_json = v;
    } else if (ParseFlag(arg, "request-log", &v)) {
      flags->request_log = v;
    } else if (ParseFlag(arg, "ts-interval-s", &v)) {
      flags->ts_interval_s =
          ParseDoubleFlagOrDie("ts-interval-s", v, 0.001, 1e6);
    } else if (ParseFlag(arg, "ts-capacity", &v)) {
      flags->ts_capacity = static_cast<size_t>(
          ParseIntFlagOrDie("ts-capacity", v, 1, int64_t{1} << 30));
    } else if (ParseFlag(arg, "slo-latency-ms", &v)) {
      flags->slo_latency_ms =
          ParseDoubleFlagOrDie("slo-latency-ms", v, 0.0, 1e9);
    } else if (ParseFlag(arg, "slo-fast-s", &v)) {
      flags->slo_fast_s = ParseDoubleFlagOrDie("slo-fast-s", v, 0.001, 1e9);
    } else if (ParseFlag(arg, "slo-slow-s", &v)) {
      flags->slo_slow_s = ParseDoubleFlagOrDie("slo-slow-s", v, 0.001, 1e9);
    } else if (ParseFlag(arg, "log-level", &v)) {
      obs::Logger::Global().set_level(obs::ParseLogLevel(v));
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      PrintUsage();
      return false;
    }
  }
  return true;
}

/// Small, fast-to-build zoo sized for interactive startup.
core::ZooConfig ServeZooConfig(const Flags& flags, uint64_t seed) {
  core::ZooConfig config;
  config.seed = seed;
  config.world.num_alarm_types = 48;
  config.world.num_kpi_types = 24;
  config.corpus.num_tele_sentences = 1500;
  config.corpus.num_general_sentences = 1500;
  config.num_episodes = 40;
  config.pretrain.steps = flags.pretrain_steps;
  config.cache_dir = "";  // TELEKIT_CACHE env still overrides
  return config;
}

/// Retrieval-index build options for one hosted variant. With multiple
/// hosted variants the snapshot path gains a per-model suffix so the
/// bundles do not overwrite each other's snapshots (the fingerprint is
/// model-tagged, so a shared file would rebuild on every start anyway).
BundleIndexOptions MakeIndexOptions(const Flags& flags,
                                    const std::string& model) {
  BundleIndexOptions options;
  options.enable = flags.index_enabled;
  options.hnsw.ef_search = flags.ef_search;
  options.num_tickets = flags.index_tickets;
  if (!flags.index_path.empty()) {
    options.snapshot_path = SplitString(flags.models, ',').size() > 1
                                ? flags.index_path + "." + model
                                : flags.index_path;
  }
  return options;
}

EngineOptions MakeEngineOptions(const Flags& flags) {
  EngineOptions options;
  options.num_workers = flags.workers;
  options.queue_capacity = flags.queue_capacity;
  options.max_batch = flags.max_batch;
  options.max_wait_us = flags.max_wait_us;
  options.enable_batching = flags.batching;
  options.cache_capacity = flags.cache_capacity;
  options.cache_shards = flags.cache_shards;
  options.enable_cache = flags.cache;
  options.slow_request_ms = flags.slow_request_ms;
  options.compute_threads = flags.compute_threads;
  options.default_precision = flags.precision;
  return options;
}

/// Single-flight background checkpoint reload backing /reloadz. The admin
/// accept thread must never block on a model build (the health prober of a
/// fronting telekit_router polls /readyz on this same thread), so the
/// rebuild runs on a worker and /reloadz returns 202 immediately.
class ReloadManager {
 public:
  ReloadManager(ModelHost* host, const Flags* flags)
      : host_(host), flags_(flags) {}

  ~ReloadManager() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !busy_; });
    if (worker_.joinable()) worker_.join();
  }

  obs::HttpResponse Handle(const obs::HttpRequest& request) {
    const auto params = obs::ParseQuery(request.query);
    std::string model = host_->default_model();
    if (auto it = params.find("model"); it != params.end()) {
      model = it->second;
    }
    uint64_t seed = flags_->seed;
    if (auto it = params.find("seed"); it != params.end()) {
      int64_t parsed = 0;
      if (!ParseInt64(it->second, 0, std::numeric_limits<int64_t>::max(),
                      &parsed)) {
        return obs::HttpResponse::Text(400,
                                       "bad seed: " + it->second + "\n");
      }
      seed = static_cast<uint64_t>(parsed);
    }
    core::ModelKind kind;
    if (!ParseServeModel(model, &kind)) {
      return obs::HttpResponse::Text(400, "unknown model: " + model + "\n");
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (busy_) {
      return obs::HttpResponse::Text(409, "reload already in progress\n");
    }
    if (worker_.joinable()) worker_.join();  // reap the previous reload
    busy_ = true;
    worker_ = std::thread([this, model, seed] { Reload(model, seed); });
    obs::JsonValue out = obs::JsonValue::Object();
    out.Set("status", obs::JsonValue("reloading"));
    out.Set("model", obs::JsonValue(model));
    out.Set("seed", obs::JsonValue(seed));
    return obs::HttpResponse::Json(202, out);
  }

  /// {"busy": ..., "last": "..."} for /statusz.
  obs::JsonValue StatusJson() const {
    std::lock_guard<std::mutex> lock(mutex_);
    obs::JsonValue out = obs::JsonValue::Object();
    out.Set("busy", obs::JsonValue(busy_));
    out.Set("last", obs::JsonValue(last_));
    return out;
  }

 private:
  void Reload(const std::string& model, uint64_t seed) {
    auto zoo =
        std::make_shared<core::ModelZoo>(ServeZooConfig(*flags_, seed));
    auto built = BuildModelBundle(model, std::move(zoo),
                                  MakeEngineOptions(*flags_),
                                  MakeIndexOptions(*flags_, model));
    std::string outcome;
    if (built.ok()) {
      host_->Install(std::move(built.value()));
      outcome = "ok: reloaded " + model;
    } else {
      outcome = "error: " + built.status().ToString();
      TELEKIT_LOG(ERROR) << "reload failed" << obs::F("model", model)
                         << obs::F("status", built.status().ToString());
    }
    std::lock_guard<std::mutex> lock(mutex_);
    last_ = outcome;
    busy_ = false;
    cv_.notify_all();
  }

  ModelHost* host_;
  const Flags* flags_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::thread worker_;
  bool busy_ = false;
  std::string last_ = "never";
};

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 1;
  if (!flags.obs_json.empty()) {
    obs::TraceCollector::Global().set_recording(true);
  }
  const auto start_time = std::chrono::steady_clock::now();

  if (!flags.request_log.empty() &&
      !obs::RequestLog::Global().SetSinkFile(flags.request_log)) {
    std::cerr << "failed to open --request-log=" << flags.request_log << "\n";
    return 1;
  }
  obs::SpanStore::Global().SetProcessLabel(
      "telekit_serve:" + std::to_string(flags.port));

  const std::vector<std::string> model_names =
      SplitString(flags.models, ',');
  if (model_names.empty()) {
    std::cerr << "--models must name at least one variant\n";
    return 1;
  }

  // Time-series + SLO engines are declared before the admin server so the
  // admin (whose handlers reference them) is destroyed first; the sampler
  // thread itself only starts once startup can no longer early-return.
  obs::TimeSeriesOptions ts_options;
  ts_options.interval_s = flags.ts_interval_s;
  ts_options.capacity = flags.ts_capacity;
  obs::TimeSeriesStore timeseries(ts_options);
  obs::SloConfig slo_config;
  slo_config.fast_window_s = flags.slo_fast_s;
  slo_config.slow_window_s = flags.slo_slow_s;
  slo_config.budget_window_s = flags.slo_slow_s * 6.0;
  obs::SloEngine slo(&timeseries, slo_config);
  for (obs::SloObjective& objective :
       obs::DefaultServeObjectives(flags.slo_latency_ms, 0.999, 0.95)) {
    slo.AddObjective(std::move(objective));
  }
  timeseries.SetOnSample([&slo](double now_s) { slo.Evaluate(now_s); });

  // The admin server comes up before the model builds so /healthz answers
  // (and /readyz correctly says 503) during the slow startup phase.
  std::atomic<bool> ready{false};
  std::atomic<bool> draining{false};
  ModelHost host(model_names.front());
  ReloadManager reloader(&host, &flags);
  std::mutex quit_mutex;
  std::condition_variable quit_cv;
  bool quit_requested = false;
  obs::AdminServer admin;
  admin.Handle("/timeseriesz", [&timeseries](const obs::HttpRequest& request) {
    return timeseries.HandleQuery(request);
  });
  admin.Handle("/alertz", [&slo](const obs::HttpRequest& request) {
    return slo.HandleQuery(request);
  });
  admin.Handle("/readyz", [&ready, &draining, &host](const obs::HttpRequest&) {
    if (!ready.load()) {
      return obs::HttpResponse::Text(503, "loading\n");
    }
    if (draining.load()) {
      return obs::HttpResponse::Text(503, "draining\n");
    }
    ModelHost::BundlePtr bundle = host.Resolve("");
    if (bundle == nullptr) {
      return obs::HttpResponse::Text(503, "loading\n");
    }
    if (bundle->engine->GetStats().saturated) {
      return obs::HttpResponse::Text(503, "queue saturated\n");
    }
    return obs::HttpResponse::Text(200, "ready\n");
  });
  admin.Handle("/modelz", [&host](const obs::HttpRequest&) {
    return obs::HttpResponse::Json(200, host.StatusJson());
  });
  admin.Handle("/reloadz", [&reloader](const obs::HttpRequest& request) {
    return reloader.Handle(request);
  });
  admin.Handle("/quitquitquit",
               [&draining, &quit_mutex, &quit_cv,
                &quit_requested](const obs::HttpRequest&) {
                 draining.store(true);
                 {
                   std::lock_guard<std::mutex> lock(quit_mutex);
                   quit_requested = true;
                 }
                 quit_cv.notify_all();
                 TELEKIT_LOG(WARN) << "quitquitquit: draining";
                 return obs::HttpResponse::Text(200, "draining\n");
               });
  admin.Handle("/statusz", [&ready, &host, &reloader, &timeseries, &slo,
                            &draining, start_time](const obs::HttpRequest&) {
    obs::JsonValue out = obs::JsonValue::Object();
    out.Set("server", obs::JsonValue("telekit_serve"));
    obs::JsonValue build = obs::JsonValue::Object();
    build.Set("compiler", obs::JsonValue(__VERSION__));
    build.Set("cpp_standard", obs::JsonValue(static_cast<double>(__cplusplus)));
    out.Set("build", std::move(build));
    out.Set("uptime_s",
            obs::JsonValue(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_time)
                               .count()));
    out.Set("ready", obs::JsonValue(ready.load()));
    out.Set("draining", obs::JsonValue(draining.load()));
    if (ModelHost::BundlePtr bundle = host.Resolve("")) {
      const EngineStats stats = bundle->engine->GetStats();
      obs::JsonValue e = obs::JsonValue::Object();
      e.Set("model", obs::JsonValue(bundle->model));
      e.Set("generation", obs::JsonValue(bundle->generation));
      e.Set("queue_depth", obs::JsonValue(stats.queue_depth));
      e.Set("queue_capacity", obs::JsonValue(stats.queue_capacity));
      e.Set("saturated", obs::JsonValue(stats.saturated));
      obs::JsonValue workers = obs::JsonValue::Object();
      workers.Set("total", obs::JsonValue(stats.num_workers));
      workers.Set("busy", obs::JsonValue(stats.busy_workers));
      workers.Set("idle",
                  obs::JsonValue(stats.num_workers - stats.busy_workers));
      e.Set("workers", std::move(workers));
      e.Set("requests", obs::JsonValue(stats.requests));
      e.Set("rejected", obs::JsonValue(stats.rejected));
      e.Set("deadline_exceeded", obs::JsonValue(stats.deadline_exceeded));
      obs::JsonValue cache = obs::JsonValue::Object();
      cache.Set("hits", obs::JsonValue(stats.cache_hits));
      cache.Set("misses", obs::JsonValue(stats.cache_misses));
      cache.Set("hit_rate", obs::JsonValue(stats.cache_hit_rate));
      cache.Set("size", obs::JsonValue(stats.cache_size));
      e.Set("cache", std::move(cache));
      out.Set("engine", std::move(e));
      if (bundle->index != nullptr) {
        const index::CorpusIndexStats& istats = bundle->index->stats();
        obs::JsonValue idx = obs::JsonValue::Object();
        idx.Set("size", obs::JsonValue(istats.size));
        idx.Set("dim", obs::JsonValue(istats.dim));
        idx.Set("build_ms", obs::JsonValue(istats.build_ms));
        idx.Set("loaded_from_snapshot",
                obs::JsonValue(istats.loaded_from_snapshot));
        idx.Set("M", obs::JsonValue(istats.M));
        idx.Set("ef_construction", obs::JsonValue(istats.ef_construction));
        idx.Set("ef_search", obs::JsonValue(istats.ef_search_default));
        if (const obs::LatencyHistogram* h =
                obs::MetricsRegistry::Global().FindLatencyHistogram(
                    "serve/retrieve/request_ms")) {
          idx.Set("retrieve_latency", obs::LatencySummaryJson(*h));
        }
        if (const obs::LatencyHistogram* h =
                obs::MetricsRegistry::Global().FindLatencyHistogram(
                    "serve/troubleshoot/request_ms")) {
          idx.Set("troubleshoot_latency", obs::LatencySummaryJson(*h));
        }
        out.Set("index", std::move(idx));
      }
    }
    out.Set("models", host.StatusJson());
    out.Set("reload", reloader.StatusJson());
    if (const obs::LatencyHistogram* h =
            obs::MetricsRegistry::Global().FindLatencyHistogram(
                "serve/request_ms")) {
      out.Set("request_latency", obs::LatencySummaryJson(*h));
    }
    obs::JsonValue ts = obs::JsonValue::Object();
    ts.Set("running", obs::JsonValue(timeseries.running()));
    ts.Set("interval_s", obs::JsonValue(timeseries.options().interval_s));
    ts.Set("samples_taken", obs::JsonValue(timeseries.samples_taken()));
    out.Set("timeseries", std::move(ts));
    obs::JsonValue slo_json = obs::JsonValue::Object();
    slo_json.Set("objectives",
                 obs::JsonValue(static_cast<uint64_t>(slo.Snapshot().size())));
    slo_json.Set("firing",
                 obs::JsonValue(static_cast<uint64_t>(slo.firing_count())));
    out.Set("slo", std::move(slo_json));
    obs::JsonValue rlog = obs::JsonValue::Object();
    rlog.Set("size",
             obs::JsonValue(static_cast<uint64_t>(
                 obs::RequestLog::Global().size())));
    rlog.Set("total_recorded",
             obs::JsonValue(obs::RequestLog::Global().total_recorded()));
    rlog.Set("sink", obs::JsonValue(obs::RequestLog::Global().sink_path()));
    out.Set("request_log", std::move(rlog));
    return obs::HttpResponse::Json(200, out);
  });
  if (flags.admin_port >= 0 && !admin.Start(flags.admin_port)) {
    std::cerr << "failed to start admin server on 127.0.0.1:"
              << flags.admin_port << "\n";
    return 1;
  }

  // Apply before the model build so --pretrain-steps training is also
  // parallel; the engine ctor re-applies it via options (idempotent).
  if (flags.compute_threads > 0) {
    tensor::SetComputeThreads(flags.compute_threads);
  }

  std::cerr << "telekit_serve: building models [" << flags.models
            << "] (pretrain_steps=" << flags.pretrain_steps << ")...\n";
  // One zoo shared by every hosted variant; the build methods
  // single-flight, so each stage is materialized once.
  auto zoo = std::make_shared<core::ModelZoo>(
      ServeZooConfig(flags, flags.seed));
  for (const std::string& model : model_names) {
    auto built = BuildModelBundle(model, zoo, MakeEngineOptions(flags),
                                  MakeIndexOptions(flags, model));
    if (!built.ok()) {
      std::cerr << "BuildModelBundle(" << model
                << "): " << built.status().ToString() << "\n";
      return 1;
    }
    host.Install(std::move(built.value()));
  }
  // Start sampling only now that startup can no longer early-return: the
  // sampler's on-sample callback reaches into `slo`, so no sampler thread
  // may be live on any path where `slo` is destroyed before `timeseries`
  // stops.
  timeseries.Start();
  ready.store(true);
  std::cerr << "telekit_serve: ready (models=" << flags.models << ", "
            << flags.workers << " workers/engine)\n";
  if (admin.running()) {
    std::cerr << "telekit_serve: admin endpoints on 127.0.0.1:"
              << admin.port() << "\n";
  }

  const LineHandler handler = MakeServeLineHandler(&host, &draining);
  int rc = 0;
  if (flags.port > 0) {
    NdjsonServer server;
    if (!server.Start(flags.port, handler)) {
      std::cerr << "failed to listen on 127.0.0.1:" << flags.port << "\n";
      return 1;
    }
    std::cerr << "telekit_serve listening on 127.0.0.1:" << server.port()
              << "\n";
    {
      std::unique_lock<std::mutex> lock(quit_mutex);
      quit_cv.wait(lock, [&] { return quit_requested; });
    }
    // Graceful drain: stop accepting, let in-flight requests finish (the
    // handler already rejects new ones), then close the sockets.
    server.Drain();
    const auto drain_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.in_flight() > 0 &&
           std::chrono::steady_clock::now() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    server.Stop();
  } else {
    ServeNdjsonStdio(handler, std::cin, std::cout);
  }
  ready.store(false);
  admin.Stop();
  timeseries.Stop();
  if (ModelHost::BundlePtr bundle = host.Resolve("")) {
    std::cerr << "telekit_serve: done; cache hit rate "
              << bundle->engine->cache().HitRate() << "\n";
  }
  if (!flags.obs_json.empty()) obs::WriteReport(flags.obs_json);
  return rc;
}

}  // namespace
}  // namespace serve
}  // namespace telekit

int main(int argc, char** argv) {
  return telekit::serve::Main(argc, argv);
}

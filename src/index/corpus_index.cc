#include "index/corpus_index.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <utility>

#include "common/check.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace telekit {
namespace index {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

uint64_t Fnv1aStr(const std::string& s, uint64_t h) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Fnv1aU64(uint64_t v, uint64_t h) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void ExportGauges(const CorpusIndexStats& stats) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetGauge("index/size").Set(static_cast<double>(stats.size));
  reg.GetGauge("index/build_ms").Set(stats.build_ms);
  reg.GetGauge("index/loaded_from_snapshot")
      .Set(stats.loaded_from_snapshot ? 1.0 : 0.0);
  reg.GetGauge("index/ef_search_default")
      .Set(static_cast<double>(stats.ef_search_default));
}

}  // namespace

uint64_t CorpusIndex::ComputeFingerprint(
    const std::vector<synth::RetrievalDoc>& docs, int dim,
    const std::string& model_tag, const HnswOptions& options) {
  uint64_t h = 0xcbf29ce484222325ULL;
  h = Fnv1aU64(static_cast<uint64_t>(dim), h);
  h = Fnv1aStr(model_tag, h);
  h = Fnv1aU64(static_cast<uint64_t>(options.M), h);
  h = Fnv1aU64(static_cast<uint64_t>(options.ef_construction), h);
  h = Fnv1aU64(options.seed, h);
  h = Fnv1aU64(docs.size(), h);
  for (const synth::RetrievalDoc& d : docs) h = Fnv1aStr(d.text, h);
  return h;
}

StatusOr<std::unique_ptr<CorpusIndex>> CorpusIndex::BuildOrLoad(
    std::vector<synth::RetrievalDoc> docs, int dim,
    const std::string& model_tag, const EncodeFn& encode,
    const HnswOptions& options, const std::string& snapshot_path) {
  if (docs.empty()) {
    return Status::InvalidArgument("corpus index: no documents");
  }
  uint64_t fingerprint = ComputeFingerprint(docs, dim, model_tag, options);
  Clock::time_point start = Clock::now();
  auto idx = std::unique_ptr<CorpusIndex>(new CorpusIndex());

  if (!snapshot_path.empty()) {
    std::ifstream in(snapshot_path, std::ios::binary);
    if (in.good()) {
      auto loaded = HnswIndex::Load(in, fingerprint);
      if (loaded.ok() && (*loaded)->dim() == dim &&
          (*loaded)->size() == docs.size()) {
        idx->hnsw_ = std::move(*loaded);
        idx->flat_ = std::make_unique<FlatIndex>(dim);
        for (size_t i = 0; i < docs.size(); ++i) {
          const float* v = idx->hnsw_->vector(static_cast<int>(i));
          idx->flat_->Add(std::vector<float>(v, v + dim));
        }
        idx->stats_.loaded_from_snapshot = true;
        TELEKIT_LOG(INFO) << "index: loaded snapshot"
                          << obs::F("path", snapshot_path)
                          << obs::F("docs", docs.size());
      } else {
        TELEKIT_LOG(WARN)
            << "index: snapshot unusable, rebuilding"
            << obs::F("path", snapshot_path)
            << obs::F("error", loaded.ok() ? "shape mismatch"
                                           : loaded.status().ToString());
      }
    }
  }

  if (!idx->hnsw_) {
    std::vector<std::string> texts;
    texts.reserve(docs.size());
    for (const synth::RetrievalDoc& d : docs) texts.push_back(d.text);
    std::vector<std::vector<float>> embeddings = encode(texts);
    if (embeddings.size() != docs.size()) {
      return Status::Internal("corpus index: encoder returned " +
                              std::to_string(embeddings.size()) +
                              " embeddings for " +
                              std::to_string(docs.size()) + " docs");
    }
    idx->hnsw_ = std::make_unique<HnswIndex>(dim, options);
    idx->flat_ = std::make_unique<FlatIndex>(dim);
    for (const std::vector<float>& e : embeddings) {
      if (static_cast<int>(e.size()) != dim) {
        return Status::Internal("corpus index: embedding dim mismatch");
      }
      idx->hnsw_->Add(e);
      idx->flat_->Add(e);
    }
    if (!snapshot_path.empty()) {
      // Write-then-rename so a crash mid-write never leaves a torn
      // snapshot where the next start expects a valid one.
      std::string tmp = snapshot_path + ".tmp";
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      Status saved = out.good() ? idx->hnsw_->Save(out, fingerprint)
                                : Status::Internal("open failed");
      out.close();
      if (saved.ok() && std::rename(tmp.c_str(), snapshot_path.c_str()) == 0) {
        TELEKIT_LOG(INFO) << "index: wrote snapshot"
                          << obs::F("path", snapshot_path);
      } else {
        std::remove(tmp.c_str());
        TELEKIT_LOG(WARN) << "index: snapshot write failed (serving without)"
                          << obs::F("path", snapshot_path);
      }
    }
  }

  idx->docs_ = std::move(docs);
  idx->stats_.size = idx->docs_.size();
  idx->stats_.dim = dim;
  idx->stats_.build_ms = MsSince(start);
  idx->stats_.M = options.M;
  idx->stats_.ef_construction = options.ef_construction;
  idx->stats_.ef_search_default = options.ef_search;
  idx->stats_.fingerprint = fingerprint;
  idx->stats_.snapshot_path = snapshot_path;
  ExportGauges(idx->stats_);
  return StatusOr<std::unique_ptr<CorpusIndex>>(std::move(idx));
}

std::vector<ScoredDoc> CorpusIndex::Search(const float* query, int k,
                                           int ef_search) const {
  std::vector<SearchResult> hits = hnsw_->Search(query, k, ef_search);
  std::vector<ScoredDoc> out(hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    out[i] = {hits[i].id, hits[i].score};
  }
  return out;
}

std::vector<ScoredDoc> CorpusIndex::SearchExact(const float* query,
                                                int k) const {
  std::vector<SearchResult> hits = flat_->Search(query, k);
  std::vector<ScoredDoc> out(hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    out[i] = {hits[i].id, hits[i].score};
  }
  return out;
}

const synth::RetrievalDoc& CorpusIndex::doc(int id) const {
  TELEKIT_CHECK(id >= 0 && static_cast<size_t>(id) < docs_.size())
      << "CorpusIndex::doc id out of range: " << id;
  return docs_[id];
}

}  // namespace index
}  // namespace telekit

#ifndef TELEKIT_INDEX_CORPUS_INDEX_H_
#define TELEKIT_INDEX_CORPUS_INDEX_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/ann.h"
#include "synth/tickets.h"

namespace telekit {
namespace index {

/// One retrieval hit resolved back to its document.
struct ScoredDoc {
  int doc_id = 0;
  float score = 0.0f;
};

/// Point-in-time facts about a built corpus index, exported on /statusz
/// ("index" section) and as index/* gauges.
struct CorpusIndexStats {
  size_t size = 0;
  int dim = 0;
  /// Wall time of the build (encode + graph construction), or of the
  /// snapshot load when loaded_from_snapshot is true — near zero on a warm
  /// start, which is how the smoke test asserts the rebuild was skipped.
  double build_ms = 0.0;
  bool loaded_from_snapshot = false;
  int M = 0;
  int ef_construction = 0;
  int ef_search_default = 0;
  uint64_t fingerprint = 0;
  std::string snapshot_path;
};

/// The serving-side retrieval index: the document corpus, its embeddings
/// in an HnswIndex (approximate, the serving path) and a FlatIndex (exact,
/// the ground truth for tests/benches), plus snapshot persistence.
///
/// Thread-safety: immutable after BuildOrLoad; Search/SearchExact/doc are
/// const and safe from any number of threads concurrently (the serving
/// worker pool calls Search with no extra locking).
class CorpusIndex {
 public:
  /// Batch text embedder (the serve layer passes ServiceEncoder::EncodeBatch;
  /// tests pass synthetic embeddings). Called once with every doc text, only
  /// on a cold build — a successful snapshot load skips encoding entirely.
  using EncodeFn = std::function<std::vector<std::vector<float>>(
      const std::vector<std::string>&)>;

  /// Builds the index over `docs`, or loads it from `snapshot_path` when
  /// the file exists and its fingerprint matches (same docs, dim,
  /// `model_tag`, and HNSW options). A missing, stale, truncated, or
  /// corrupted snapshot logs a WARN and falls back to a cold rebuild; a
  /// cold build with a non-empty `snapshot_path` writes the snapshot
  /// (best-effort: a write failure warns but does not fail the build).
  static StatusOr<std::unique_ptr<CorpusIndex>> BuildOrLoad(
      std::vector<synth::RetrievalDoc> docs, int dim,
      const std::string& model_tag, const EncodeFn& encode,
      const HnswOptions& options, const std::string& snapshot_path);

  /// ANN top-k (HNSW); `ef_search` <= 0 uses the constructed default.
  std::vector<ScoredDoc> Search(const float* query, int k,
                                int ef_search = 0) const;

  /// Exact top-k (flat scan) — the recall ground truth.
  std::vector<ScoredDoc> SearchExact(const float* query, int k) const;

  const synth::RetrievalDoc& doc(int id) const;
  size_t size() const { return docs_.size(); }
  int dim() const { return hnsw_->dim(); }
  const CorpusIndexStats& stats() const { return stats_; }
  const HnswIndex& hnsw() const { return *hnsw_; }

  /// The identity a snapshot is keyed on: FNV-1a over dim, model tag, HNSW
  /// options, and every doc text. Exposed for tests.
  static uint64_t ComputeFingerprint(const std::vector<synth::RetrievalDoc>& docs,
                                     int dim, const std::string& model_tag,
                                     const HnswOptions& options);

 private:
  CorpusIndex() = default;

  std::vector<synth::RetrievalDoc> docs_;
  std::unique_ptr<HnswIndex> hnsw_;
  std::unique_ptr<FlatIndex> flat_;
  CorpusIndexStats stats_;
};

}  // namespace index
}  // namespace telekit

#endif  // TELEKIT_INDEX_CORPUS_INDEX_H_

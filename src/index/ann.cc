#include "index/ann.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <iterator>
#include <ostream>
#include <queue>
#include <type_traits>

#include "common/check.h"
#include "tensor/simd.h"

namespace telekit {
namespace index {
namespace {

/// Total order on hits: higher score first, then smaller id. Every beam,
/// sort, and shrink below uses this, which is what makes construction and
/// search deterministic for a fixed corpus + seed.
inline bool Better(const SearchResult& a, const SearchResult& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.id < b.id;
}

/// Max-heap comparator: top() is the best candidate.
struct WorseThan {
  bool operator()(const SearchResult& a, const SearchResult& b) const {
    return Better(b, a);
  }
};

/// Min-heap comparator: top() is the worst kept result.
struct BetterThan {
  bool operator()(const SearchResult& a, const SearchResult& b) const {
    return Better(a, b);
  }
};

constexpr uint64_t kSnapshotMagic = 0x54454C4B49445831ULL;  // "TELKIDX1"
constexpr uint32_t kSnapshotVersion = 1;
constexpr int kMaxLevelCap = 32;

uint64_t Fnv1a(const char* data, size_t n, uint64_t h = 0xcbf29ce484222325ULL) {
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Append-only binary writer used by Save (payload is checksummed whole).
struct PayloadWriter {
  std::string buf;
  template <typename T>
  void Put(T v) {
    static_assert(std::is_trivially_copyable<T>::value, "raw write");
    buf.append(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  void PutBytes(const void* p, size_t n) {
    buf.append(reinterpret_cast<const char*>(p), n);
  }
};

/// Bounds-checked binary reader used by Load.
struct PayloadReader {
  const char* p;
  size_t n;
  size_t pos = 0;
  template <typename T>
  bool Get(T* out) {
    if (pos + sizeof(T) > n) return false;
    std::memcpy(out, p + pos, sizeof(T));
    pos += sizeof(T);
    return true;
  }
  bool GetBytes(void* out, size_t bytes) {
    if (pos + bytes > n) return false;
    std::memcpy(out, p + pos, bytes);
    pos += bytes;
    return true;
  }
};

}  // namespace

void NormalizeVector(float* v, int dim) {
  float norm_sq = tensor::simd::Dot(v, v, dim);
  if (norm_sq <= 0.0f) return;
  tensor::simd::ScaleTo(v, 1.0f / std::sqrt(norm_sq), v, dim);
}

// --- FlatIndex ---------------------------------------------------------------

FlatIndex::FlatIndex(int dim) : dim_(dim) {
  TELEKIT_CHECK(dim > 0) << "FlatIndex dim must be positive, got " << dim;
}

int FlatIndex::Add(const std::vector<float>& v) {
  TELEKIT_CHECK(static_cast<int>(v.size()) == dim_)
      << "FlatIndex::Add dim mismatch: " << v.size() << " vs " << dim_;
  size_t offset = data_.size();
  data_.insert(data_.end(), v.begin(), v.end());
  NormalizeVector(data_.data() + offset, dim_);
  return static_cast<int>(count_++);
}

const float* FlatIndex::vector(int id) const {
  TELEKIT_CHECK(id >= 0 && static_cast<size_t>(id) < count_)
      << "FlatIndex::vector id out of range: " << id;
  return data_.data() + static_cast<size_t>(id) * dim_;
}

std::vector<SearchResult> FlatIndex::Search(const float* query, int k) const {
  if (count_ == 0) return {};
  std::vector<float> q(query, query + dim_);
  NormalizeVector(q.data(), dim_);
  std::vector<SearchResult> hits(count_);
  for (size_t i = 0; i < count_; ++i) {
    hits[i].id = static_cast<int>(i);
    hits[i].score = tensor::simd::Dot(q.data(), data_.data() + i * dim_, dim_);
  }
  size_t kept = (k <= 0 || static_cast<size_t>(k) > count_)
                    ? count_
                    : static_cast<size_t>(k);
  std::partial_sort(hits.begin(), hits.begin() + kept, hits.end(), Better);
  hits.resize(kept);
  return hits;
}

// --- HnswIndex ---------------------------------------------------------------

HnswIndex::HnswIndex(int dim, const HnswOptions& options)
    : dim_(dim),
      options_(options),
      max_links0_(2 * options.M),
      level_mult_(1.0 / std::log(static_cast<double>(options.M))),
      level_rng_(options.seed) {
  TELEKIT_CHECK(dim > 0) << "HnswIndex dim must be positive, got " << dim;
  TELEKIT_CHECK(options.M >= 2) << "HnswIndex M must be >= 2, got " << options.M;
  TELEKIT_CHECK(options.ef_construction >= 1)
      << "HnswIndex ef_construction must be >= 1";
}

const float* HnswIndex::vector(int id) const {
  TELEKIT_CHECK(id >= 0 && static_cast<size_t>(id) < count_)
      << "HnswIndex::vector id out of range: " << id;
  return data_.data() + static_cast<size_t>(id) * dim_;
}

float HnswIndex::Score(const float* query, int id) const {
  return tensor::simd::Dot(query, Vector(id), dim_);
}

int HnswIndex::RandomLevel() {
  double u = level_rng_.Uniform();
  if (u < 1e-12) u = 1e-12;
  int level = static_cast<int>(-std::log(u) * level_mult_);
  return std::min(level, kMaxLevelCap);
}

const std::vector<int>& HnswIndex::Links(int id, int level) const {
  return links_[id][level];
}

std::vector<SearchResult> HnswIndex::SearchLayer(const float* query, int entry,
                                                 int ef, int level) const {
  std::vector<uint8_t> visited(count_, 0);
  std::priority_queue<SearchResult, std::vector<SearchResult>, WorseThan>
      candidates;
  std::priority_queue<SearchResult, std::vector<SearchResult>, BetterThan>
      results;
  SearchResult first{entry, Score(query, entry)};
  visited[entry] = 1;
  candidates.push(first);
  results.push(first);
  while (!candidates.empty()) {
    SearchResult c = candidates.top();
    candidates.pop();
    if (results.size() >= static_cast<size_t>(ef) &&
        Better(results.top(), c)) {
      break;  // best open candidate is worse than the worst kept result
    }
    for (int n : Links(c.id, level)) {
      if (visited[n]) continue;
      visited[n] = 1;
      SearchResult hit{n, Score(query, n)};
      if (results.size() < static_cast<size_t>(ef) ||
          Better(hit, results.top())) {
        candidates.push(hit);
        results.push(hit);
        if (results.size() > static_cast<size_t>(ef)) results.pop();
      }
    }
  }
  std::vector<SearchResult> out(results.size());
  for (size_t i = results.size(); i-- > 0;) {
    out[i] = results.top();
    results.pop();
  }
  return out;  // best-first
}

std::vector<int> HnswIndex::SelectNeighbors(
    const std::vector<SearchResult>& cands, int max_links) const {
  std::vector<int> selected;
  std::vector<int> discarded;
  selected.reserve(max_links);
  for (const SearchResult& c : cands) {
    if (static_cast<int>(selected.size()) >= max_links) break;
    const float* cv = Vector(c.id);
    bool diverse = true;
    for (int r : selected) {
      // Closer to an already-kept neighbour than to the base: redundant —
      // the kept neighbour covers this direction.
      if (tensor::simd::Dot(cv, Vector(r), dim_) > c.score) {
        diverse = false;
        break;
      }
    }
    (diverse ? selected : discarded).push_back(c.id);
  }
  for (int id : discarded) {
    if (static_cast<int>(selected.size()) >= max_links) break;
    selected.push_back(id);
  }
  return selected;
}

int HnswIndex::Add(const std::vector<float>& v) {
  TELEKIT_CHECK(static_cast<int>(v.size()) == dim_)
      << "HnswIndex::Add dim mismatch: " << v.size() << " vs " << dim_;
  int id = static_cast<int>(count_);
  size_t offset = data_.size();
  data_.insert(data_.end(), v.begin(), v.end());
  NormalizeVector(data_.data() + offset, dim_);
  ++count_;
  int level = RandomLevel();
  levels_.push_back(level);
  links_.emplace_back(level + 1);
  if (id == 0) {
    entry_ = 0;
    max_level_ = level;
    return id;
  }
  const float* vec = Vector(id);
  int ep = entry_;
  // Greedy descent through layers above the new node's top level.
  for (int lc = max_level_; lc > level; --lc) {
    ep = SearchLayer(vec, ep, 1, lc)[0].id;
  }
  // Beam insert on every shared layer, top to bottom.
  for (int lc = std::min(level, max_level_); lc >= 0; --lc) {
    std::vector<SearchResult> cands =
        SearchLayer(vec, ep, options_.ef_construction, lc);
    int max_links = (lc == 0) ? max_links0_ : options_.M;
    links_[id][lc] = SelectNeighbors(cands, options_.M);
    for (int n : links_[id][lc]) {
      std::vector<int>& back = links_[n][lc];
      back.push_back(id);
      if (back.size() > static_cast<size_t>(max_links)) {
        // Re-select n's neighbours with the same diversity heuristic.
        const float* nv = Vector(n);
        std::vector<SearchResult> scored(back.size());
        for (size_t j = 0; j < back.size(); ++j) {
          scored[j] = {back[j], Score(nv, back[j])};
        }
        std::sort(scored.begin(), scored.end(), Better);
        back = SelectNeighbors(scored, max_links);
      }
    }
    ep = cands[0].id;
  }
  if (level > max_level_) {
    max_level_ = level;
    entry_ = id;
  }
  return id;
}

std::vector<SearchResult> HnswIndex::Search(const float* query, int k,
                                            int ef_search) const {
  if (count_ == 0 || k == 0) return {};
  std::vector<float> q(query, query + dim_);
  NormalizeVector(q.data(), dim_);
  int ef = ef_search > 0 ? ef_search : options_.ef_search;
  if (k > 0 && ef < k) ef = k;
  int ep = entry_;
  for (int lc = max_level_; lc > 0; --lc) {
    ep = SearchLayer(q.data(), ep, 1, lc)[0].id;
  }
  std::vector<SearchResult> hits = SearchLayer(q.data(), ep, ef, 0);
  if (k > 0 && hits.size() > static_cast<size_t>(k)) hits.resize(k);
  return hits;
}

uint64_t HnswIndex::GraphDigest() const {
  PayloadWriter w;
  w.Put<uint32_t>(static_cast<uint32_t>(dim_));
  w.Put<uint64_t>(count_);
  w.Put<int32_t>(max_level_);
  w.Put<int64_t>(entry_);
  for (size_t i = 0; i < count_; ++i) {
    w.Put<uint32_t>(static_cast<uint32_t>(levels_[i]));
    for (int lc = 0; lc <= levels_[i]; ++lc) {
      const std::vector<int>& l = links_[i][lc];
      w.Put<uint32_t>(static_cast<uint32_t>(l.size()));
      for (int id : l) w.Put<uint32_t>(static_cast<uint32_t>(id));
    }
  }
  w.PutBytes(data_.data(), data_.size() * sizeof(float));
  return Fnv1a(w.buf.data(), w.buf.size());
}

Status HnswIndex::Save(std::ostream& out, uint64_t fingerprint) const {
  PayloadWriter w;
  w.Put<uint32_t>(kSnapshotVersion);
  w.Put<uint32_t>(static_cast<uint32_t>(dim_));
  w.Put<uint64_t>(count_);
  w.Put<uint32_t>(static_cast<uint32_t>(options_.M));
  w.Put<uint32_t>(static_cast<uint32_t>(options_.ef_construction));
  w.Put<uint32_t>(static_cast<uint32_t>(options_.ef_search));
  w.Put<uint64_t>(options_.seed);
  w.Put<int32_t>(max_level_);
  w.Put<int64_t>(entry_);
  w.Put<uint64_t>(fingerprint);
  for (size_t i = 0; i < count_; ++i) {
    w.Put<uint32_t>(static_cast<uint32_t>(levels_[i]));
    for (int lc = 0; lc <= levels_[i]; ++lc) {
      const std::vector<int>& l = links_[i][lc];
      w.Put<uint32_t>(static_cast<uint32_t>(l.size()));
      for (int id : l) w.Put<uint32_t>(static_cast<uint32_t>(id));
    }
  }
  w.PutBytes(data_.data(), data_.size() * sizeof(float));
  uint64_t checksum = Fnv1a(w.buf.data(), w.buf.size());
  out.write(reinterpret_cast<const char*>(&kSnapshotMagic),
            sizeof(kSnapshotMagic));
  out.write(w.buf.data(), static_cast<std::streamsize>(w.buf.size()));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out.good()) return Status::Internal("index snapshot write failed");
  return Status::Ok();
}

StatusOr<std::unique_ptr<HnswIndex>> HnswIndex::Load(std::istream& in,
                                                     uint64_t fingerprint) {
  uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (in.gcount() != sizeof(magic) || magic != kSnapshotMagic) {
    return Status::InvalidArgument("index snapshot: bad magic");
  }
  std::string rest((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (rest.size() < sizeof(uint64_t)) {
    return Status::InvalidArgument("index snapshot: truncated (no checksum)");
  }
  size_t payload_size = rest.size() - sizeof(uint64_t);
  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, rest.data() + payload_size, sizeof(uint64_t));
  if (Fnv1a(rest.data(), payload_size) != stored_checksum) {
    return Status::InvalidArgument(
        "index snapshot: checksum mismatch (truncated or corrupted)");
  }
  PayloadReader r{rest.data(), payload_size};
  uint32_t version = 0, dim = 0, m = 0, efc = 0, efs = 0;
  uint64_t count = 0, seed = 0, stored_fingerprint = 0;
  int32_t max_level = 0;
  int64_t entry = 0;
  if (!r.Get(&version) || !r.Get(&dim) || !r.Get(&count) || !r.Get(&m) ||
      !r.Get(&efc) || !r.Get(&efs) || !r.Get(&seed) || !r.Get(&max_level) ||
      !r.Get(&entry) || !r.Get(&stored_fingerprint)) {
    return Status::InvalidArgument("index snapshot: truncated header");
  }
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("index snapshot: unsupported version " +
                                   std::to_string(version));
  }
  if (dim == 0 || dim > 65536 || m < 2 || m > 4096 || efc == 0 ||
      count > (1ULL << 31) || max_level < -1 || max_level > kMaxLevelCap) {
    return Status::InvalidArgument("index snapshot: implausible header");
  }
  if (stored_fingerprint != fingerprint) {
    return Status::FailedPrecondition(
        "index snapshot: fingerprint mismatch (stale corpus or model)");
  }
  HnswOptions options;
  options.M = static_cast<int>(m);
  options.ef_construction = static_cast<int>(efc);
  options.ef_search = static_cast<int>(efs);
  options.seed = seed;
  auto idx = std::make_unique<HnswIndex>(static_cast<int>(dim), options);
  idx->count_ = count;
  idx->max_level_ = max_level;
  idx->entry_ = static_cast<int>(entry);
  if (count > 0 &&
      (entry < 0 || entry >= static_cast<int64_t>(count))) {
    return Status::InvalidArgument("index snapshot: entry out of range");
  }
  idx->levels_.resize(count);
  idx->links_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t level = 0;
    if (!r.Get(&level)) {
      return Status::InvalidArgument("index snapshot: truncated levels");
    }
    if (level > static_cast<uint32_t>(kMaxLevelCap)) {
      return Status::InvalidArgument("index snapshot: implausible level");
    }
    idx->levels_[i] = static_cast<int>(level);
    idx->links_[i].resize(level + 1);
    for (uint32_t lc = 0; lc <= level; ++lc) {
      uint32_t n = 0;
      if (!r.Get(&n) || n > count) {
        return Status::InvalidArgument("index snapshot: truncated adjacency");
      }
      std::vector<int>& l = idx->links_[i][lc];
      l.resize(n);
      for (uint32_t j = 0; j < n; ++j) {
        uint32_t id = 0;
        if (!r.Get(&id) || id >= count) {
          return Status::InvalidArgument("index snapshot: link id out of range");
        }
        l[j] = static_cast<int>(id);
      }
    }
  }
  idx->data_.resize(static_cast<size_t>(count) * dim);
  if (!r.GetBytes(idx->data_.data(), idx->data_.size() * sizeof(float))) {
    return Status::InvalidArgument("index snapshot: truncated vectors");
  }
  if (r.pos != r.n) {
    return Status::InvalidArgument("index snapshot: trailing garbage");
  }
  return StatusOr<std::unique_ptr<HnswIndex>>(std::move(idx));
}

}  // namespace index
}  // namespace telekit

#ifndef TELEKIT_INDEX_ANN_H_
#define TELEKIT_INDEX_ANN_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace telekit {
namespace index {

/// One approximate-nearest-neighbour hit: a document/vector id with its
/// cosine similarity to the query (vectors are L2-normalized on Add, so
/// similarity is a plain SIMD dot product).
struct SearchResult {
  int id = 0;
  float score = 0.0f;
};

/// Exact brute-force index: one SIMD dot product per stored vector. This
/// is the recall ground truth every approximate structure is scored
/// against, and the serving fallback for tiny corpora.
///
/// Thread-safety: Add is single-threaded (build phase); Search is const
/// and safe from any number of threads concurrently once building stops.
class FlatIndex {
 public:
  explicit FlatIndex(int dim);

  /// Copies and L2-normalizes `v` (dimension must match); returns the id
  /// assigned to it (ids are dense, insertion-ordered from 0).
  int Add(const std::vector<float>& v);

  /// Exact top-k by cosine similarity, ties broken by ascending id.
  /// `query` need not be normalized. k <= 0 or k > size clamps to size.
  std::vector<SearchResult> Search(const float* query, int k) const;

  int dim() const { return dim_; }
  size_t size() const { return count_; }
  /// The stored (normalized) vector for `id`.
  const float* vector(int id) const;

 private:
  int dim_;
  size_t count_ = 0;
  std::vector<float> data_;  // count_ x dim_, row-major, L2-normalized
};

/// HNSW construction/search knobs (Malkov & Yashunin 2016).
struct HnswOptions {
  /// Max bidirectional links per node above level 0 (level 0 keeps 2M).
  int M = 16;
  /// Beam width during construction.
  int ef_construction = 100;
  /// Default beam width during search; Search() can override per call.
  int ef_search = 32;
  /// Seed for the geometric level assignment. Identical seed + insertion
  /// order -> bit-identical graph (construction is single-threaded and all
  /// tie-breaks are (score desc, id asc) stable).
  uint64_t seed = 20230401;
};

/// Hierarchical navigable-small-world graph over L2-normalized vectors,
/// maximizing cosine similarity. Deterministic by construction: level
/// draws come from a seeded Rng keyed only by insertion index, neighbour
/// selection is a stable sort, and search visits candidates in a total
/// order — so two builds from the same seed and corpus produce
/// bit-identical graphs and identical top-k ids (asserted in index_test).
///
/// Thread-safety: Add is single-threaded (build phase); Search is const,
/// allocates its own visited/beam state per call, and is safe from any
/// number of threads concurrently with other Search calls (exercised
/// under TSan against the serving worker pool).
class HnswIndex {
 public:
  HnswIndex(int dim, const HnswOptions& options);

  /// Inserts a vector (copied, L2-normalized); returns its dense id.
  int Add(const std::vector<float>& v);

  /// Approximate top-k by cosine similarity. `ef_search` <= 0 uses the
  /// constructed default; the effective beam is max(ef, k).
  std::vector<SearchResult> Search(const float* query, int k,
                                   int ef_search = 0) const;

  int dim() const { return dim_; }
  size_t size() const { return count_; }
  const HnswOptions& options() const { return options_; }
  /// Highest layer currently in the graph (-1 when empty).
  int max_level() const { return max_level_; }
  /// The stored (normalized) vector for `id`.
  const float* vector(int id) const;

  /// FNV-1a digest over levels + adjacency of the whole graph. Two builds
  /// are bit-identical iff their digests match (used by determinism tests
  /// and the snapshot round-trip check).
  uint64_t GraphDigest() const;

  /// Serializes the graph + vectors to `out` (format v1: magic, version,
  /// dims/options, caller fingerprint, levels, adjacency, vectors,
  /// trailing FNV-1a checksum). `fingerprint` identifies the corpus +
  /// model the index was built from; Load rejects a mismatch so a stale
  /// snapshot can never serve a different corpus.
  Status Save(std::ostream& out, uint64_t fingerprint) const;

  /// Deserializes a snapshot written by Save. Fails InvalidArgument on a
  /// bad magic/version, FailedPrecondition on a fingerprint mismatch, and
  /// InvalidArgument("truncated...") / ("checksum...") on short or
  /// corrupted payloads — callers fall back to a rebuild.
  static StatusOr<std::unique_ptr<HnswIndex>> Load(std::istream& in,
                                                   uint64_t fingerprint);

 private:
  /// Neighbour ids of `id` at `level`.
  std::vector<std::vector<int>>& LinksFor(int id);
  const std::vector<int>& Links(int id, int level) const;

  /// Greedy beam search at one layer: returns up to `ef` candidates as
  /// (score, id), best-first, deterministic.
  std::vector<SearchResult> SearchLayer(const float* query, int entry,
                                        int ef, int level) const;

  /// Select-neighbours heuristic (Malkov & Yashunin, Alg. 4): scanning
  /// `cands` best-first (scores are similarities to the base vector the
  /// candidates were scored against), keep a candidate only while it is
  /// closer to that base than to every neighbour already kept — this
  /// preserves links across clusters instead of letting each cluster
  /// collapse into a clique. Spillover fills from the discards, so up to
  /// `max_links` ids come back. Deterministic.
  std::vector<int> SelectNeighbors(const std::vector<SearchResult>& cands,
                                   int max_links) const;

  const float* Vector(int id) const { return data_.data() + id * dim_; }
  float Score(const float* query, int id) const;
  int RandomLevel();

  int dim_;
  HnswOptions options_;
  int max_links0_;  // 2 * M at level 0
  double level_mult_;
  Rng level_rng_;
  size_t count_ = 0;
  int max_level_ = -1;
  int entry_ = -1;
  std::vector<float> data_;      // count_ x dim_, L2-normalized
  std::vector<int> levels_;      // top level per node
  std::vector<std::vector<std::vector<int>>> links_;  // [node][level] -> ids
};

/// L2-normalizes `v` in place (no-op on the zero vector).
void NormalizeVector(float* v, int dim);

}  // namespace index
}  // namespace telekit

#endif  // TELEKIT_INDEX_ANN_H_

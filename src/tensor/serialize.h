#ifndef TELEKIT_TENSOR_SERIALIZE_H_
#define TELEKIT_TENSOR_SERIALIZE_H_

#include <map>
#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace telekit {
namespace tensor {

/// Named weight collection used for checkpointing models to disk. The file
/// format is a simple versioned binary blob (magic, count, then per-tensor
/// name / shape / float32 data); it exists so that benchmark binaries can
/// reuse pre-trained weights instead of re-training in every process.
using TensorMap = std::map<std::string, Tensor>;

/// Writes `tensors` to `path`. Overwrites any existing file.
Status SaveTensorMap(const TensorMap& tensors, const std::string& path);

/// Reads a tensor map from `path`. Loaded tensors have requires_grad=false.
StatusOr<TensorMap> LoadTensorMap(const std::string& path);

/// Copies values from `source` into same-named, same-shaped tensors of
/// `target` (e.g. a freshly constructed model). Fails if any target name is
/// missing from source or shapes disagree.
Status RestoreInto(const TensorMap& source, TensorMap& target);

}  // namespace tensor
}  // namespace telekit

#endif  // TELEKIT_TENSOR_SERIALIZE_H_

#include "tensor/optimizer.h"

#include <cmath>

namespace telekit {
namespace tensor {

void Optimizer::AddParameter(const Tensor& param) {
  TELEKIT_CHECK(param.requires_grad()) << "optimizer parameter needs grad";
  params_.push_back(param);
  OnParameterAdded(param);
}

void Optimizer::AddParameters(const std::vector<Tensor>& params) {
  for (const Tensor& p : params) AddParameter(p);
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double total_sq = 0.0;
  for (const Tensor& p : params_) {
    for (float g : p.grad()) total_sq += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (Tensor& p : params_) {
      auto* node = p.node();
      for (float& g : node->grad) g *= scale;
    }
  }
  return norm;
}

int64_t Optimizer::num_weights() const {
  int64_t total = 0;
  for (const Tensor& p : params_) total += p.size();
  return total;
}

void Sgd::Step() {
  for (Tensor& p : params_) {
    auto* node = p.node();
    if (node->grad.empty()) continue;
    for (size_t i = 0; i < node->value.size(); ++i) {
      float g = node->grad[i];
      if (weight_decay_ != 0.0f) g += weight_decay_ * node->value[i];
      node->value[i] -= lr_ * g;
    }
  }
}

void Adam::OnParameterAdded(const Tensor& param) {
  m_.emplace_back(param.size(), 0.0f);
  v_.emplace_back(param.size(), 0.0f);
}

void Adam::Step() {
  ++step_;
  const float bias1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    auto* node = params_[pi].node();
    if (node->grad.empty()) continue;
    std::vector<float>& m = m_[pi];
    std::vector<float>& v = v_[pi];
    for (size_t i = 0; i < node->value.size(); ++i) {
      float g = node->grad[i];
      if (options_.weight_decay != 0.0f && !options_.decoupled_weight_decay) {
        g += options_.weight_decay * node->value[i];
      }
      m[i] = options_.beta1 * m[i] + (1.0f - options_.beta1) * g;
      v[i] = options_.beta2 * v[i] + (1.0f - options_.beta2) * g * g;
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      float update = options_.lr * m_hat / (std::sqrt(v_hat) + options_.eps);
      if (options_.weight_decay != 0.0f && options_.decoupled_weight_decay) {
        update += options_.lr * options_.weight_decay * node->value[i];
      }
      node->value[i] -= update;
    }
  }
}

}  // namespace tensor
}  // namespace telekit

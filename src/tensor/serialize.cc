#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>

namespace telekit {
namespace tensor {

namespace {

constexpr uint32_t kMagic = 0x544B5431;  // "TKT1"

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

}  // namespace

Status SaveTensorMap(const TensorMap& tensors, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  WriteU32(out, kMagic);
  WriteU32(out, static_cast<uint32_t>(tensors.size()));
  for (const auto& [name, t] : tensors) {
    WriteU32(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    WriteU32(out, static_cast<uint32_t>(t.shape().size()));
    for (int d : t.shape()) WriteU32(out, static_cast<uint32_t>(d));
    out.write(reinterpret_cast<const char*>(t.data().data()),
              static_cast<std::streamsize>(t.data().size() * sizeof(float)));
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

StatusOr<TensorMap> LoadTensorMap(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open: " + path);
  uint32_t magic = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  uint32_t count = 0;
  if (!ReadU32(in, &count)) return Status::InvalidArgument("truncated header");
  TensorMap out;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0;
    if (!ReadU32(in, &name_len) || name_len > 4096) {
      return Status::InvalidArgument("bad name length");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rank = 0;
    if (!ReadU32(in, &rank) || rank > 2) {
      return Status::InvalidArgument("bad rank for " + name);
    }
    Shape shape;
    for (uint32_t d = 0; d < rank; ++d) {
      uint32_t dim = 0;
      if (!ReadU32(in, &dim) || dim == 0) {
        return Status::InvalidArgument("bad dim for " + name);
      }
      shape.push_back(static_cast<int>(dim));
    }
    std::vector<float> data(static_cast<size_t>(ShapeSize(shape)));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in.good()) return Status::InvalidArgument("truncated data: " + name);
    out.emplace(name, Tensor::FromData(shape, std::move(data)));
  }
  return out;
}

Status RestoreInto(const TensorMap& source, TensorMap& target) {
  for (auto& [name, t] : target) {
    auto it = source.find(name);
    if (it == source.end()) {
      return Status::NotFound("missing tensor in checkpoint: " + name);
    }
    if (it->second.shape() != t.shape()) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": checkpoint " +
          ShapeToString(it->second.shape()) + " vs model " +
          ShapeToString(t.shape()));
    }
    t.mutable_data() = it->second.data();
  }
  return Status::Ok();
}

}  // namespace tensor
}  // namespace telekit

#ifndef TELEKIT_TENSOR_OPS_H_
#define TELEKIT_TENSOR_OPS_H_

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace telekit {
namespace tensor {

// All operations are differentiable: if any input has requires_grad(), the
// result records a backward closure on the tape. Shapes follow the comments;
// rank-1 tensors are treated as row vectors where noted.

/// Scoped inference mode (torch.no_grad analogue). While at least one
/// NoGradGuard is alive on the current thread, ops produce tape-free
/// results even when inputs require gradients: no parent edges, no
/// backward closures, no gradient buffers. Forward values are unchanged.
/// Guards nest; the flag is thread-local, so concurrent inference threads
/// can run under guards while a training thread keeps building tape.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;
};

/// False while a NoGradGuard is alive on this thread.
bool GradEnabled();

// --- Linear algebra ---------------------------------------------------------

/// Matrix product: [m, k] x [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// Transpose of a matrix: [m, n] -> [n, m].
Tensor Transpose(const Tensor& a);

/// Same data, new shape (sizes must match).
Tensor Reshape(const Tensor& a, const Shape& shape);

// --- Structural -------------------------------------------------------------

/// Concatenates matrices along rows: [m1, n] + [m2, n] -> [m1+m2, n].
/// Rank-1 inputs are treated as [1, n] rows.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Concatenates along columns: [m, n1] + [m, n2] -> [m, n1+n2].
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Concatenates rank-1 vectors: [n1] + [n2] -> [n1+n2].
Tensor ConcatVec(const std::vector<Tensor>& parts);

/// Rows [start, start+len) of a matrix.
Tensor SliceRows(const Tensor& a, int start, int len);

/// Columns [start, start+len) of a matrix.
Tensor SliceCols(const Tensor& a, int start, int len);

/// Selects rows by index (duplicates allowed); backward scatter-adds.
Tensor GatherRows(const Tensor& a, const std::vector<int>& indices);

/// A single row of a matrix as a rank-1 vector [n].
Tensor Row(const Tensor& a, int row);

// --- Elementwise arithmetic --------------------------------------------------

/// Elementwise a + b. Shapes must match, or b may be rank-1 [n] broadcast
/// over the rows of a [m, n], or b may be a scalar [1].
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise a - b (same broadcasting as Add).
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise a * b (same broadcasting as Add).
Tensor Mul(const Tensor& a, const Tensor& b);
/// Elementwise a / b (same broadcasting as Add). b must be nonzero.
Tensor Div(const Tensor& a, const Tensor& b);
/// a + c for a constant c.
Tensor AddScalar(const Tensor& a, float c);
/// a * c for a constant c.
Tensor MulScalar(const Tensor& a, float c);
/// -a.
Tensor Neg(const Tensor& a);

// --- Elementwise functions ----------------------------------------------------

Tensor Relu(const Tensor& a);
/// GELU, tanh approximation (as in BERT).
Tensor Gelu(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
/// Numerically stable log(sigmoid(a)).
Tensor LogSigmoid(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; inputs must be positive.
Tensor Log(const Tensor& a);
/// Elementwise square root; inputs must be non-negative.
Tensor Sqrt(const Tensor& a);
/// Elementwise square.
Tensor Square(const Tensor& a);

// --- Reductions ----------------------------------------------------------------

/// Sum of all elements -> scalar [1].
Tensor Sum(const Tensor& a);
/// Mean of all elements -> scalar [1].
Tensor Mean(const Tensor& a);
/// Column means over rows: [m, n] -> [n]. (Mean pooling over tokens.)
Tensor MeanRows(const Tensor& a);
/// Per-row sums: [m, n] -> [m].
Tensor SumCols(const Tensor& a);

// --- Neural-net primitives --------------------------------------------------------

/// Row-wise softmax over the last dimension of [m, n] (or over a [n] vector).
Tensor Softmax(const Tensor& a);

/// Layer normalization over the last dimension with learnable gain/bias [n].
Tensor LayerNorm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                 float eps = 1e-5f);

/// Inverted dropout: keeps each unit with prob. 1-p and rescales by 1/(1-p).
/// Identity when `training` is false or p == 0.
Tensor Dropout(const Tensor& a, float p, Rng& rng, bool training);

/// Embedding lookup: table [V, d], ids in [0, V) -> [len(ids), d].
Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& ids);

/// Rescales each row to unit L2 norm (eps guards zero rows).
Tensor L2NormalizeRows(const Tensor& a, float eps = 1e-8f);

// --- Losses -----------------------------------------------------------------------

/// Mean token cross-entropy over logits [m, C] with integer labels;
/// label -1 means "ignore this row".
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int>& labels);

/// Mean binary cross-entropy over logits [m] (or [m,1]) with labels in {0,1}.
Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& labels);

/// Mean of log(1 + exp(-y_i * s_i)) for labels y in {-1, +1}
/// (the RCA logistic loss, Eq. 16 of the paper).
Tensor LogisticLoss(const Tensor& scores, const std::vector<float>& labels);

/// Mean squared error between two same-shaped tensors.
Tensor MseLoss(const Tensor& pred, const Tensor& target);

}  // namespace tensor
}  // namespace telekit

#endif  // TELEKIT_TENSOR_OPS_H_

#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "obs/metrics.h"
#include "tensor/compute_pool.h"
#include "tensor/simd.h"

namespace telekit {
namespace tensor {

namespace {

thread_local int g_no_grad_depth = 0;

}  // namespace

NoGradGuard::NoGradGuard() { ++g_no_grad_depth; }
NoGradGuard::~NoGradGuard() { --g_no_grad_depth; }

bool GradEnabled() { return g_no_grad_depth == 0; }

namespace {

using internal::Node;
using NodePtr = std::shared_ptr<Node>;

NodePtr NewNode(const Shape& shape, bool requires_grad) {
  // Every op dispatch allocates exactly one node, so this counter is the
  // op-dispatch rate. Cached reference + relaxed atomic: ~1ns per op.
  static obs::Counter& dispatched =
      obs::MetricsRegistry::Global().GetCounter("tensor/ops_dispatched");
  dispatched.Increment();
  auto node = std::make_shared<Node>();
  node->shape = shape;
  node->value.assign(static_cast<size_t>(ShapeSize(shape)), 0.0f);
  node->requires_grad = requires_grad && GradEnabled();
  return node;
}

bool AnyGrad(const Tensor& a) { return a.requires_grad(); }
bool AnyGrad(const Tensor& a, const Tensor& b) {
  return a.requires_grad() || b.requires_grad();
}

// --- Tiled / parallel GEMM kernels -------------------------------------------
//
// All three kernels partition the rows of C across the ComputePool (each
// output row owned by exactly one worker) and keep per-element accumulation
// in ascending reduction order, so results are bit-identical for any thread
// count (DESIGN.md §3). The k/j loops are cache-blocked: a kKc x kNc panel of
// B stays resident in L1/L2 while every row of the chunk streams over it.
// Blocking never reorders the per-(i,j) sum — outer p-blocks ascend and p
// ascends within each block.
constexpr int kKc = 64;   // rows of B per panel
constexpr int kNc = 256;  // cols of B per panel

// Chunk size (in rows) for a row-partitioned kernel where each row costs
// `flops_per_row`. Fixed per shape — never a function of the thread count —
// so the chunk grid is deterministic. Returns `rows` (one serial chunk) when
// the whole op is too small to amortize a fan-out.
int RowGrain(int rows, size_t flops_per_row) {
  constexpr size_t kMinChunkFlops = 1 << 15;
  const size_t per_row = std::max<size_t>(flops_per_row, 1);
  if (static_cast<size_t>(rows) * per_row < 2 * kMinChunkFlops) return rows;
  return static_cast<int>(std::max<size_t>(1, kMinChunkFlops / per_row));
}

// Chunk size for flat elementwise loops; ops smaller than 2x this run
// serially inside ParallelFor.
constexpr int kElemGrain = 16384;

// C[i0:i1,n] += A[i0:i1,k] * B[k,n], cache-blocked.
void MmRows(const float* a, const float* b, float* c, int i0, int i1, int k,
            int n) {
  for (int pb = 0; pb < k; pb += kKc) {
    const int pe = std::min(pb + kKc, k);
    for (int jb = 0; jb < n; jb += kNc) {
      const int je = std::min(jb + kNc, n);
      for (int i = i0; i < i1; ++i) {
        const float* arow = a + static_cast<size_t>(i) * k;
        float* crow = c + static_cast<size_t>(i) * n;
        for (int p = pb; p < pe; ++p) {
          const float av = arow[p];
          const float* brow = b + static_cast<size_t>(p) * n;
          simd::Axpy(av, brow + jb, crow + jb, je - jb);
        }
      }
    }
  }
}

// C[m,n] += A[m,k] * B[k,n]
void MmAcc(const float* a, const float* b, float* c, int m, int k, int n) {
  const size_t per_row = 2ull * static_cast<size_t>(k) * n;
  ParallelFor(m, RowGrain(m, per_row),
              [=](int i0, int i1) { MmRows(a, b, c, i0, i1, k, n); });
}

// C[m,k] += A[m,n] * B[k,n]^T  (i.e. C = A * B^T)
void MmAccNT(const float* a, const float* b, float* c, int m, int n, int k) {
  const size_t per_row = 2ull * static_cast<size_t>(n) * k;
  ParallelFor(m, RowGrain(m, per_row), [=](int i0, int i1) {
    for (int i = i0; i < i1; ++i) {
      const float* arow = a + static_cast<size_t>(i) * n;
      float* crow = c + static_cast<size_t>(i) * k;
      for (int p = 0; p < k; ++p) {
        const float* brow = b + static_cast<size_t>(p) * n;
        crow[p] += simd::Dot(arow, brow, n);
      }
    }
  });
}

// C[k,n] += A[m,k]^T * B[m,n]. Partitioned over the rows of C (p), not the
// rows of A (i): the serial i-outer form scatters every A row into all of C,
// which would race across workers. Per output element the reduction is still
// over i ascending, exactly as the i-outer form, so the bits match.
void MmAccTN(const float* a, const float* b, float* c, int m, int k, int n) {
  const size_t per_row = 2ull * static_cast<size_t>(m) * n;
  ParallelFor(k, RowGrain(k, per_row), [=](int p0, int p1) {
    for (int ib = 0; ib < m; ib += kKc) {
      const int ie = std::min(ib + kKc, m);
      for (int p = p0; p < p1; ++p) {
        float* crow = c + static_cast<size_t>(p) * n;
        for (int i = ib; i < ie; ++i) {
          const float av = a[static_cast<size_t>(i) * k + p];
          const float* brow = b + static_cast<size_t>(i) * n;
          simd::Axpy(av, brow, crow, n);
        }
      }
    }
  });
}

// Broadcasting classification for binary elementwise ops.
enum class Broadcast { kSame, kRow, kScalar };

Broadcast ClassifyBroadcast(const Tensor& a, const Tensor& b) {
  if (b.size() == 1) return Broadcast::kScalar;
  if (a.shape() == b.shape()) return Broadcast::kSame;
  if (a.rank() == 2 && b.rank() == 1 && b.dim(0) == a.dim(1)) {
    return Broadcast::kRow;
  }
  TELEKIT_CHECK(false) << "incompatible shapes " << ShapeToString(a.shape())
                       << " vs " << ShapeToString(b.shape());
  return Broadcast::kSame;
}

// Maps a flat index of `a` to the corresponding flat index of `b`.
size_t BIndex(Broadcast bc, size_t a_index, int a_cols) {
  switch (bc) {
    case Broadcast::kSame:
      return a_index;
    case Broadcast::kRow:
      return a_index % static_cast<size_t>(a_cols);
    case Broadcast::kScalar:
      return 0;
  }
  return 0;
}

// Generic binary elementwise op with broadcasting. fwd(x, y) computes the
// value; dfa/dfb give d(out)/dx and d(out)/dy as functions of (x, y).
// `vsame(a, b, out, n)` / `vscalar(a, c, out, n)` are optional simd
// forward kernels: vsame covers kSame directly and kRow by splitting each
// chunk at row boundaries; vscalar covers kScalar. Backward is untouched.
template <typename Fwd, typename Dfa, typename Dfb,
          typename VSame = std::nullptr_t, typename VScalar = std::nullptr_t>
Tensor BinaryOp(const Tensor& a, const Tensor& b, Fwd fwd, Dfa dfa, Dfb dfb,
                VSame vsame = nullptr, VScalar vscalar = nullptr) {
  const Broadcast bc = ClassifyBroadcast(a, b);
  const int a_cols = a.rank() == 2 ? a.dim(1) : static_cast<int>(a.size());
  NodePtr out = NewNode(a.shape(), AnyGrad(a, b));
  const auto& av = a.data();
  const auto& bv = b.data();
  ParallelFor(static_cast<int>(av.size()), kElemGrain, [&](int lo, int hi) {
    if constexpr (!std::is_same_v<VSame, std::nullptr_t>) {
      if (bc == Broadcast::kSame) {
        vsame(av.data() + lo, bv.data() + lo, out->value.data() + lo,
              hi - lo);
        return;
      }
      if (bc == Broadcast::kRow) {
        int i = lo;
        while (i < hi) {
          const int col0 = static_cast<int>(i % static_cast<size_t>(a_cols));
          const int len = std::min(hi - i, a_cols - col0);
          vsame(av.data() + i, bv.data() + col0, out->value.data() + i, len);
          i += len;
        }
        return;
      }
    }
    if constexpr (!std::is_same_v<VScalar, std::nullptr_t>) {
      if (bc == Broadcast::kScalar) {
        vscalar(av.data() + lo, bv[0], out->value.data() + lo, hi - lo);
        return;
      }
    }
    for (int i = lo; i < hi; ++i) {
      out->value[i] = fwd(av[i], bv[BIndex(bc, i, a_cols)]);
    }
  });
  if (out->requires_grad) {
    out->parents = {a.node_ptr(), b.node_ptr()};
    out->backward = [an = a.node_ptr(), bn = b.node_ptr(), bc, a_cols, dfa,
                     dfb](Node* self) {
      if (an->requires_grad) an->EnsureGrad();
      if (bn->requires_grad) bn->EnsureGrad();
      auto range = [&](int lo, int hi) {
        for (int i = lo; i < hi; ++i) {
          const size_t bi = BIndex(bc, static_cast<size_t>(i), a_cols);
          const float g = self->grad[i];
          if (g == 0.0f) continue;
          const float x = an->value[i];
          const float y = bn->value[bi];
          if (an->requires_grad) an->grad[i] += g * dfa(x, y);
          if (bn->requires_grad) bn->grad[bi] += g * dfb(x, y);
        }
      };
      const int size = static_cast<int>(self->grad.size());
      if (bc == Broadcast::kSame || !bn->requires_grad) {
        // Every index writes its own an->grad[i] / bn->grad[i] slot.
        ParallelFor(size, kElemGrain, range);
      } else {
        // kRow/kScalar reduce many indices into one bn->grad slot; keep the
        // serial ascending order so the float sum is reproducible.
        range(0, size);
      }
    };
  }
  return Tensor::FromNode(out);
}

// Generic unary elementwise op. df(x, y) is d(out)/dx given input x and
// output y (so activations can reuse the forward value). `vec(x, out, n)`
// is an optional simd forward kernel.
template <typename Fwd, typename Df, typename Vec = std::nullptr_t>
Tensor UnaryOp(const Tensor& a, Fwd fwd, Df df, Vec vec = nullptr) {
  NodePtr out = NewNode(a.shape(), AnyGrad(a));
  const auto& av = a.data();
  ParallelFor(static_cast<int>(av.size()), kElemGrain, [&](int lo, int hi) {
    if constexpr (!std::is_same_v<Vec, std::nullptr_t>) {
      vec(av.data() + lo, out->value.data() + lo, hi - lo);
    } else {
      for (int i = lo; i < hi; ++i) out->value[i] = fwd(av[i]);
    }
  });
  if (out->requires_grad) {
    out->parents = {a.node_ptr()};
    out->backward = [an = a.node_ptr(), df](Node* self) {
      an->EnsureGrad();
      ParallelFor(static_cast<int>(self->grad.size()), kElemGrain,
                  [&](int lo, int hi) {
                    for (int i = lo; i < hi; ++i) {
                      an->grad[i] +=
                          self->grad[i] * df(an->value[i], self->value[i]);
                    }
                  });
    };
  }
  return Tensor::FromNode(out);
}

}  // namespace

// --- Linear algebra ----------------------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  TELEKIT_CHECK_EQ(a.rank(), 2);
  TELEKIT_CHECK_EQ(b.rank(), 2);
  const int m = a.dim(0), k = a.dim(1), n = b.dim(1);
  TELEKIT_CHECK_EQ(k, b.dim(0))
      << "MatMul " << ShapeToString(a.shape()) << " x "
      << ShapeToString(b.shape());
  static obs::Counter& matmul_calls =
      obs::MetricsRegistry::Global().GetCounter("tensor/matmul_calls");
  static obs::Counter& matmul_flops =
      obs::MetricsRegistry::Global().GetCounter("tensor/matmul_flops");
  matmul_calls.Increment();
  matmul_flops.Increment(2ULL * static_cast<uint64_t>(m) *
                         static_cast<uint64_t>(k) * static_cast<uint64_t>(n));
  NodePtr out = NewNode({m, n}, AnyGrad(a, b));
  MmAcc(a.data().data(), b.data().data(), out->value.data(), m, k, n);
  if (out->requires_grad) {
    out->parents = {a.node_ptr(), b.node_ptr()};
    out->backward = [an = a.node_ptr(), bn = b.node_ptr(), m, k,
                     n](Node* self) {
      if (an->requires_grad) {
        an->EnsureGrad();
        // dA += dC * B^T : [m,n] x [k,n]^T -> [m,k]
        MmAccNT(self->grad.data(), bn->value.data(), an->grad.data(), m, n, k);
      }
      if (bn->requires_grad) {
        bn->EnsureGrad();
        // dB += A^T * dC : [m,k]^T x [m,n] -> [k,n]
        MmAccTN(an->value.data(), self->grad.data(), bn->grad.data(), m, k, n);
      }
    };
  }
  return Tensor::FromNode(out);
}

Tensor Transpose(const Tensor& a) {
  TELEKIT_CHECK_EQ(a.rank(), 2);
  const int m = a.dim(0), n = a.dim(1);
  NodePtr out = NewNode({n, m}, AnyGrad(a));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      out->value[static_cast<size_t>(j) * m + i] =
          a.data()[static_cast<size_t>(i) * n + j];
    }
  }
  if (out->requires_grad) {
    out->parents = {a.node_ptr()};
    out->backward = [an = a.node_ptr(), m, n](Node* self) {
      an->EnsureGrad();
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          an->grad[static_cast<size_t>(i) * n + j] +=
              self->grad[static_cast<size_t>(j) * m + i];
        }
      }
    };
  }
  return Tensor::FromNode(out);
}

Tensor Reshape(const Tensor& a, const Shape& shape) {
  TELEKIT_CHECK_EQ(ShapeSize(shape), a.size());
  NodePtr out = NewNode(shape, AnyGrad(a));
  out->value = a.data();
  if (out->requires_grad) {
    out->parents = {a.node_ptr()};
    out->backward = [an = a.node_ptr()](Node* self) {
      an->EnsureGrad();
      for (size_t i = 0; i < self->grad.size(); ++i) {
        an->grad[i] += self->grad[i];
      }
    };
  }
  return Tensor::FromNode(out);
}

// --- Structural -------------------------------------------------------------

namespace {

// Shared implementation for row-wise concatenation. Rank-1 inputs count as
// single rows.
Tensor ConcatRowsImpl(const std::vector<Tensor>& parts) {
  TELEKIT_CHECK(!parts.empty());
  int cols = parts[0].rank() == 2 ? parts[0].dim(1)
                                  : static_cast<int>(parts[0].size());
  int rows = 0;
  bool grad = false;
  for (const Tensor& p : parts) {
    const int pc = p.rank() == 2 ? p.dim(1) : static_cast<int>(p.size());
    TELEKIT_CHECK_EQ(pc, cols);
    rows += p.rank() == 2 ? p.dim(0) : 1;
    grad = grad || p.requires_grad();
  }
  NodePtr out = NewNode({rows, cols}, grad);
  size_t offset = 0;
  for (const Tensor& p : parts) {
    std::copy(p.data().begin(), p.data().end(), out->value.begin() + offset);
    offset += p.data().size();
  }
  if (out->requires_grad) {
    std::vector<NodePtr> parents;
    for (const Tensor& p : parts) parents.push_back(p.node_ptr());
    out->parents = parents;
    out->backward = [parents](Node* self) {
      size_t off = 0;
      for (const NodePtr& p : parents) {
        if (p->requires_grad) {
          p->EnsureGrad();
          for (size_t i = 0; i < p->value.size(); ++i) {
            p->grad[i] += self->grad[off + i];
          }
        }
        off += p->value.size();
      }
    };
  }
  return Tensor::FromNode(out);
}

}  // namespace

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  return ConcatRowsImpl(parts);
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  TELEKIT_CHECK(!parts.empty());
  const int rows = parts[0].dim(0);
  int cols = 0;
  bool grad = false;
  for (const Tensor& p : parts) {
    TELEKIT_CHECK_EQ(p.rank(), 2);
    TELEKIT_CHECK_EQ(p.dim(0), rows);
    cols += p.dim(1);
    grad = grad || p.requires_grad();
  }
  NodePtr out = NewNode({rows, cols}, grad);
  int col_offset = 0;
  for (const Tensor& p : parts) {
    const int pc = p.dim(1);
    for (int i = 0; i < rows; ++i) {
      std::copy(p.data().begin() + static_cast<size_t>(i) * pc,
                p.data().begin() + static_cast<size_t>(i + 1) * pc,
                out->value.begin() + static_cast<size_t>(i) * cols +
                    col_offset);
    }
    col_offset += pc;
  }
  if (out->requires_grad) {
    std::vector<NodePtr> parents;
    std::vector<int> widths;
    for (const Tensor& p : parts) {
      parents.push_back(p.node_ptr());
      widths.push_back(p.dim(1));
    }
    out->parents = parents;
    out->backward = [parents, widths, rows, cols](Node* self) {
      int off = 0;
      for (size_t pi = 0; pi < parents.size(); ++pi) {
        const NodePtr& p = parents[pi];
        const int pc = widths[pi];
        if (p->requires_grad) {
          p->EnsureGrad();
          for (int i = 0; i < rows; ++i) {
            for (int j = 0; j < pc; ++j) {
              p->grad[static_cast<size_t>(i) * pc + j] +=
                  self->grad[static_cast<size_t>(i) * cols + off + j];
            }
          }
        }
        off += pc;
      }
    };
  }
  return Tensor::FromNode(out);
}

Tensor ConcatVec(const std::vector<Tensor>& parts) {
  TELEKIT_CHECK(!parts.empty());
  int total = 0;
  bool grad = false;
  for (const Tensor& p : parts) {
    TELEKIT_CHECK_EQ(p.rank(), 1);
    total += p.dim(0);
    grad = grad || p.requires_grad();
  }
  NodePtr out = NewNode({total}, grad);
  size_t offset = 0;
  for (const Tensor& p : parts) {
    std::copy(p.data().begin(), p.data().end(), out->value.begin() + offset);
    offset += p.data().size();
  }
  if (out->requires_grad) {
    std::vector<NodePtr> parents;
    for (const Tensor& p : parts) parents.push_back(p.node_ptr());
    out->parents = parents;
    out->backward = [parents](Node* self) {
      size_t off = 0;
      for (const NodePtr& p : parents) {
        if (p->requires_grad) {
          p->EnsureGrad();
          for (size_t i = 0; i < p->value.size(); ++i) {
            p->grad[i] += self->grad[off + i];
          }
        }
        off += p->value.size();
      }
    };
  }
  return Tensor::FromNode(out);
}

Tensor SliceRows(const Tensor& a, int start, int len) {
  TELEKIT_CHECK_EQ(a.rank(), 2);
  TELEKIT_CHECK(start >= 0 && len > 0 && start + len <= a.dim(0));
  const int n = a.dim(1);
  NodePtr out = NewNode({len, n}, AnyGrad(a));
  std::copy(a.data().begin() + static_cast<size_t>(start) * n,
            a.data().begin() + static_cast<size_t>(start + len) * n,
            out->value.begin());
  if (out->requires_grad) {
    out->parents = {a.node_ptr()};
    out->backward = [an = a.node_ptr(), start, n](Node* self) {
      an->EnsureGrad();
      const size_t base = static_cast<size_t>(start) * n;
      for (size_t i = 0; i < self->grad.size(); ++i) {
        an->grad[base + i] += self->grad[i];
      }
    };
  }
  return Tensor::FromNode(out);
}

Tensor SliceCols(const Tensor& a, int start, int len) {
  TELEKIT_CHECK_EQ(a.rank(), 2);
  TELEKIT_CHECK(start >= 0 && len > 0 && start + len <= a.dim(1));
  const int m = a.dim(0), n = a.dim(1);
  NodePtr out = NewNode({m, len}, AnyGrad(a));
  for (int i = 0; i < m; ++i) {
    std::copy(a.data().begin() + static_cast<size_t>(i) * n + start,
              a.data().begin() + static_cast<size_t>(i) * n + start + len,
              out->value.begin() + static_cast<size_t>(i) * len);
  }
  if (out->requires_grad) {
    out->parents = {a.node_ptr()};
    out->backward = [an = a.node_ptr(), start, m, n, len](Node* self) {
      an->EnsureGrad();
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < len; ++j) {
          an->grad[static_cast<size_t>(i) * n + start + j] +=
              self->grad[static_cast<size_t>(i) * len + j];
        }
      }
    };
  }
  return Tensor::FromNode(out);
}

Tensor GatherRows(const Tensor& a, const std::vector<int>& indices) {
  TELEKIT_CHECK_EQ(a.rank(), 2);
  const int n = a.dim(1);
  const int m = static_cast<int>(indices.size());
  TELEKIT_CHECK_GT(m, 0);
  for (int idx : indices) TELEKIT_CHECK(idx >= 0 && idx < a.dim(0));
  NodePtr out = NewNode({m, n}, AnyGrad(a));
  ParallelFor(m, RowGrain(m, static_cast<size_t>(n)), [&](int r0, int r1) {
    for (int i = r0; i < r1; ++i) {
      std::copy(a.data().begin() + static_cast<size_t>(indices[i]) * n,
                a.data().begin() + static_cast<size_t>(indices[i] + 1) * n,
                out->value.begin() + static_cast<size_t>(i) * n);
    }
  });
  if (out->requires_grad) {
    out->parents = {a.node_ptr()};
    out->backward = [an = a.node_ptr(), indices, n](Node* self) {
      an->EnsureGrad();
      // Indices may repeat (e.g. the same token twice in a sequence), so a
      // plain row-parallel scatter would race. Group positions by
      // destination row: each destination is owned by one worker, and the
      // stable sort keeps positions ascending within a group, preserving
      // the serial accumulation order per slot.
      const int m = static_cast<int>(indices.size());
      std::vector<int> order(static_cast<size_t>(m));
      for (int i = 0; i < m; ++i) order[static_cast<size_t>(i)] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](int x, int y) { return indices[x] < indices[y]; });
      std::vector<int> starts;
      starts.reserve(static_cast<size_t>(m) + 1);
      for (int i = 0; i < m; ++i) {
        if (i == 0 || indices[order[i]] != indices[order[i - 1]]) {
          starts.push_back(i);
        }
      }
      starts.push_back(m);
      const int groups = static_cast<int>(starts.size()) - 1;
      const size_t per_group =
          2ull * static_cast<size_t>(m) * n / std::max(groups, 1);
      ParallelFor(groups, RowGrain(groups, per_group), [&](int g0, int g1) {
        for (int g = g0; g < g1; ++g) {
          for (int pos = starts[g]; pos < starts[g + 1]; ++pos) {
            const int i = order[pos];
            const size_t src = static_cast<size_t>(i) * n;
            const size_t dst = static_cast<size_t>(indices[i]) * n;
            for (int j = 0; j < n; ++j) {
              an->grad[dst + j] += self->grad[src + j];
            }
          }
        }
      });
    };
  }
  return Tensor::FromNode(out);
}

Tensor Row(const Tensor& a, int row) {
  return Reshape(SliceRows(a, row, 1), {a.dim(1)});
}

// --- Elementwise arithmetic ---------------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x + y; },
      [](float, float) { return 1.0f; }, [](float, float) { return 1.0f; },
      [](const float* x, const float* y, float* o, int n) {
        simd::Add(x, y, o, n);
      },
      [](const float* x, float c, float* o, int n) {
        simd::AddScalarTo(x, c, o, n);
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x - y; },
      [](float, float) { return 1.0f; }, [](float, float) { return -1.0f; },
      [](const float* x, const float* y, float* o, int n) {
        simd::Sub(x, y, o, n);
      },
      [](const float* x, float c, float* o, int n) {
        // x - c and x + (-c) are the same IEEE operation.
        simd::AddScalarTo(x, -c, o, n);
      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x * y; },
      [](float, float y) { return y; }, [](float x, float) { return x; },
      [](const float* x, const float* y, float* o, int n) {
        simd::Mul(x, y, o, n);
      },
      [](const float* x, float c, float* o, int n) {
        simd::ScaleTo(x, c, o, n);
      });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(
      a, b, [](float x, float y) { return x / y; },
      [](float, float y) { return 1.0f / y; },
      [](float x, float y) { return -x / (y * y); });
}

Tensor AddScalar(const Tensor& a, float c) {
  return UnaryOp(
      a, [c](float x) { return x + c; }, [](float, float) { return 1.0f; },
      [c](const float* x, float* o, int n) { simd::AddScalarTo(x, c, o, n); });
}

Tensor MulScalar(const Tensor& a, float c) {
  return UnaryOp(
      a, [c](float x) { return x * c; }, [c](float, float) { return c; },
      [c](const float* x, float* o, int n) { simd::ScaleTo(x, c, o, n); });
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

// --- Elementwise functions -----------------------------------------------------

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; },
      [](const float* x, float* o, int n) { simd::ReluTo(x, o, n); });
}

Tensor Gelu(const Tensor& a) {
  // tanh approximation: 0.5 x (1 + tanh(c (x + 0.044715 x^3))).
  constexpr float kC = 0.7978845608028654f;  // sqrt(2/pi)
  return UnaryOp(
      a,
      [](float x) {
        const float inner = kC * (x + 0.044715f * x * x * x);
        return 0.5f * x * (1.0f + std::tanh(inner));
      },
      [](float x, float) {
        const float inner = kC * (x + 0.044715f * x * x * x);
        const float t = std::tanh(inner);
        const float dinner = kC * (1.0f + 3.0f * 0.044715f * x * x);
        return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * dinner;
      });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor LogSigmoid(const Tensor& a) {
  // log sigmoid(x) = -log(1 + exp(-x)) = min(x,0) - log1p(exp(-|x|))
  return UnaryOp(
      a,
      [](float x) {
        return std::min(x, 0.0f) - std::log1p(std::exp(-std::fabs(x)));
      },
      [](float x, float) { return 1.0f / (1.0f + std::exp(x)); });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        TELEKIT_CHECK_GT(x, 0.0f) << "Log of non-positive value";
        return std::log(x);
      },
      [](float x, float) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryOp(
      a,
      [](float x) {
        TELEKIT_CHECK_GE(x, 0.0f) << "Sqrt of negative value";
        return std::sqrt(x);
      },
      [](float, float y) { return 0.5f / std::max(y, 1e-12f); });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

// --- Reductions ------------------------------------------------------------------

Tensor Sum(const Tensor& a) {
  NodePtr out = NewNode({1}, AnyGrad(a));
  float acc = 0.0f;
  for (float v : a.data()) acc += v;
  out->value[0] = acc;
  if (out->requires_grad) {
    out->parents = {a.node_ptr()};
    out->backward = [an = a.node_ptr()](Node* self) {
      an->EnsureGrad();
      const float g = self->grad[0];
      for (float& gv : an->grad) gv += g;
    };
  }
  return Tensor::FromNode(out);
}

Tensor Mean(const Tensor& a) {
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.size()));
}

Tensor MeanRows(const Tensor& a) {
  TELEKIT_CHECK_EQ(a.rank(), 2);
  const int m = a.dim(0), n = a.dim(1);
  NodePtr out = NewNode({n}, AnyGrad(a));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      out->value[j] += a.data()[static_cast<size_t>(i) * n + j];
    }
  }
  const float inv_m = 1.0f / static_cast<float>(m);
  for (int j = 0; j < n; ++j) out->value[j] *= inv_m;
  if (out->requires_grad) {
    out->parents = {a.node_ptr()};
    out->backward = [an = a.node_ptr(), m, n, inv_m](Node* self) {
      an->EnsureGrad();
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          an->grad[static_cast<size_t>(i) * n + j] += self->grad[j] * inv_m;
        }
      }
    };
  }
  return Tensor::FromNode(out);
}

Tensor SumCols(const Tensor& a) {
  TELEKIT_CHECK_EQ(a.rank(), 2);
  const int m = a.dim(0), n = a.dim(1);
  NodePtr out = NewNode({m}, AnyGrad(a));
  for (int i = 0; i < m; ++i) {
    float acc = 0.0f;
    for (int j = 0; j < n; ++j) acc += a.data()[static_cast<size_t>(i) * n + j];
    out->value[i] = acc;
  }
  if (out->requires_grad) {
    out->parents = {a.node_ptr()};
    out->backward = [an = a.node_ptr(), m, n](Node* self) {
      an->EnsureGrad();
      for (int i = 0; i < m; ++i) {
        const float g = self->grad[i];
        for (int j = 0; j < n; ++j) {
          an->grad[static_cast<size_t>(i) * n + j] += g;
        }
      }
    };
  }
  return Tensor::FromNode(out);
}

// --- Neural-net primitives ----------------------------------------------------------

Tensor Softmax(const Tensor& a) {
  // Rank >= 3 would silently be flattened into one giant row by the m/n
  // computation below; reject it loudly (see the rank-2 convention in
  // DESIGN.md §2).
  TELEKIT_CHECK(a.rank() <= 2)
      << "Softmax expects rank <= 2, got " << ShapeToString(a.shape());
  const int m = a.rank() == 2 ? a.dim(0) : 1;
  const int n = a.rank() == 2 ? a.dim(1) : a.dim(0);
  NodePtr out = NewNode(a.shape(), AnyGrad(a));
  const int grain = RowGrain(m, 32ull * static_cast<size_t>(n));
  ParallelFor(m, grain, [&](int r0, int r1) {
    for (int i = r0; i < r1; ++i) {
      const float* row = a.data().data() + static_cast<size_t>(i) * n;
      float* orow = out->value.data() + static_cast<size_t>(i) * n;
      const float max_v = simd::ReduceMax(row, n);
      // exp stays scalar (libm); the max/denominator/scale passes vectorize.
      for (int j = 0; j < n; ++j) orow[j] = std::exp(row[j] - max_v);
      const float inv = 1.0f / simd::ReduceSum(orow, n);
      simd::ScaleTo(orow, inv, orow, n);
    }
  });
  if (out->requires_grad) {
    out->parents = {a.node_ptr()};
    out->backward = [an = a.node_ptr(), m, n, grain](Node* self) {
      an->EnsureGrad();
      ParallelFor(m, grain, [&](int r0, int r1) {
        for (int i = r0; i < r1; ++i) {
          const float* y = self->value.data() + static_cast<size_t>(i) * n;
          const float* dy = self->grad.data() + static_cast<size_t>(i) * n;
          float* dx = an->grad.data() + static_cast<size_t>(i) * n;
          const float dot = simd::Dot(dy, y, n);
          for (int j = 0; j < n; ++j) dx[j] += y[j] * (dy[j] - dot);
        }
      });
    };
  }
  return Tensor::FromNode(out);
}

Tensor LayerNorm(const Tensor& a, const Tensor& gain, const Tensor& bias,
                 float eps) {
  TELEKIT_CHECK(a.rank() <= 2)
      << "LayerNorm expects rank <= 2, got " << ShapeToString(a.shape());
  const int m = a.rank() == 2 ? a.dim(0) : 1;
  const int n = a.rank() == 2 ? a.dim(1) : a.dim(0);
  TELEKIT_CHECK_EQ(gain.rank(), 1);
  TELEKIT_CHECK_EQ(gain.dim(0), n);
  TELEKIT_CHECK_EQ(bias.rank(), 1);
  TELEKIT_CHECK_EQ(bias.dim(0), n);
  const bool grad = a.requires_grad() || gain.requires_grad() ||
                    bias.requires_grad();
  NodePtr out = NewNode(a.shape(), grad);
  // Cache normalized activations and per-row inverse stddev for backward.
  auto xhat = std::make_shared<std::vector<float>>(a.data().size());
  auto inv_std = std::make_shared<std::vector<float>>(m);
  const int grain = RowGrain(m, 8ull * static_cast<size_t>(n));
  ParallelFor(m, grain, [&](int r0, int r1) {
    for (int i = r0; i < r1; ++i) {
      const float* row = a.data().data() + static_cast<size_t>(i) * n;
      const float mean = simd::ReduceSum(row, n) / static_cast<float>(n);
      const float var =
          simd::ReduceSumSqDiff(row, mean, n) / static_cast<float>(n);
      const float istd = 1.0f / std::sqrt(var + eps);
      (*inv_std)[i] = istd;
      simd::NormalizeAffine(row, mean, istd, gain.data().data(),
                            bias.data().data(),
                            xhat->data() + static_cast<size_t>(i) * n,
                            out->value.data() + static_cast<size_t>(i) * n, n);
    }
  });
  if (out->requires_grad) {
    out->parents = {a.node_ptr(), gain.node_ptr(), bias.node_ptr()};
    out->backward = [an = a.node_ptr(), gn = gain.node_ptr(),
                     bn = bias.node_ptr(), xhat, inv_std, m, n,
                     grain](Node* self) {
      if (gn->requires_grad) gn->EnsureGrad();
      if (bn->requires_grad) bn->EnsureGrad();
      if (an->requires_grad) an->EnsureGrad();
      // Gain/bias gradients reduce over rows into shared [n] slots: keep the
      // serial ascending-row order so the float sums are reproducible.
      if (gn->requires_grad || bn->requires_grad) {
        for (int i = 0; i < m; ++i) {
          const float* dy = self->grad.data() + static_cast<size_t>(i) * n;
          const float* xh = xhat->data() + static_cast<size_t>(i) * n;
          for (int j = 0; j < n; ++j) {
            if (gn->requires_grad) gn->grad[j] += dy[j] * xh[j];
            if (bn->requires_grad) bn->grad[j] += dy[j];
          }
        }
      }
      // dx touches only row i — safe to fan out.
      if (an->requires_grad) {
        ParallelFor(m, grain, [&](int r0, int r1) {
          for (int i = r0; i < r1; ++i) {
            const float* dy = self->grad.data() + static_cast<size_t>(i) * n;
            const float* xh = xhat->data() + static_cast<size_t>(i) * n;
            // dxhat = dy * gain; dx = istd * (dxhat - mean(dxhat)
            //                                 - xhat * mean(dxhat * xhat))
            float mean_dxhat = 0.0f;
            float mean_dxhat_xhat = 0.0f;
            for (int j = 0; j < n; ++j) {
              const float dxh = dy[j] * gn->value[j];
              mean_dxhat += dxh;
              mean_dxhat_xhat += dxh * xh[j];
            }
            mean_dxhat /= static_cast<float>(n);
            mean_dxhat_xhat /= static_cast<float>(n);
            float* dx = an->grad.data() + static_cast<size_t>(i) * n;
            const float istd = (*inv_std)[i];
            for (int j = 0; j < n; ++j) {
              const float dxh = dy[j] * gn->value[j];
              dx[j] += istd * (dxh - mean_dxhat - xh[j] * mean_dxhat_xhat);
            }
          }
        });
      }
    };
  }
  return Tensor::FromNode(out);
}

Tensor Dropout(const Tensor& a, float p, Rng& rng, bool training) {
  TELEKIT_CHECK(p >= 0.0f && p < 1.0f);
  if (!training || p == 0.0f) return a;
  const float scale = 1.0f / (1.0f - p);
  auto mask = std::make_shared<std::vector<float>>(a.data().size());
  for (float& mv : *mask) mv = rng.Bernoulli(p) ? 0.0f : scale;
  NodePtr out = NewNode(a.shape(), AnyGrad(a));
  for (size_t i = 0; i < a.data().size(); ++i) {
    out->value[i] = a.data()[i] * (*mask)[i];
  }
  if (out->requires_grad) {
    out->parents = {a.node_ptr()};
    out->backward = [an = a.node_ptr(), mask](Node* self) {
      an->EnsureGrad();
      for (size_t i = 0; i < self->grad.size(); ++i) {
        an->grad[i] += self->grad[i] * (*mask)[i];
      }
    };
  }
  return Tensor::FromNode(out);
}

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int>& ids) {
  return GatherRows(table, ids);
}

Tensor L2NormalizeRows(const Tensor& a, float eps) {
  TELEKIT_CHECK(a.rank() <= 2)
      << "L2NormalizeRows expects rank <= 2, got "
      << ShapeToString(a.shape());
  const int m = a.rank() == 2 ? a.dim(0) : 1;
  const int n = a.rank() == 2 ? a.dim(1) : a.dim(0);
  NodePtr out = NewNode(a.shape(), AnyGrad(a));
  auto inv_norm = std::make_shared<std::vector<float>>(m);
  const int grain = RowGrain(m, 4ull * static_cast<size_t>(n));
  ParallelFor(m, grain, [&](int r0, int r1) {
    for (int i = r0; i < r1; ++i) {
      const float* row = a.data().data() + static_cast<size_t>(i) * n;
      const float sq = simd::ReduceSumSqDiff(row, 0.0f, n);
      const float inv = 1.0f / (std::sqrt(sq) + eps);
      (*inv_norm)[i] = inv;
      simd::ScaleTo(row, inv, out->value.data() + static_cast<size_t>(i) * n,
                    n);
    }
  });
  if (out->requires_grad) {
    out->parents = {a.node_ptr()};
    out->backward = [an = a.node_ptr(), inv_norm, m, n, grain](Node* self) {
      an->EnsureGrad();
      ParallelFor(m, grain, [&](int r0, int r1) {
        for (int i = r0; i < r1; ++i) {
          const float* y = self->value.data() + static_cast<size_t>(i) * n;
          const float* dy = self->grad.data() + static_cast<size_t>(i) * n;
          float* dx = an->grad.data() + static_cast<size_t>(i) * n;
          const float dot = simd::Dot(dy, y, n);
          const float inv = (*inv_norm)[i];
          for (int j = 0; j < n; ++j) dx[j] += inv * (dy[j] - y[j] * dot);
        }
      });
    };
  }
  return Tensor::FromNode(out);
}

// --- Losses --------------------------------------------------------------------------

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int>& labels) {
  TELEKIT_CHECK_EQ(logits.rank(), 2);
  const int m = logits.dim(0), c = logits.dim(1);
  TELEKIT_CHECK_EQ(static_cast<int>(labels.size()), m);
  int valid = 0;
  for (int label : labels) {
    TELEKIT_CHECK(label >= -1 && label < c);
    if (label >= 0) ++valid;
  }
  TELEKIT_CHECK_GT(valid, 0) << "no valid labels";
  NodePtr out = NewNode({1}, AnyGrad(logits));
  // Cache the softmax for the backward pass.
  auto probs = std::make_shared<std::vector<float>>(logits.data().size());
  double loss = 0.0;
  for (int i = 0; i < m; ++i) {
    const float* row = logits.data().data() + static_cast<size_t>(i) * c;
    float* prow = probs->data() + static_cast<size_t>(i) * c;
    float max_v = row[0];
    for (int j = 1; j < c; ++j) max_v = std::max(max_v, row[j]);
    float denom = 0.0f;
    for (int j = 0; j < c; ++j) {
      prow[j] = std::exp(row[j] - max_v);
      denom += prow[j];
    }
    const float inv = 1.0f / denom;
    for (int j = 0; j < c; ++j) prow[j] *= inv;
    if (labels[i] >= 0) {
      loss -= std::log(std::max(prow[labels[i]], 1e-12f));
    }
  }
  out->value[0] = static_cast<float>(loss / valid);
  if (out->requires_grad) {
    out->parents = {logits.node_ptr()};
    out->backward = [ln = logits.node_ptr(), probs, labels, m, c,
                     valid](Node* self) {
      ln->EnsureGrad();
      const float g = self->grad[0] / static_cast<float>(valid);
      for (int i = 0; i < m; ++i) {
        if (labels[i] < 0) continue;
        const float* prow = probs->data() + static_cast<size_t>(i) * c;
        float* drow = ln->grad.data() + static_cast<size_t>(i) * c;
        for (int j = 0; j < c; ++j) {
          drow[j] += g * (prow[j] - (j == labels[i] ? 1.0f : 0.0f));
        }
      }
    };
  }
  return Tensor::FromNode(out);
}

Tensor BceWithLogits(const Tensor& logits, const std::vector<float>& labels) {
  const int m = static_cast<int>(logits.size());
  TELEKIT_CHECK_EQ(static_cast<int>(labels.size()), m);
  NodePtr out = NewNode({1}, AnyGrad(logits));
  double loss = 0.0;
  for (int i = 0; i < m; ++i) {
    const float z = logits.data()[i];
    const float y = labels[i];
    // max(z,0) - z*y + log(1 + exp(-|z|)), numerically stable.
    loss += std::max(z, 0.0f) - z * y + std::log1p(std::exp(-std::fabs(z)));
  }
  out->value[0] = static_cast<float>(loss / m);
  if (out->requires_grad) {
    out->parents = {logits.node_ptr()};
    out->backward = [ln = logits.node_ptr(), labels, m](Node* self) {
      ln->EnsureGrad();
      const float g = self->grad[0] / static_cast<float>(m);
      for (int i = 0; i < m; ++i) {
        const float z = ln->value[i];
        const float sig = 1.0f / (1.0f + std::exp(-z));
        ln->grad[i] += g * (sig - labels[i]);
      }
    };
  }
  return Tensor::FromNode(out);
}

Tensor LogisticLoss(const Tensor& scores, const std::vector<float>& labels) {
  const int m = static_cast<int>(scores.size());
  TELEKIT_CHECK_EQ(static_cast<int>(labels.size()), m);
  for (float y : labels) TELEKIT_CHECK(y == 1.0f || y == -1.0f);
  NodePtr out = NewNode({1}, AnyGrad(scores));
  double loss = 0.0;
  for (int i = 0; i < m; ++i) {
    const float margin = -labels[i] * scores.data()[i];
    // log(1 + exp(margin)) computed stably.
    loss += std::max(margin, 0.0f) + std::log1p(std::exp(-std::fabs(margin)));
  }
  out->value[0] = static_cast<float>(loss / m);
  if (out->requires_grad) {
    out->parents = {scores.node_ptr()};
    out->backward = [sn = scores.node_ptr(), labels, m](Node* self) {
      sn->EnsureGrad();
      const float g = self->grad[0] / static_cast<float>(m);
      for (int i = 0; i < m; ++i) {
        const float margin = -labels[i] * sn->value[i];
        const float sig = 1.0f / (1.0f + std::exp(-margin));
        sn->grad[i] += g * (-labels[i]) * sig;
      }
    };
  }
  return Tensor::FromNode(out);
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  TELEKIT_CHECK(pred.shape() == target.shape());
  return Mean(Square(Sub(pred, target)));
}

}  // namespace tensor
}  // namespace telekit

#include "tensor/simd.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/check.h"
#include "obs/log.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define TELEKIT_SIMD_X86 1
#endif
#if defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#define TELEKIT_SIMD_NEON 1
#endif

namespace telekit {
namespace tensor {
namespace simd {

namespace {

// --- Scalar reference kernels ------------------------------------------------
//
// These are byte-for-byte the loops ops.cc ran before the dispatch seam
// existed: ascending-index accumulation, no FMA contraction. TELEKIT_SIMD=off
// therefore reproduces the historical numerics exactly.

void AxpyScalar(float alpha, const float* x, float* y, int n) {
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

float DotScalar(const float* a, const float* b, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float ReduceMaxScalar(const float* x, int n) {
  float m = x[0];
  for (int i = 1; i < n; ++i) m = std::max(m, x[i]);
  return m;
}

float ReduceSumScalar(const float* x, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += x[i];
  return acc;
}

float ReduceSumSqDiffScalar(const float* x, float mean, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) acc += (x[i] - mean) * (x[i] - mean);
  return acc;
}

void AddScalarKernel(const float* a, const float* b, float* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void SubScalarKernel(const float* a, const float* b, float* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void MulScalarKernel(const float* a, const float* b, float* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void ScaleToScalar(const float* x, float alpha, float* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = x[i] * alpha;
}

void AddScalarToScalar(const float* x, float c, float* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = x[i] + c;
}

void ReluToScalar(const float* x, float* out, int n) {
  for (int i = 0; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void NormalizeAffineScalar(const float* x, float mean, float istd,
                           const float* gain, const float* bias, float* xhat,
                           float* out, int n) {
  for (int i = 0; i < n; ++i) {
    const float xh = (x[i] - mean) * istd;
    if (xhat != nullptr) xhat[i] = xh;
    out[i] = xh * gain[i] + bias[i];
  }
}

int32_t DotI8Scalar(const int8_t* a, const int8_t* b, int n) {
  int32_t acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

// --- AVX2(+FMA) kernels ------------------------------------------------------
//
// Compiled with per-function target attributes so the baseline build stays
// generic x86-64; these bodies only execute after cpuid confirms support.

#if defined(TELEKIT_SIMD_X86)

__attribute__((target("avx2,fma"))) void AxpyAvx2(float alpha, const float* x,
                                                  float* y, int n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vx = _mm256_loadu_ps(x + i);
    const __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, vx, vy));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2,fma"))) float HSum(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 1));
  return _mm_cvtss_f32(sum);
}

__attribute__((target("avx2,fma"))) float DotAvx2(const float* a,
                                                  const float* b, int n) {
  __m256 acc = _mm256_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
  }
  float sum = HSum(acc);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2,fma"))) float ReduceMaxAvx2(const float* x,
                                                        int n) {
  if (n < 8) return ReduceMaxScalar(x, n);
  __m256 acc = _mm256_loadu_ps(x);
  int i = 8;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_max_ps(acc, _mm256_loadu_ps(x + i));
  }
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  __m128 m = _mm_max_ps(lo, hi);
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  float best = _mm_cvtss_f32(m);
  for (; i < n; ++i) best = std::max(best, x[i]);
  return best;
}

__attribute__((target("avx2,fma"))) float ReduceSumAvx2(const float* x,
                                                        int n) {
  __m256 acc = _mm256_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8) acc = _mm256_add_ps(acc, _mm256_loadu_ps(x + i));
  float sum = HSum(acc);
  for (; i < n; ++i) sum += x[i];
  return sum;
}

__attribute__((target("avx2,fma"))) float ReduceSumSqDiffAvx2(const float* x,
                                                              float mean,
                                                              int n) {
  const __m256 vm = _mm256_set1_ps(mean);
  __m256 acc = _mm256_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(x + i), vm);
    acc = _mm256_fmadd_ps(d, d, acc);
  }
  float sum = HSum(acc);
  for (; i < n; ++i) sum += (x[i] - mean) * (x[i] - mean);
  return sum;
}

__attribute__((target("avx2,fma"))) void AddAvx2(const float* a,
                                                 const float* b, float* out,
                                                 int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

__attribute__((target("avx2,fma"))) void SubAvx2(const float* a,
                                                 const float* b, float* out,
                                                 int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

__attribute__((target("avx2,fma"))) void MulAvx2(const float* a,
                                                 const float* b, float* out,
                                                 int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

__attribute__((target("avx2,fma"))) void ScaleToAvx2(const float* x,
                                                     float alpha, float* out,
                                                     int n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), va));
  }
  for (; i < n; ++i) out[i] = x[i] * alpha;
}

__attribute__((target("avx2,fma"))) void AddScalarToAvx2(const float* x,
                                                         float c, float* out,
                                                         int n) {
  const __m256 vc = _mm256_set1_ps(c);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(x + i), vc));
  }
  for (; i < n; ++i) out[i] = x[i] + c;
}

__attribute__((target("avx2,fma"))) void ReluToAvx2(const float* x, float* out,
                                                    int n) {
  const __m256 zero = _mm256_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_max_ps(_mm256_loadu_ps(x + i), zero));
  }
  for (; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

__attribute__((target("avx2,fma"))) void NormalizeAffineAvx2(
    const float* x, float mean, float istd, const float* gain,
    const float* bias, float* xhat, float* out, int n) {
  const __m256 vm = _mm256_set1_ps(mean);
  const __m256 vs = _mm256_set1_ps(istd);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xh =
        _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(x + i), vm), vs);
    if (xhat != nullptr) _mm256_storeu_ps(xhat + i, xh);
    _mm256_storeu_ps(out + i, _mm256_fmadd_ps(xh, _mm256_loadu_ps(gain + i),
                                              _mm256_loadu_ps(bias + i)));
  }
  for (; i < n; ++i) {
    const float xh = (x[i] - mean) * istd;
    if (xhat != nullptr) xhat[i] = xh;
    out[i] = xh * gain[i] + bias[i];
  }
}

__attribute__((target("avx2"))) int32_t DotI8Avx2(const int8_t* a,
                                                  const int8_t* b, int n) {
  __m256i acc = _mm256_setzero_si256();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i a16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i b16 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
  }
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  __m128i sum = _mm_add_epi32(lo, hi);
  sum = _mm_add_epi32(sum, _mm_unpackhi_epi64(sum, sum));
  sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, 1));
  int32_t total = _mm_cvtsi128_si32(sum);
  for (; i < n; ++i) {
    total += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return total;
}

#endif  // TELEKIT_SIMD_X86

// --- NEON kernels ------------------------------------------------------------

#if defined(TELEKIT_SIMD_NEON)

void AxpyNeon(float alpha, const float* x, float* y, int n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(y + i, vfmaq_f32(vld1q_f32(y + i), va, vld1q_f32(x + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

float DotNeon(const float* a, const float* b, int n) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = vfmaq_f32(acc, vld1q_f32(a + i), vld1q_f32(b + i));
  }
  float sum = vaddvq_f32(acc);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

float ReduceMaxNeon(const float* x, int n) {
  if (n < 4) return ReduceMaxScalar(x, n);
  float32x4_t acc = vld1q_f32(x);
  int i = 4;
  for (; i + 4 <= n; i += 4) acc = vmaxq_f32(acc, vld1q_f32(x + i));
  float best = vmaxvq_f32(acc);
  for (; i < n; ++i) best = std::max(best, x[i]);
  return best;
}

float ReduceSumNeon(const float* x, int n) {
  float32x4_t acc = vdupq_n_f32(0.0f);
  int i = 0;
  for (; i + 4 <= n; i += 4) acc = vaddq_f32(acc, vld1q_f32(x + i));
  float sum = vaddvq_f32(acc);
  for (; i < n; ++i) sum += x[i];
  return sum;
}

float ReduceSumSqDiffNeon(const float* x, float mean, int n) {
  const float32x4_t vm = vdupq_n_f32(mean);
  float32x4_t acc = vdupq_n_f32(0.0f);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t d = vsubq_f32(vld1q_f32(x + i), vm);
    acc = vfmaq_f32(acc, d, d);
  }
  float sum = vaddvq_f32(acc);
  for (; i < n; ++i) sum += (x[i] - mean) * (x[i] - mean);
  return sum;
}

void AddNeon(const float* a, const float* b, float* out, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void SubNeon(const float* a, const float* b, float* out, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vsubq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void MulNeon(const float* a, const float* b, float* out, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void ScaleToNeon(const float* x, float alpha, float* out, int n) {
  const float32x4_t va = vdupq_n_f32(alpha);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmulq_f32(vld1q_f32(x + i), va));
  }
  for (; i < n; ++i) out[i] = x[i] * alpha;
}

void AddScalarToNeon(const float* x, float c, float* out, int n) {
  const float32x4_t vc = vdupq_n_f32(c);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vaddq_f32(vld1q_f32(x + i), vc));
  }
  for (; i < n; ++i) out[i] = x[i] + c;
}

void ReluToNeon(const float* x, float* out, int n) {
  const float32x4_t zero = vdupq_n_f32(0.0f);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_f32(out + i, vmaxq_f32(vld1q_f32(x + i), zero));
  }
  for (; i < n; ++i) out[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void NormalizeAffineNeon(const float* x, float mean, float istd,
                         const float* gain, const float* bias, float* xhat,
                         float* out, int n) {
  const float32x4_t vm = vdupq_n_f32(mean);
  const float32x4_t vs = vdupq_n_f32(istd);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t xh = vmulq_f32(vsubq_f32(vld1q_f32(x + i), vm), vs);
    if (xhat != nullptr) vst1q_f32(xhat + i, xh);
    vst1q_f32(out + i, vfmaq_f32(vld1q_f32(bias + i), xh, vld1q_f32(gain + i)));
  }
  for (; i < n; ++i) {
    const float xh = (x[i] - mean) * istd;
    if (xhat != nullptr) xhat[i] = xh;
    out[i] = xh * gain[i] + bias[i];
  }
}

int32_t DotI8Neon(const int8_t* a, const int8_t* b, int n) {
  int32x4_t acc = vdupq_n_s32(0);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const int16x8_t prod = vmull_s8(vld1_s8(a + i), vld1_s8(b + i));
    acc = vpadalq_s16(acc, prod);
  }
  int32_t total = vaddvq_s32(acc);
  for (; i < n; ++i) {
    total += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return total;
}

#endif  // TELEKIT_SIMD_NEON

// --- Dispatch ----------------------------------------------------------------

struct VTable {
  void (*axpy)(float, const float*, float*, int);
  float (*dot)(const float*, const float*, int);
  float (*reduce_max)(const float*, int);
  float (*reduce_sum)(const float*, int);
  float (*reduce_sum_sq_diff)(const float*, float, int);
  void (*add)(const float*, const float*, float*, int);
  void (*sub)(const float*, const float*, float*, int);
  void (*mul)(const float*, const float*, float*, int);
  void (*scale_to)(const float*, float, float*, int);
  void (*add_scalar_to)(const float*, float, float*, int);
  void (*relu_to)(const float*, float*, int);
  void (*normalize_affine)(const float*, float, float, const float*,
                           const float*, float*, float*, int);
  int32_t (*dot_i8)(const int8_t*, const int8_t*, int);
};

constexpr VTable kScalarTable = {
    AxpyScalar,         DotScalar,         ReduceMaxScalar,
    ReduceSumScalar,    ReduceSumSqDiffScalar,
    AddScalarKernel,    SubScalarKernel,   MulScalarKernel,
    ScaleToScalar,      AddScalarToScalar, ReluToScalar,
    NormalizeAffineScalar, DotI8Scalar,
};

#if defined(TELEKIT_SIMD_X86)
constexpr VTable kAvx2Table = {
    AxpyAvx2,         DotAvx2,         ReduceMaxAvx2,
    ReduceSumAvx2,    ReduceSumSqDiffAvx2,
    AddAvx2,          SubAvx2,         MulAvx2,
    ScaleToAvx2,      AddScalarToAvx2, ReluToAvx2,
    NormalizeAffineAvx2, DotI8Avx2,
};
#endif

#if defined(TELEKIT_SIMD_NEON)
constexpr VTable kNeonTable = {
    AxpyNeon,         DotNeon,         ReduceMaxNeon,
    ReduceSumNeon,    ReduceSumSqDiffNeon,
    AddNeon,          SubNeon,         MulNeon,
    ScaleToNeon,      AddScalarToNeon, ReluToNeon,
    NormalizeAffineNeon, DotI8Neon,
};
#endif

std::atomic<const VTable*> g_table{&kScalarTable};
std::atomic<Backend> g_backend{Backend::kScalar};

const VTable* TableFor(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return &kScalarTable;
    case Backend::kAvx2:
#if defined(TELEKIT_SIMD_X86)
      return &kAvx2Table;
#else
      return nullptr;
#endif
    case Backend::kNeon:
#if defined(TELEKIT_SIMD_NEON)
      return &kNeonTable;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

Backend ResolveStartupBackend() {
  Backend backend = DetectBackend();
  const char* env = std::getenv("TELEKIT_SIMD");
  if (env != nullptr) {
    Backend requested;
    TELEKIT_CHECK(ParseSimdEnv(env, &requested))
        << "bad TELEKIT_SIMD value '" << env
        << "' (want on|off|auto|1|0|scalar|avx2|neon, and the CPU/build "
           "must support the named backend)";
    backend = requested;
  }
  return backend;
}

void Install(Backend backend) {
  const VTable* table = TableFor(backend);
  if (table == nullptr) {
    backend = Backend::kScalar;
    table = &kScalarTable;
  }
  g_table.store(table, std::memory_order_relaxed);
  g_backend.store(backend, std::memory_order_relaxed);
}

struct InitOnce {
  InitOnce() {
    const Backend backend = ResolveStartupBackend();
    Install(backend);
    TELEKIT_LOG(INFO) << "tensor/simd backend selected"
                      << obs::F("backend", BackendName(backend));
  }
};

const VTable& Active() {
  static InitOnce init;
  return *g_table.load(std::memory_order_relaxed);
}

}  // namespace

Backend DetectBackend() {
#if defined(TELEKIT_SIMD_X86)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Backend::kAvx2;
  }
#endif
#if defined(TELEKIT_SIMD_NEON)
  return Backend::kNeon;
#endif
  return Backend::kScalar;
}

Backend ActiveBackend() {
  Active();
  return g_backend.load(std::memory_order_relaxed);
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

const char* ActiveBackendName() { return BackendName(ActiveBackend()); }

bool Enabled() { return ActiveBackend() != Backend::kScalar; }

Backend ForceBackend(Backend backend) {
  Active();  // run env-based init first so it never overwrites a force
  if (TableFor(backend) == nullptr) backend = Backend::kScalar;
  Install(backend);
  return backend;
}

bool ParseSimdEnv(const char* value, Backend* backend) {
  const std::string v = value == nullptr ? "" : value;
  if (v.empty() || v == "on" || v == "1" || v == "auto") {
    *backend = DetectBackend();
    return true;
  }
  if (v == "off" || v == "0" || v == "scalar") {
    *backend = Backend::kScalar;
    return true;
  }
  if (v == "avx2") {
    *backend = Backend::kAvx2;
    return DetectBackend() == Backend::kAvx2;
  }
  if (v == "neon") {
    *backend = Backend::kNeon;
    return TableFor(Backend::kNeon) != nullptr;
  }
  return false;
}

void Axpy(float alpha, const float* x, float* y, int n) {
  Active().axpy(alpha, x, y, n);
}

float Dot(const float* a, const float* b, int n) {
  return Active().dot(a, b, n);
}

float ReduceMax(const float* x, int n) { return Active().reduce_max(x, n); }

float ReduceSum(const float* x, int n) { return Active().reduce_sum(x, n); }

float ReduceSumSqDiff(const float* x, float mean, int n) {
  return Active().reduce_sum_sq_diff(x, mean, n);
}

void Add(const float* a, const float* b, float* out, int n) {
  Active().add(a, b, out, n);
}

void Sub(const float* a, const float* b, float* out, int n) {
  Active().sub(a, b, out, n);
}

void Mul(const float* a, const float* b, float* out, int n) {
  Active().mul(a, b, out, n);
}

void ScaleTo(const float* x, float alpha, float* out, int n) {
  Active().scale_to(x, alpha, out, n);
}

void AddScalarTo(const float* x, float c, float* out, int n) {
  Active().add_scalar_to(x, c, out, n);
}

void ReluTo(const float* x, float* out, int n) {
  Active().relu_to(x, out, n);
}

void NormalizeAffine(const float* x, float mean, float istd,
                     const float* gain, const float* bias, float* xhat,
                     float* out, int n) {
  Active().normalize_affine(x, mean, istd, gain, bias, xhat, out, n);
}

int32_t DotI8(const int8_t* a, const int8_t* b, int n) {
  return Active().dot_i8(a, b, n);
}

float QuantizeRow(const float* x, int n, float clip, int8_t* out) {
  float max_abs = 0.0f;
  for (int i = 0; i < n; ++i) max_abs = std::max(max_abs, std::fabs(x[i]));
  if (clip > 0.0f) max_abs = std::min(max_abs, clip);
  if (max_abs == 0.0f) {
    for (int i = 0; i < n; ++i) out[i] = 0;
    return 0.0f;
  }
  const float scale = max_abs / 127.0f;
  const float inv = 127.0f / max_abs;
  for (int i = 0; i < n; ++i) {
    const long q = std::lround(x[i] * inv);
    out[i] = static_cast<int8_t>(std::clamp<long>(q, -127, 127));
  }
  return scale;
}

}  // namespace simd
}  // namespace tensor
}  // namespace telekit

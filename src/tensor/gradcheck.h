#ifndef TELEKIT_TENSOR_GRADCHECK_H_
#define TELEKIT_TENSOR_GRADCHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace telekit {
namespace tensor {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  bool passed = false;
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
  std::string detail;  // where the worst mismatch occurred
};

/// Verifies the analytic gradients of `fn` (a scalar-valued function of the
/// given leaf inputs) against central finite differences. Each input must
/// have requires_grad(). `fn` is called repeatedly and must be deterministic
/// (re-seed any Rng inside). Tolerance is on the hybrid error
/// min(abs_err, rel_err) per coordinate.
GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    const std::vector<Tensor>& inputs, float epsilon = 1e-3f,
    float tolerance = 2e-2f);

}  // namespace tensor
}  // namespace telekit

#endif  // TELEKIT_TENSOR_GRADCHECK_H_

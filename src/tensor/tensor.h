#ifndef TELEKIT_TENSOR_TENSOR_H_
#define TELEKIT_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace telekit {
namespace tensor {

/// Tensor dimensions. TeleKit tensors are rank-1 (vectors) or rank-2
/// (matrices); that is sufficient for every model in the paper (attention
/// is expressed head-by-head as 2-D matmuls).
using Shape = std::vector<int>;

/// Number of elements implied by a shape.
int64_t ShapeSize(const Shape& shape);

/// "[m, n]" rendering for error messages.
std::string ShapeToString(const Shape& shape);

namespace internal {

/// One node of the autograd tape: the forward value plus (optionally) a
/// gradient buffer, parent edges, and a backward closure that scatters
/// this node's gradient into its parents.
struct Node {
  Shape shape;
  std::vector<float> value;
  std::vector<float> grad;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  std::function<void(Node*)> backward;

  /// Allocates (zero-filled) the gradient buffer if not present.
  void EnsureGrad() {
    if (grad.size() != value.size()) grad.assign(value.size(), 0.0f);
  }
};

}  // namespace internal

/// Value-semantic handle to a node in the autograd tape. Copying a Tensor
/// aliases the same storage (like torch.Tensor). Operations on tensors with
/// requires_grad() build a dynamic computation graph; Backward() on a scalar
/// result accumulates gradients into every reachable parameter.
class Tensor {
 public:
  /// Null handle; defined() is false.
  Tensor() = default;

  /// True if this handle refers to storage.
  bool defined() const { return node_ != nullptr; }

  // --- Factories -----------------------------------------------------------

  /// Zero-filled tensor.
  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  /// One-filled tensor.
  static Tensor Ones(const Shape& shape, bool requires_grad = false);
  /// Constant-filled tensor.
  static Tensor Full(const Shape& shape, float value,
                     bool requires_grad = false);
  /// Tensor wrapping the given row-major data.
  static Tensor FromData(const Shape& shape, std::vector<float> data,
                         bool requires_grad = false);
  /// Scalar ([1]) tensor.
  static Tensor Scalar(float value, bool requires_grad = false);
  /// Gaussian-initialized tensor (mean 0).
  static Tensor Randn(const Shape& shape, Rng& rng, float stddev = 1.0f,
                      bool requires_grad = false);
  /// Uniform-initialized tensor in [lo, hi).
  static Tensor Rand(const Shape& shape, Rng& rng, float lo, float hi,
                     bool requires_grad = false);
  /// Glorot/Xavier-uniform initialization for a [fan_in, fan_out] matrix.
  static Tensor GlorotUniform(int fan_in, int fan_out, Rng& rng,
                              bool requires_grad = false);
  /// Identity matrix [n, n].
  static Tensor Eye(int n, bool requires_grad = false);

  // --- Introspection -------------------------------------------------------

  const Shape& shape() const { return node()->shape; }
  int rank() const { return static_cast<int>(node()->shape.size()); }
  /// Size of dimension `i` (supports negative indexing from the end).
  int dim(int i) const;
  /// Total number of elements.
  int64_t size() const { return static_cast<int64_t>(node()->value.size()); }
  bool requires_grad() const { return node()->requires_grad; }

  /// Row-major forward values.
  const std::vector<float>& data() const { return node()->value; }
  std::vector<float>& mutable_data() { return node()->value; }

  /// Accumulated gradient (empty until Backward touches this node).
  const std::vector<float>& grad() const { return node()->grad; }

  /// Element accessors (rank-agnostic flat index, and 2-D convenience).
  float at(int64_t flat_index) const;
  float at(int row, int col) const;

  /// Scalar value of a single-element tensor.
  float item() const;

  // --- Autograd ------------------------------------------------------------

  /// Clears the gradient buffer (used between optimizer steps).
  void ZeroGrad();

  /// Runs reverse-mode differentiation from this (scalar) tensor: seeds
  /// d(self)/d(self) = 1 and propagates through the tape in reverse
  /// topological order.
  void Backward();

  /// Detaches from the tape: returns a tensor sharing no autograd history
  /// (fresh node, copied data, requires_grad = false).
  Tensor Detach() const;

  /// Internal: underlying tape node.
  const std::shared_ptr<internal::Node>& node_ptr() const { return node_; }
  internal::Node* node() const {
    TELEKIT_CHECK(node_ != nullptr) << "null Tensor";
    return node_.get();
  }

  /// Internal: wraps an existing node (used by ops).
  static Tensor FromNode(std::shared_ptr<internal::Node> node);

 private:
  std::shared_ptr<internal::Node> node_;
};

}  // namespace tensor
}  // namespace telekit

#endif  // TELEKIT_TENSOR_TENSOR_H_

#ifndef TELEKIT_TENSOR_SIMD_H_
#define TELEKIT_TENSOR_SIMD_H_

#include <cstdint>

namespace telekit {
namespace tensor {
namespace simd {

/// Vector backends for the hot float kernels (DESIGN.md §3). One backend
/// is chosen per process: AVX2(+FMA) on x86-64 when the CPU reports it,
/// NEON on AArch64, scalar otherwise. The TELEKIT_SIMD environment
/// variable overrides detection (see ConfigureFromEnv below); tests and
/// benches can switch in-process with ForceBackend.
enum class Backend { kScalar, kAvx2, kNeon };

/// The backend the kernels below currently dispatch to. Resolved once on
/// first use (cpuid / feature detection + TELEKIT_SIMD); cheap to call.
Backend ActiveBackend();

/// "scalar" | "avx2" | "neon".
const char* BackendName(Backend backend);
const char* ActiveBackendName();

/// True when a vector backend (not scalar) is active.
bool Enabled();

/// Highest backend this build + CPU supports (ignores TELEKIT_SIMD).
Backend DetectBackend();

/// Test/bench hook: installs `backend` process-wide, falling back to
/// scalar when the CPU lacks it. Returns the backend actually installed.
/// Not thread-safe against concurrent kernel calls; call it only from
/// single-threaded setup code (tests, bench harnesses).
Backend ForceBackend(Backend backend);

/// Parses a TELEKIT_SIMD value: "on" | "1" | "auto" | "" -> detect,
/// "off" | "0" | "scalar" -> scalar, "avx2" / "neon" -> that backend
/// (false when unsupported by this build + CPU). Any other value returns
/// false. Used by the startup path; exposed for tests.
bool ParseSimdEnv(const char* value, Backend* backend);

// --- Float kernels -----------------------------------------------------------
//
// Each kernel is a pure function of its operands: for a fixed backend the
// result depends only on the inputs (never on thread count or call site),
// which preserves the ComputePool bit-identical-across-threads contract.
// Per-element ops (Add/Sub/Mul/Scale/AddScalar/Relu, Axpy) are bit-exact
// across backends except where FMA fuses the multiply-add rounding (Axpy);
// reductions (Dot, ReduceSum, ReduceSumSqDiff) reassociate the sum into
// vector lanes and agree with scalar only within float round-off.

/// y[i] += alpha * x[i].
void Axpy(float alpha, const float* x, float* y, int n);

/// sum_i a[i] * b[i].
float Dot(const float* a, const float* b, int n);

/// max_i x[i]; n must be >= 1.
float ReduceMax(const float* x, int n);

/// sum_i x[i].
float ReduceSum(const float* x, int n);

/// sum_i (x[i] - mean)^2.
float ReduceSumSqDiff(const float* x, float mean, int n);

/// out[i] = a[i] + b[i] (out may alias a or b).
void Add(const float* a, const float* b, float* out, int n);
/// out[i] = a[i] - b[i].
void Sub(const float* a, const float* b, float* out, int n);
/// out[i] = a[i] * b[i].
void Mul(const float* a, const float* b, float* out, int n);

/// out[i] = x[i] * alpha (out may alias x).
void ScaleTo(const float* x, float alpha, float* out, int n);
/// out[i] = x[i] + c.
void AddScalarTo(const float* x, float c, float* out, int n);
/// out[i] = max(x[i], 0).
void ReluTo(const float* x, float* out, int n);

/// Layer-norm epilogue: xhat[i] = (x[i] - mean) * istd and
/// out[i] = xhat[i] * gain[i] + bias[i]. `xhat` may be null when the
/// normalized activations are not needed (inference).
void NormalizeAffine(const float* x, float mean, float istd,
                     const float* gain, const float* bias, float* xhat,
                     float* out, int n);

// --- Int8 kernels ------------------------------------------------------------

/// sum_i a[i] * b[i] with int32 accumulation. Integer arithmetic: the
/// result is bit-identical across backends.
int32_t DotI8(const int8_t* a, const int8_t* b, int n);

/// Symmetric per-row quantization: scale = min(max_i |x[i]|, clip) / 127
/// (clip <= 0 disables clipping), out[i] = round(x[i] / scale) saturated
/// to [-127, 127]. Returns the scale (0 when the row is all zero — the
/// quantized row is then all zero too).
float QuantizeRow(const float* x, int n, float clip, int8_t* out);

}  // namespace simd
}  // namespace tensor
}  // namespace telekit

#endif  // TELEKIT_TENSOR_SIMD_H_

#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/string_util.h"

namespace telekit {
namespace tensor {

int64_t ShapeSize(const Shape& shape) {
  int64_t n = 1;
  for (int d : shape) {
    TELEKIT_CHECK_GT(d, 0) << "non-positive dimension";
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

Tensor Tensor::FromNode(std::shared_ptr<internal::Node> node) {
  Tensor t;
  t.node_ = std::move(node);
  return t;
}

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return Full(shape, 0.0f, requires_grad);
}

Tensor Tensor::Ones(const Shape& shape, bool requires_grad) {
  return Full(shape, 1.0f, requires_grad);
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  TELEKIT_CHECK_LE(shape.size(), 2u) << "rank <= 2 only";
  auto node = std::make_shared<internal::Node>();
  node->shape = shape;
  node->value.assign(static_cast<size_t>(ShapeSize(shape)), value);
  node->requires_grad = requires_grad;
  return FromNode(std::move(node));
}

Tensor Tensor::FromData(const Shape& shape, std::vector<float> data,
                        bool requires_grad) {
  TELEKIT_CHECK_LE(shape.size(), 2u) << "rank <= 2 only";
  TELEKIT_CHECK_EQ(static_cast<int64_t>(data.size()), ShapeSize(shape))
      << "data size mismatch for shape " << ShapeToString(shape);
  auto node = std::make_shared<internal::Node>();
  node->shape = shape;
  node->value = std::move(data);
  node->requires_grad = requires_grad;
  return FromNode(std::move(node));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromData({1}, {value}, requires_grad);
}

Tensor Tensor::Randn(const Shape& shape, Rng& rng, float stddev,
                     bool requires_grad) {
  Tensor t = Zeros(shape, requires_grad);
  for (float& v : t.mutable_data()) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Rand(const Shape& shape, Rng& rng, float lo, float hi,
                    bool requires_grad) {
  Tensor t = Zeros(shape, requires_grad);
  for (float& v : t.mutable_data()) {
    v = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::GlorotUniform(int fan_in, int fan_out, Rng& rng,
                             bool requires_grad) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Rand({fan_in, fan_out}, rng, -limit, limit, requires_grad);
}

Tensor Tensor::Eye(int n, bool requires_grad) {
  Tensor t = Zeros({n, n}, requires_grad);
  for (int i = 0; i < n; ++i) t.mutable_data()[i * n + i] = 1.0f;
  return t;
}

int Tensor::dim(int i) const {
  const int r = rank();
  if (i < 0) i += r;
  TELEKIT_CHECK(i >= 0 && i < r) << "dim " << i << " out of range for rank "
                                 << r;
  return node()->shape[i];
}

float Tensor::at(int64_t flat_index) const {
  TELEKIT_CHECK(flat_index >= 0 && flat_index < size());
  return node()->value[static_cast<size_t>(flat_index)];
}

float Tensor::at(int row, int col) const {
  TELEKIT_CHECK_EQ(rank(), 2);
  TELEKIT_CHECK(row >= 0 && row < dim(0));
  TELEKIT_CHECK(col >= 0 && col < dim(1));
  return node()->value[static_cast<size_t>(row) * dim(1) + col];
}

float Tensor::item() const {
  TELEKIT_CHECK_EQ(size(), 1) << "item() on non-scalar";
  return node()->value[0];
}

void Tensor::ZeroGrad() {
  internal::Node* n = node();
  if (!n->grad.empty()) std::fill(n->grad.begin(), n->grad.end(), 0.0f);
}

void Tensor::Backward() {
  internal::Node* root = node();
  TELEKIT_CHECK_EQ(root->value.size(), 1u)
      << "Backward() must start from a scalar loss";
  TELEKIT_CHECK(root->requires_grad) << "Backward() on non-grad tensor";

  // Iterative DFS producing a reverse topological order of the tape.
  std::vector<internal::Node*> order;
  std::unordered_set<internal::Node*> visited;
  struct Frame {
    internal::Node* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      internal::Node* parent = frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  root->EnsureGrad();
  root->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    internal::Node* n = *it;
    if (n->backward && !n->grad.empty()) n->backward(n);
  }
}

Tensor Tensor::Detach() const {
  auto copy = std::make_shared<internal::Node>();
  copy->shape = node()->shape;
  copy->value = node()->value;
  copy->requires_grad = false;
  return FromNode(std::move(copy));
}

}  // namespace tensor
}  // namespace telekit

#ifndef TELEKIT_TENSOR_OPTIMIZER_H_
#define TELEKIT_TENSOR_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace telekit {
namespace tensor {

/// First-order optimizers over a fixed set of parameter tensors. Parameters
/// are registered once; Step() applies one update from the gradients
/// accumulated since the last ZeroGrad().
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Registers a parameter (must have requires_grad()).
  void AddParameter(const Tensor& param);
  /// Registers many parameters.
  void AddParameters(const std::vector<Tensor>& params);

  /// Applies one update step from accumulated gradients.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  /// Globally rescales gradients so that their L2 norm is at most
  /// `max_norm` (gradient clipping). Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  /// Number of registered parameters.
  size_t num_parameters() const { return params_.size(); }

  /// Total number of scalar weights managed.
  int64_t num_weights() const;

 protected:
  Optimizer() = default;

  /// Hook for subclasses to size their per-parameter state.
  virtual void OnParameterAdded(const Tensor& param) = 0;

  std::vector<Tensor> params_;
};

/// Plain SGD with optional weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float weight_decay = 0.0f)
      : lr_(lr), weight_decay_(weight_decay) {}

  void Step() override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 protected:
  void OnParameterAdded(const Tensor&) override {}

 private:
  float lr_;
  float weight_decay_;
};

/// Adam / AdamW. With `decoupled_weight_decay` true this is AdamW (decay
/// applied directly to weights); false applies L2 into the gradient.
class Adam : public Optimizer {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    float weight_decay = 0.0f;
    bool decoupled_weight_decay = true;
  };

  explicit Adam(const Options& options) : options_(options) {}
  explicit Adam(float lr) : options_{.lr = lr} {}

  void Step() override;

  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }
  int64_t step_count() const { return step_; }

 protected:
  void OnParameterAdded(const Tensor& param) override;

 private:
  Options options_;
  int64_t step_ = 0;
  std::vector<std::vector<float>> m_;  // first moments, per parameter
  std::vector<std::vector<float>> v_;  // second moments, per parameter
};

}  // namespace tensor
}  // namespace telekit

#endif  // TELEKIT_TENSOR_OPTIMIZER_H_

#include "tensor/compute_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/flag_parse.h"
#include "common/check.h"
#include "obs/metrics.h"

namespace telekit {
namespace tensor {

namespace {

int DefaultThreads() {
  if (const char* env = std::getenv("TELEKIT_COMPUTE_THREADS")) {
    // Strict: "abc" or "4x" used to atoi to 0 and silently fall through to
    // the hardware default; now it exits 64 naming the variable.
    return static_cast<int>(
        ParseIntEnvOrDie("TELEKIT_COMPUTE_THREADS", env, 1, 4096));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

obs::Gauge& ThreadsGauge() {
  static obs::Gauge& gauge =
      obs::MetricsRegistry::Global().GetGauge("tensor/compute_threads");
  return gauge;
}

/// One parallel region. Heap-allocated and shared with the workers so a
/// late-waking worker can never dereference a submitter's dead stack frame.
struct Job {
  std::function<void(int, int)> body;
  int n = 0;
  int grain = 1;
  std::atomic<int> next{0};     // next chunk start offset
  std::atomic<int> pending{0};  // chunks not yet completed
  std::mutex mutex;
  std::condition_variable done;
};

/// Executes chunks of `job` until none remain. Chunk boundaries are
/// multiples of job.grain, so the grid is fixed per (n, grain) no matter
/// how many threads drain it or in what order.
void Drain(Job& job) {
  for (;;) {
    const int begin = job.next.fetch_add(job.grain, std::memory_order_relaxed);
    if (begin >= job.n) return;
    const int end = std::min(begin + job.grain, job.n);
    job.body(begin, end);
    if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk: wake the submitter. Taking the mutex orders the notify
      // after the submitter's predicate check, so the wakeup cannot be lost.
      std::lock_guard<std::mutex> lock(job.mutex);
      job.done.notify_all();
    }
  }
}

class Pool {
 public:
  static Pool& Global() {
    // Leaked on purpose: worker threads survive to process exit, so the
    // pool must never run its destructor under them.
    static Pool* pool = new Pool();
    return *pool;
  }

  int Threads() {
    int t = target_.load(std::memory_order_relaxed);
    if (t > 0) return t;
    // First use and no explicit SetThreads: resolve env/hardware once.
    std::lock_guard<std::mutex> lock(submit_mutex_);
    t = target_.load(std::memory_order_relaxed);
    if (t > 0) return t;
    t = DefaultThreads();
    target_.store(t, std::memory_order_relaxed);
    ThreadsGauge().Set(static_cast<double>(t));
    return t;
  }

  void SetThreads(int n) {
    TELEKIT_CHECK(n >= 0) << "compute threads must be >= 0, got " << n;
    const int t = n > 0 ? n : DefaultThreads();
    std::lock_guard<std::mutex> lock(submit_mutex_);
    target_.store(t, std::memory_order_relaxed);
    ThreadsGauge().Set(static_cast<double>(t));
    if (static_cast<int>(workers_.size()) > t - 1) StopWorkersLocked();
  }

  void Run(int n, int grain, const std::function<void(int, int)>& body) {
    std::unique_lock<std::mutex> lock(submit_mutex_, std::try_to_lock);
    if (!lock.owns_lock()) {
      // Another thread owns the pool (concurrent serve workers): run the
      // whole range inline — same chunk grid degenerated to one executor,
      // bit-identical result.
      body(0, n);
      return;
    }
    const int target = target_.load(std::memory_order_relaxed);
    EnsureWorkersLocked(target);
    if (workers_.empty()) {
      body(0, n);
      return;
    }
    static obs::Counter& regions =
        obs::MetricsRegistry::Global().GetCounter("tensor/parallel_regions");
    regions.Increment();
    auto job = std::make_shared<Job>();
    job->body = body;
    job->n = n;
    job->grain = grain;
    job->pending.store((n + grain - 1) / grain, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> work_lock(work_mutex_);
      job_ = job;
      ++generation_;
    }
    work_cv_.notify_all();
    Drain(*job);  // the submitter is one of the executors
    {
      std::unique_lock<std::mutex> job_lock(job->mutex);
      job->done.wait(job_lock, [&] {
        return job->pending.load(std::memory_order_acquire) == 0;
      });
    }
    std::lock_guard<std::mutex> work_lock(work_mutex_);
    job_.reset();
  }

 private:
  Pool() = default;

  /// Brings the worker count to target - 1 (the submitter participates).
  /// Called with submit_mutex_ held.
  void EnsureWorkersLocked(int target) {
    const int want = target - 1;
    if (static_cast<int>(workers_.size()) == want) return;
    StopWorkersLocked();
    workers_.reserve(static_cast<size_t>(want));
    for (int i = 0; i < want; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopWorkersLocked() {
    {
      std::lock_guard<std::mutex> work_lock(work_mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
    workers_.clear();
    std::lock_guard<std::mutex> work_lock(work_mutex_);
    stop_ = false;
  }

  void WorkerLoop() {
    uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(work_mutex_);
        work_cv_.wait(lock, [&] {
          return stop_ || (job_ != nullptr && generation_ != seen);
        });
        if (stop_) return;
        seen = generation_;
        job = job_;
      }
      Drain(*job);
    }
  }

  // Serializes submitters and configuration changes; also the gate that
  // makes concurrent ParallelFor callers fall back to inline execution.
  std::mutex submit_mutex_;
  std::atomic<int> target_{0};  // 0 = not yet resolved
  std::vector<std::thread> workers_;

  // Hand-off of the current job to the workers.
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::shared_ptr<Job> job_;
  uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace

int ComputeThreads() { return Pool::Global().Threads(); }

void SetComputeThreads(int n) { Pool::Global().SetThreads(n); }

void ParallelFor(int n, int grain, const std::function<void(int, int)>& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (n <= grain || ComputeThreads() <= 1) {
    body(0, n);
    return;
  }
  Pool::Global().Run(n, grain, body);
}

}  // namespace tensor
}  // namespace telekit

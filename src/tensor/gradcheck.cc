#include "tensor/gradcheck.h"

#include <cmath>

#include "common/string_util.h"

namespace telekit {
namespace tensor {

GradCheckResult CheckGradients(
    const std::function<Tensor(const std::vector<Tensor>&)>& fn,
    const std::vector<Tensor>& inputs, float epsilon, float tolerance) {
  GradCheckResult result;
  for (const Tensor& in : inputs) {
    TELEKIT_CHECK(in.requires_grad()) << "gradcheck input needs grad";
  }

  // Analytic gradients.
  std::vector<Tensor> leaves = inputs;
  for (Tensor& leaf : leaves) leaf.ZeroGrad();
  Tensor loss = fn(leaves);
  TELEKIT_CHECK_EQ(loss.size(), 1) << "gradcheck fn must return a scalar";
  loss.Backward();
  std::vector<std::vector<float>> analytic;
  for (Tensor& leaf : leaves) {
    auto* node = leaf.node();
    node->EnsureGrad();
    analytic.push_back(node->grad);
  }

  // Central finite differences, one coordinate at a time.
  result.passed = true;
  for (size_t li = 0; li < leaves.size(); ++li) {
    Tensor& leaf = leaves[li];
    for (size_t i = 0; i < leaf.mutable_data().size(); ++i) {
      const float original = leaf.mutable_data()[i];
      leaf.mutable_data()[i] = original + epsilon;
      const float up = fn(leaves).item();
      leaf.mutable_data()[i] = original - epsilon;
      const float down = fn(leaves).item();
      leaf.mutable_data()[i] = original;
      const float numeric = (up - down) / (2.0f * epsilon);
      const float abs_err = std::fabs(numeric - analytic[li][i]);
      const float denom =
          std::max(std::fabs(numeric) + std::fabs(analytic[li][i]), 1e-8f);
      const float rel_err = abs_err / denom;
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (std::min(abs_err, rel_err) > tolerance) {
        result.passed = false;
        if (result.detail.empty()) {
          result.detail = StringPrintf(
              "input %zu coord %zu: analytic=%.6f numeric=%.6f", li, i,
              analytic[li][i], numeric);
        }
      }
    }
  }
  return result;
}

}  // namespace tensor
}  // namespace telekit

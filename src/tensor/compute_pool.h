#ifndef TELEKIT_TENSOR_COMPUTE_POOL_H_
#define TELEKIT_TENSOR_COMPUTE_POOL_H_

#include <functional>

namespace telekit {
namespace tensor {

/// Intra-op compute backend (DESIGN.md §3): a lazily-started, persistent
/// worker pool that the hot tensor kernels (tiled MatMul, row-wise
/// Softmax/LayerNorm, elementwise ops, embedding gather/scatter) fan out
/// over.
///
/// Determinism contract: ParallelFor splits [0, n) into a fixed grid of
/// contiguous chunks of `grain` items that depends only on (n, grain) —
/// never on the thread count — and every chunk is executed by exactly one
/// thread. Kernels only write locations owned by their chunk and never
/// reorder per-location float accumulation, so results are bit-identical
/// across compute_threads settings and run-to-run; `1` is byte-for-byte
/// today's serial behaviour.

/// Configured intra-op thread count (always >= 1). Resolved lazily on
/// first use: TELEKIT_COMPUTE_THREADS env when set and positive, else
/// std::thread::hardware_concurrency().
int ComputeThreads();

/// Overrides the thread count (the --compute-threads flag lands here).
/// n >= 1 sets it exactly; n == 0 restores the lazy default (env, then
/// hardware_concurrency). 1 disables fan-out entirely. Safe to call at any
/// time; surplus workers are joined, missing ones are spawned on the next
/// parallel region. Updates the tensor/compute_threads gauge.
void SetComputeThreads(int n);

/// Runs body(begin, end) over contiguous chunks of [0, n), each `grain`
/// items (the last may be short). Runs body(0, n) inline on the caller when
/// n <= grain, compute_threads == 1, or the pool is busy with another
/// region (concurrent serve workers fall back to serial — bit-identical by
/// the contract above). Increments tensor/parallel_regions when it
/// actually fans out. The body must not recursively call ParallelFor.
void ParallelFor(int n, int grain, const std::function<void(int, int)>& body);

}  // namespace tensor
}  // namespace telekit

#endif  // TELEKIT_TENSOR_COMPUTE_POOL_H_

#ifndef TELEKIT_ROUTE_HTTP_CLIENT_H_
#define TELEKIT_ROUTE_HTTP_CLIENT_H_

#include <string>

#include "common/status.h"

namespace telekit {
namespace route {

/// One admin-plane HTTP exchange.
struct HttpResult {
  int status = 0;
  std::string body;
};

/// Minimal blocking HTTP/1.1 GET against an obs::AdminServer-style
/// endpoint (`target` is path + optional "?query"). `timeout_ms` bounds
/// the whole exchange: connect, send, and read. This is the probe/reload
/// control plane only — request traffic rides the NDJSON data plane.
StatusOr<HttpResult> HttpGet(const std::string& host, int port,
                             const std::string& target, double timeout_ms);

}  // namespace route
}  // namespace telekit

#endif  // TELEKIT_ROUTE_HTTP_CLIENT_H_

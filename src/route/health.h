#ifndef TELEKIT_ROUTE_HEALTH_H_
#define TELEKIT_ROUTE_HEALTH_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"

namespace telekit {
namespace route {

/// Replica admission state.
///
///   kHealthy --fail--> kSuspect --fail^(eject_after-1)--> kEjected
///      ^                  |                                  |
///      +----success-------+        success^readmit_after ----+
///
/// kSuspect replicas still take traffic (one failure is usually a blip);
/// kEjected replicas are skipped by the router until the prober sees
/// `readmit_after` consecutive successful probes.
enum class ReplicaHealth { kHealthy, kSuspect, kEjected };

std::string ReplicaHealthName(ReplicaHealth health);

struct ProberOptions {
  /// Probe sweep period.
  double interval_ms = 250.0;
  /// Per-probe timeout (passed to the probe fn by convention).
  double timeout_ms = 500.0;
  /// Consecutive failures (probe or data-plane) that eject a replica.
  int eject_after = 3;
  /// Consecutive successful probes that readmit an ejected replica.
  int readmit_after = 2;
};

/// Background health prober + eject/readmit state machine for a fixed
/// replica fleet.
///
/// Signals come from two places: the probe thread (polling each replica's
/// /readyz via the injected ProbeFn) and the data plane (the router calls
/// ReportFailure/ReportSuccess per forwarding attempt, so a dead replica
/// is ejected after eject_after failed *requests* without waiting for the
/// next sweep). Readmission is probe-only — traffic never reaches an
/// ejected replica, so only the prober can observe its recovery.
///
/// Thread-safety: all methods are safe from any thread.
class HealthProber {
 public:
  /// `probe(i, timeout_ms)` returns true when replica i answers ready.
  using ProbeFn = std::function<bool(size_t replica, double timeout_ms)>;

  HealthProber(size_t num_replicas, ProberOptions options, ProbeFn probe);
  ~HealthProber();

  HealthProber(const HealthProber&) = delete;
  HealthProber& operator=(const HealthProber&) = delete;

  /// Starts the background sweep thread. Idempotent.
  void Start();
  /// Stops it. Idempotent; also called by the destructor.
  void Stop();

  /// One synchronous sweep over all replicas (what the background thread
  /// runs each interval) — lets tests drive the state machine without
  /// real time.
  void ProbeOnce();

  /// Routable = not ejected.
  bool IsRoutable(size_t replica) const;
  ReplicaHealth Health(size_t replica) const;
  size_t num_routable() const;
  size_t num_replicas() const { return states_.size(); }

  /// Data-plane feedback from the router's forwarding attempts.
  void ReportFailure(size_t replica);
  void ReportSuccess(size_t replica);

  /// Lifetime eject/readmit transition counts (also exported as the
  /// route/ejections and route/readmissions counters).
  uint64_t ejections() const { return ejections_.load(); }
  uint64_t readmissions() const { return readmissions_.load(); }

  /// Per-replica state for /fleetz: [{"replica", "health", "consecutive_
  /// failures", "probes", "probe_failures", "last_probe_ms" (age of the
  /// newest probe, -1 before the first sweep), "last_probe_ok"}] — enough
  /// to explain an eject/readmit decision from one endpoint.
  obs::JsonValue StatusJson() const;

 private:
  struct ReplicaState {
    ReplicaHealth health = ReplicaHealth::kHealthy;
    int consecutive_failures = 0;
    int consecutive_successes = 0;
    uint64_t probes = 0;
    uint64_t probe_failures = 0;
    /// When the prober last reached a verdict for this replica (epoch
    /// time_point = never probed) and what that verdict was.
    std::chrono::steady_clock::time_point last_probe;
    bool last_probe_ok = false;
  };

  void Loop();
  /// Applies one success/failure signal to replica i. Caller holds mutex_.
  void Signal(size_t replica, bool success);
  void UpdateHealthyGauge();

  const ProberOptions options_;
  const ProbeFn probe_;
  mutable std::mutex mutex_;
  std::vector<ReplicaState> states_;
  std::atomic<uint64_t> ejections_{0};
  std::atomic<uint64_t> readmissions_{0};
  std::thread thread_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::atomic<bool> running_{false};
};

}  // namespace route
}  // namespace telekit

#endif  // TELEKIT_ROUTE_HEALTH_H_

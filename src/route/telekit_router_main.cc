// telekit_router: NDJSON front end for a fleet of telekit_serve replicas.
//
// Speaks the same wire protocol as telekit_serve, so clients point at the
// router unchanged. Requests are sharded over the fleet by consistent
// hash of the request text (EmbeddingCache affinity), with health-aware
// failover, bounded retries, per-request deadline budgets, and optional
// tail hedging. Admin endpoints: /fleetz (replica health), /reloadz
// (hot-reload fan-out to every replica), /readyz (200 iff at least one
// replica is routable), /quitquitquit (graceful drain), /tracezd
// (cross-process trace assembly: local spans + every replica's /spanz
// merged into one tree; format=chrome for a trace_event export), and
// /fleetmetricz (every replica's /metrics scraped and aggregated into
// one fleet exposition).
//
//   telekit_serve --port=7101 --admin-port=7201 &
//   telekit_serve --port=7102 --admin-port=7202 &
//   telekit_router --port=7001 --admin-port=7002 \
//       --replica=7101:7201 --replica=7102:7202

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <future>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/flag_parse.h"
#include "common/string_util.h"
#include "obs/admin.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/report.h"
#include "obs/requestlog.h"
#include "obs/spanstore.h"
#include "obs/trace.h"
#include "route/fleet_metrics.h"
#include "route/http_client.h"
#include "route/router.h"
#include "route/trace_assembler.h"
#include "serve/ndjson_server.h"
#include "serve/protocol.h"

namespace telekit {
namespace route {
namespace {

struct Flags {
  int port = 7001;
  int admin_port = -1;  // -1 = disabled, 0 = ephemeral
  std::vector<std::string> replica_specs;
  int vnodes = 64;
  int max_attempts = 3;
  double deadline_ms = 2000.0;
  double per_try_ms = 1000.0;
  bool hedge = true;
  double hedge_ms = 0.0;       // 0 = derive from the latency quantile
  double hedge_quantile = 0.95;
  std::string policy = "hash";
  double probe_interval_ms = 250.0;
  double probe_timeout_ms = 500.0;
  int eject_after = 3;
  int readmit_after = 2;
  double scrape_timeout_ms = 1000.0;
  std::string request_log;
  std::string obs_json;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

void PrintUsage() {
  std::cerr
      << "usage: telekit_router --replica=SPEC [--replica=SPEC ...]\n"
      << "  SPEC: host:port:admin_port | host:port | port:admin_port | port\n"
      << "  --port=N              NDJSON data plane (default 7001)\n"
      << "  --admin-port=N        admin endpoints on 127.0.0.1:N\n"
      << "                        (0 = ephemeral; default off)\n"
      << "  --vnodes=N            virtual nodes per replica (default 64)\n"
      << "  --max-attempts=N      tries per request (default 3)\n"
      << "  --deadline-ms=X       default request budget (default 2000)\n"
      << "  --per-try-ms=X        per-attempt cap (default 1000)\n"
      << "  --hedge-ms=X          fixed hedge trigger; 0 = p95-derived\n"
      << "  --hedge-quantile=Q    derived-trigger quantile (default 0.95)\n"
      << "  --no-hedge            disable tail hedging\n"
      << "  --policy=hash|random  replica selection (default hash)\n"
      << "  --probe-interval-ms=X health sweep period (default 250)\n"
      << "  --probe-timeout-ms=X  per-probe timeout (default 500)\n"
      << "  --eject-after=N       consecutive failures to eject (default 3)\n"
      << "  --readmit-after=N     consecutive probe successes to readmit\n"
      << "                        (default 2)\n"
      << "  --scrape-timeout-ms=X per-replica /spanz and /metrics fan-out\n"
      << "                        timeout (default 1000)\n"
      << "  --request-log=PATH    append one NDJSON wide event per routed\n"
      << "                        request (replica, attempts, hedge)\n"
      << "  --obs-json=PATH       write metrics/trace report on exit\n"
      << "  --log-level=LEVEL     debug|info|warn|error|off\n";
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "port", &v)) {
      flags->port = static_cast<int>(ParseIntFlagOrDie("port", v, 1, 65535));
    } else if (ParseFlag(arg, "admin-port", &v)) {
      flags->admin_port =
          static_cast<int>(ParseIntFlagOrDie("admin-port", v, -1, 65535));
    } else if (ParseFlag(arg, "replica", &v)) {
      for (const std::string& spec : SplitString(v, ',')) {
        flags->replica_specs.push_back(spec);
      }
    } else if (ParseFlag(arg, "vnodes", &v)) {
      flags->vnodes =
          static_cast<int>(ParseIntFlagOrDie("vnodes", v, 1, 1 << 20));
    } else if (ParseFlag(arg, "max-attempts", &v)) {
      flags->max_attempts =
          static_cast<int>(ParseIntFlagOrDie("max-attempts", v, 1, 64));
    } else if (ParseFlag(arg, "deadline-ms", &v)) {
      flags->deadline_ms = ParseDoubleFlagOrDie("deadline-ms", v, 0.001, 1e9);
    } else if (ParseFlag(arg, "per-try-ms", &v)) {
      flags->per_try_ms = ParseDoubleFlagOrDie("per-try-ms", v, 0.001, 1e9);
    } else if (ParseFlag(arg, "hedge-ms", &v)) {
      flags->hedge_ms = ParseDoubleFlagOrDie("hedge-ms", v, 0.0, 1e9);
    } else if (ParseFlag(arg, "hedge-quantile", &v)) {
      flags->hedge_quantile =
          ParseDoubleFlagOrDie("hedge-quantile", v, 0.0, 1.0);
    } else if (arg == "--no-hedge") {
      flags->hedge = false;
    } else if (ParseFlag(arg, "policy", &v)) {
      flags->policy = v;
    } else if (ParseFlag(arg, "probe-interval-ms", &v)) {
      flags->probe_interval_ms =
          ParseDoubleFlagOrDie("probe-interval-ms", v, 0.001, 1e9);
    } else if (ParseFlag(arg, "probe-timeout-ms", &v)) {
      flags->probe_timeout_ms =
          ParseDoubleFlagOrDie("probe-timeout-ms", v, 0.001, 1e9);
    } else if (ParseFlag(arg, "eject-after", &v)) {
      flags->eject_after =
          static_cast<int>(ParseIntFlagOrDie("eject-after", v, 1, 1 << 20));
    } else if (ParseFlag(arg, "readmit-after", &v)) {
      flags->readmit_after =
          static_cast<int>(ParseIntFlagOrDie("readmit-after", v, 1, 1 << 20));
    } else if (ParseFlag(arg, "scrape-timeout-ms", &v)) {
      flags->scrape_timeout_ms =
          ParseDoubleFlagOrDie("scrape-timeout-ms", v, 0.001, 1e9);
    } else if (ParseFlag(arg, "request-log", &v)) {
      flags->request_log = v;
    } else if (ParseFlag(arg, "obs-json", &v)) {
      flags->obs_json = v;
    } else if (ParseFlag(arg, "log-level", &v)) {
      obs::Logger::Global().set_level(obs::ParseLogLevel(v));
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      PrintUsage();
      return false;
    }
  }
  return true;
}

int Main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 1;
  if (flags.replica_specs.empty()) {
    std::cerr << "at least one --replica is required\n";
    PrintUsage();
    return 1;
  }
  std::vector<ReplicaSpec> replicas;
  for (const std::string& text : flags.replica_specs) {
    ReplicaSpec spec;
    if (!ParseReplicaSpec(text, &spec)) {
      std::cerr << "bad --replica spec: " << text << "\n";
      return 1;
    }
    replicas.push_back(std::move(spec));
  }

  RouterOptions options;
  options.vnodes = flags.vnodes;
  options.max_attempts = flags.max_attempts;
  options.default_deadline_ms = flags.deadline_ms;
  options.per_try_ms = flags.per_try_ms;
  options.hedge = flags.hedge;
  options.hedge_delay_ms = flags.hedge_ms;
  options.hedge_quantile = flags.hedge_quantile;
  if (flags.policy == "hash") {
    options.policy = RoutePolicy::kHashRing;
  } else if (flags.policy == "random") {
    options.policy = RoutePolicy::kRandom;
  } else {
    std::cerr << "bad --policy (want hash|random): " << flags.policy << "\n";
    return 1;
  }
  options.prober.interval_ms = flags.probe_interval_ms;
  options.prober.timeout_ms = flags.probe_timeout_ms;
  options.prober.eject_after = flags.eject_after;
  options.prober.readmit_after = flags.readmit_after;

  Router router(std::move(replicas), options);
  router.Start();

  obs::SpanStore::Global().SetProcessLabel(
      "telekit_router:" + std::to_string(flags.port));
  if (!flags.request_log.empty() &&
      !obs::RequestLog::Global().SetSinkFile(flags.request_log)) {
    std::cerr << "failed to open --request-log=" << flags.request_log << "\n";
    return 1;
  }

  std::atomic<bool> draining{false};
  std::mutex quit_mutex;
  std::condition_variable quit_cv;
  bool quit_requested = false;

  obs::AdminServer admin;
  admin.Handle("/fleetz", [&router](const obs::HttpRequest&) {
    return obs::HttpResponse::Json(200, router.FleetJson());
  });
  admin.Handle("/reloadz", [&router](const obs::HttpRequest& request) {
    const auto params = obs::ParseQuery(request.query);
    std::string model = "telebert";
    if (auto it = params.find("model"); it != params.end()) {
      model = it->second;
    }
    uint64_t seed = 0;
    if (auto it = params.find("seed"); it != params.end()) {
      int64_t parsed = 0;
      if (!ParseInt64(it->second, 0, std::numeric_limits<int64_t>::max(),
                      &parsed)) {
        return obs::HttpResponse::Text(400,
                                       "bad seed: " + it->second + "\n");
      }
      seed = static_cast<uint64_t>(parsed);
    }
    obs::JsonValue result = router.ReloadAll(model, seed);
    const int status = result.Find("error") != nullptr ? 400 : 200;
    return obs::HttpResponse::Json(status, result);
  });
  admin.Handle("/tracezd", [&router, &flags](const obs::HttpRequest& request) {
    const auto params = obs::ParseQuery(request.query);
    const auto it = params.find("trace_id");
    if (it == params.end()) {
      return obs::HttpResponse::Text(400, "missing trace_id parameter\n");
    }
    uint64_t trace_id = 0;
    if (!obs::ParseTraceIdHex(it->second, &trace_id)) {
      return obs::HttpResponse::Text(
          400, "bad trace_id (want 1-16 hex digits)\n");
    }
    std::vector<SpanSource> sources;
    for (const ReplicaSpec& replica : router.replicas()) {
      SpanSource source;
      source.name = replica.name;
      source.host = replica.host;
      source.admin_port = replica.admin_port;
      sources.push_back(std::move(source));
    }
    const CollectedSpans collected =
        CollectSpans(trace_id, sources, flags.scrape_timeout_ms);
    const auto format = params.find("format");
    if (format != params.end() && format->second == "chrome") {
      return obs::HttpResponse::Json(
          200, AssembleChromeJson(trace_id, collected));
    }
    return obs::HttpResponse::Json(200,
                                   AssembleTraceJson(trace_id, collected));
  });
  admin.Handle("/fleetmetricz", [&router, &flags](const obs::HttpRequest&) {
    std::vector<ReplicaScrape> scrapes;
    for (const ReplicaSpec& replica : router.replicas()) {
      ReplicaScrape scrape;
      scrape.replica = replica.name;
      if (replica.admin_port > 0) {
        auto result = HttpGet(replica.host, replica.admin_port, "/metrics",
                              flags.scrape_timeout_ms);
        if (result.ok() && result.value().status == 200) {
          scrape.ok = true;
          scrape.exposition = std::move(result.value().body);
        }
      }
      scrapes.push_back(std::move(scrape));
    }
    obs::HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = AggregateFleetMetrics(scrapes);
    return response;
  });
  admin.Handle("/readyz", [&router, &draining](const obs::HttpRequest&) {
    if (draining.load()) {
      return obs::HttpResponse::Text(503, "draining\n");
    }
    if (router.prober().num_routable() == 0) {
      return obs::HttpResponse::Text(503, "no routable replicas\n");
    }
    return obs::HttpResponse::Text(200, "ready\n");
  });
  admin.Handle("/statusz", [&router, &draining](const obs::HttpRequest&) {
    obs::JsonValue out = obs::JsonValue::Object();
    out.Set("server", obs::JsonValue("telekit_router"));
    out.Set("draining", obs::JsonValue(draining.load()));
    out.Set("fleet", router.FleetJson());
    return obs::HttpResponse::Json(200, out);
  });
  admin.Handle("/quitquitquit",
               [&draining, &quit_mutex, &quit_cv,
                &quit_requested](const obs::HttpRequest&) {
                 draining.store(true);
                 {
                   std::lock_guard<std::mutex> lock(quit_mutex);
                   quit_requested = true;
                 }
                 quit_cv.notify_all();
                 TELEKIT_LOG(WARN) << "quitquitquit: draining";
                 return obs::HttpResponse::Text(200, "draining\n");
               });
  if (flags.admin_port >= 0 && !admin.Start(flags.admin_port)) {
    std::cerr << "failed to start admin server on 127.0.0.1:"
              << flags.admin_port << "\n";
    return 1;
  }

  // Each request line forwards on its own thread so one slow upstream
  // never blocks the other requests pipelined on the same connection
  // (responses still come back in order per connection).
  serve::LineHandler handler =
      [&router, &draining](std::string line) -> std::future<std::string> {
    if (draining.load()) {
      // Even the drain rejection echoes the caller's id and trace id, so
      // client-side correlation survives the shutdown window.
      std::unique_ptr<obs::JsonValue> id;
      uint64_t trace_id = 0;
      obs::JsonValue json;
      std::string parse_error;
      if (obs::JsonValue::Parse(line, &json, &parse_error) &&
          json.is_object()) {
        if (const obs::JsonValue* found = json.Find("id")) {
          id = std::make_unique<obs::JsonValue>(*found);
        }
        if (const obs::JsonValue* trace = json.Find("trace");
            trace != nullptr && trace->is_string()) {
          obs::ParseTraceIdHex(trace->AsString(), &trace_id);
        }
      }
      std::promise<std::string> rejected;
      rejected.set_value(serve::ErrorToJson(Status::Unavailable("draining"),
                                            id.get(), trace_id)
                             .Dump());
      return rejected.get_future();
    }
    return std::async(std::launch::async,
                      [&router, line = std::move(line)] {
                        return router.Handle(line);
                      });
  };

  serve::NdjsonServer server;
  if (!server.Start(flags.port, handler)) {
    std::cerr << "failed to listen on 127.0.0.1:" << flags.port << "\n";
    return 1;
  }
  std::cerr << "telekit_router listening on 127.0.0.1:" << server.port()
            << " (" << flags.replica_specs.size() << " replicas, policy="
            << flags.policy << ")\n";
  if (admin.running()) {
    std::cerr << "telekit_router: admin endpoints on 127.0.0.1:"
              << admin.port() << "\n";
  }

  {
    std::unique_lock<std::mutex> lock(quit_mutex);
    quit_cv.wait(lock, [&] { return quit_requested; });
  }
  server.Drain();
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (server.in_flight() > 0 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.Stop();
  admin.Stop();
  router.Stop();
  if (!flags.obs_json.empty()) obs::WriteReport(flags.obs_json);
  return 0;
}

}  // namespace
}  // namespace route
}  // namespace telekit

int main(int argc, char** argv) {
  return telekit::route::Main(argc, argv);
}

#include "route/health.h"

#include <chrono>
#include <utility>

#include "common/check.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace telekit {
namespace route {

namespace {

struct RouteHealthMetrics {
  obs::Counter* ejections;
  obs::Counter* readmissions;
  obs::Counter* probes;
  obs::Counter* probe_failures;
  obs::Gauge* routable;

  static RouteHealthMetrics& Get() {
    static RouteHealthMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      RouteHealthMetrics m;
      m.ejections = &registry.GetCounter("route/ejections");
      m.readmissions = &registry.GetCounter("route/readmissions");
      m.probes = &registry.GetCounter("route/probes");
      m.probe_failures = &registry.GetCounter("route/probe_failures");
      m.routable = &registry.GetGauge("route/routable_replicas");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

std::string ReplicaHealthName(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kSuspect:
      return "suspect";
    case ReplicaHealth::kEjected:
      return "ejected";
  }
  return "unknown";
}

HealthProber::HealthProber(size_t num_replicas, ProberOptions options,
                           ProbeFn probe)
    : options_(options), probe_(std::move(probe)), states_(num_replicas) {
  TELEKIT_CHECK(num_replicas > 0);
  TELEKIT_CHECK(options_.eject_after > 0);
  TELEKIT_CHECK(options_.readmit_after > 0);
  UpdateHealthyGauge();
}

HealthProber::~HealthProber() { Stop(); }

void HealthProber::Start() {
  if (running_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void HealthProber::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HealthProber::Loop() {
  while (true) {
    ProbeOnce();
    std::unique_lock<std::mutex> lock(stop_mutex_);
    const auto interval = std::chrono::duration<double, std::milli>(
        options_.interval_ms);
    if (stop_cv_.wait_for(lock, interval,
                          [this] { return stop_requested_; })) {
      return;
    }
  }
}

void HealthProber::ProbeOnce() {
  auto& metrics = RouteHealthMetrics::Get();
  for (size_t i = 0; i < states_.size(); ++i) {
    const bool up = probe_(i, options_.timeout_ms);
    metrics.probes->Increment();
    std::lock_guard<std::mutex> lock(mutex_);
    ++states_[i].probes;
    states_[i].last_probe = std::chrono::steady_clock::now();
    states_[i].last_probe_ok = up;
    if (!up) {
      ++states_[i].probe_failures;
      metrics.probe_failures->Increment();
    }
    Signal(i, up);
  }
}

void HealthProber::Signal(size_t replica, bool success) {
  ReplicaState& state = states_[replica];
  if (success) {
    state.consecutive_failures = 0;
    ++state.consecutive_successes;
    if (state.health == ReplicaHealth::kEjected) {
      if (state.consecutive_successes >= options_.readmit_after) {
        state.health = ReplicaHealth::kHealthy;
        readmissions_.fetch_add(1);
        RouteHealthMetrics::Get().readmissions->Increment();
        TELEKIT_LOG(WARN) << "replica readmitted"
                          << obs::F("replica", static_cast<int>(replica));
        UpdateHealthyGauge();
      }
    } else {
      state.health = ReplicaHealth::kHealthy;
    }
    return;
  }
  state.consecutive_successes = 0;
  ++state.consecutive_failures;
  if (state.health == ReplicaHealth::kEjected) return;
  if (state.consecutive_failures >= options_.eject_after) {
    state.health = ReplicaHealth::kEjected;
    ejections_.fetch_add(1);
    RouteHealthMetrics::Get().ejections->Increment();
    TELEKIT_LOG(WARN) << "replica ejected"
                      << obs::F("replica", static_cast<int>(replica))
                      << obs::F("failures", state.consecutive_failures);
    UpdateHealthyGauge();
  } else {
    state.health = ReplicaHealth::kSuspect;
  }
}

void HealthProber::UpdateHealthyGauge() {
  size_t routable = 0;
  for (const ReplicaState& state : states_) {
    if (state.health != ReplicaHealth::kEjected) ++routable;
  }
  RouteHealthMetrics::Get().routable->Set(static_cast<double>(routable));
}

bool HealthProber::IsRoutable(size_t replica) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return states_[replica].health != ReplicaHealth::kEjected;
}

ReplicaHealth HealthProber::Health(size_t replica) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return states_[replica].health;
}

size_t HealthProber::num_routable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t routable = 0;
  for (const ReplicaState& state : states_) {
    if (state.health != ReplicaHealth::kEjected) ++routable;
  }
  return routable;
}

void HealthProber::ReportFailure(size_t replica) {
  std::lock_guard<std::mutex> lock(mutex_);
  Signal(replica, false);
}

void HealthProber::ReportSuccess(size_t replica) {
  std::lock_guard<std::mutex> lock(mutex_);
  Signal(replica, true);
}

obs::JsonValue HealthProber::StatusJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  obs::JsonValue out = obs::JsonValue::Array();
  for (size_t i = 0; i < states_.size(); ++i) {
    const ReplicaState& state = states_[i];
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("replica", obs::JsonValue(static_cast<uint64_t>(i)));
    entry.Set("health", obs::JsonValue(ReplicaHealthName(state.health)));
    entry.Set("consecutive_failures",
              obs::JsonValue(state.consecutive_failures));
    entry.Set("probes", obs::JsonValue(state.probes));
    entry.Set("probe_failures", obs::JsonValue(state.probe_failures));
    // Age of the newest probe verdict; -1 before the first sweep so
    // "never probed" is distinguishable from "probed just now".
    double last_probe_ms = -1.0;
    if (state.last_probe != std::chrono::steady_clock::time_point()) {
      last_probe_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() -
                          state.last_probe)
                          .count();
    }
    entry.Set("last_probe_ms", obs::JsonValue(last_probe_ms));
    entry.Set("last_probe_ok", obs::JsonValue(state.last_probe_ok));
    out.Append(std::move(entry));
  }
  return out;
}

}  // namespace route
}  // namespace telekit

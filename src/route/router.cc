#include "route/router.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <numeric>
#include <thread>
#include <utility>

#include "common/flag_parse.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/requestlog.h"
#include "obs/spanstore.h"
#include "obs/trace.h"
#include "route/http_client.h"
#include "serve/line_io.h"
#include "serve/model_host.h"
#include "serve/protocol.h"

namespace telekit {
namespace route {

namespace {

struct RouteMetrics {
  obs::Counter* requests;
  obs::Counter* retries;
  obs::Counter* hedges;
  obs::Counter* hedge_wins;
  obs::Counter* hedge_discarded;
  obs::Counter* no_healthy;
  obs::Counter* deadline_exceeded;
  obs::Counter* upstream_errors;
  obs::LatencyHistogram* request_ms;
  obs::LatencyHistogram* upstream_ms;

  static RouteMetrics& Get() {
    static RouteMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      RouteMetrics m;
      m.requests = &registry.GetCounter("route/requests");
      m.retries = &registry.GetCounter("route/retries");
      m.hedges = &registry.GetCounter("route/hedges");
      m.hedge_wins = &registry.GetCounter("route/hedge_wins");
      m.hedge_discarded = &registry.GetCounter("route/hedge_discarded");
      m.no_healthy = &registry.GetCounter("route/no_healthy");
      m.deadline_exceeded = &registry.GetCounter("route/deadline_exceeded");
      m.upstream_errors = &registry.GetCounter("route/upstream_errors");
      m.request_ms = &registry.GetLatencyHistogram("route/request_ms");
      m.upstream_ms = &registry.GetLatencyHistogram("route/upstream_ms");
      return m;
    }();
    return metrics;
  }
};

using Clock = std::chrono::steady_clock;

double RemainingMs(Clock::time_point deadline) {
  return std::chrono::duration<double, std::milli>(deadline - Clock::now())
      .count();
}

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// True when the upstream answer should be retried on another replica:
/// {"ok": false, "error": {"code": 6 /* UNAVAILABLE */}} — a draining or
/// saturated replica. Every other answer (including model/validation
/// errors) is the client's to see.
bool IsRetryableResponse(const std::string& line) {
  obs::JsonValue json;
  std::string error;
  if (!obs::JsonValue::Parse(line, &json, &error) || !json.is_object()) {
    return false;
  }
  const obs::JsonValue* ok = json.Find("ok");
  if (ok == nullptr || !ok->is_bool() || ok->AsBool()) return false;
  const obs::JsonValue* err = json.Find("error");
  if (err == nullptr || !err->is_object()) return false;
  const obs::JsonValue* code = err->Find("code");
  return code != nullptr && code->is_number() &&
         static_cast<int>(code->AsNumber()) ==
             static_cast<int>(StatusCode::kUnavailable);
}

/// Bounds both halves of the exchange: without SO_SNDTIMEO a send()
/// against a stuck peer (full socket buffer) blocks indefinitely and the
/// attempt thread outlives any Stop() grace period.
void SetIoTimeout(int fd, double timeout_ms) {
  if (timeout_ms <= 0.0) timeout_ms = 1.0;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000.0);
  tv.tv_usec = static_cast<suseconds_t>(
      (timeout_ms - static_cast<double>(tv.tv_sec) * 1000.0) * 1000.0);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

bool ParseReplicaSpec(const std::string& text, ReplicaSpec* spec) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    const size_t colon = text.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
  *spec = ReplicaSpec();
  // Strict port parsing (full string, range-checked): "7101x" or an
  // out-of-range value rejects the spec instead of atoi-truncating.
  const auto parse_port = [](const std::string& s, int* out) {
    int64_t value = 0;
    if (!AllDigits(s) || !ParseInt64(s, 1, 65535, &value)) return false;
    *out = static_cast<int>(value);
    return true;
  };
  if (parts.size() == 1 && parse_port(parts[0], &spec->port)) {
    // port
  } else if (parts.size() == 2 && AllDigits(parts[0]) &&
             parse_port(parts[0], &spec->port) &&
             parse_port(parts[1], &spec->admin_port)) {
    // port:admin_port
  } else if (parts.size() == 2 && !parts[0].empty() &&
             parse_port(parts[1], &spec->port)) {
    spec->host = parts[0];
  } else if (parts.size() == 3 && !parts[0].empty() &&
             parse_port(parts[1], &spec->port) &&
             parse_port(parts[2], &spec->admin_port)) {
    spec->host = parts[0];
  } else {
    return false;
  }
  spec->name = spec->host + ":" + std::to_string(spec->port);
  return true;
}

/// One pooled upstream connection. The LineReader travels with the fd:
/// its carry buffer is per-connection state.
struct Router::PooledConn {
  int fd;
  serve::LineReader reader;

  explicit PooledConn(int fd) : fd(fd), reader(fd) {}
  ~PooledConn() { ::close(fd); }
  PooledConn(const PooledConn&) = delete;
  PooledConn& operator=(const PooledConn&) = delete;
};

/// First-response-wins rendezvous between a request's forwarding attempts
/// (the request id is the rendezvous identity — a late duplicate from the
/// hedged loser is counted and dropped here). A failure only resolves the
/// wait once every launched attempt has failed, so a fast transport error
/// on the primary never masks a hedge that is about to succeed.
struct Router::Rendezvous {
  std::mutex mutex;
  std::condition_variable cv;
  int launched = 0;
  int failed = 0;
  bool have_success = false;
  bool hedge_won = false;
  size_t winner = 0;
  std::string response;
  Status first_error = Status::Ok();

  void AddAttempt() {
    std::lock_guard<std::mutex> lock(mutex);
    ++launched;
  }

  /// Returns false when the delivery lost the race (duplicate).
  bool Deliver(size_t replica, bool is_hedge, StatusOr<std::string> result) {
    std::lock_guard<std::mutex> lock(mutex);
    if (!result.ok()) {
      ++failed;
      if (first_error.ok()) first_error = result.status();
      if (failed == launched && !have_success) cv.notify_all();
      return true;  // a losing failure is not a duplicate response
    }
    if (have_success) return false;
    have_success = true;
    hedge_won = is_hedge;
    winner = replica;
    response = std::move(result).value();
    cv.notify_all();
    return true;
  }

  /// True when resolved: a success landed, or every attempt failed.
  bool WaitFor(double timeout_ms) {
    std::unique_lock<std::mutex> lock(mutex);
    const auto pred = [this] {
      return have_success || (launched > 0 && failed == launched);
    };
    if (timeout_ms <= 0.0) return pred();
    cv.wait_for(lock, std::chrono::duration<double, std::milli>(timeout_ms),
                pred);
    return pred();
  }
};

Router::Router(std::vector<ReplicaSpec> replicas, RouterOptions options)
    : replicas_(std::move(replicas)),
      options_(options),
      rng_(options.random_seed),
      pool_mutexes_(replicas_.size()),
      pools_(replicas_.size()) {
  TELEKIT_CHECK(!replicas_.empty());
  std::vector<std::string> names;
  names.reserve(replicas_.size());
  for (const ReplicaSpec& spec : replicas_) names.push_back(spec.name);
  ring_ = std::make_unique<HashRing>(std::move(names), options_.vnodes);
  HealthProber::ProbeFn probe = options_.probe_override;
  if (!probe) {
    probe = [this](size_t replica, double timeout_ms) {
      const ReplicaSpec& spec = replicas_[replica];
      if (spec.admin_port > 0) {
        auto result =
            HttpGet(spec.host, spec.admin_port, "/readyz", timeout_ms);
        return result.ok() && result.value().status == 200;
      }
      // No admin plane: a successful data-plane connect counts as ready.
      const int fd = serve::ConnectTcp(spec.host, spec.port, timeout_ms);
      if (fd < 0) return false;
      ::close(fd);
      return true;
    };
  }
  prober_ = std::make_unique<HealthProber>(replicas_.size(), options_.prober,
                                           std::move(probe));
}

Router::~Router() { Stop(); }

void Router::Start() { prober_->Start(); }

void Router::Stop() {
  prober_->Stop();
  const auto done = [this] { return outstanding_ == 0; };
  std::unique_lock<std::mutex> lock(outstanding_mutex_);
  if (!outstanding_cv_.wait_for(lock, std::chrono::seconds(10), done)) {
    TELEKIT_LOG(ERROR) << "router stop still waiting for attempts"
                       << obs::F("outstanding", outstanding_);
    // Wait unconditionally: attempt threads touch pools_/prober_/replicas_,
    // so returning early would let ~Router free them under a live thread.
    // Every attempt is bounded (connect timeout + SO_RCVTIMEO/SO_SNDTIMEO),
    // so this terminates.
    outstanding_cv_.wait(lock, done);
  }
}

std::unique_ptr<Router::PooledConn> Router::CheckoutConn(size_t replica,
                                                         double timeout_ms) {
  {
    std::lock_guard<std::mutex> lock(pool_mutexes_[replica]);
    if (!pools_[replica].empty()) {
      auto conn = std::move(pools_[replica].back());
      pools_[replica].pop_back();
      return conn;
    }
  }
  const ReplicaSpec& spec = replicas_[replica];
  const int fd = serve::ConnectTcp(spec.host, spec.port, timeout_ms);
  if (fd < 0) return nullptr;
  return std::make_unique<PooledConn>(fd);
}

void Router::ReturnConn(size_t replica,
                        std::unique_ptr<PooledConn> conn) {
  std::lock_guard<std::mutex> lock(pool_mutexes_[replica]);
  if (pools_[replica].size() < 64) {
    pools_[replica].push_back(std::move(conn));
  }
  // else: drop on the floor; the destructor closes the socket.
}

StatusOr<std::string> Router::ForwardOnce(size_t replica,
                                          const std::string& line,
                                          double timeout_ms) {
  const auto start = Clock::now();
  auto conn = CheckoutConn(replica, timeout_ms);
  if (conn == nullptr) {
    prober_->ReportFailure(replica);
    return Status::Unavailable("connect to " + replicas_[replica].name +
                               " failed");
  }
  SetIoTimeout(conn->fd, timeout_ms);
  std::string response;
  if (!serve::SendLine(conn->fd, line) ||
      !conn->reader.ReadLine(&response)) {
    // conn is dropped (closed) — its stream state is unknown.
    prober_->ReportFailure(replica);
    return Status::Unavailable("exchange with " + replicas_[replica].name +
                               " failed");
  }
  prober_->ReportSuccess(replica);
  RouteMetrics::Get().upstream_ms->Observe(
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count());
  ReturnConn(replica, std::move(conn));
  return response;
}

void Router::LaunchAttempt(size_t replica, const std::string& line,
                           double timeout_ms,
                           std::shared_ptr<Rendezvous> rendezvous,
                           AttemptContext ctx) {
  rendezvous->AddAttempt();
  const bool is_hedge = [&] {
    std::lock_guard<std::mutex> lock(rendezvous->mutex);
    return rendezvous->launched > 1;
  }();
  {
    std::lock_guard<std::mutex> lock(outstanding_mutex_);
    ++outstanding_;
  }
  std::thread([this, replica, line, timeout_ms, is_hedge, ctx,
               rendezvous = std::move(rendezvous)] {
    const double span_start_us = obs::UnixNowUs();
    const auto attempt_start = Clock::now();
    StatusOr<std::string> result = ForwardOnce(replica, line, timeout_ms);
    const bool was_success = result.ok();
    // An upstream UNAVAILABLE rejection is a failed hop in the trace even
    // though the rendezvous treats it as a deliverable response (Handle
    // owns the retry decision).
    const bool retryable = was_success && IsRetryableResponse(result.value());
    const bool delivered =
        rendezvous->Deliver(replica, is_hedge, std::move(result));
    if (!delivered && was_success) {
      RouteMetrics::Get().hedge_discarded->Increment();
    }
    if (ctx.span_id != 0) {
      obs::SpanRecord span;
      span.trace_id = ctx.trace_id;
      span.span_id = ctx.span_id;
      span.parent_span = ctx.parent_span;
      span.name = "route/attempt";
      span.replica = replicas_[replica].name;
      span.attempt = ctx.attempt;
      span.hedge = is_hedge;
      span.ok = was_success && !retryable;
      span.outcome = !span.ok ? "failed" : (delivered ? "won" : "lost");
      span.start_unix_us = span_start_us;
      span.dur_us = static_cast<uint64_t>(
          std::chrono::duration<double, std::micro>(Clock::now() -
                                                    attempt_start)
              .count());
      obs::SpanStore::Global().Record(std::move(span));
    }
    {
      // Notify while holding the lock: Stop() may destroy the cv as soon as
      // its predicate holds, and an unlocked notify could still be running.
      std::lock_guard<std::mutex> lock(outstanding_mutex_);
      --outstanding_;
      outstanding_cv_.notify_all();
    }
  }).detach();
}

std::vector<size_t> Router::PlanAttempts(const std::string& key) {
  std::vector<size_t> order;
  if (options_.policy == RoutePolicy::kHashRing) {
    order = ring_->WalkOrder(key);
  } else {
    order.resize(replicas_.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::lock_guard<std::mutex> lock(rng_mutex_);
    std::shuffle(order.begin(), order.end(), rng_);
  }
  std::vector<size_t> plan;
  plan.reserve(order.size());
  for (size_t replica : order) {
    if (prober_->IsRoutable(replica)) plan.push_back(replica);
  }
  return plan;
}

double Router::HedgeDelayMs() const {
  if (options_.hedge_delay_ms > 0.0) return options_.hedge_delay_ms;
  const obs::LatencyHistogram* histogram =
      obs::MetricsRegistry::Global().FindLatencyHistogram("route/upstream_ms");
  if (histogram != nullptr &&
      histogram->count() >= options_.hedge_min_samples) {
    return std::max(options_.hedge_min_ms,
                    histogram->Quantile(options_.hedge_quantile));
  }
  // Cold start: no tail to measure yet.
  return std::max(options_.hedge_min_ms, options_.per_try_ms / 4.0);
}

std::string Router::Handle(const std::string& line) {
  auto& metrics = RouteMetrics::Get();
  metrics.requests->Increment();
  const auto start = Clock::now();
  const double start_unix_us = obs::UnixNowUs();

  // Peek into the request for the routing key and correlation fields; a
  // line the router cannot parse is still forwarded (the replica renders
  // the protocol error).
  std::string key = line;
  std::unique_ptr<obs::JsonValue> id;
  uint64_t trace_id = 0;
  double budget_ms = options_.default_deadline_ms;
  std::string op = "encode";  // the serve-side default
  obs::JsonValue request_json;
  bool have_json = false;
  {
    std::string parse_error;
    if (obs::JsonValue::Parse(line, &request_json, &parse_error) &&
        request_json.is_object()) {
      have_json = true;
      if (const obs::JsonValue* text = request_json.Find("text");
          text != nullptr && text->is_string()) {
        key = text->AsString();
      }
      if (const obs::JsonValue* found = request_json.Find("id")) {
        id = std::make_unique<obs::JsonValue>(*found);
      }
      if (const obs::JsonValue* trace = request_json.Find("trace");
          trace != nullptr && trace->is_string()) {
        obs::ParseTraceIdHex(trace->AsString(), &trace_id);
      }
      if (const obs::JsonValue* found = request_json.Find("op");
          found != nullptr && found->is_string()) {
        op = found->AsString();
      }
      if (const obs::JsonValue* deadline = request_json.Find("deadline_ms");
          deadline != nullptr && deadline->is_number() &&
          deadline->AsNumber() > 0.0) {
        budget_ms = deadline->AsNumber();
      }
    }
  }
  // The router is the trace root for requests that arrive untraced: every
  // parseable request gets an id (stamped into the forwarded line), so any
  // routed request can be explained via /tracezd after the fact. Error
  // replies on every router-side path carry the same id.
  if (have_json && trace_id == 0) trace_id = obs::NextTraceId();
  const bool tracing = have_json && obs::SpanStore::Global().enabled();
  const uint64_t root_span = tracing ? obs::NextTraceId() : 0;
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(budget_ms));

  const std::vector<size_t> plan = PlanAttempts(key);
  Status final_status = Status::Unavailable("no healthy replicas");
  std::string response;
  bool have_response = false;
  bool hedged = false;
  bool hedge_won = false;
  size_t winner = 0;
  int attempts = 0;

  // Each leg forwards its own copy of the line, stamped with the shared
  // trace id and that leg's attempt span as `parent_span` — the replica's
  // serve spans then attach to the exact retry/hedge hop that ran them.
  const auto launch = [&](size_t replica, double timeout_ms,
                          const std::shared_ptr<Rendezvous>& rendezvous) {
    ++attempts;
    AttemptContext ctx;
    ctx.trace_id = trace_id;
    ctx.parent_span = root_span;
    ctx.attempt = attempts;
    std::string forwarded = line;
    if (have_json) {
      obs::JsonValue stamped = request_json;
      stamped.Set("trace", obs::JsonValue(obs::TraceIdToHex(trace_id)));
      if (tracing) {
        ctx.span_id = obs::NextTraceId();
        stamped.Set("parent_span",
                    obs::JsonValue(obs::TraceIdToHex(ctx.span_id)));
      }
      forwarded = stamped.Dump();
    }
    LaunchAttempt(replica, forwarded, timeout_ms, rendezvous, ctx);
  };

  if (plan.empty()) metrics.no_healthy->Increment();
  for (size_t pos = 0; pos < plan.size() && attempts < options_.max_attempts;
       ++pos) {
    const double remaining = RemainingMs(deadline);
    if (remaining <= 0.0) {
      final_status = Status::DeadlineExceeded("request budget exhausted");
      metrics.deadline_exceeded->Increment();
      break;
    }
    if (pos > 0) metrics.retries->Increment();
    auto rendezvous = std::make_shared<Rendezvous>();
    launch(plan[pos], std::min(options_.per_try_ms, remaining), rendezvous);
    // Tail hedge: first attempt only, and only when there is somewhere
    // else to send it.
    if (pos == 0 && options_.hedge && plan.size() > 1 &&
        attempts < options_.max_attempts) {
      const double trigger =
          std::min(HedgeDelayMs(), RemainingMs(deadline));
      if (!rendezvous->WaitFor(trigger)) {
        const double hedge_remaining = RemainingMs(deadline);
        if (hedge_remaining > 0.0) {
          metrics.hedges->Increment();
          hedged = true;
          launch(plan[1], std::min(options_.per_try_ms, hedge_remaining),
                 rendezvous);
          ++pos;  // the hedge consumed plan[1]; retries move past it
        }
      }
    }
    if (!rendezvous->WaitFor(RemainingMs(deadline))) {
      final_status = Status::DeadlineExceeded("request budget exhausted");
      metrics.deadline_exceeded->Increment();
      break;
    }
    std::lock_guard<std::mutex> lock(rendezvous->mutex);
    if (rendezvous->have_success) {
      if (IsRetryableResponse(rendezvous->response)) {
        metrics.upstream_errors->Increment();
        final_status = Status::Unavailable("upstream unavailable");
        continue;  // next replica in the plan
      }
      response = rendezvous->response;
      winner = rendezvous->winner;
      if (rendezvous->hedge_won) {
        hedge_won = true;
        metrics.hedge_wins->Increment();
      }
      have_response = true;
      break;
    }
    final_status = rendezvous->first_error;
  }

  const double total_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  metrics.request_ms->Observe(total_ms);
  if (root_span != 0) {
    obs::SpanRecord span;
    span.trace_id = trace_id;
    span.span_id = root_span;
    span.name = "route/request";
    if (have_response) span.replica = replicas_[winner].name;
    span.ok = have_response;
    span.outcome = have_response ? "ok" : "failed";
    span.start_unix_us = start_unix_us;
    span.dur_us = static_cast<uint64_t>(total_ms * 1000.0);
    obs::SpanStore::Global().Record(std::move(span));
  }
  if (have_json) {
    // The router's own wide event: the routing story (which replica won,
    // how many legs ran, how the hedge fared) under the shared trace id.
    obs::WideEvent event;
    event.trace_id = trace_id;
    event.op = op;
    event.total_us = static_cast<uint64_t>(total_ms * 1000.0);
    event.ok = have_response;
    event.status = have_response ? "ok" : final_status.message();
    if (have_response) event.replica = replicas_[winner].name;
    event.attempts = attempts;
    event.hedge = hedged ? (hedge_won ? "won" : "lost") : "";
    obs::RequestLog::Global().Record(std::move(event));
  }
  if (!have_response) {
    return serve::ErrorToJson(final_status, id.get(), trace_id).Dump();
  }
  // Stamp the routing story onto the reply.
  obs::JsonValue json;
  std::string parse_error;
  if (obs::JsonValue::Parse(response, &json, &parse_error) &&
      json.is_object()) {
    obs::JsonValue routed = obs::JsonValue::Object();
    routed.Set("replica", obs::JsonValue(replicas_[winner].name));
    routed.Set("attempts", obs::JsonValue(attempts));
    routed.Set("hedged", obs::JsonValue(hedged));
    json.Set("routed", std::move(routed));
    return json.Dump();
  }
  return response;
}

obs::JsonValue Router::ReloadAll(const std::string& model, uint64_t seed,
                                 double timeout_ms) {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("model", obs::JsonValue(model));
  out.Set("seed", obs::JsonValue(seed));
  // The model name is spliced into a query string fanned out to every
  // replica: only known wire names pass (anything else — '&', spaces,
  // control bytes — would produce malformed admin requests fleet-wide).
  core::ModelKind kind;
  if (!serve::ParseServeModel(model, &kind)) {
    out.Set("error", obs::JsonValue("unknown model: " + model));
    out.Set("replicas", obs::JsonValue::Array());
    return out;
  }
  obs::JsonValue results = obs::JsonValue::Array();
  const std::string target =
      "/reloadz?model=" + model + "&seed=" + std::to_string(seed);
  for (const ReplicaSpec& spec : replicas_) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("replica", obs::JsonValue(spec.name));
    if (spec.admin_port <= 0) {
      entry.Set("error", obs::JsonValue("no admin port"));
      results.Append(std::move(entry));
      continue;
    }
    auto result = HttpGet(spec.host, spec.admin_port, target, timeout_ms);
    if (!result.ok()) {
      entry.Set("error", obs::JsonValue(result.status().ToString()));
    } else {
      entry.Set("status", obs::JsonValue(result.value().status));
    }
    results.Append(std::move(entry));
  }
  out.Set("replicas", std::move(results));
  return out;
}

obs::JsonValue Router::FleetJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("policy", obs::JsonValue(options_.policy == RoutePolicy::kHashRing
                                       ? "hash_ring"
                                       : "random"));
  out.Set("vnodes", obs::JsonValue(options_.vnodes));
  out.Set("hedge", obs::JsonValue(options_.hedge));
  out.Set("max_attempts", obs::JsonValue(options_.max_attempts));
  out.Set("routable",
          obs::JsonValue(static_cast<uint64_t>(prober_->num_routable())));
  out.Set("ejections", obs::JsonValue(prober_->ejections()));
  out.Set("readmissions", obs::JsonValue(prober_->readmissions()));
  const obs::JsonValue health = prober_->StatusJson();
  obs::JsonValue replicas = obs::JsonValue::Array();
  for (size_t i = 0; i < replicas_.size(); ++i) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("name", obs::JsonValue(replicas_[i].name));
    entry.Set("host", obs::JsonValue(replicas_[i].host));
    entry.Set("port", obs::JsonValue(replicas_[i].port));
    entry.Set("admin_port", obs::JsonValue(replicas_[i].admin_port));
    if (i < health.size()) {
      // Merge the prober's whole view (health, consecutive_failures,
      // probes, probe_failures, last_probe_ms, last_probe_ok) so an
      // eject decision is explainable from /fleetz alone.
      for (const auto& [field, value] : health.at(i).members()) {
        if (field == "replica") continue;  // index; `name` identifies it
        entry.Set(field, value);
      }
    }
    replicas.Append(std::move(entry));
  }
  out.Set("replicas", std::move(replicas));
  return out;
}

}  // namespace route
}  // namespace telekit

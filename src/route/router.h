#ifndef TELEKIT_ROUTE_ROUTER_H_
#define TELEKIT_ROUTE_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/json.h"
#include "route/health.h"
#include "route/ring.h"

namespace telekit {
namespace route {

/// One upstream telekit_serve replica: NDJSON data plane on `port`,
/// admin plane (probed /readyz, fanned-out /reloadz) on `admin_port`.
struct ReplicaSpec {
  std::string host = "127.0.0.1";
  int port = 0;
  int admin_port = 0;  // 0 = no admin plane (probe falls back to connect)
  std::string name;    // display label; defaults to host:port
};

/// Accepts "host:port:admin_port", "host:port", or "port:admin_port" /
/// "port" (host defaulting to 127.0.0.1 — a leading numeric segment is a
/// port, not a host).
bool ParseReplicaSpec(const std::string& text, ReplicaSpec* spec);

enum class RoutePolicy { kHashRing, kRandom };

struct RouterOptions {
  /// Virtual nodes per replica on the consistent-hash ring.
  int vnodes = 64;
  /// Total forwarding attempts per request (first try + retries).
  int max_attempts = 3;
  /// Request budget when the client sends no deadline_ms.
  double default_deadline_ms = 2000.0;
  /// Per-attempt cap inside the budget.
  double per_try_ms = 1000.0;
  /// Tail hedging: when the first attempt is slower than the trigger,
  /// launch a second attempt on the next replica; first response wins.
  bool hedge = true;
  /// Fixed hedge trigger in ms; 0 derives it from the route/upstream_ms
  /// `hedge_quantile` once enough samples exist (tests pin it fixed).
  double hedge_delay_ms = 0.0;
  double hedge_quantile = 0.95;
  /// Floor for the derived trigger (and min samples to trust the tail).
  double hedge_min_ms = 1.0;
  uint64_t hedge_min_samples = 50;
  RoutePolicy policy = RoutePolicy::kHashRing;
  ProberOptions prober;
  /// Seed for the kRandom policy's permutations (deterministic benches).
  uint64_t random_seed = 0x7e1e7e1e;
  /// Test/bench hook: overrides the default /readyz HTTP probe.
  HealthProber::ProbeFn probe_override;
};

/// The telekit_router core: routes one NDJSON request line to the replica
/// fleet and returns one response line.
///
///   key = request text -> HashRing walk order -> first routable replica
///   -> pooled TCP connection -> bounded retries on the next replicas in
///   ring order -> optional tail hedge -> response (+ "routed" stamp)
///
/// Distributed tracing: every parseable request gets a trace id (the
/// client's hex `trace` field, or a router-assigned one) stamped into the
/// forwarded line, plus a per-attempt `parent_span` so each retry and
/// hedge leg shows up as its own hop in the replica's spans. The router
/// records a "route/request" root span and one "route/attempt" child per
/// leg (outcome won / lost / failed) into obs::SpanStore::Global(), and a
/// routing wide event (replica, attempts, hedge outcome) into
/// obs::RequestLog::Global().
///
/// Failure semantics: transport errors and upstream UNAVAILABLE retry on
/// the next replica (and feed the ejection state machine); any other
/// upstream answer — including model errors — is returned as-is. An
/// exhausted time budget yields DEADLINE_EXCEEDED (code 7), a fleet with
/// no routable replica UNAVAILABLE (code 6); both are rendered in the
/// serve wire format with the client's `id` echoed.
///
/// Thread-safety: Handle is safe from any thread; Start/Stop from one.
class Router {
 public:
  Router(std::vector<ReplicaSpec> replicas, RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Starts the background health prober.
  void Start();
  /// Stops the prober and waits for in-flight hedge attempts to land.
  void Stop();

  /// Forwards one request line; blocks until a response or a terminal
  /// error. Never throws; always returns a well-formed response line.
  std::string Handle(const std::string& line);

  /// Fans /reloadz?model=&seed= out to every replica's admin plane.
  /// Returns {"model", "seed", "replicas": [{name, status|error}]}. A
  /// `model` that is not a known serve wire name is rejected locally —
  /// the result carries a top-level "error" and nothing is fanned out.
  obs::JsonValue ReloadAll(const std::string& model, uint64_t seed,
                           double timeout_ms = 2000.0);

  /// {"replicas": [...health, spec...], "routable", "policy", ...} for
  /// the /fleetz admin endpoint.
  obs::JsonValue FleetJson() const;

  HealthProber& prober() { return *prober_; }
  const std::vector<ReplicaSpec>& replicas() const { return replicas_; }

 private:
  struct PooledConn;
  struct Rendezvous;

  /// Trace context one forwarding attempt carries: the attempt span the
  /// router records for it (span_id 0 = tracing off for this request) and
  /// its position in the request's attempt sequence.
  struct AttemptContext {
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_span = 0;
    int attempt = 0;  ///< 1-based across the request (retries + hedges)
  };

  /// Replica indices to try for `key`, routable-first, policy-ordered.
  std::vector<size_t> PlanAttempts(const std::string& key);
  /// Current hedge trigger in ms (fixed override or derived quantile).
  double HedgeDelayMs() const;

  /// One upstream exchange on a pooled connection. Reports the outcome
  /// to the prober. Transport failures come back as UNAVAILABLE.
  StatusOr<std::string> ForwardOnce(size_t replica, const std::string& line,
                                    double timeout_ms);
  std::unique_ptr<PooledConn> CheckoutConn(size_t replica, double timeout_ms);
  void ReturnConn(size_t replica, std::unique_ptr<PooledConn> conn);

  /// Launches a detached forwarding attempt that delivers to `rendezvous`
  /// and records the attempt's trace span (when `ctx` carries one).
  void LaunchAttempt(size_t replica, const std::string& line,
                     double timeout_ms, std::shared_ptr<Rendezvous> rendezvous,
                     AttemptContext ctx);

  const std::vector<ReplicaSpec> replicas_;
  const RouterOptions options_;
  std::unique_ptr<HashRing> ring_;
  std::unique_ptr<HealthProber> prober_;

  std::mutex rng_mutex_;
  std::mt19937_64 rng_;
  std::atomic<uint64_t> round_robin_{0};

  /// Idle connections per replica; one request per checkout (no
  /// multiplexing — a hedged loser's connection is simply closed, which
  /// is what discards its late response).
  std::vector<std::mutex> pool_mutexes_;
  std::vector<std::vector<std::unique_ptr<PooledConn>>> pools_;

  /// Detached attempt threads still running; Stop waits for zero.
  std::mutex outstanding_mutex_;
  std::condition_variable outstanding_cv_;
  int outstanding_ = 0;
};

}  // namespace route
}  // namespace telekit

#endif  // TELEKIT_ROUTE_ROUTER_H_

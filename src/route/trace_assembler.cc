#include "route/trace_assembler.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "obs/trace.h"
#include "route/http_client.h"

namespace telekit {
namespace route {

namespace {

/// Builds the parent -> children index shared by both renderers. Children
/// are kept in start-time order (the input is pre-sorted).
struct SpanIndex {
  std::unordered_map<uint64_t, size_t> by_id;
  std::unordered_map<uint64_t, std::vector<size_t>> children;

  explicit SpanIndex(const std::vector<obs::SpanRecord>& spans) {
    for (size_t i = 0; i < spans.size(); ++i) by_id[spans[i].span_id] = i;
    for (size_t i = 0; i < spans.size(); ++i) {
      if (spans[i].parent_span != 0 &&
          by_id.count(spans[i].parent_span) > 0) {
        children[spans[i].parent_span].push_back(i);
      }
    }
  }

  /// A root is a declared root (parent 0) or an orphan (parent missing
  /// from the collection).
  bool IsRoot(const obs::SpanRecord& span) const {
    return span.parent_span == 0 || by_id.count(span.parent_span) == 0;
  }
};

}  // namespace

CollectedSpans CollectSpans(uint64_t trace_id,
                            const std::vector<SpanSource>& replicas,
                            double timeout_ms) {
  CollectedSpans out;
  std::unordered_set<uint64_t> seen;
  const auto add = [&](const obs::SpanRecord& span) {
    if (seen.insert(span.span_id).second) out.spans.push_back(span);
  };
  out.sources.push_back("local:" + obs::SpanStore::Global().process_label());
  for (const obs::SpanRecord& span :
       obs::SpanStore::Global().Query(trace_id)) {
    add(span);
  }
  const std::string target =
      "/spanz?trace_id=" + obs::TraceIdToHex(trace_id);
  for (const SpanSource& replica : replicas) {
    if (replica.admin_port <= 0) {
      out.errors.push_back(replica.name + ": no admin port");
      continue;
    }
    out.sources.push_back(replica.name);
    auto result =
        HttpGet(replica.host, replica.admin_port, target, timeout_ms);
    if (!result.ok()) {
      out.errors.push_back(replica.name + ": " +
                           result.status().ToString());
      continue;
    }
    if (result.value().status != 200) {
      out.errors.push_back(replica.name + ": HTTP " +
                           std::to_string(result.value().status));
      continue;
    }
    obs::JsonValue body;
    std::string parse_error;
    const obs::JsonValue* spans = nullptr;
    if (!obs::JsonValue::Parse(result.value().body, &body, &parse_error) ||
        (spans = body.Find("spans")) == nullptr || !spans->is_array()) {
      out.errors.push_back(replica.name + ": bad /spanz body");
      continue;
    }
    for (size_t i = 0; i < spans->size(); ++i) {
      obs::SpanRecord span;
      if (obs::SpanRecord::FromJson(spans->at(i), &span)) {
        add(span);
      } else {
        out.errors.push_back(replica.name + ": unparseable span");
      }
    }
  }
  std::sort(out.spans.begin(), out.spans.end(),
            [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
              return a.start_unix_us < b.start_unix_us;
            });
  return out;
}

obs::JsonValue AssembleTraceJson(uint64_t trace_id,
                                 const CollectedSpans& collected) {
  const std::vector<obs::SpanRecord>& spans = collected.spans;
  const SpanIndex index(spans);

  // Recursive render; the visited set makes corrupt parent cycles (which
  // can never be reached from a root) fall through to the orphan pass
  // instead of recursing forever.
  std::vector<bool> visited(spans.size(), false);
  std::function<obs::JsonValue(size_t)> render = [&](size_t i) {
    visited[i] = true;
    const obs::SpanRecord& span = spans[i];
    obs::JsonValue node = span.ToJson();
    obs::JsonValue children = obs::JsonValue::Array();
    const auto it = index.children.find(span.span_id);
    if (it != index.children.end()) {
      for (size_t child : it->second) {
        if (visited[child]) continue;
        const obs::SpanRecord& child_span = spans[child];
        obs::JsonValue child_node = render(child);
        if (child_span.process != span.process) {
          // A cross-process hop: annotate what the two wall clocks say
          // about the handoff in each direction.
          child_node.Set(
              "send_skew_us",
              obs::JsonValue(child_span.start_unix_us -
                             span.start_unix_us));
          child_node.Set(
              "recv_skew_us",
              obs::JsonValue(
                  (span.start_unix_us + static_cast<double>(span.dur_us)) -
                  (child_span.start_unix_us +
                   static_cast<double>(child_span.dur_us))));
        }
        children.Append(std::move(child_node));
      }
    }
    node.Set("children", std::move(children));
    return node;
  };

  obs::JsonValue tree = obs::JsonValue::Array();
  uint64_t hops = 0;
  std::vector<std::string> processes;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].name == "route/attempt") ++hops;
    if (std::find(processes.begin(), processes.end(), spans[i].process) ==
        processes.end()) {
      processes.push_back(spans[i].process);
    }
    if (index.IsRoot(spans[i]) && spans[i].parent_span == 0) {
      tree.Append(render(i));
    }
  }
  // Orphans (parent unreachable or evicted) surface at the top level
  // rather than silently disappearing — subtree roots first, so their own
  // descendants render nested instead of as sibling orphans.
  for (size_t i = 0; i < spans.size(); ++i) {
    if (visited[i] || !index.IsRoot(spans[i])) continue;
    obs::JsonValue node = render(i);
    node.Set("orphan", obs::JsonValue(true));
    tree.Append(std::move(node));
  }
  for (size_t i = 0; i < spans.size(); ++i) {  // corrupt parent cycles
    if (visited[i]) continue;
    obs::JsonValue node = render(i);
    node.Set("orphan", obs::JsonValue(true));
    tree.Append(std::move(node));
  }

  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("trace_id", obs::JsonValue(obs::TraceIdToHex(trace_id)));
  out.Set("span_count",
          obs::JsonValue(static_cast<uint64_t>(spans.size())));
  out.Set("hops", obs::JsonValue(hops));
  obs::JsonValue process_list = obs::JsonValue::Array();
  for (const std::string& process : processes) {
    process_list.Append(obs::JsonValue(process));
  }
  out.Set("processes", std::move(process_list));
  obs::JsonValue source_list = obs::JsonValue::Array();
  for (const std::string& source : collected.sources) {
    source_list.Append(obs::JsonValue(source));
  }
  out.Set("sources", std::move(source_list));
  obs::JsonValue error_list = obs::JsonValue::Array();
  for (const std::string& error : collected.errors) {
    error_list.Append(obs::JsonValue(error));
  }
  out.Set("errors", std::move(error_list));
  out.Set("spans", std::move(tree));
  return out;
}

obs::JsonValue AssembleChromeJson(uint64_t trace_id,
                                  const CollectedSpans& collected) {
  const std::vector<obs::SpanRecord>& spans = collected.spans;
  // One pid per process label, in first-seen (start-time) order.
  std::map<std::string, int> pids;
  for (const obs::SpanRecord& span : spans) {
    pids.emplace(span.process, static_cast<int>(pids.size()) + 1);
  }
  double epoch_us = 0.0;
  if (!spans.empty()) epoch_us = spans.front().start_unix_us;

  obs::JsonValue events = obs::JsonValue::Array();
  for (const auto& [process, pid] : pids) {
    obs::JsonValue meta = obs::JsonValue::Object();
    meta.Set("name", obs::JsonValue("process_name"));
    meta.Set("ph", obs::JsonValue("M"));
    meta.Set("pid", obs::JsonValue(pid));
    obs::JsonValue args = obs::JsonValue::Object();
    args.Set("name", obs::JsonValue(process));
    meta.Set("args", std::move(args));
    events.Append(std::move(meta));
  }
  for (const obs::SpanRecord& span : spans) {
    obs::JsonValue event = obs::JsonValue::Object();
    event.Set("name", obs::JsonValue(span.name));
    event.Set("ph", obs::JsonValue("X"));
    event.Set("ts", obs::JsonValue(span.start_unix_us - epoch_us));
    event.Set("dur", obs::JsonValue(span.dur_us));
    event.Set("pid", obs::JsonValue(pids[span.process]));
    // Hedge/retry legs get their own lanes so concurrent attempts render
    // side by side instead of stacking into a false nesting.
    event.Set("tid", obs::JsonValue(span.name == "route/attempt"
                                        ? span.attempt
                                        : 0));
    obs::JsonValue args = obs::JsonValue::Object();
    args.Set("span_id", obs::JsonValue(obs::TraceIdToHex(span.span_id)));
    args.Set("parent_span",
             span.parent_span != 0
                 ? obs::JsonValue(obs::TraceIdToHex(span.parent_span))
                 : obs::JsonValue());
    if (!span.outcome.empty()) {
      args.Set("outcome", obs::JsonValue(span.outcome));
    }
    if (!span.replica.empty()) {
      args.Set("replica", obs::JsonValue(span.replica));
    }
    if (span.attempt > 0) {
      args.Set("attempt", obs::JsonValue(span.attempt));
      args.Set("hedge", obs::JsonValue(span.hedge));
    }
    event.Set("args", std::move(args));
    events.Append(std::move(event));
  }
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("trace_id", obs::JsonValue(obs::TraceIdToHex(trace_id)));
  out.Set("displayTimeUnit", obs::JsonValue("ms"));
  out.Set("traceEvents", std::move(events));
  return out;
}

}  // namespace route
}  // namespace telekit

#include "route/ring.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "obs/log.h"

namespace telekit {
namespace route {

uint64_t HashKey64(const void* data, size_t len, uint64_t seed) {
  // MurmurHash64A (Austin Appleby, public domain), fixed little-endian
  // tail handling so the value is platform-stable.
  const uint64_t m = 0xc6a4a7935bd1e995ULL;
  const int r = 47;
  uint64_t h = seed ^ (static_cast<uint64_t>(len) * m);
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + (len / 8) * 8;
  while (p != end) {
    uint64_t k;
    std::memcpy(&k, p, sizeof(k));
    p += 8;
    k *= m;
    k ^= k >> r;
    k *= m;
    h ^= k;
    h *= m;
  }
  const size_t tail = len & 7;
  uint64_t k = 0;
  for (size_t i = 0; i < tail; ++i) {
    k |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  if (tail != 0) {
    h ^= k;
    h *= m;
  }
  h ^= h >> r;
  h *= m;
  h ^= h >> r;
  return h;
}

uint64_t HashKey64(const std::string& key, uint64_t seed) {
  return HashKey64(key.data(), key.size(), seed);
}

HashRing::HashRing(std::vector<std::string> nodes, int vnodes)
    : nodes_(std::move(nodes)) {
  TELEKIT_CHECK(!nodes_.empty());
  TELEKIT_CHECK(vnodes > 0);
  points_.reserve(nodes_.size() * static_cast<size_t>(vnodes));
  for (size_t node = 0; node < nodes_.size(); ++node) {
    for (int replica = 0; replica < vnodes; ++replica) {
      const std::string label =
          nodes_[node] + "#" + std::to_string(replica);
      points_.emplace_back(HashKey64(label), node);
    }
  }
  std::sort(points_.begin(), points_.end());
}

size_t HashRing::LowerBound(uint64_t hash) const {
  auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const std::pair<uint64_t, size_t>& point, uint64_t h) {
        return point.first < h;
      });
  if (it == points_.end()) it = points_.begin();  // wrap the circle
  return static_cast<size_t>(it - points_.begin());
}

size_t HashRing::Pick(const std::string& key) const {
  return points_[LowerBound(HashKey64(key))].second;
}

std::vector<size_t> HashRing::WalkOrder(const std::string& key) const {
  std::vector<size_t> order;
  order.reserve(nodes_.size());
  std::vector<bool> seen(nodes_.size(), false);
  const size_t start = LowerBound(HashKey64(key));
  for (size_t i = 0; i < points_.size() && order.size() < nodes_.size();
       ++i) {
    const size_t node = points_[(start + i) % points_.size()].second;
    if (!seen[node]) {
      seen[node] = true;
      order.push_back(node);
    }
  }
  return order;
}

std::vector<double> HashRing::LoadShares(size_t samples) const {
  std::vector<size_t> counts(nodes_.size(), 0);
  for (size_t i = 0; i < samples; ++i) {
    ++counts[Pick("load-share-sample-" + std::to_string(i))];
  }
  std::vector<double> shares(nodes_.size(), 0.0);
  for (size_t node = 0; node < nodes_.size(); ++node) {
    shares[node] =
        static_cast<double>(counts[node]) / static_cast<double>(samples);
  }
  return shares;
}

}  // namespace route
}  // namespace telekit

#ifndef TELEKIT_ROUTE_RING_H_
#define TELEKIT_ROUTE_RING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace telekit {
namespace route {

/// 64-bit MurmurHash64A-style mixer over arbitrary bytes. Deterministic
/// across runs and platforms — ring placement (and therefore cache
/// affinity) must survive router restarts.
uint64_t HashKey64(const void* data, size_t len, uint64_t seed = 0);
uint64_t HashKey64(const std::string& key, uint64_t seed = 0);

/// Consistent-hash ring with virtual nodes.
///
/// Each node is hashed `vnodes` times onto a 64-bit circle; a key routes
/// to the first virtual node clockwise from its own hash. Adding or
/// removing one node moves only ~1/N of the keyspace, so the per-replica
/// EmbeddingCache working set stays put across fleet changes — the whole
/// point of keying on request text.
///
/// The ring is immutable after construction (membership changes rebuild a
/// ring; *health* changes do not — the router instead walks WalkOrder()
/// past ejected replicas, so a replica readmits into exactly the keyspace
/// slice it owned before).
///
/// Thread-safety: all const methods are safe concurrently.
class HashRing {
 public:
  /// `nodes` are opaque labels (replica names); `vnodes` virtual nodes
  /// per physical node (more = smoother balance, larger ring).
  explicit HashRing(std::vector<std::string> nodes, int vnodes = 64);

  /// Index (into the constructor's `nodes`) owning `key`. Ring must be
  /// non-empty.
  size_t Pick(const std::string& key) const;

  /// Every distinct node index in ring order starting at `key`'s owner —
  /// the failover sequence: attempt i+1 goes to WalkOrder(key)[i+1].
  /// Deterministic per key, different keys spread their failover load
  /// over different successors.
  std::vector<size_t> WalkOrder(const std::string& key) const;

  size_t num_nodes() const { return nodes_.size(); }
  const std::vector<std::string>& nodes() const { return nodes_; }

  /// Keys-per-node share for `samples` uniformly hashed keys; used by
  /// tests to assert balance.
  std::vector<double> LoadShares(size_t samples) const;

 private:
  /// First ring point at or clockwise-after `hash`.
  size_t LowerBound(uint64_t hash) const;

  std::vector<std::string> nodes_;
  /// Sorted (point hash, node index) pairs — the circle.
  std::vector<std::pair<uint64_t, size_t>> points_;
};

}  // namespace route
}  // namespace telekit

#endif  // TELEKIT_ROUTE_RING_H_

#include "route/http_client.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>

#include "serve/line_io.h"

namespace telekit {
namespace route {

namespace {

double RemainingMs(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::duration<double, std::milli>(
             deadline - std::chrono::steady_clock::now())
      .count();
}

}  // namespace

StatusOr<HttpResult> HttpGet(const std::string& host, int port,
                             const std::string& target, double timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(timeout_ms));
  const int fd = serve::ConnectTcp(host, port, timeout_ms);
  if (fd < 0) {
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + " failed");
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!serve::SendAll(fd, request.data(), request.size())) {
    ::close(fd);
    return Status::Unavailable("send failed");
  }
  // The admin server answers once and closes, so read to EOF.
  std::string raw;
  char buffer[4096];
  while (true) {
    const double remaining = RemainingMs(deadline);
    if (remaining <= 0.0) {
      ::close(fd);
      return Status::DeadlineExceeded("http read timed out");
    }
    if (!serve::WaitReadable(fd, remaining)) {
      ::close(fd);
      return Status::DeadlineExceeded("http read timed out");
    }
    const long n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Unavailable("recv failed");
    }
    if (n == 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  // Parse "HTTP/1.1 <code> ..." + blank-line-separated body.
  if (raw.rfind("HTTP/", 0) != 0) {
    return Status::Internal("malformed http response");
  }
  const size_t space = raw.find(' ');
  if (space == std::string::npos) {
    return Status::Internal("malformed http status line");
  }
  HttpResult result;
  result.status = std::atoi(raw.c_str() + space + 1);
  const size_t body = raw.find("\r\n\r\n");
  if (body != std::string::npos) result.body = raw.substr(body + 4);
  return result;
}

}  // namespace route
}  // namespace telekit

#include "route/fleet_metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>

namespace telekit {
namespace route {

namespace {

bool HasSuffix(const std::string& name, const char* suffix,
               std::string* base) {
  const size_t n = std::string(suffix).size();
  if (name.size() <= n || name.compare(name.size() - n, n, suffix) != 0) {
    return false;
  }
  *base = name.substr(0, name.size() - n);
  return true;
}

/// Exposition-format number, matching obs::RenderPrometheus: integers
/// print without a fraction; non-finite values use +Inf/-Inf/NaN.
std::string FormatNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// Parses the sample value out of the text after the name/labels — the
/// first token, with any exemplar suffix (" # {...} v ts") ignored.
bool ParseValue(const std::string& text, double* out) {
  size_t start = 0;
  while (start < text.size() && text[start] == ' ') ++start;
  if (start == text.size()) return false;
  char* end = nullptr;
  const std::string token = text.substr(start);
  if (token.rfind("+Inf", 0) == 0) {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  *out = std::strtod(token.c_str(), &end);
  return end != nullptr && end != token.c_str();
}

/// Right-continuous step-function read of a sparse cumulative bucket
/// list: the cumulative count at `le` is the count recorded at the
/// largest boundary <= le (0 below the first boundary).
double CumulativeAt(const std::vector<std::pair<double, double>>& buckets,
                    double le) {
  double cumulative = 0.0;
  for (const auto& [bound, count] : buckets) {
    if (bound > le) break;
    cumulative = count;
  }
  return cumulative;
}

}  // namespace

std::map<std::string, FleetMetric> ParsePrometheusText(
    const std::string& text) {
  std::map<std::string, FleetMetric> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Only TYPE matters; HELP and stray comments are skipped.
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string rest = line.substr(7);
        const size_t space = rest.find(' ');
        if (space != std::string::npos) {
          out[rest.substr(0, space)].type = rest.substr(space + 1);
        }
      }
      continue;
    }
    // Sample line: name[{labels}] value [# exemplar].
    const size_t brace = line.find('{');
    const size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    const size_t name_end = std::min(
        brace == std::string::npos ? line.size() : brace, space);
    const std::string name = line.substr(0, name_end);
    std::string labels;
    size_t value_start = name_end;
    if (brace != std::string::npos && brace == name_end) {
      const size_t close = line.find('}', brace);
      if (close == std::string::npos) continue;
      labels = line.substr(brace + 1, close - brace - 1);
      value_start = close + 1;
    }
    double value = 0.0;
    if (!ParseValue(line.substr(value_start), &value)) continue;

    std::string base;
    if (HasSuffix(name, "_bucket", &base)) {
      const size_t le = labels.find("le=\"");
      if (le == std::string::npos) continue;
      const size_t le_end = labels.find('"', le + 4);
      if (le_end == std::string::npos) continue;
      const std::string bound_text = labels.substr(le + 4, le_end - le - 4);
      if (bound_text == "+Inf") continue;  // implied by _count
      char* end = nullptr;
      const double bound = std::strtod(bound_text.c_str(), &end);
      if (end == nullptr || end == bound_text.c_str()) continue;
      FleetMetric& metric = out[base];
      metric.has_histogram = true;
      metric.buckets.emplace_back(bound, value);
    } else if (HasSuffix(name, "_sum", &base) && out.count(base) > 0 &&
               out[base].type == "histogram") {
      out[base].sum = value;
      out[base].has_histogram = true;
    } else if (HasSuffix(name, "_count", &base) && out.count(base) > 0 &&
               out[base].type == "histogram") {
      out[base].count = value;
      out[base].has_histogram = true;
    } else {
      FleetMetric& metric = out[name];
      metric.value = value;
      metric.has_value = true;
    }
  }
  for (auto& [name, metric] : out) {
    std::sort(metric.buckets.begin(), metric.buckets.end());
  }
  return out;
}

std::string AggregateFleetMetrics(
    const std::vector<ReplicaScrape>& scrapes) {
  // Parse every successful scrape once; the union of metric names drives
  // the output (a replica missing a metric simply contributes nothing).
  std::vector<std::pair<std::string, std::map<std::string, FleetMetric>>>
      parsed;
  for (const ReplicaScrape& scrape : scrapes) {
    if (scrape.ok) {
      parsed.emplace_back(scrape.replica,
                          ParsePrometheusText(scrape.exposition));
    }
  }
  std::string out;
  out += "# HELP telekit_fleet_replicas replicas in the router fleet\n";
  out += "# TYPE telekit_fleet_replicas gauge\n";
  out += "telekit_fleet_replicas " + std::to_string(scrapes.size()) + "\n";
  out += "# HELP telekit_fleet_replica_up 1 when the fleet scrape reached "
         "the replica\n";
  out += "# TYPE telekit_fleet_replica_up gauge\n";
  for (const ReplicaScrape& scrape : scrapes) {
    out += "telekit_fleet_replica_up{replica=\"" + scrape.replica + "\"} " +
           (scrape.ok ? "1" : "0") + "\n";
  }

  std::map<std::string, std::string> types;  // union of names -> type
  for (const auto& [replica, metrics] : parsed) {
    for (const auto& [name, metric] : metrics) {
      auto [it, inserted] = types.emplace(name, metric.type);
      if (!inserted && it->second.empty()) it->second = metric.type;
    }
  }

  for (const auto& [name, type] : types) {
    if (type == "gauge") {
      out += "# HELP " + name + " fleet per-replica gauge\n";
      out += "# TYPE " + name + " gauge\n";
      for (const auto& [replica, metrics] : parsed) {
        const auto it = metrics.find(name);
        if (it == metrics.end() || !it->second.has_value) continue;
        out += name + "{replica=\"" + replica + "\"} " +
               FormatNumber(it->second.value) + "\n";
      }
    } else if (type == "histogram") {
      out += "# HELP " + name + " fleet-merged histogram\n";
      out += "# TYPE " + name + " histogram\n";
      std::set<double> grid;
      double total_sum = 0.0;
      double total_count = 0.0;
      for (const auto& [replica, metrics] : parsed) {
        const auto it = metrics.find(name);
        if (it == metrics.end() || !it->second.has_histogram) continue;
        for (const auto& [bound, unused] : it->second.buckets) {
          grid.insert(bound);
        }
        total_sum += it->second.sum;
        total_count += it->second.count;
      }
      for (double bound : grid) {
        double cumulative = 0.0;
        for (const auto& [replica, metrics] : parsed) {
          const auto it = metrics.find(name);
          if (it == metrics.end() || !it->second.has_histogram) continue;
          cumulative += CumulativeAt(it->second.buckets, bound);
        }
        out += name + "_bucket{le=\"" + FormatNumber(bound) + "\"} " +
               FormatNumber(cumulative) + "\n";
      }
      out += name + "_bucket{le=\"+Inf\"} " + FormatNumber(total_count) +
             "\n";
      out += name + "_sum " + FormatNumber(total_sum) + "\n";
      out += name + "_count " + FormatNumber(total_count) + "\n";
    } else {
      // Counters (and untyped samples, conservatively treated the same):
      // one fleet-wide sum under the unchanged name.
      out += "# HELP " + name + " fleet-summed counter\n";
      out += "# TYPE " + name + " " +
             (type.empty() ? "untyped" : type) + "\n";
      double total = 0.0;
      for (const auto& [replica, metrics] : parsed) {
        const auto it = metrics.find(name);
        if (it != metrics.end() && it->second.has_value) {
          total += it->second.value;
        }
      }
      out += name + " " + FormatNumber(total) + "\n";
    }
  }
  return out;
}

}  // namespace route
}  // namespace telekit

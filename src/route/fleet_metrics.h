#ifndef TELEKIT_ROUTE_FLEET_METRICS_H_
#define TELEKIT_ROUTE_FLEET_METRICS_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace telekit {
namespace route {

/// One metric parsed from a Prometheus text exposition (version 0.0.4,
/// the shape obs::RenderPrometheus emits). Histograms keep their sparse
/// cumulative buckets; the +Inf bucket is implied by `count`.
struct FleetMetric {
  std::string type;  ///< "counter" | "gauge" | "histogram" | "untyped"
  double value = 0.0;
  bool has_value = false;
  /// (le, cumulative count) in ascending le order, +Inf excluded.
  std::vector<std::pair<double, double>> buckets;
  double sum = 0.0;
  double count = 0.0;
  bool has_histogram = false;
};

/// Parses one /metrics body into {base metric name -> FleetMetric}.
/// `name_bucket` / `name_sum` / `name_count` series fold into their base
/// name; exemplar suffixes (` # {...} v ts`) are stripped; malformed
/// lines are skipped (a scrape is best-effort by nature).
std::map<std::string, FleetMetric> ParsePrometheusText(
    const std::string& text);

/// One replica's scrape result, input to the aggregator.
struct ReplicaScrape {
  std::string replica;     ///< label value, e.g. "127.0.0.1:7101"
  bool ok = false;         ///< scrape reached the replica and returned 200
  std::string exposition;  ///< /metrics body (valid when ok)
};

/// Renders the fleet-wide exposition for /fleetmetricz:
///
///   telekit_fleet_replicas          how many replicas were scraped
///   telekit_fleet_replica_up{replica="host:port"}  1 scraped, 0 failed
///   counters    summed across replicas, name unchanged
///   histograms  bucket-merged on the union le grid (cumulative counts
///               interpolated as right-continuous step functions), _sum
///               and _count summed
///   gauges      one series per replica, labelled {replica="host:port"}
///               (a summed queue depth would hide the one hot replica)
///
/// Pure text-in/text-out so tests can exercise the merge without sockets.
std::string AggregateFleetMetrics(const std::vector<ReplicaScrape>& scrapes);

}  // namespace route
}  // namespace telekit

#endif  // TELEKIT_ROUTE_FLEET_METRICS_H_

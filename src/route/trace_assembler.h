#ifndef TELEKIT_ROUTE_TRACE_ASSEMBLER_H_
#define TELEKIT_ROUTE_TRACE_ASSEMBLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/spanstore.h"

namespace telekit {
namespace route {

/// One remote span store to consult: a replica's admin plane (/spanz).
struct SpanSource {
  std::string name;
  std::string host = "127.0.0.1";
  int admin_port = 0;  // 0 = unreachable, reported as an error
};

/// The raw material of one assembled trace: spans from the local
/// SpanStore plus every reachable replica, deduplicated by span id, with
/// per-source fetch errors preserved (a partially assembled trace is
/// still a trace — the gaps are part of the story).
struct CollectedSpans {
  std::vector<obs::SpanRecord> spans;  ///< deduped, sorted by start time
  std::vector<std::string> sources;    ///< span stores consulted
  std::vector<std::string> errors;     ///< per-source fetch failures
};

/// Fans out /spanz?trace_id= to every source and merges with the local
/// store. Dedup is by span id: an in-process fleet sharing the router's
/// process-global store (the test/bench topology) returns the same spans
/// both locally and over HTTP.
CollectedSpans CollectSpans(uint64_t trace_id,
                            const std::vector<SpanSource>& replicas,
                            double timeout_ms);

/// Cross-process span tree for /tracezd: {"trace_id", "span_count",
/// "hops" (route/attempt spans), "processes", "sources", "errors",
/// "spans": [nested nodes]}. Nodes carry their SpanRecord fields plus
/// "children"; a child recorded by a different process than its parent is
/// annotated with the hop's clock story:
///
///   send_skew_us  child start minus parent start (each on its own
///                 wall clock) — launch lag plus inter-host clock skew
///   recv_skew_us  parent end minus child end — tail the parent spent
///                 after the child finished, same caveat
///
/// Spans whose parent is not in the collection are attached at the top
/// level with "orphan": true (their recorder was unreachable or its ring
/// already evicted the parent).
obs::JsonValue AssembleTraceJson(uint64_t trace_id,
                                 const CollectedSpans& collected);

/// Chrome trace_event export of the same collection: one pid per
/// process (with process_name metadata), route/attempt legs on their own
/// lanes, timestamps rebased to the trace's earliest span. Load via
/// chrome://tracing or https://ui.perfetto.dev.
obs::JsonValue AssembleChromeJson(uint64_t trace_id,
                                  const CollectedSpans& collected);

}  // namespace route
}  // namespace telekit

#endif  // TELEKIT_ROUTE_TRACE_ASSEMBLER_H_

#ifndef TELEKIT_OBS_OBS_H_
#define TELEKIT_OBS_OBS_H_

/// Umbrella header for the telekit observability layer:
///   - obs/log.h      TELEKIT_LOG(level) structured logging
///   - obs/metrics.h  MetricsRegistry: counters / gauges / histograms
///                    (fixed-bucket and log-bucketed quantile kinds)
///   - obs/trace.h    RAII Span nesting + Chrome trace_event collection,
///                    request trace ids + SlowTraceRing (/tracez)
///   - obs/admin.h    background HTTP admin server (/healthz /metrics ...)
///                    + Prometheus text exposition renderer
///   - obs/timeseries.h  background sampler -> per-metric ring buffers,
///                    rate derivation, /timeseriesz history endpoint
///   - obs/slo.h      declarative SLOs, multi-window burn-rate alerting,
///                    /alertz state machine (pending -> firing -> resolved)
///   - obs/requestlog.h  wide-event request log (/requestz, --request-log
///                    NDJSON sink) + Prometheus exemplar store
///   - obs/spanstore.h  bounded ring of completed distributed-trace spans
///                    (/spanz), merged fleet-wide by the router's /tracezd
///   - obs/report.h   --obs-json artifact (metrics + spans + traceEvents)
///
/// Conventions used across the codebase:
///   - metric names are "<area>/<what>" (e.g. "train/step_ms"); histograms
///     measuring time end in "_ms"
///   - span names are "<stage>/<what>" where stage is one of
///     tokenize / encode / train / eval / zoo / bench
///   - hot per-op paths (tensor dispatch) use cached Counter references
///     only; per-step paths may use Span + histogram.

#include "obs/admin.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/requestlog.h"
#include "obs/slo.h"
#include "obs/spanstore.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

#endif  // TELEKIT_OBS_OBS_H_

#include "obs/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/log.h"
#include "obs/requestlog.h"
#include "obs/spanstore.h"
#include "obs/trace.h"

namespace telekit {
namespace obs {

namespace {

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

/// "serve/queue_ms" -> "telekit_serve_queue_ms"; anything outside
/// [a-zA-Z0-9_:] becomes '_' per the Prometheus data model.
std::string PrometheusName(const std::string& name) {
  std::string out = "telekit_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Exposition-format number: integers print without a fraction, non-finite
/// values use the +Inf/-Inf/NaN spellings the format defines.
std::string PrometheusNumber(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

/// ParseLogLevel silently falls back on unknown input; /loglevelz wants
/// to reject typos instead, so validate against the five known names.
bool IsKnownLogLevel(const std::string& text) {
  std::string lower;
  for (char c : text) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                         : c);
  }
  return lower == "debug" || lower == "info" || lower == "warn" ||
         lower == "error" || lower == "off";
}

void AppendHelpType(std::string* out, const std::string& prom_name,
                    const std::string& raw_name, const char* type) {
  *out += "# HELP " + prom_name + " TeleKit metric " + raw_name + "\n";
  *out += "# TYPE " + prom_name + " " + type + "\n";
}

/// Shared by both histogram kinds: the snapshot JSON already carries
/// per-bucket (non-cumulative) counts with `le` bounds in order, so the
/// renderer only has to accumulate and terminate with +Inf. For latency
/// histograms (`raw_name` non-empty) each bucket line additionally carries
/// the bucket's latest exemplar — ` # {trace_id="..."} value timestamp` —
/// linking a scrape straight to a /requestz wide event.
void AppendHistogram(std::string* out, const std::string& prom_name,
                     const JsonValue& histogram,
                     const std::string& raw_name = "") {
  uint64_t cumulative = 0;
  if (const JsonValue* buckets = histogram.Find("buckets")) {
    for (size_t i = 0; i < buckets->size(); ++i) {
      const JsonValue& bucket = buckets->at(i);
      const JsonValue* le = bucket.Find("le");
      cumulative +=
          static_cast<uint64_t>(bucket.Find("count")->AsNumber());
      if (le->is_string()) continue;  // fixed-bucket overflow: folded +Inf
      *out += prom_name + "_bucket{le=\"" + PrometheusNumber(le->AsNumber()) +
              "\"} " + std::to_string(cumulative);
      ExemplarStore::Exemplar exemplar;
      if (!raw_name.empty() &&
          ExemplarStore::Global().Find(raw_name, le->AsNumber(), &exemplar)) {
        *out += " # {trace_id=\"" + TraceIdToHex(exemplar.trace_id) + "\"} " +
                PrometheusNumber(exemplar.value_ms) + " " +
                PrometheusNumber(exemplar.unix_s);
      }
      *out += "\n";
    }
  }
  const double count = histogram.Find("count")->AsNumber();
  *out += prom_name + "_bucket{le=\"+Inf\"} " +
          PrometheusNumber(count) + "\n";
  *out += prom_name + "_sum " +
          PrometheusNumber(histogram.Find("sum")->AsNumber()) + "\n";
  *out += prom_name + "_count " + PrometheusNumber(count) + "\n";
}

}  // namespace

HttpResponse HttpResponse::Text(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::Json(int status, const JsonValue& value) {
  HttpResponse response;
  response.status = status;
  // charset matches the text/plain responses so every endpoint advertises
  // its encoding the same way.
  response.content_type = "application/json; charset=utf-8";
  response.body = value.Dump(2);
  response.body.push_back('\n');
  return response;
}

std::map<std::string, std::string> ParseQuery(const std::string& query) {
  std::map<std::string, std::string> out;
  size_t start = 0;
  while (start <= query.size()) {
    size_t end = query.find('&', start);
    if (end == std::string::npos) end = query.size();
    if (end > start) {
      const std::string pair = query.substr(start, end - start);
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        out[pair] = "";
      } else {
        out[pair.substr(0, eq)] = pair.substr(eq + 1);
      }
    }
    start = end + 1;
  }
  return out;
}

std::string RenderPrometheus(const MetricsRegistry& registry) {
  // Rendering from the JSON snapshot keeps one source of truth for what a
  // metric exports and costs one extra tree walk per scrape.
  const JsonValue snapshot = registry.Snapshot();
  std::string out;
  for (const auto& [name, value] : snapshot.Find("counters")->members()) {
    const std::string prom = PrometheusName(name);
    AppendHelpType(&out, prom, name, "counter");
    out += prom + " " + PrometheusNumber(value.AsNumber()) + "\n";
  }
  for (const auto& [name, value] : snapshot.Find("gauges")->members()) {
    const std::string prom = PrometheusName(name);
    AppendHelpType(&out, prom, name, "gauge");
    out += prom + " " + PrometheusNumber(value.AsNumber()) + "\n";
  }
  for (const auto& [name, value] : snapshot.Find("histograms")->members()) {
    const std::string prom = PrometheusName(name);
    AppendHelpType(&out, prom, name, "histogram");
    AppendHistogram(&out, prom, value);
  }
  for (const auto& [name, value] :
       snapshot.Find("latency_histograms")->members()) {
    const std::string prom = PrometheusName(name);
    AppendHelpType(&out, prom, name, "histogram");
    AppendHistogram(&out, prom, value, name);
  }
  return out;
}

AdminServer::AdminServer() {
  Handle("/healthz", [](const HttpRequest&) {
    return HttpResponse::Text(200, "ok\n");
  });
  Handle("/metrics", [](const HttpRequest&) {
    HttpResponse response =
        HttpResponse::Text(200, RenderPrometheus(MetricsRegistry::Global()));
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return response;
  });
  Handle("/tracez", [](const HttpRequest&) {
    JsonValue out = JsonValue::Object();
    out.Set("traceEvents", SlowTraceRing::Global().TraceEventsJson());
    out.Set("displayTimeUnit", JsonValue("ms"));
    out.Set("slow_traces_recorded",
            JsonValue(SlowTraceRing::Global().total_recorded()));
    return HttpResponse::Json(200, out);
  });
  Handle("/requestz", [](const HttpRequest& request) {
    return RequestLog::Global().HandleQuery(request);
  });
  // Distributed-trace spans: every daemon answers /spanz?trace_id= so the
  // router's /tracezd assembler can fan out and merge the hops.
  Handle("/spanz", [](const HttpRequest& request) {
    return SpanStore::Global().HandleQuery(request);
  });
  // GET /loglevelz reads the live level; ?set=<level> changes it and
  // reports what it replaced. The logger's level is one atomic, so the
  // set races cleanly with concurrent TELEKIT_LOG emission.
  Handle("/loglevelz", [](const HttpRequest& request) {
    const std::map<std::string, std::string> params =
        ParseQuery(request.query);
    JsonValue out = JsonValue::Object();
    const auto set = params.find("set");
    if (set != params.end()) {
      if (!IsKnownLogLevel(set->second)) {
        JsonValue error = JsonValue::Object();
        error.Set("error", JsonValue("unknown level: " + set->second +
                                     " (want debug|info|warn|error|off)"));
        return HttpResponse::Json(400, error);
      }
      const LogLevel previous = Logger::Global().level();
      Logger::Global().set_level(ParseLogLevel(set->second));
      out.Set("previous", JsonValue(LogLevelName(previous)));
    }
    out.Set("level", JsonValue(LogLevelName(Logger::Global().level())));
    return HttpResponse::Json(200, out);
  });
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(const std::string& path, HttpHandler handler) {
  std::lock_guard<std::mutex> lock(mutex_);
  handlers_[path] = std::move(handler);
}

bool AdminServer::Start(int port) {
  if (running_.load()) {
    TELEKIT_LOG(ERROR) << "admin server already running"
                       << F("port", port_.load());
    return false;
  }
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    TELEKIT_LOG(ERROR) << "admin socket()" << F("errno", std::strerror(errno));
    return false;
  }
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 64) < 0) {
    TELEKIT_LOG(ERROR) << "admin bind/listen" << F("port", port)
                       << F("errno", std::strerror(errno));
    ::close(listener);
    return false;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  listener_ = listener;
  port_.store(static_cast<int>(ntohs(addr.sin_port)));
  running_.store(true);
  thread_ = std::thread([this] { AcceptLoop(); });
  TELEKIT_LOG(INFO) << "admin server listening"
                    << F("addr", "127.0.0.1:" + std::to_string(port_.load()));
  return true;
}

void AdminServer::Stop() {
  if (!running_.exchange(false)) return;
  // shutdown() (not close()) wakes the blocking accept() reliably; the fd
  // is only closed after the accept thread has exited.
  ::shutdown(listener_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listener_);
  listener_ = -1;
  port_.store(0);
}

void AdminServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listener_, nullptr, nullptr);
    if (fd < 0) {
      if (running_.load() && (errno == EINTR || errno == ECONNABORTED)) {
        continue;
      }
      return;  // listener shut down
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void AdminServer::ServeConnection(int fd) {
  // A stalled client must not wedge the admin loop (it is single-threaded
  // by design): cap the time spent reading the request.
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string raw;
  char buffer[2048];
  while (raw.find("\r\n") == std::string::npos && raw.size() < 16384) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    raw.append(buffer, static_cast<size_t>(n));
  }

  HttpResponse response;
  HttpRequest request;
  const size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) {
    response = HttpResponse::Text(400, "malformed request\n");
  } else {
    const std::string line = raw.substr(0, line_end);
    const size_t method_end = line.find(' ');
    const size_t target_end =
        method_end == std::string::npos ? std::string::npos
                                        : line.find(' ', method_end + 1);
    if (target_end == std::string::npos) {
      response = HttpResponse::Text(400, "malformed request line\n");
    } else {
      request.method = line.substr(0, method_end);
      std::string target =
          line.substr(method_end + 1, target_end - method_end - 1);
      const size_t query = target.find('?');
      if (query != std::string::npos) {
        request.query = target.substr(query + 1);
        target.resize(query);
      }
      request.path = std::move(target);
      if (request.method != "GET" && request.method != "HEAD") {
        response = HttpResponse::Text(405, "only GET is supported\n");
      } else {
        response = Dispatch(request);
      }
    }
  }

  std::string wire = "HTTP/1.0 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\n";
  wire += "Content-Type: " + response.content_type + "\r\n";
  wire += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  wire += "Connection: close\r\n\r\n";
  if (request.method != "HEAD") wire += response.body;
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t w =
        ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) break;
    sent += static_cast<size_t>(w);
  }
}

HttpResponse AdminServer::Dispatch(const HttpRequest& request) {
  HttpHandler handler;
  std::vector<std::string> known;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = handlers_.find(request.path);
    if (it != handlers_.end()) {
      handler = it->second;  // copy: run outside the lock
    } else {
      for (const auto& [path, unused] : handlers_) known.push_back(path);
    }
  }
  if (handler) return handler(request);
  if (request.path == "/") {
    std::string body = "telekit admin endpoints:\n";
    for (const std::string& path : known) body += "  " + path + "\n";
    return HttpResponse::Text(200, std::move(body));
  }
  std::string body = "no handler for " + request.path + "; try:\n";
  for (const std::string& path : known) body += "  " + path + "\n";
  return HttpResponse::Text(404, std::move(body));
}

}  // namespace obs
}  // namespace telekit

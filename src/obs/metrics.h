#ifndef TELEKIT_OBS_METRICS_H_
#define TELEKIT_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace telekit {
namespace obs {

/// Monotonically increasing counter. Lock-free; safe to cache a reference
/// (the registry never destroys metrics — Reset() only zeroes them).
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Zero() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value with an Add() convenience.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Zero() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds of each
/// bucket; one implicit overflow bucket catches everything above the last
/// bound. Tracks count/sum/min/max alongside the bucket counts.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// {count, sum, mean, min, max, buckets: [{le, count}...]}; the overflow
  /// bucket is exported with le = "inf".
  JsonValue ToJson() const;
  void Zero();

  /// 1-2-5 series from 0.01 ms to 60 s — a sensible default for
  /// latency-in-milliseconds histograms.
  static std::vector<double> DefaultLatencyBoundsMs();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Log-bucketed (HDR-style) latency histogram with quantile interpolation.
/// Values are milliseconds spanning [1 us, 60 s]; each power of two is
/// split into kSubBuckets geometric sub-buckets, so any quantile estimate
/// carries a bounded relative error of 2^(1/kSubBuckets) - 1 (~4.4%),
/// independent of where the mass sits — unlike a fixed-bucket Histogram,
/// whose tail buckets are decades wide. Observe() is lock-free; Quantile()
/// reads relaxed snapshots (monotonically consistent, not atomic).
class LatencyHistogram {
 public:
  static constexpr double kMinMs = 1e-3;
  static constexpr double kMaxMs = 6e4;
  static constexpr int kSubBuckets = 16;  // per doubling
  /// ceil(log2(kMaxMs / kMinMs)) doublings of kSubBuckets each.
  static constexpr size_t kNumBuckets = 26 * kSubBuckets;

  LatencyHistogram();

  void Observe(double ms);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return min_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Index of the bucket holding `ms` (clamped to the tracked range).
  static size_t BucketIndex(double ms);
  /// Inclusive upper / exclusive lower bound of bucket i, in ms.
  static double BucketUpperMs(size_t i);
  static double BucketLowerMs(size_t i);

  /// Observations recorded at or below `ms`, computed as the cumulative
  /// count through the bucket containing `ms`. Carries the same bounded
  /// relative error as the buckets themselves (~4.4%): values in the
  /// boundary bucket that exceed `ms` are still counted. Backs the
  /// time-series latency-threshold series the SLO engine burns against.
  uint64_t CountAtOrBelow(double ms) const;

  /// Nearest-rank q-quantile (q in [0,1]) in ms: selects rank
  /// k = max(1, ceil(q * count)), walks the cumulative bucket counts to the
  /// bucket owning rank k, places the estimate at that sample's midpoint
  /// share of the bucket width, and clamps to the observed [min, max].
  /// 0 when empty.
  double Quantile(double q) const;

  /// {count, sum, mean, min, max, p50, p95, p99, buckets: [{le, count}]}
  /// with min/max null when empty and only non-empty buckets exported.
  JsonValue ToJson() const;
  void Zero();

 private:
  std::vector<std::atomic<uint64_t>> buckets_;  // kNumBuckets
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Process-wide metric registry. Metric objects are created on first use
/// and never destroyed, so hot paths can do:
///
///   static obs::Counter& calls =
///       obs::MetricsRegistry::Global().GetCounter("tensor/matmul_calls");
///   calls.Increment();
///
/// Reset() zeroes every metric in place (for tests and per-run baselines)
/// without invalidating cached references.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` is only consulted on first creation; empty means
  /// DefaultLatencyBoundsMs().
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});
  LatencyHistogram& GetLatencyHistogram(const std::string& name);

  /// Lookup without creation; nullptr when absent.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;
  const LatencyHistogram* FindLatencyHistogram(const std::string& name) const;

  /// Enumeration for samplers (the time-series store walks these each
  /// tick). The returned pointers stay valid forever — metrics are never
  /// destroyed — but the name lists are a snapshot: metrics registered
  /// after the call are absent until the next enumeration.
  std::vector<std::pair<std::string, const Counter*>> Counters() const;
  std::vector<std::pair<std::string, const Gauge*>> Gauges() const;
  std::vector<std::pair<std::string, const LatencyHistogram*>>
  LatencyHistograms() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...},
  /// "latency_histograms": {...}} with names sorted (std::map order) for
  /// diffable artifacts.
  JsonValue Snapshot() const;

  /// Zeroes all metrics; registrations (and references) stay valid.
  void Reset();

  /// Distinct registered metric names across all three kinds.
  size_t NumMetrics() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> latency_histograms_;
};

/// Compact {count, p50_ms, p95_ms, p99_ms} summary of a latency
/// histogram — the shape /statusz sections share (telekit_serve request
/// latency, telekit_streamd detection latency).
JsonValue LatencySummaryJson(const LatencyHistogram& histogram);

/// Observes the wall-clock lifetime of a scope into a histogram, in
/// milliseconds. Cheaper than a Span: no trace event, no nesting state.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram);
  explicit ScopedTimer(LatencyHistogram& histogram);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Milliseconds since construction (for callers that also want the
  /// value).
  double ElapsedMs() const;

 private:
  Histogram* histogram_ = nullptr;
  LatencyHistogram* latency_histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace telekit

#endif  // TELEKIT_OBS_METRICS_H_

#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace telekit {
namespace obs {

namespace {

void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMinDouble(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v < current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

void AtomicMaxDouble(std::atomic<double>& target, double v) {
  double current = target.load(std::memory_order_relaxed);
  while (v > current && !target.compare_exchange_weak(
                            current, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, v);
  AtomicMinDouble(min_, v);
  AtomicMaxDouble(max_, v);
}

JsonValue Histogram::ToJson() const {
  JsonValue out = JsonValue::Object();
  const uint64_t n = count();
  out.Set("count", JsonValue(n));
  out.Set("sum", JsonValue(sum()));
  out.Set("mean", JsonValue(mean()));
  // An empty histogram has min = +inf / max = -inf sentinels; JSON has no
  // Inf, so export null rather than a fabricated number.
  out.Set("min", n > 0 ? JsonValue(min()) : JsonValue());
  out.Set("max", n > 0 ? JsonValue(max()) : JsonValue());
  JsonValue buckets = JsonValue::Array();
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    const uint64_t c = bucket_count(i);
    if (c == 0) continue;  // sparse export keeps artifacts small
    JsonValue bucket = JsonValue::Object();
    if (i < bounds_.size()) {
      bucket.Set("le", JsonValue(bounds_[i]));
    } else {
      bucket.Set("le", JsonValue("inf"));
    }
    bucket.Set("count", JsonValue(c));
    buckets.Append(std::move(bucket));
  }
  out.Set("buckets", std::move(buckets));
  return out;
}

void Histogram::Zero() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> Histogram::DefaultLatencyBoundsMs() {
  std::vector<double> bounds;
  for (double decade = 0.01; decade < 6.0e4; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  bounds.push_back(6.0e4);
  return bounds;
}

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets) {
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

size_t LatencyHistogram::BucketIndex(double ms) {
  if (!(ms > kMinMs)) return 0;  // also catches NaN and negatives
  const double position = std::log2(ms / kMinMs) * kSubBuckets;
  const size_t index = static_cast<size_t>(position);
  return index < kNumBuckets ? index : kNumBuckets - 1;
}

double LatencyHistogram::BucketLowerMs(size_t i) {
  return kMinMs * std::exp2(static_cast<double>(i) / kSubBuckets);
}

double LatencyHistogram::BucketUpperMs(size_t i) {
  return kMinMs * std::exp2(static_cast<double>(i + 1) / kSubBuckets);
}

void LatencyHistogram::Observe(double ms) {
  if (std::isnan(ms)) return;
  if (ms < 0.0) ms = 0.0;
  buckets_[BucketIndex(ms)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, ms);
  AtomicMinDouble(min_, ms);
  AtomicMaxDouble(max_, ms);
}

uint64_t LatencyHistogram::CountAtOrBelow(double ms) const {
  const size_t last = BucketIndex(ms);
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= last; ++i) cumulative += bucket_count(i);
  return cumulative;
}

double LatencyHistogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: report the k-th smallest observation, k in [1, n]. The
  // previous fractional-rank walk (`cumulative + in_bucket >= q*n`) went
  // wrong at exact boundaries: q*n == 0 selected the first bucket's lower
  // edge (a value below every sample), and q*n landing exactly on a
  // cumulative count pinned the estimate to that bucket's upper edge — a
  // full bucket width of bias for the sample that owns the rank.
  const uint64_t k = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(n))));
  uint64_t cumulative = 0;
  double value = max();
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = bucket_count(i);
    if (c == 0) continue;
    if (k <= cumulative + c) {
      // Rank k is the (k - cumulative)-th of the c samples here; estimate
      // it at that sample's midpoint share of the bucket width, so a
      // boundary rank stays strictly inside its owning bucket.
      const double fraction = (static_cast<double>(k - cumulative) - 0.5) /
                              static_cast<double>(c);
      value = BucketLowerMs(i) +
              fraction * (BucketUpperMs(i) - BucketLowerMs(i));
      break;
    }
    cumulative += c;
  }
  // The covering bucket may be wider than the observed extremes (e.g. a
  // single sample): the true quantile can never leave [min, max].
  return std::clamp(value, min(), max());
}

JsonValue LatencyHistogram::ToJson() const {
  JsonValue out = JsonValue::Object();
  const uint64_t n = count();
  out.Set("count", JsonValue(n));
  out.Set("sum", JsonValue(sum()));
  out.Set("mean", JsonValue(mean()));
  out.Set("min", n > 0 ? JsonValue(min()) : JsonValue());
  out.Set("max", n > 0 ? JsonValue(max()) : JsonValue());
  out.Set("p50", JsonValue(Quantile(0.50)));
  out.Set("p95", JsonValue(Quantile(0.95)));
  out.Set("p99", JsonValue(Quantile(0.99)));
  JsonValue buckets = JsonValue::Array();
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = bucket_count(i);
    if (c == 0) continue;  // sparse export keeps artifacts small
    JsonValue bucket = JsonValue::Object();
    bucket.Set("le", JsonValue(BucketUpperMs(i)));
    bucket.Set("count", JsonValue(c));
    buckets.Append(std::move(bucket));
  }
  out.Set("buckets", std::move(buckets));
  return out;
}

JsonValue LatencySummaryJson(const LatencyHistogram& histogram) {
  JsonValue out = JsonValue::Object();
  out.Set("count", JsonValue(histogram.count()));
  out.Set("p50_ms", JsonValue(histogram.Quantile(0.50)));
  out.Set("p95_ms", JsonValue(histogram.Quantile(0.95)));
  out.Set("p99_ms", JsonValue(histogram.Quantile(0.99)));
  return out;
}

void LatencyHistogram::Zero() {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBoundsMs();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

LatencyHistogram& MetricsRegistry::GetLatencyHistogram(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = latency_histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second.get() : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.get() : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

const LatencyHistogram* MetricsRegistry::FindLatencyHistogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = latency_histograms_.find(name);
  return it != latency_histograms_.end() ? it->second.get() : nullptr;
}

std::vector<std::pair<std::string, const Counter*>> MetricsRegistry::Counters()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter.get());
  }
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> MetricsRegistry::Gauges()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge.get());
  }
  return out;
}

std::vector<std::pair<std::string, const LatencyHistogram*>>
MetricsRegistry::LatencyHistograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const LatencyHistogram*>> out;
  out.reserve(latency_histograms_.size());
  for (const auto& [name, histogram] : latency_histograms_) {
    out.emplace_back(name, histogram.get());
  }
  return out;
}

JsonValue MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name, JsonValue(counter->value()));
  }
  out.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, JsonValue(gauge->value()));
  }
  out.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, histogram] : histograms_) {
    histograms.Set(name, histogram->ToJson());
  }
  out.Set("histograms", std::move(histograms));
  JsonValue latency = JsonValue::Object();
  for (const auto& [name, histogram] : latency_histograms_) {
    latency.Set(name, histogram->ToJson());
  }
  out.Set("latency_histograms", std::move(latency));
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : counters_) entry.second->Zero();
  for (auto& entry : gauges_) entry.second->Zero();
  for (auto& entry : histograms_) entry.second->Zero();
  for (auto& entry : latency_histograms_) entry.second->Zero();
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         latency_histograms_.size();
}

ScopedTimer::ScopedTimer(Histogram& histogram)
    : histogram_(&histogram), start_(std::chrono::steady_clock::now()) {}

ScopedTimer::ScopedTimer(LatencyHistogram& histogram)
    : latency_histogram_(&histogram),
      start_(std::chrono::steady_clock::now()) {}

double ScopedTimer::ElapsedMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

ScopedTimer::~ScopedTimer() {
  if (histogram_ != nullptr) histogram_->Observe(ElapsedMs());
  if (latency_histogram_ != nullptr) latency_histogram_->Observe(ElapsedMs());
}

}  // namespace obs
}  // namespace telekit

#ifndef TELEKIT_OBS_REQUESTLOG_H_
#define TELEKIT_OBS_REQUESTLOG_H_

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/admin.h"
#include "obs/json.h"

namespace telekit {
namespace obs {

/// One wide event: everything known about one served request, in one
/// record. Durations are microseconds; `t_s` shares the TraceNowUs()
/// epoch (seconds since process start).
struct WideEvent {
  double t_s = 0.0;
  uint64_t trace_id = 0;
  std::string op;        ///< "rca" | "eap" | "fct" | "encode" | "detect"
  int batch_size = 0;    ///< batch the request was fulfilled in (0 = none)
  bool cache_hit = false;
  uint64_t queue_us = 0;
  uint64_t encode_us = 0;
  uint64_t score_us = 0;
  uint64_t total_us = 0;
  std::string verdict;   ///< top-1 result name ("" when none)
  bool ok = true;
  std::string status;    ///< "ok" or the error message
  // Routing story, filled by telekit_router (attempts > 0 marks a routed
  // event; serve-side events leave these at their defaults and do not
  // serialize them).
  std::string replica;   ///< replica that answered ("" when none did)
  int attempts = 0;      ///< forwarding attempts (first try + retries + hedge)
  std::string hedge;     ///< "" (not hedged) | "won" | "lost"

  /// Trace ids serialize as 16-hex strings (JSON numbers are doubles and
  /// cannot carry 64 bits exactly).
  JsonValue ToJson() const;
  /// Strict parse of ToJson()'s shape — the NDJSON sink round-trips
  /// through this. False on missing/mistyped fields.
  static bool FromJson(const JsonValue& value, WideEvent* out);
};

/// Bounded ring of wide events with an optional NDJSON file sink,
/// queryable via /requestz. One process-global instance so the serve
/// engine can record from any completion path without plumbing.
/// Thread-safe; Record is O(1) plus one formatted write when a sink is
/// attached.
class RequestLog {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  static RequestLog& Global();

  explicit RequestLog(size_t capacity = kDefaultCapacity);

  void Record(WideEvent event);

  /// Attaches (append mode) or, with "", detaches the NDJSON sink. Events
  /// are flushed per record so a crash loses at most the in-flight line.
  /// False when the file cannot be opened.
  bool SetSinkFile(const std::string& path);
  std::string sink_path() const;

  struct Filter {
    uint64_t trace_id = 0;  ///< 0 = any
    std::string op;         ///< "" = any
    double min_ms = 0.0;    ///< keep events with total >= this
    size_t limit = 100;     ///< newest-first cap
  };

  /// Matching events, newest first.
  std::vector<WideEvent> Query(const Filter& filter) const;

  /// GET /requestz?trace_id=<hex>&op=rca&min_ms=5&limit=50.
  /// Malformed trace_id/min_ms/limit -> 400 JSON error.
  HttpResponse HandleQuery(const HttpRequest& request) const;

  size_t size() const;
  uint64_t total_recorded() const;
  void Reset();  ///< clears the ring and counters; keeps the sink

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<WideEvent> ring_;
  size_t head_ = 0;  // next overwrite slot once full
  uint64_t total_recorded_ = 0;
  std::ofstream sink_;
  std::string sink_path_;
};

/// Latest exemplar per (histogram, bucket): the most recent trace id that
/// landed in each latency bucket, attached to `_bucket` lines in the
/// Prometheus exposition as
///
///   telekit_x_bucket{le="25.1"} 93 # {trace_id="4fca..."} 23.7 1754600000
///
/// so a scrape that shows a slow bucket links directly to a replayable
/// trace in /requestz. Thread-safe; Record is one map upsert.
class ExemplarStore {
 public:
  static ExemplarStore& Global();

  struct Exemplar {
    uint64_t trace_id = 0;
    double value_ms = 0.0;
    double unix_s = 0.0;  ///< wall-clock seconds (Prometheus timestamp)
  };

  /// Latest-wins upsert into the bucket of `histogram_name` that contains
  /// `value_ms` (same bucketing as LatencyHistogram).
  void Record(const std::string& histogram_name, double value_ms,
              uint64_t trace_id);

  /// Exemplar for the bucket with inclusive upper bound `le_ms`; false
  /// when that bucket has seen no exemplar.
  bool Find(const std::string& histogram_name, double le_ms,
            Exemplar* out) const;

  void Reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::map<double, Exemplar>> exemplars_;
};

}  // namespace obs
}  // namespace telekit

#endif  // TELEKIT_OBS_REQUESTLOG_H_

#ifndef TELEKIT_OBS_LOG_H_
#define TELEKIT_OBS_LOG_H_

#include <atomic>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace telekit {
namespace obs {

/// Severity levels, ordered: a logger at level L emits records with
/// severity >= L. kOff silences everything.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "debug"/"info"/"warn"/"error"/"off" (case-insensitive); falls back to
/// `fallback` on unknown input.
LogLevel ParseLogLevel(const std::string& text,
                       LogLevel fallback = LogLevel::kInfo);
const char* LogLevelName(LogLevel level);

/// One emitted log record, handed to the active sink. `message` is the
/// free-text part; `fields` are the structured key=value pairs streamed
/// via obs::F().
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";
  int line = 0;
  /// Milliseconds since process start (steady clock).
  double elapsed_ms = 0.0;
  std::string message;
  std::vector<std::pair<std::string, std::string>> fields;

  /// "message key=value key=value" — what the default sink prints after
  /// its prefix.
  std::string Rendered() const;
};

using LogSink = std::function<void(const LogRecord&)>;

/// Process-wide logger. The level is read from the TELEKIT_LOG_LEVEL
/// environment variable at first use (default: info) and can be changed
/// at runtime. The sink defaults to stderr; tests swap it out with
/// SetSink() to capture records.
class Logger {
 public:
  static Logger& Global();

  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// Replaces the sink; a null sink restores the default stderr sink.
  void SetSink(LogSink sink);
  void Dispatch(const LogRecord& record);

 private:
  Logger();

  std::atomic<int> level_;
  LogSink sink_;  // null -> default stderr sink
};

/// A structured field: TELEKIT_LOG(INFO) << "step done" << obs::F("loss", x).
/// The value is rendered with operator<< at the call site.
struct F {
  template <typename T>
  F(std::string k, const T& v) : key(std::move(k)) {
    std::ostringstream stream;
    stream << v;
    value = stream.str();
  }
  std::string key;
  std::string value;
};

/// Accumulates one record and dispatches it on destruction (end of the
/// full-expression, i.e. after all <<'s ran).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  LogMessage& operator<<(const F& field) {
    record_.fields.emplace_back(field.key, field.value);
    return *this;
  }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogRecord record_;
  std::ostringstream stream_;
};

/// Swallows the LogMessage when the level is disabled; keeps the macro a
/// single expression so it is safe in unbraced if/else.
class LogVoidify {
 public:
  void operator&(const LogMessage&) {}
};

namespace log_severity {
inline constexpr LogLevel DEBUG = LogLevel::kDebug;
inline constexpr LogLevel INFO = LogLevel::kInfo;
inline constexpr LogLevel WARN = LogLevel::kWarn;
inline constexpr LogLevel ERROR = LogLevel::kError;
}  // namespace log_severity

}  // namespace obs
}  // namespace telekit

/// Leveled structured logging:
///   TELEKIT_LOG(INFO) << "pretrain step" << obs::F("step", s)
///                     << obs::F("loss", stats.total_loss);
/// Disabled levels cost one relaxed atomic load and a branch; no
/// formatting or allocation happens.
#define TELEKIT_LOG(severity)                                               \
  !::telekit::obs::Logger::Global().Enabled(                                \
      ::telekit::obs::log_severity::severity)                               \
      ? (void)0                                                             \
      : ::telekit::obs::LogVoidify() &                                      \
            ::telekit::obs::LogMessage(                                     \
                ::telekit::obs::log_severity::severity, __FILE__, __LINE__)

#endif  // TELEKIT_OBS_LOG_H_

#ifndef TELEKIT_OBS_JSON_H_
#define TELEKIT_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace telekit {
namespace obs {

/// A minimal JSON document model used by the observability layer: metric
/// snapshots, span aggregates, and Chrome trace_event dumps are all built
/// as JsonValue trees and serialized with Dump(). Parse() exists so tests
/// (and tools) can round-trip artifacts without an external dependency.
///
/// Numbers are stored as double; object keys keep insertion order so the
/// emitted artifacts diff cleanly between runs.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double d) : type_(Type::kNumber), number_(d) {}
  explicit JsonValue(int i) : type_(Type::kNumber), number_(i) {}
  explicit JsonValue(int64_t i)
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  explicit JsonValue(uint64_t i)
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(const char* s) : type_(Type::kString), string_(s) {}

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }

  // --- Array access ---------------------------------------------------------
  size_t size() const {
    return type_ == Type::kArray ? items_.size() : members_.size();
  }
  const JsonValue& at(size_t i) const { return items_[i]; }
  void Append(JsonValue v) { items_.push_back(std::move(v)); }

  // --- Object access --------------------------------------------------------
  /// Sets (or replaces) a member, preserving first-insertion order.
  void Set(const std::string& key, JsonValue v);
  /// Member lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Compact serialization (no insignificant whitespace except after ':'
  /// and ','). `indent` > 0 pretty-prints with that many spaces per level.
  std::string Dump(int indent = 0) const;

  /// Parses a JSON document. Returns true and fills `out` on success;
  /// on failure returns false and, if `error` is non-null, a message with
  /// the byte offset of the first problem.
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error = nullptr);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;   // kObject
};

/// Escapes a string for embedding in a JSON document (without quotes).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace telekit

#endif  // TELEKIT_OBS_JSON_H_

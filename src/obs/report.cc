#include "obs/report.h"

#include <fstream>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace telekit {
namespace obs {

JsonValue BuildReport() {
  JsonValue out = JsonValue::Object();
  out.Set("metrics", MetricsRegistry::Global().Snapshot());
  out.Set("spans", TraceCollector::Global().AggregateJson());
  out.Set("traceEvents", TraceCollector::Global().TraceEventsJson());
  return out;
}

bool WriteReport(const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    TELEKIT_LOG(ERROR) << "cannot open obs report for writing"
                       << F("path", path);
    return false;
  }
  file << BuildReport().Dump(/*indent=*/2) << "\n";
  file.flush();
  if (!file) {
    TELEKIT_LOG(ERROR) << "short write on obs report" << F("path", path);
    return false;
  }
  TELEKIT_LOG(INFO) << "wrote obs report" << F("path", path)
                    << F("metrics", MetricsRegistry::Global().NumMetrics())
                    << F("events", TraceCollector::Global().NumEvents());
  return true;
}

}  // namespace obs
}  // namespace telekit

#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/log.h"

namespace telekit {
namespace obs {

namespace {

/// Strict positive-double parse for query parameters; false on trailing
/// junk, negatives, or empty input.
bool ParsePositiveDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || !(v >= 0.0)) return false;
  *out = v;
  return true;
}

JsonValue SamplePairs(const std::vector<TimeSeriesSample>& samples,
                      double step_s) {
  JsonValue out = JsonValue::Array();
  double last_emitted = -1.0e300;
  for (const TimeSeriesSample& sample : samples) {
    if (step_s > 0.0 && sample.t_s - last_emitted < step_s) continue;
    last_emitted = sample.t_s;
    JsonValue pair = JsonValue::Array();
    pair.Append(JsonValue(sample.t_s));
    pair.Append(JsonValue(sample.value));
    out.Append(std::move(pair));
  }
  return out;
}

}  // namespace

const char* SeriesKindName(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounter:
      return "counter";
    case SeriesKind::kGauge:
      return "gauge";
    case SeriesKind::kQuantile:
      return "quantile";
  }
  return "unknown";
}

TimeSeriesStore::TimeSeriesStore(TimeSeriesOptions options,
                                 MetricsRegistry* registry)
    : options_([&options] {
        if (!(options.interval_s > 0.0)) options.interval_s = 1.0;
        if (options.capacity < 2) options.capacity = 2;
        return options;
      }()),
      registry_(registry),
      epoch_(std::chrono::steady_clock::now()) {}

TimeSeriesStore::~TimeSeriesStore() { Stop(); }

std::string TimeSeriesStore::ThresholdSeriesName(
    const std::string& histogram_name, double threshold_ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", threshold_ms);
  return histogram_name + "/le_" + buf;
}

void TimeSeriesStore::TrackLatencyThreshold(const std::string& histogram_name,
                                            double threshold_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, threshold] : thresholds_) {
    if (name == histogram_name && threshold == threshold_ms) return;
  }
  thresholds_.emplace_back(histogram_name, threshold_ms);
}

double TimeSeriesStore::now_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void TimeSeriesStore::Append(const std::string& name, SeriesKind kind,
                             double t_s, double value) {
  Series& series = series_[name];
  series.kind = kind;
  if (series.ring.size() < options_.capacity) {
    series.ring.push_back({t_s, value});
  } else {
    series.ring[series.head] = {t_s, value};
    series.head = (series.head + 1) % series.ring.size();
  }
}

void TimeSeriesStore::SampleNow(double now_s) {
  // The registry enumerations take the registry lock; grab them before the
  // store lock so the two are never held together.
  const auto counters = registry_->Counters();
  const auto gauges = registry_->Gauges();
  const auto histograms = registry_->LatencyHistograms();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, counter] : counters) {
      Append(name, SeriesKind::kCounter, now_s,
             static_cast<double>(counter->value()));
    }
    for (const auto& [name, gauge] : gauges) {
      Append(name, SeriesKind::kGauge, now_s, gauge->value());
    }
    for (const auto& [name, histogram] : histograms) {
      Append(name + "/p50", SeriesKind::kQuantile, now_s,
             histogram->Quantile(0.50));
      Append(name + "/p95", SeriesKind::kQuantile, now_s,
             histogram->Quantile(0.95));
      Append(name + "/p99", SeriesKind::kQuantile, now_s,
             histogram->Quantile(0.99));
      Append(name + "/count", SeriesKind::kCounter, now_s,
             static_cast<double>(histogram->count()));
    }
    for (const auto& [name, threshold] : thresholds_) {
      const LatencyHistogram* histogram =
          registry_->FindLatencyHistogram(name);
      if (histogram == nullptr) continue;  // objective on a not-yet-used op
      Append(ThresholdSeriesName(name, threshold), SeriesKind::kCounter,
             now_s, static_cast<double>(histogram->CountAtOrBelow(threshold)));
    }
    ++samples_taken_;
  }
}

void TimeSeriesStore::Start() {
  {
    std::lock_guard<std::mutex> lock(sampler_mutex_);
    if (running_) return;
    stop_ = false;
    running_ = true;
  }
  sampler_ = std::thread([this] { SamplerLoop(); });
  TELEKIT_LOG(INFO) << "timeseries sampler started"
                    << F("interval_s", options_.interval_s)
                    << F("capacity", options_.capacity);
}

void TimeSeriesStore::Stop() {
  {
    std::lock_guard<std::mutex> lock(sampler_mutex_);
    if (!running_) return;
    stop_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
  std::lock_guard<std::mutex> lock(sampler_mutex_);
  running_ = false;
}

bool TimeSeriesStore::running() const {
  std::lock_guard<std::mutex> lock(sampler_mutex_);
  return running_;
}

void TimeSeriesStore::SamplerLoop() {
  const auto interval = std::chrono::duration<double>(options_.interval_s);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(sampler_mutex_);
      if (sampler_cv_.wait_for(lock, interval, [this] { return stop_; })) {
        return;
      }
    }
    const double now = now_s();
    SampleNow(now);
    std::function<void(double)> callback;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      callback = on_sample_;
    }
    if (callback) callback(now);
  }
}

void TimeSeriesStore::SetOnSample(std::function<void(double)> on_sample) {
  std::lock_guard<std::mutex> lock(mutex_);
  on_sample_ = std::move(on_sample);
}

uint64_t TimeSeriesStore::samples_taken() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return samples_taken_;
}

std::vector<TimeSeriesSample> TimeSeriesStore::ChronologicalLocked(
    const Series& series) const {
  std::vector<TimeSeriesSample> out;
  out.reserve(series.ring.size());
  // Once the ring is full, `head` is the oldest slot (the next overwrite
  // target); before that, slot 0 is.
  for (size_t i = 0; i < series.ring.size(); ++i) {
    out.push_back(series.ring[(series.head + i) % series.ring.size()]);
  }
  return out;
}

std::vector<TimeSeriesSample> TimeSeriesStore::SeriesSamples(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(name);
  if (it == series_.end()) return {};
  return ChronologicalLocked(it->second);
}

double TimeSeriesStore::CounterDelta(const std::string& name, double window_s,
                                     double now_s) const {
  std::vector<TimeSeriesSample> samples = SeriesSamples(name);
  if (samples.size() < 2) return 0.0;
  const double window_start = now_s - window_s;
  // First in-window index; the sample just before it is the baseline the
  // first delta is measured against.
  size_t first = samples.size();
  for (size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].t_s > window_start && samples[i].t_s <= now_s) {
      first = i;
      break;
    }
  }
  if (first == samples.size()) return 0.0;  // nothing inside the window
  const size_t baseline = first > 0 ? first - 1 : first;
  double delta = 0.0;
  for (size_t i = baseline + 1;
       i < samples.size() && samples[i].t_s <= now_s; ++i) {
    // Per-pair clamp: a counter reset mid-window discards the wrapped
    // segment instead of contributing a negative delta.
    delta += std::max(0.0, samples[i].value - samples[i - 1].value);
  }
  return delta;
}

JsonValue TimeSeriesStore::QueryJson(double window_s, double step_s,
                                     const std::string& prefix) const {
  const double now = now_s();
  JsonValue out = JsonValue::Object();
  out.Set("now_s", JsonValue(now));
  out.Set("interval_s", JsonValue(options_.interval_s));
  out.Set("capacity", JsonValue(static_cast<uint64_t>(options_.capacity)));
  JsonValue series_json = JsonValue::Object();
  std::lock_guard<std::mutex> lock(mutex_);
  out.Set("samples_taken", JsonValue(samples_taken_));
  // Anchor the window at the newest timestamp seen, so histories driven by
  // a synthetic SampleNow clock (tests) window the same way live ones do.
  double anchor = now;
  for (const auto& [name, series] : series_) {
    (void)name;
    for (const TimeSeriesSample& sample : series.ring) {
      anchor = std::max(anchor, sample.t_s);
    }
  }
  const double window_start = anchor - window_s;
  for (const auto& [name, series] : series_) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    std::vector<TimeSeriesSample> samples = ChronologicalLocked(series);
    std::vector<TimeSeriesSample> rates;
    if (series.kind == SeriesKind::kCounter) {
      for (size_t i = 1; i < samples.size(); ++i) {
        const double dt = samples[i].t_s - samples[i - 1].t_s;
        if (dt <= 0.0) continue;
        rates.push_back(
            {samples[i].t_s,
             std::max(0.0, samples[i].value - samples[i - 1].value) / dt});
      }
    }
    auto in_window = [&](const TimeSeriesSample& s) {
      return s.t_s < window_start;
    };
    samples.erase(std::remove_if(samples.begin(), samples.end(), in_window),
                  samples.end());
    rates.erase(std::remove_if(rates.begin(), rates.end(), in_window),
                rates.end());
    if (samples.empty()) continue;
    JsonValue entry = JsonValue::Object();
    entry.Set("kind", JsonValue(SeriesKindName(series.kind)));
    entry.Set("samples", SamplePairs(samples, step_s));
    if (series.kind == SeriesKind::kCounter) {
      entry.Set("rate_per_s", SamplePairs(rates, step_s));
    }
    series_json.Set(name, std::move(entry));
  }
  out.Set("series", std::move(series_json));
  return out;
}

HttpResponse TimeSeriesStore::HandleQuery(const HttpRequest& request) const {
  const std::map<std::string, std::string> params = ParseQuery(request.query);
  double window_s = 60.0;
  double step_s = 0.0;
  std::string prefix;
  for (const auto& [key, value] : params) {
    if (key == "window") {
      if (!ParsePositiveDouble(value, &window_s)) {
        JsonValue error = JsonValue::Object();
        error.Set("error", JsonValue("bad window: " + value));
        return HttpResponse::Json(400, error);
      }
    } else if (key == "step") {
      if (!ParsePositiveDouble(value, &step_s)) {
        JsonValue error = JsonValue::Object();
        error.Set("error", JsonValue("bad step: " + value));
        return HttpResponse::Json(400, error);
      }
    } else if (key == "prefix") {
      prefix = value;
    }
  }
  return HttpResponse::Json(200, QueryJson(window_s, step_s, prefix));
}

}  // namespace obs
}  // namespace telekit

#include "obs/trace.h"

#include <algorithm>
#include <utility>

namespace telekit {
namespace obs {

namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

thread_local Span* g_current_span = nullptr;
thread_local int g_span_depth = 0;

}  // namespace

uint64_t TraceNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::Record(const std::string& name, uint64_t start_us,
                            uint64_t dur_us, uint64_t child_us, int depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  SpanStats& stats = aggregate_[name];
  stats.count += 1;
  stats.total_us += dur_us;
  stats.self_us += dur_us > child_us ? dur_us - child_us : 0;
  stats.max_us = std::max(stats.max_us, dur_us);
  if (recording_ && events_.size() < kMaxEvents) {
    events_.push_back(TraceEvent{name, start_us, dur_us, depth});
  }
}

std::map<std::string, SpanStats> TraceCollector::Aggregate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aggregate_;
}

size_t TraceCollector::NumEvents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

JsonValue TraceCollector::TraceEventsJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::Array();
  for (const TraceEvent& event : events_) {
    JsonValue e = JsonValue::Object();
    e.Set("name", JsonValue(event.name));
    e.Set("ph", JsonValue("X"));
    e.Set("ts", JsonValue(event.start_us));
    e.Set("dur", JsonValue(event.dur_us));
    e.Set("pid", JsonValue(1));
    e.Set("tid", JsonValue(1));
    JsonValue args = JsonValue::Object();
    args.Set("depth", JsonValue(event.depth));
    e.Set("args", std::move(args));
    out.Append(std::move(e));
  }
  return out;
}

JsonValue TraceCollector::AggregateJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::Object();
  for (const auto& [name, stats] : aggregate_) {
    JsonValue s = JsonValue::Object();
    s.Set("count", JsonValue(stats.count));
    s.Set("total_ms", JsonValue(static_cast<double>(stats.total_us) / 1000.0));
    s.Set("self_ms", JsonValue(static_cast<double>(stats.self_us) / 1000.0));
    s.Set("mean_ms",
          JsonValue(stats.count > 0
                        ? static_cast<double>(stats.total_us) /
                              (1000.0 * static_cast<double>(stats.count))
                        : 0.0));
    s.Set("max_ms", JsonValue(static_cast<double>(stats.max_us) / 1000.0));
    out.Set(name, std::move(s));
  }
  return out;
}

void TraceCollector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  aggregate_.clear();
}

Span::Span(std::string name)
    : name_(std::move(name)),
      start_(std::chrono::steady_clock::now()),
      start_us_(TraceNowUs()),
      depth_(g_span_depth),
      parent_(g_current_span) {
  g_current_span = this;
  ++g_span_depth;
}

uint64_t Span::ElapsedUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

Span::~Span() {
  const uint64_t dur_us = ElapsedUs();
  g_current_span = parent_;
  --g_span_depth;
  if (parent_ != nullptr) parent_->child_us_ += dur_us;
  TraceCollector::Global().Record(name_, start_us_, dur_us, child_us_,
                                  depth_);
}

}  // namespace obs
}  // namespace telekit

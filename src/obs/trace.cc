#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <utility>

#include "obs/log.h"

namespace telekit {
namespace obs {

namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

thread_local Span* g_current_span = nullptr;
thread_local int g_span_depth = 0;

}  // namespace

uint64_t TraceNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

TraceCollector& TraceCollector::Global() {
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

void TraceCollector::Record(const std::string& name, uint64_t start_us,
                            uint64_t dur_us, uint64_t child_us, int depth) {
  bool first_drop = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SpanStats& stats = aggregate_[name];
    stats.count += 1;
    stats.total_us += dur_us;
    stats.self_us += dur_us > child_us ? dur_us - child_us : 0;
    stats.max_us = std::max(stats.max_us, dur_us);
    if (recording_) {
      if (events_.size() < max_events_) {
        events_.push_back(TraceEvent{name, start_us, dur_us, depth});
      } else {
        first_drop = dropped_events_ == 0;
        ++dropped_events_;
      }
    }
  }
  // Log outside the lock: a sink is free to open spans of its own.
  if (first_drop) {
    TELEKIT_LOG(WARN) << "trace recording saturated; dropping further events"
                      << F("max_events", max_events_) << F("span", name);
  }
}

std::map<std::string, SpanStats> TraceCollector::Aggregate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aggregate_;
}

size_t TraceCollector::NumEvents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

uint64_t TraceCollector::NumDropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_events_;
}

void TraceCollector::set_max_events(size_t max_events) {
  std::lock_guard<std::mutex> lock(mutex_);
  max_events_ = max_events;
}

JsonValue TraceCollector::TraceEventsJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::Array();
  for (const TraceEvent& event : events_) {
    JsonValue e = JsonValue::Object();
    e.Set("name", JsonValue(event.name));
    e.Set("ph", JsonValue("X"));
    e.Set("ts", JsonValue(event.start_us));
    e.Set("dur", JsonValue(event.dur_us));
    e.Set("pid", JsonValue(1));
    e.Set("tid", JsonValue(1));
    JsonValue args = JsonValue::Object();
    args.Set("depth", JsonValue(event.depth));
    e.Set("args", std::move(args));
    out.Append(std::move(e));
  }
  return out;
}

JsonValue TraceCollector::AggregateJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::Object();
  for (const auto& [name, stats] : aggregate_) {
    JsonValue s = JsonValue::Object();
    s.Set("count", JsonValue(stats.count));
    s.Set("total_ms", JsonValue(static_cast<double>(stats.total_us) / 1000.0));
    s.Set("self_ms", JsonValue(static_cast<double>(stats.self_us) / 1000.0));
    s.Set("mean_ms",
          JsonValue(stats.count > 0
                        ? static_cast<double>(stats.total_us) /
                              (1000.0 * static_cast<double>(stats.count))
                        : 0.0));
    s.Set("max_ms", JsonValue(static_cast<double>(stats.max_us) / 1000.0));
    out.Set(name, std::move(s));
  }
  out.Set("dropped_events", JsonValue(dropped_events_));
  return out;
}

void TraceCollector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  aggregate_.clear();
  dropped_events_ = 0;
}

uint64_t NextTraceId() {
  static std::atomic<uint64_t> counter{
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count())};
  // SplitMix64 finalizer: consecutive counter values map to well-spread
  // ids, and the result is only 0 for one counter value in 2^64.
  uint64_t x = counter.fetch_add(1, std::memory_order_relaxed);
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x != 0 ? x : 1;
}

std::string TraceIdToHex(uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return std::string(buf);
}

bool ParseTraceIdHex(const std::string& text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

SlowTraceRing& SlowTraceRing::Global() {
  static SlowTraceRing* ring = new SlowTraceRing();
  return *ring;
}

SlowTraceRing::SlowTraceRing(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

void SlowTraceRing::Record(RequestTrace trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
    return;
  }
  ring_[next_] = std::move(trace);
  next_ = (next_ + 1) % capacity_;
}

std::vector<RequestTrace> SlowTraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RequestTrace> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

JsonValue SlowTraceRing::TraceEventsJson() const {
  const std::vector<RequestTrace> traces = Snapshot();
  JsonValue out = JsonValue::Array();
  int lane = 0;
  for (const RequestTrace& trace : traces) {
    ++lane;  // one Chrome "thread" per slow request keeps slices separated
    const struct {
      const char* name;
      uint64_t start;
      uint64_t dur;
    } stages[] = {
        {"queue", trace.start_us, trace.queue_us},
        {"batch", trace.start_us + trace.queue_us, trace.batch_us},
        {"encode", trace.start_us + trace.queue_us, trace.encode_us},
        {"score", trace.start_us + trace.queue_us + trace.batch_us -
                      std::min(trace.batch_us, trace.score_us),
         trace.score_us},
    };
    for (const auto& stage : stages) {
      if (stage.dur == 0) continue;
      JsonValue e = JsonValue::Object();
      e.Set("name", JsonValue(std::string(trace.op) + "/" + stage.name));
      e.Set("ph", JsonValue("X"));
      e.Set("ts", JsonValue(stage.start));
      e.Set("dur", JsonValue(stage.dur));
      e.Set("pid", JsonValue(1));
      e.Set("tid", JsonValue(lane));
      JsonValue args = JsonValue::Object();
      args.Set("trace", JsonValue(TraceIdToHex(trace.trace_id)));
      args.Set("op", JsonValue(trace.op));
      args.Set("detail", JsonValue(trace.detail));
      args.Set("total_us", JsonValue(trace.total_us));
      args.Set("ok", JsonValue(trace.ok));
      e.Set("args", std::move(args));
      out.Append(std::move(e));
    }
  }
  return out;
}

size_t SlowTraceRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

uint64_t SlowTraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void SlowTraceRing::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

Span::Span(std::string name)
    : name_(std::move(name)),
      start_(std::chrono::steady_clock::now()),
      start_us_(TraceNowUs()),
      depth_(g_span_depth),
      parent_(g_current_span) {
  g_current_span = this;
  ++g_span_depth;
}

uint64_t Span::ElapsedUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

Span::~Span() {
  const uint64_t dur_us = ElapsedUs();
  g_current_span = parent_;
  --g_span_depth;
  if (parent_ != nullptr) parent_->child_us_ += dur_us;
  TraceCollector::Global().Record(name_, start_us_, dur_us, child_us_,
                                  depth_);
}

}  // namespace obs
}  // namespace telekit

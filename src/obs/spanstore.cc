#include "obs/spanstore.h"

#include <unistd.h>

#include <chrono>
#include <utility>

#include "obs/trace.h"

namespace telekit {
namespace obs {

namespace {

bool ReadOptionalHex(const JsonValue& value, const char* key, uint64_t* out) {
  const JsonValue* field = value.Find(key);
  if (field == nullptr || field->is_null()) {
    *out = 0;
    return true;
  }
  return field->is_string() && ParseTraceIdHex(field->AsString(), out);
}

}  // namespace

double UnixNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

JsonValue SpanRecord::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("trace_id", JsonValue(TraceIdToHex(trace_id)));
  out.Set("span_id", JsonValue(TraceIdToHex(span_id)));
  out.Set("parent_span", parent_span != 0
                             ? JsonValue(TraceIdToHex(parent_span))
                             : JsonValue());
  out.Set("name", JsonValue(name));
  out.Set("process", JsonValue(process));
  out.Set("replica", JsonValue(replica));
  out.Set("outcome", JsonValue(outcome));
  out.Set("attempt", JsonValue(attempt));
  out.Set("hedge", JsonValue(hedge));
  out.Set("ok", JsonValue(ok));
  out.Set("start_unix_us", JsonValue(start_unix_us));
  out.Set("dur_us", JsonValue(dur_us));
  return out;
}

bool SpanRecord::FromJson(const JsonValue& value, SpanRecord* out) {
  if (!value.is_object()) return false;
  SpanRecord span;
  const JsonValue* trace = value.Find("trace_id");
  const JsonValue* id = value.Find("span_id");
  const JsonValue* name = value.Find("name");
  const JsonValue* process = value.Find("process");
  const JsonValue* start = value.Find("start_unix_us");
  const JsonValue* dur = value.Find("dur_us");
  const JsonValue* ok = value.Find("ok");
  if (trace == nullptr || !trace->is_string() ||
      !ParseTraceIdHex(trace->AsString(), &span.trace_id) ||
      id == nullptr || !id->is_string() ||
      !ParseTraceIdHex(id->AsString(), &span.span_id) ||
      !ReadOptionalHex(value, "parent_span", &span.parent_span) ||
      name == nullptr || !name->is_string() ||
      process == nullptr || !process->is_string() ||
      start == nullptr || !start->is_number() ||
      dur == nullptr || !dur->is_number() ||
      ok == nullptr || !ok->is_bool()) {
    return false;
  }
  span.name = name->AsString();
  span.process = process->AsString();
  span.start_unix_us = start->AsNumber();
  span.dur_us = static_cast<uint64_t>(dur->AsNumber());
  span.ok = ok->AsBool();
  if (const JsonValue* replica = value.Find("replica");
      replica != nullptr && replica->is_string()) {
    span.replica = replica->AsString();
  }
  if (const JsonValue* outcome = value.Find("outcome");
      outcome != nullptr && outcome->is_string()) {
    span.outcome = outcome->AsString();
  }
  if (const JsonValue* attempt = value.Find("attempt");
      attempt != nullptr && attempt->is_number()) {
    span.attempt = static_cast<int>(attempt->AsNumber());
  }
  if (const JsonValue* hedge = value.Find("hedge");
      hedge != nullptr && hedge->is_bool()) {
    span.hedge = hedge->AsBool();
  }
  *out = std::move(span);
  return true;
}

SpanStore& SpanStore::Global() {
  static SpanStore* store = new SpanStore();
  return *store;
}

SpanStore::SpanStore(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity),
      process_label_("pid:" + std::to_string(::getpid())) {}

void SpanStore::Record(SpanRecord span) {
  if (span.span_id == 0) span.span_id = NextTraceId();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  if (span.process.empty()) span.process = process_label_;
  ++total_recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[head_] = std::move(span);
    head_ = (head_ + 1) % ring_.size();
  }
}

std::vector<SpanRecord> SpanStore::Query(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  // Oldest-first walk: head_ is the oldest slot once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    const size_t index =
        ring_.size() == capacity_ ? (head_ + i) % ring_.size() : i;
    if (ring_[index].trace_id == trace_id) out.push_back(ring_[index]);
  }
  return out;
}

JsonValue SpanStore::QueryJson(uint64_t trace_id) const {
  const std::vector<SpanRecord> spans = Query(trace_id);
  JsonValue out = JsonValue::Object();
  out.Set("trace_id", JsonValue(TraceIdToHex(trace_id)));
  out.Set("count", JsonValue(static_cast<uint64_t>(spans.size())));
  JsonValue items = JsonValue::Array();
  for (const SpanRecord& span : spans) items.Append(span.ToJson());
  out.Set("spans", std::move(items));
  return out;
}

HttpResponse SpanStore::HandleQuery(const HttpRequest& request) const {
  const std::map<std::string, std::string> params = ParseQuery(request.query);
  const auto it = params.find("trace_id");
  if (it == params.end()) {
    JsonValue out = JsonValue::Object();
    out.Set("process", JsonValue(process_label()));
    out.Set("enabled", JsonValue(enabled()));
    out.Set("size", JsonValue(static_cast<uint64_t>(size())));
    out.Set("capacity", JsonValue(static_cast<uint64_t>(capacity_)));
    out.Set("total_recorded", JsonValue(total_recorded()));
    return HttpResponse::Json(200, out);
  }
  uint64_t trace_id = 0;
  if (!ParseTraceIdHex(it->second, &trace_id)) {
    JsonValue error = JsonValue::Object();
    error.Set("error", JsonValue("bad trace_id: " + it->second));
    return HttpResponse::Json(400, error);
  }
  return HttpResponse::Json(200, QueryJson(trace_id));
}

bool SpanStore::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

void SpanStore::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

void SpanStore::SetProcessLabel(std::string label) {
  std::lock_guard<std::mutex> lock(mutex_);
  process_label_ = std::move(label);
}

std::string SpanStore::process_label() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return process_label_;
}

size_t SpanStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

uint64_t SpanStore::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

void SpanStore::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  total_recorded_ = 0;
}

}  // namespace obs
}  // namespace telekit

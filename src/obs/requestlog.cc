#include "obs/requestlog.h"

#include <chrono>
#include <cstdlib>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace telekit {
namespace obs {

namespace {

bool ReadNumber(const JsonValue& value, const char* key, double* out) {
  const JsonValue* field = value.Find(key);
  if (field == nullptr || !field->is_number()) return false;
  *out = field->AsNumber();
  return true;
}

bool ReadString(const JsonValue& value, const char* key, std::string* out) {
  const JsonValue* field = value.Find(key);
  if (field == nullptr || !field->is_string()) return false;
  *out = field->AsString();
  return true;
}

bool ReadBool(const JsonValue& value, const char* key, bool* out) {
  const JsonValue* field = value.Find(key);
  if (field == nullptr || !field->is_bool()) return false;
  *out = field->AsBool();
  return true;
}

double UnixNowS() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

JsonValue WideEvent::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("t_s", JsonValue(t_s));
  out.Set("trace_id", JsonValue(TraceIdToHex(trace_id)));
  out.Set("op", JsonValue(op));
  out.Set("batch_size", JsonValue(batch_size));
  out.Set("cache_hit", JsonValue(cache_hit));
  out.Set("queue_us", JsonValue(queue_us));
  out.Set("encode_us", JsonValue(encode_us));
  out.Set("score_us", JsonValue(score_us));
  out.Set("total_us", JsonValue(total_us));
  out.Set("verdict", JsonValue(verdict));
  out.Set("ok", JsonValue(ok));
  out.Set("status", JsonValue(status));
  if (attempts > 0) {
    out.Set("replica", JsonValue(replica));
    out.Set("attempts", JsonValue(attempts));
    out.Set("hedge", JsonValue(hedge));
  }
  return out;
}

bool WideEvent::FromJson(const JsonValue& value, WideEvent* out) {
  WideEvent event;
  std::string trace_hex;
  double batch = 0.0;
  double queue = 0.0, encode = 0.0, score = 0.0, total = 0.0;
  if (!ReadNumber(value, "t_s", &event.t_s) ||
      !ReadString(value, "trace_id", &trace_hex) ||
      !ParseTraceIdHex(trace_hex, &event.trace_id) ||
      !ReadString(value, "op", &event.op) ||
      !ReadNumber(value, "batch_size", &batch) ||
      !ReadBool(value, "cache_hit", &event.cache_hit) ||
      !ReadNumber(value, "queue_us", &queue) ||
      !ReadNumber(value, "encode_us", &encode) ||
      !ReadNumber(value, "score_us", &score) ||
      !ReadNumber(value, "total_us", &total) ||
      !ReadString(value, "verdict", &event.verdict) ||
      !ReadBool(value, "ok", &event.ok) ||
      !ReadString(value, "status", &event.status)) {
    return false;
  }
  event.batch_size = static_cast<int>(batch);
  event.queue_us = static_cast<uint64_t>(queue);
  event.encode_us = static_cast<uint64_t>(encode);
  event.score_us = static_cast<uint64_t>(score);
  event.total_us = static_cast<uint64_t>(total);
  // Routing fields ride only on router-recorded events; when present they
  // must parse (and travel together — ToJson writes all three).
  if (value.Find("attempts") != nullptr) {
    double attempts = 0.0;
    if (!ReadNumber(value, "attempts", &attempts) ||
        !ReadString(value, "replica", &event.replica) ||
        !ReadString(value, "hedge", &event.hedge)) {
      return false;
    }
    event.attempts = static_cast<int>(attempts);
  }
  *out = std::move(event);
  return true;
}

RequestLog& RequestLog::Global() {
  static RequestLog* log = new RequestLog();
  return *log;
}

RequestLog::RequestLog(size_t capacity)
    : capacity_(capacity < 1 ? 1 : capacity) {}

void RequestLog::Record(WideEvent event) {
  if (event.t_s == 0.0) {
    event.t_s = static_cast<double>(TraceNowUs()) / 1e6;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_recorded_;
  if (sink_.is_open()) {
    sink_ << event.ToJson().Dump(0) << '\n';
    sink_.flush();
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % ring_.size();
  }
}

bool RequestLog::SetSinkFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (sink_.is_open()) sink_.close();
  sink_path_.clear();
  if (path.empty()) return true;
  sink_.open(path, std::ios::out | std::ios::app);
  if (!sink_.is_open()) {
    TELEKIT_LOG(ERROR) << "request log sink open failed" << F("path", path);
    return false;
  }
  sink_path_ = path;
  return true;
}

std::string RequestLog::sink_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sink_path_;
}

std::vector<WideEvent> RequestLog::Query(const Filter& filter) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WideEvent> out;
  const double min_us = filter.min_ms * 1000.0;
  // Walk newest to oldest: the slot before head_ is the newest write.
  for (size_t i = 0; i < ring_.size() && out.size() < filter.limit; ++i) {
    const size_t index =
        (head_ + ring_.size() - 1 - i) % ring_.size();
    const WideEvent& event = ring_[index];
    if (filter.trace_id != 0 && event.trace_id != filter.trace_id) continue;
    if (!filter.op.empty() && event.op != filter.op) continue;
    if (static_cast<double>(event.total_us) < min_us) continue;
    out.push_back(event);
  }
  return out;
}

HttpResponse RequestLog::HandleQuery(const HttpRequest& request) const {
  const std::map<std::string, std::string> params = ParseQuery(request.query);
  Filter filter;
  for (const auto& [key, value] : params) {
    if (key == "trace_id") {
      if (!ParseTraceIdHex(value, &filter.trace_id)) {
        JsonValue error = JsonValue::Object();
        error.Set("error", JsonValue("bad trace_id: " + value));
        return HttpResponse::Json(400, error);
      }
    } else if (key == "op") {
      filter.op = value;
    } else if (key == "min_ms") {
      char* end = nullptr;
      const double ms = std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0' || !(ms >= 0.0)) {
        JsonValue error = JsonValue::Object();
        error.Set("error", JsonValue("bad min_ms: " + value));
        return HttpResponse::Json(400, error);
      }
      filter.min_ms = ms;
    } else if (key == "limit") {
      char* end = nullptr;
      const long limit = std::strtol(value.c_str(), &end, 10);
      if (value.empty() || end == nullptr || *end != '\0' || limit <= 0) {
        JsonValue error = JsonValue::Object();
        error.Set("error", JsonValue("bad limit: " + value));
        return HttpResponse::Json(400, error);
      }
      filter.limit = static_cast<size_t>(limit);
    }
  }
  const std::vector<WideEvent> events = Query(filter);
  JsonValue out = JsonValue::Object();
  out.Set("total_recorded", JsonValue(total_recorded()));
  out.Set("count", JsonValue(static_cast<uint64_t>(events.size())));
  JsonValue items = JsonValue::Array();
  for (const WideEvent& event : events) items.Append(event.ToJson());
  out.Set("events", std::move(items));
  return HttpResponse::Json(200, out);
}

size_t RequestLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

uint64_t RequestLog::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

void RequestLog::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  total_recorded_ = 0;
}

ExemplarStore& ExemplarStore::Global() {
  static ExemplarStore* store = new ExemplarStore();
  return *store;
}

void ExemplarStore::Record(const std::string& histogram_name, double value_ms,
                           uint64_t trace_id) {
  // Key by the containing bucket's inclusive upper bound — the exact
  // double the histogram's JSON/Prometheus export uses for `le`, so the
  // renderer can find this exemplar with a plain map lookup.
  const double le =
      LatencyHistogram::BucketUpperMs(LatencyHistogram::BucketIndex(value_ms));
  Exemplar exemplar;
  exemplar.trace_id = trace_id;
  exemplar.value_ms = value_ms;
  exemplar.unix_s = UnixNowS();
  std::lock_guard<std::mutex> lock(mutex_);
  exemplars_[histogram_name][le] = exemplar;
}

bool ExemplarStore::Find(const std::string& histogram_name, double le_ms,
                         Exemplar* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto by_name = exemplars_.find(histogram_name);
  if (by_name == exemplars_.end()) return false;
  const auto by_bucket = by_name->second.find(le_ms);
  if (by_bucket == by_name->second.end()) return false;
  *out = by_bucket->second;
  return true;
}

void ExemplarStore::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  exemplars_.clear();
}

}  // namespace obs
}  // namespace telekit

#include "obs/slo.h"

#include <algorithm>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"

namespace telekit {
namespace obs {

namespace {

Gauge& AlertsFiringGauge() {
  static Gauge& gauge =
      MetricsRegistry::Global().GetGauge("obs/alerts_firing");
  return gauge;
}

const char* KindName(SloObjective::Kind kind) {
  return kind == SloObjective::Kind::kAvailability ? "availability"
                                                   : "latency";
}

}  // namespace

const char* AlertStateName(AlertState state) {
  switch (state) {
    case AlertState::kHealthy:
      return "healthy";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
    case AlertState::kResolved:
      return "resolved";
  }
  return "unknown";
}

SloEngine::SloEngine(TimeSeriesStore* store, SloConfig config)
    : store_(store), config_(config) {}

void SloEngine::AddObjective(SloObjective objective) {
  if (objective.kind == SloObjective::Kind::kLatency) {
    store_->TrackLatencyThreshold(objective.histogram,
                                  objective.threshold_ms);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.status.name = objective.name;
  entry.status.kind = objective.kind;
  entry.objective = std::move(objective);
  entries_.push_back(std::move(entry));
}

double SloEngine::BurnRate(double bad, double total, double target) {
  total = std::max(total, bad);  // errors may outpace accounted requests
  if (total <= 0.0) return 0.0;
  const double ratio = std::min(1.0, bad / total);
  const double budget = std::max(1.0 - target, 1e-12);
  return ratio / budget;
}

double SloEngine::WindowBurn(const Entry& entry, double window_s,
                             double now_s, double* bad_out,
                             double* total_out) const {
  const SloObjective& objective = entry.objective;
  double bad = 0.0;
  double total = 0.0;
  if (objective.kind == SloObjective::Kind::kAvailability) {
    total = store_->CounterDelta(objective.total_counter, window_s, now_s);
    bad = store_->CounterDelta(objective.bad_counter, window_s, now_s);
  } else {
    total = store_->CounterDelta(objective.histogram + "/count", window_s,
                                 now_s);
    const double good = store_->CounterDelta(
        TimeSeriesStore::ThresholdSeriesName(objective.histogram,
                                             objective.threshold_ms),
        window_s, now_s);
    bad = std::max(0.0, total - good);
  }
  if (bad_out != nullptr) *bad_out = bad;
  if (total_out != nullptr) *total_out = total;
  return BurnRate(bad, total, objective.target);
}

void SloEngine::Transition(Entry* entry, AlertState next, double now_s) {
  SloStatus& status = entry->status;
  if (status.state == next) return;
  status.state = next;
  status.since_s = now_s;
  ++status.transitions;
  if (next == AlertState::kFiring) {
    status.fired_at_s = now_s;
    TELEKIT_LOG(WARN) << "slo alert firing" << F("objective", status.name)
                      << F("fast_burn", status.fast_burn)
                      << F("slow_burn", status.slow_burn)
                      << F("threshold", config_.burn_threshold);
  } else if (next == AlertState::kResolved) {
    status.resolved_at_s = now_s;
    TELEKIT_LOG(WARN) << "slo alert resolved" << F("objective", status.name)
                      << F("firing_s", now_s - status.fired_at_s);
  }
}

void SloEngine::Evaluate(double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  last_evaluated_s_ = now_s;
  size_t firing = 0;
  for (Entry& entry : entries_) {
    SloStatus& status = entry.status;
    status.fast_burn =
        WindowBurn(entry, config_.fast_window_s, now_s, nullptr, nullptr);
    status.slow_burn =
        WindowBurn(entry, config_.slow_window_s, now_s, nullptr, nullptr);
    double budget_bad = 0.0;
    double budget_total = 0.0;
    WindowBurn(entry, config_.budget_window_s, now_s, &budget_bad,
               &budget_total);
    const double allowed =
        std::max(budget_total, budget_bad) * (1.0 - entry.objective.target);
    status.budget_remaining =
        allowed > 0.0 ? 1.0 - budget_bad / allowed : 1.0;

    const bool over = status.fast_burn >= config_.burn_threshold &&
                      status.slow_burn >= config_.burn_threshold;
    switch (status.state) {
      case AlertState::kHealthy:
      case AlertState::kResolved:
        if (over) {
          Transition(&entry, AlertState::kPending, now_s);
          if (config_.pending_for_s <= 0.0) {
            Transition(&entry, AlertState::kFiring, now_s);
          }
        }
        break;
      case AlertState::kPending:
        if (!over) {
          Transition(&entry, AlertState::kHealthy, now_s);
        } else if (now_s - status.since_s >= config_.pending_for_s) {
          Transition(&entry, AlertState::kFiring, now_s);
        }
        break;
      case AlertState::kFiring:
        if (!over) Transition(&entry, AlertState::kResolved, now_s);
        break;
    }
    if (status.state == AlertState::kFiring) ++firing;
  }
  AlertsFiringGauge().Set(static_cast<double>(firing));
}

std::vector<SloStatus> SloEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SloStatus> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(entry.status);
  return out;
}

size_t SloEngine::firing_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t firing = 0;
  for (const Entry& entry : entries_) {
    if (entry.status.state == AlertState::kFiring) ++firing;
  }
  return firing;
}

JsonValue SloEngine::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue out = JsonValue::Object();
  out.Set("now_s", JsonValue(store_->now_s()));
  out.Set("last_evaluated_s", JsonValue(last_evaluated_s_));
  JsonValue config = JsonValue::Object();
  config.Set("fast_window_s", JsonValue(config_.fast_window_s));
  config.Set("slow_window_s", JsonValue(config_.slow_window_s));
  config.Set("budget_window_s", JsonValue(config_.budget_window_s));
  config.Set("burn_threshold", JsonValue(config_.burn_threshold));
  config.Set("pending_for_s", JsonValue(config_.pending_for_s));
  out.Set("config", std::move(config));
  size_t firing = 0;
  JsonValue objectives = JsonValue::Array();
  for (const Entry& entry : entries_) {
    const SloStatus& status = entry.status;
    if (status.state == AlertState::kFiring) ++firing;
    JsonValue item = JsonValue::Object();
    item.Set("name", JsonValue(status.name));
    item.Set("kind", JsonValue(KindName(status.kind)));
    item.Set("target", JsonValue(entry.objective.target));
    if (entry.objective.kind == SloObjective::Kind::kLatency) {
      item.Set("threshold_ms", JsonValue(entry.objective.threshold_ms));
    }
    item.Set("state", JsonValue(AlertStateName(status.state)));
    item.Set("fast_burn", JsonValue(status.fast_burn));
    item.Set("slow_burn", JsonValue(status.slow_burn));
    item.Set("budget_remaining", JsonValue(status.budget_remaining));
    item.Set("since_s", JsonValue(status.since_s));
    item.Set("fired_at_s", status.fired_at_s >= 0.0
                               ? JsonValue(status.fired_at_s)
                               : JsonValue());
    item.Set("resolved_at_s", status.resolved_at_s >= 0.0
                                  ? JsonValue(status.resolved_at_s)
                                  : JsonValue());
    item.Set("transitions", JsonValue(status.transitions));
    objectives.Append(std::move(item));
  }
  out.Set("firing", JsonValue(static_cast<uint64_t>(firing)));
  out.Set("objectives", std::move(objectives));
  return out;
}

HttpResponse SloEngine::HandleQuery(const HttpRequest&) const {
  return HttpResponse::Json(200, ToJson());
}

std::vector<SloObjective> DefaultServeObjectives(double latency_threshold_ms,
                                                 double availability_target,
                                                 double latency_target) {
  std::vector<SloObjective> out;
  for (const char* op : {"rca", "eap", "fct", "encode"}) {
    const std::string base = std::string("serve/") + op;
    SloObjective availability;
    availability.name = base + "/availability";
    availability.kind = SloObjective::Kind::kAvailability;
    availability.total_counter = base + "/requests";
    availability.bad_counter = base + "/errors";
    availability.target = availability_target;
    out.push_back(std::move(availability));

    SloObjective latency;
    latency.name = base + "/latency";
    latency.kind = SloObjective::Kind::kLatency;
    latency.histogram = base + "/request_ms";
    latency.threshold_ms = latency_threshold_ms;
    latency.target = latency_target;
    out.push_back(std::move(latency));
  }
  return out;
}

std::vector<SloObjective> DefaultStreamObjectives(double latency_threshold_ms,
                                                  double availability_target,
                                                  double latency_target) {
  std::vector<SloObjective> out;
  SloObjective availability;
  availability.name = "stream/detect/availability";
  availability.kind = SloObjective::Kind::kAvailability;
  availability.total_counter = "stream/episodes";
  availability.bad_counter = "stream/episodes_shed";
  availability.target = availability_target;
  out.push_back(std::move(availability));

  SloObjective latency;
  latency.name = "stream/detect/latency";
  latency.kind = SloObjective::Kind::kLatency;
  latency.histogram = "stream/detect_ms";
  latency.threshold_ms = latency_threshold_ms;
  latency.target = latency_target;
  out.push_back(std::move(latency));
  return out;
}

}  // namespace obs
}  // namespace telekit

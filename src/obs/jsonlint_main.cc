// telekit_jsonlint: validates NDJSON on stdin with the obs JSON parser.
// Each non-empty line must parse; the first failure prints the line number
// and parse error to stderr and exits 1. Used by scripts/check_tier1.sh to
// round-trip --request-log output without a system JSON tool.
#include <iostream>
#include <string>

#include "obs/json.h"

int main() {
  std::string line;
  size_t line_number = 0;
  size_t parsed = 0;
  while (std::getline(std::cin, line)) {
    ++line_number;
    if (line.empty()) continue;
    telekit::obs::JsonValue value;
    std::string error;
    if (!telekit::obs::JsonValue::Parse(line, &value, &error)) {
      std::cerr << "jsonlint: line " << line_number << ": " << error << "\n";
      return 1;
    }
    ++parsed;
  }
  std::cout << "jsonlint: " << parsed << " lines ok\n";
  return 0;
}

#ifndef TELEKIT_OBS_SLO_H_
#define TELEKIT_OBS_SLO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/admin.h"
#include "obs/json.h"
#include "obs/timeseries.h"

namespace telekit {
namespace obs {

/// One service-level objective, declared against time-series the store
/// already samples.
///
/// kAvailability: good = total - bad, both read as counter deltas of
/// `total_counter` / `bad_counter` over each burn window.
///
/// kLatency: total = `<histogram>/count` delta, good = the tracked
/// threshold series `<histogram>/le_<threshold>` delta (requests at or
/// under `threshold_ms`); bad = total - good.
struct SloObjective {
  enum class Kind { kAvailability, kLatency };

  std::string name;  ///< e.g. "serve/rca/latency" — unique per engine
  Kind kind = Kind::kAvailability;
  std::string total_counter;  ///< availability: total-events counter series
  std::string bad_counter;    ///< availability: bad-events counter series
  std::string histogram;      ///< latency: LatencyHistogram registry name
  double threshold_ms = 0.0;  ///< latency: good means <= this
  double target = 0.999;      ///< fraction of events that must be good
};

/// Multi-window burn-rate alerting parameters (SRE-workbook shape): the
/// alert condition is burn >= threshold over BOTH the fast and the slow
/// window — the fast window gives detection speed, the slow window keeps
/// a brief blip from paging.
struct SloConfig {
  double fast_window_s = 60.0;
  double slow_window_s = 300.0;
  double budget_window_s = 1800.0;  ///< error-budget accounting horizon
  double burn_threshold = 2.0;      ///< fire at this multiple of budget burn
  double pending_for_s = 0.0;       ///< dwell in pending before firing
};

/// pending -> firing -> resolved alert lifecycle. kResolved is sticky
/// (distinguishes "recovered" from "never fired") until the next breach.
enum class AlertState { kHealthy, kPending, kFiring, kResolved };

const char* AlertStateName(AlertState state);

/// Point-in-time evaluation of one objective.
struct SloStatus {
  std::string name;
  SloObjective::Kind kind = SloObjective::Kind::kAvailability;
  AlertState state = AlertState::kHealthy;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  double budget_remaining = 1.0;  ///< fraction left; negative = overspent
  double since_s = 0.0;           ///< when the current state was entered
  double fired_at_s = -1.0;       ///< last transition into firing; -1 never
  double resolved_at_s = -1.0;    ///< last transition out of firing
  uint64_t transitions = 0;       ///< state changes since registration
};

/// Evaluates declarative SLOs as multi-window burn rates over a
/// TimeSeriesStore and runs the alert state machine. Designed to be driven
/// from the store's on-sample callback:
///
///   store.SetOnSample([&](double now_s) { slo.Evaluate(now_s); });
///
/// Firing and resolving emit WARN logs; the `obs/alerts_firing` gauge
/// tracks how many objectives are currently firing. Thread-safe.
class SloEngine {
 public:
  explicit SloEngine(TimeSeriesStore* store, SloConfig config = {});

  /// Registers an objective (latency objectives also register their
  /// threshold series with the store). Call before the sampler starts.
  void AddObjective(SloObjective objective);

  /// burn = error_ratio / error_budget where error_ratio is clamped to
  /// [0, 1] and error_budget = 1 - target. Exactly at budget -> 1.0;
  /// total <= 0 (empty window) -> 0 (no traffic burns nothing). `bad`
  /// exceeding `total` (deadline expiries count errors without counting
  /// requests) clamps the ratio at 1.
  static double BurnRate(double bad, double total, double target);

  /// One evaluation pass at store-time `now_s` (seconds on the store's
  /// clock, as handed to the on-sample callback).
  void Evaluate(double now_s);

  std::vector<SloStatus> Snapshot() const;
  size_t firing_count() const;

  /// {now_s, config: {...}, firing, objectives: [...]} for /alertz.
  JsonValue ToJson() const;
  HttpResponse HandleQuery(const HttpRequest& request) const;

  const SloConfig& config() const { return config_; }

 private:
  struct Entry {
    SloObjective objective;
    SloStatus status;
  };

  /// Burn rate of `entry` over a window ending at now_s.
  double WindowBurn(const Entry& entry, double window_s, double now_s,
                    double* bad_out, double* total_out) const;
  void Transition(Entry* entry, AlertState next, double now_s);

  TimeSeriesStore* const store_;
  const SloConfig config_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  double last_evaluated_s_ = -1.0;
};

/// Availability + latency objectives for the four serve ops (rca, eap,
/// fct, encode) against the per-op counters/histograms ServeEngine
/// maintains. `latency_threshold_ms` is the good/bad boundary for every
/// op's latency objective.
std::vector<SloObjective> DefaultServeObjectives(double latency_threshold_ms,
                                                 double availability_target,
                                                 double latency_target);

/// Availability (episodes vs shed) + detection-latency objectives for the
/// streaming pipeline.
std::vector<SloObjective> DefaultStreamObjectives(double latency_threshold_ms,
                                                  double availability_target,
                                                  double latency_target);

}  // namespace obs
}  // namespace telekit

#endif  // TELEKIT_OBS_SLO_H_

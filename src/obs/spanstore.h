#ifndef TELEKIT_OBS_SPANSTORE_H_
#define TELEKIT_OBS_SPANSTORE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/admin.h"
#include "obs/json.h"

namespace telekit {
namespace obs {

/// Wall-clock microseconds since the Unix epoch. Distributed spans use the
/// system clock (not the per-process TraceNowUs() epoch) so spans recorded
/// by different processes can be laid on one timeline; the residual
/// cross-host skew is surfaced by the trace assembler, not hidden.
double UnixNowUs();

/// One completed span of a distributed trace. Span ids share the trace-id
/// space (64-bit, process-unique, never 0, hex on the wire); `parent_span`
/// 0 marks a root. The route/attempt spans additionally carry the attempt
/// number, hedge flag, target replica, and a race outcome:
///
///   "won"    the attempt's response was delivered to the client
///   "lost"   a hedged duplicate that lost the first-response-wins race
///   "failed" transport error or retryable upstream rejection
///   "ok"     uncontested success (also serve-side spans)
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
  std::string name;     ///< e.g. "route/attempt", "serve/request"
  std::string process;  ///< recording process label, e.g. "telekit_serve:7101"
  std::string replica;  ///< attempt target ("" when not a routing span)
  std::string outcome;  ///< "" | "ok" | "won" | "lost" | "failed"
  int attempt = 0;      ///< 1-based forwarding attempt (0 = not an attempt)
  bool hedge = false;
  bool ok = true;
  double start_unix_us = 0.0;
  uint64_t dur_us = 0;

  /// Ids serialize as 16-hex strings (JSON numbers are doubles); a zero
  /// parent_span serializes as null.
  JsonValue ToJson() const;
  /// Strict on the core fields; replica/outcome/attempt/hedge are optional
  /// (defaulted) so the wire shape can grow.
  static bool FromJson(const JsonValue& value, SpanRecord* out);
};

/// Bounded ring of recently completed spans, indexed by trace id on query.
/// Every telekit daemon holds one process-global instance behind the
/// built-in /spanz admin endpoint; the router's /tracezd assembler fans
/// out to each replica's /spanz and merges the hops into one tree.
///
/// Recording is on by default and can be switched off (set_enabled) — the
/// route bench uses that to price the tracing overhead. Thread-safe; a
/// Record is one mutex-guarded slot write.
class SpanStore {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  static SpanStore& Global();

  explicit SpanStore(size_t capacity = kDefaultCapacity);

  /// Stores one completed span (dropped when disabled). A zero span_id is
  /// assigned from the trace-id generator; an empty process field is
  /// filled from the process label.
  void Record(SpanRecord span);

  /// All held spans of `trace_id`, oldest first.
  std::vector<SpanRecord> Query(uint64_t trace_id) const;

  /// {"trace_id", "count", "spans": [...]}.
  JsonValue QueryJson(uint64_t trace_id) const;

  /// GET /spanz?trace_id=<hex>. Without a trace_id: store summary
  /// (process, enabled, size, total_recorded). Malformed id -> 400.
  HttpResponse HandleQuery(const HttpRequest& request) const;

  bool enabled() const;
  void set_enabled(bool enabled);

  /// Label stamped into spans recorded with an empty process field, e.g.
  /// "telekit_router:7001". Defaults to "pid:<pid>".
  void SetProcessLabel(std::string label);
  std::string process_label() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t total_recorded() const;
  void Reset();  ///< clears the ring and counter; keeps label + enabled

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  size_t head_ = 0;  // next overwrite slot once full
  uint64_t total_recorded_ = 0;
  bool enabled_ = true;
  std::string process_label_;
};

}  // namespace obs
}  // namespace telekit

#endif  // TELEKIT_OBS_SPANSTORE_H_

#ifndef TELEKIT_OBS_ADMIN_H_
#define TELEKIT_OBS_ADMIN_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/json.h"
#include "obs/metrics.h"

namespace telekit {
namespace obs {

/// One parsed admin request. Only the request line is interpreted (HTTP
/// headers are read and discarded); `query` is the part after '?'.
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;
};

/// One admin reply. Helpers fill the content type for the two shapes the
/// endpoints use.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Text(int status, std::string body);
  static HttpResponse Json(int status, const JsonValue& value);
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// "a=1&b=two&c" -> {a: "1", b: "two", c: ""}. No URL-decoding — admin
/// parameters are metric names, hex ids, and numbers, none of which need
/// escaping. Later duplicates of a key win.
std::map<std::string, std::string> ParseQuery(const std::string& query);

/// Renders every metric in `registry` in Prometheus text exposition format
/// (version 0.0.4): '/'-separated names become '_'-separated with a
/// `telekit_` prefix, each metric carries # HELP / # TYPE lines, and both
/// histogram kinds export cumulative `_bucket{le=...}` series (sparse —
/// only boundaries with mass — but monotone and +Inf-terminated) plus
/// `_sum` / `_count`.
std::string RenderPrometheus(const MetricsRegistry& registry);

/// Minimal background HTTP/1.0 server for operational endpoints, bound to
/// 127.0.0.1. One accept thread handles connections serially (admin
/// responses are small and computed in microseconds; a stalled client is
/// cut off by a receive timeout rather than a thread pool).
///
/// Built-in routes: /healthz (liveness), /metrics (Prometheus text from
/// MetricsRegistry::Global()), /tracez (Chrome trace JSON of the slow-
/// request ring), /spanz (distributed-trace spans by trace id), and an
/// index at "/". Servers with more state (readiness,
/// status) register their own handlers via Handle() — later registrations
/// for the same path win, so defaults can be overridden.
///
/// Thread-safety: Handle/Start/Stop are safe from any thread; handlers run
/// on the accept thread and must be thread-safe against the threads that
/// mutate the state they read.
class AdminServer {
 public:
  AdminServer();
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers (or replaces) the handler for an exact path.
  void Handle(const std::string& path, HttpHandler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
  /// starts the accept thread. False (with an ERROR log) when the socket
  /// cannot be bound or the server is already running.
  bool Start(int port);

  /// Joins the accept thread and closes the listener. Idempotent; also
  /// called by the destructor.
  void Stop();

  /// The bound port (resolved when Start was given 0); 0 when not running.
  int port() const { return port_.load(); }
  bool running() const { return running_.load(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request);

  mutable std::mutex mutex_;  // guards handlers_
  std::map<std::string, HttpHandler> handlers_;
  int listener_ = -1;
  std::atomic<int> port_{0};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace obs
}  // namespace telekit

#endif  // TELEKIT_OBS_ADMIN_H_

#ifndef TELEKIT_OBS_TIMESERIES_H_
#define TELEKIT_OBS_TIMESERIES_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/admin.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace telekit {
namespace obs {

/// What a series measures — determines how /timeseriesz consumers should
/// interpret the values (counters additionally export derived rates).
enum class SeriesKind {
  kCounter,   ///< monotone cumulative count (rates derived from deltas)
  kGauge,     ///< instantaneous value
  kQuantile,  ///< latency quantile estimate in ms
};

const char* SeriesKindName(SeriesKind kind);

/// One sampled point: seconds since the store's construction, value.
struct TimeSeriesSample {
  double t_s = 0.0;
  double value = 0.0;
};

struct TimeSeriesOptions {
  double interval_s = 1.0;  ///< background sampler period
  size_t capacity = 600;    ///< ring slots per series (600 @ 1 Hz = 10 min)
};

/// In-process time-series store: a background sampler thread sweeps the
/// metric registry at a fixed interval and appends every counter, every
/// gauge, and per-LatencyHistogram derived series (p50/p95/p99 quantiles,
/// cumulative count, and any tracked latency thresholds) into fixed-
/// capacity ring buffers. History is served as JSON via /timeseriesz and
/// consumed by the SLO engine's burn-rate windows.
///
/// Series values are *cumulative* for counters — rates are derived at read
/// time from adjacent-sample deltas, clamped at zero so a counter reset
/// (registry Reset(), process restart behind the same scrape) never yields
/// a negative rate.
///
/// Thread-safety: all public methods are safe from any thread. The
/// on-sample callback runs on the sampler thread *after* the store's lock
/// is released, so it may freely query the store (the SLO engine does).
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(
      TimeSeriesOptions options = {},
      MetricsRegistry* registry = &MetricsRegistry::Global());
  ~TimeSeriesStore();

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Also sample `CountAtOrBelow(threshold_ms)` of the named latency
  /// histogram each sweep, as counter series ThresholdSeriesName(...).
  /// The SLO engine registers its latency objectives through this.
  void TrackLatencyThreshold(const std::string& histogram_name,
                             double threshold_ms);

  /// "serve/request_ms" + 25.0 -> "serve/request_ms/le_25".
  static std::string ThresholdSeriesName(const std::string& histogram_name,
                                         double threshold_ms);

  /// One synchronous sweep stamped at `now_s` (tests drive this directly
  /// with synthetic clocks; the sampler thread calls it each tick).
  void SampleNow(double now_s);

  /// Starts / stops the background sampler. Start is a no-op when already
  /// running; Stop joins the thread and is idempotent (also run by the
  /// destructor). The on-sample callback fires after every sweep.
  void Start();
  void Stop();
  bool running() const;

  /// Callback invoked with the sweep timestamp after each sample (sampler
  /// thread, store lock not held). Replaces any previous callback.
  void SetOnSample(std::function<void(double now_s)> on_sample);

  /// Seconds since construction (steady clock, shared by all series).
  double now_s() const;

  /// Total sweeps performed (SampleNow calls, from any source).
  uint64_t samples_taken() const;

  /// Chronological samples of one series; empty when unknown.
  std::vector<TimeSeriesSample> SeriesSamples(const std::string& name) const;

  /// Sum of adjacent-sample deltas, each clamped at >= 0, over samples in
  /// (now_s - window_s, now_s] plus one baseline sample at or before the
  /// window start. Fewer than two usable samples -> 0 (an empty window
  /// burns nothing).
  double CounterDelta(const std::string& name, double window_s,
                      double now_s) const;

  /// {now_s, interval_s, capacity, samples_taken, series: {name: {kind,
  /// samples: [[t, v], ...], rate_per_s: [[t, r], ...]}}} where rate_per_s
  /// is only present for counter series. `window_s` limits how far back
  /// samples go, `step_s` > 0 downsamples (emit a point only when at least
  /// step_s after the previous emitted point), `prefix` filters series by
  /// name prefix.
  JsonValue QueryJson(double window_s, double step_s,
                      const std::string& prefix) const;

  /// GET /timeseriesz?window=60&step=5&prefix=serve/ — parses the query
  /// parameters (400 on a malformed number) and serves QueryJson.
  HttpResponse HandleQuery(const HttpRequest& request) const;

  const TimeSeriesOptions& options() const { return options_; }

 private:
  struct Series {
    SeriesKind kind = SeriesKind::kGauge;
    std::vector<TimeSeriesSample> ring;  // capacity slots, oldest at head
    size_t head = 0;                     // next overwrite slot once full
  };

  void Append(const std::string& name, SeriesKind kind, double t_s,
              double value);
  std::vector<TimeSeriesSample> ChronologicalLocked(
      const Series& series) const;
  void SamplerLoop();

  const TimeSeriesOptions options_;
  MetricsRegistry* const registry_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;  // guards series_, thresholds_, on_sample_
  std::map<std::string, Series> series_;
  std::vector<std::pair<std::string, double>> thresholds_;
  std::function<void(double)> on_sample_;
  uint64_t samples_taken_ = 0;

  mutable std::mutex sampler_mutex_;  // guards stop_/running_ for the cv
  std::condition_variable sampler_cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread sampler_;
};

}  // namespace obs
}  // namespace telekit

#endif  // TELEKIT_OBS_TIMESERIES_H_

#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace telekit {
namespace obs {

void JsonValue::Set(const std::string& key, JsonValue v) {
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void AppendNumber(std::string* out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no Inf/NaN; null is the least-surprising stand-in.
    *out += "null";
    return;
  }
  if (d == static_cast<double>(static_cast<int64_t>(d)) &&
      std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(d)));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  *out += buf;
}

void AppendIndent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      AppendNumber(out, number_);
      return;
    case Type::kString:
      out->push_back('"');
      *out += JsonEscape(string_);
      out->push_back('"');
      return;
    case Type::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendIndent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (!items_.empty()) AppendIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendIndent(out, indent, depth + 1);
        out->push_back('"');
        *out += JsonEscape(members_[i].first);
        *out += "\":";
        if (indent > 0) out->push_back(' ');
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!members_.empty()) AppendIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// --- Parser ------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Run(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word, JsonValue v, JsonValue* out) {
    const size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) return Fail("invalid literal");
    pos_ += n;
    *out = std::move(v);
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        return Literal("null", JsonValue(), out);
      case 't':
        return Literal("true", JsonValue(true), out);
      case 'f':
        return Literal("false", JsonValue(false), out);
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue(std::move(s));
        return true;
      }
      case '[':
        return ParseArray(out);
      case '{':
        return ParseObject(out);
      default:
        return ParseNumber(out);
    }
  }

  // Reads 4 hex digits starting at `at`; false on truncation or non-hex.
  bool ParseHex4(size_t at, unsigned* code) {
    if (at + 4 > text_.size()) return false;
    unsigned value = 0;
    for (size_t i = 0; i < 4; ++i) {
      const char h = text_[at + i];
      value <<= 4;
      if (h >= '0' && h <= '9') {
        value |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        value |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        value |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return false;
      }
    }
    *code = value;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("bad escape");
        const char e = text_[pos_];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            unsigned code = 0;
            if (!ParseHex4(pos_ + 1, &code)) return Fail("bad \\u escape");
            pos_ += 4;
            if (code >= 0xDC00 && code <= 0xDFFF) {
              return Fail("lone low surrogate in \\u escape");
            }
            if (code >= 0xD800 && code <= 0xDBFF) {
              // UTF-16 high surrogate: it must be followed by a low
              // surrogate, and the pair decodes to one supplementary code
              // point. Encoding the halves separately would produce CESU-8,
              // which is not valid UTF-8.
              unsigned low = 0;
              if (pos_ + 2 >= text_.size() || text_[pos_ + 1] != '\\' ||
                  text_[pos_ + 2] != 'u' || !ParseHex4(pos_ + 3, &low) ||
                  low < 0xDC00 || low > 0xDFFF) {
                return Fail("unpaired high surrogate in \\u escape");
              }
              pos_ += 6;
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
            // UTF-8 encode (1-4 bytes).
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else if (code < 0x10000) {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xF0 | (code >> 18)));
              out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("bad escape");
        }
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("invalid value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("invalid number");
    *out = JsonValue(d);
    return true;
  }

  bool ParseArray(JsonValue* out) {
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      SkipWhitespace();
      if (!ParseValue(&item)) return false;
      out->Append(std::move(item));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->Set(key, std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonValue::Parse(const std::string& text, JsonValue* out,
                      std::string* error) {
  Parser parser(text, error);
  return parser.Run(out);
}

}  // namespace obs
}  // namespace telekit

#ifndef TELEKIT_OBS_REPORT_H_
#define TELEKIT_OBS_REPORT_H_

#include <string>

#include "obs/json.h"

namespace telekit {
namespace obs {

/// The combined observability artifact:
///   {
///     "metrics":     MetricsRegistry::Global().Snapshot(),
///     "spans":       TraceCollector::Global().AggregateJson(),
///     "traceEvents": TraceCollector::Global().TraceEventsJson()
///   }
/// "traceEvents" is the standard Chrome trace_event key, so the whole file
/// loads directly into chrome://tracing / Perfetto; our extra keys are
/// ignored by those viewers.
JsonValue BuildReport();

/// Writes BuildReport() to `path` (pretty-printed). Returns false (and
/// logs an error) when the file cannot be written.
bool WriteReport(const std::string& path);

}  // namespace obs
}  // namespace telekit

#endif  // TELEKIT_OBS_REPORT_H_

#include "obs/log.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace telekit {
namespace obs {

namespace {

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return start;
}

double ElapsedMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - ProcessStart())
      .count();
}

std::mutex& SinkMutex() {
  static std::mutex mutex;
  return mutex;
}

void DefaultSink(const LogRecord& record) {
  // [I 12.3s log_test.cc:42] message key=value
  std::fprintf(stderr, "[%c %.1fs %s:%d] %s\n", LogLevelName(record.level)[0],
               record.elapsed_ms / 1000.0, record.file, record.line,
               record.Rendered().c_str());
}

bool EqualsIgnoreCase(const std::string& a, const char* b) {
  if (a.size() != std::strlen(b)) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) != b[i]) return false;
  }
  return true;
}

}  // namespace

LogLevel ParseLogLevel(const std::string& text, LogLevel fallback) {
  if (EqualsIgnoreCase(text, "debug")) return LogLevel::kDebug;
  if (EqualsIgnoreCase(text, "info")) return LogLevel::kInfo;
  if (EqualsIgnoreCase(text, "warn") || EqualsIgnoreCase(text, "warning")) {
    return LogLevel::kWarn;
  }
  if (EqualsIgnoreCase(text, "error")) return LogLevel::kError;
  if (EqualsIgnoreCase(text, "off") || EqualsIgnoreCase(text, "none")) {
    return LogLevel::kOff;
  }
  return fallback;
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

std::string LogRecord::Rendered() const {
  std::string out = message;
  for (const auto& field : fields) {
    if (!out.empty()) out.push_back(' ');
    out += field.first;
    out.push_back('=');
    out += field.second;
  }
  return out;
}

Logger::Logger() : level_(static_cast<int>(LogLevel::kInfo)) {
  const char* env = std::getenv("TELEKIT_LOG_LEVEL");
  if (env != nullptr) set_level(ParseLogLevel(env));
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // leaked: outlives static dtors
  return *logger;
}

void Logger::SetSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  sink_ = std::move(sink);
}

void Logger::Dispatch(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (sink_) {
    sink_(record);
  } else {
    DefaultSink(record);
  }
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) {
  record_.level = level;
  record_.line = line;
  record_.elapsed_ms = ElapsedMs();
  // Keep the basename only; full paths bloat every line.
  const char* base = std::strrchr(file, '/');
  record_.file = base != nullptr ? base + 1 : file;
}

LogMessage::~LogMessage() {
  record_.message = stream_.str();
  Logger::Global().Dispatch(record_);
}

}  // namespace obs
}  // namespace telekit

#ifndef TELEKIT_OBS_TRACE_H_
#define TELEKIT_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace telekit {
namespace obs {

/// One completed span, in Chrome trace_event "complete event" form.
struct TraceEvent {
  std::string name;
  uint64_t start_us = 0;  // since process start
  uint64_t dur_us = 0;
  int depth = 0;  // nesting depth at the time the span opened
};

/// Per-name aggregate over all completed spans of that name.
struct SpanStats {
  uint64_t count = 0;
  uint64_t total_us = 0;
  /// Time not covered by child spans (total minus direct children).
  uint64_t self_us = 0;
  uint64_t max_us = 0;
};

/// Collects completed spans. Aggregation (per-name totals) is always on;
/// full event recording — the Chrome trace — is opt-in via set_recording()
/// because long training runs would otherwise accumulate unbounded event
/// vectors. Recording stops at kMaxEvents; further spans are counted in
/// dropped_events (surfaced in AggregateJson) and the first drop logs one
/// WARNING so saturated traces are never mistaken for complete ones.
class TraceCollector {
 public:
  static TraceCollector& Global();

  bool recording() const { return recording_; }
  void set_recording(bool on) { recording_ = on; }

  void Record(const std::string& name, uint64_t start_us, uint64_t dur_us,
              uint64_t child_us, int depth);

  std::map<std::string, SpanStats> Aggregate() const;
  size_t NumEvents() const;
  /// Spans that arrived while recording was on but the buffer was full.
  uint64_t NumDropped() const;

  /// Chrome trace_event JSON array: [{name, ph:"X", ts, dur, pid, tid}].
  /// Load via chrome://tracing or https://ui.perfetto.dev.
  JsonValue TraceEventsJson() const;
  /// {name: {count, total_ms, self_ms, mean_ms, max_ms}} sorted by name,
  /// plus a top-level "dropped_events" number.
  JsonValue AggregateJson() const;

  /// Drops all events, aggregates, and the drop counter (recording flag is
  /// left unchanged).
  void Reset();

  /// Test hook: shrink the recording capacity (Reset() is recommended
  /// first; the default is kMaxEvents).
  void set_max_events(size_t max_events);

  static constexpr size_t kMaxEvents = 200000;

 private:
  TraceCollector() = default;

  mutable std::mutex mutex_;
  bool recording_ = false;
  size_t max_events_ = kMaxEvents;
  std::vector<TraceEvent> events_;
  std::map<std::string, SpanStats> aggregate_;
  uint64_t dropped_events_ = 0;
};

/// RAII tracing span. Spans nest: each thread keeps a span stack, the
/// recorded depth reflects it, and on close a span reports its duration to
/// its parent so per-name aggregates can split total vs self time.
///
///   void Train() {
///     obs::Span span("train/retrain");
///     ...
///   }
///
/// Cost when recording is off: two steady_clock reads plus one mutex-guarded
/// aggregate update per span — fine for per-step granularity, too heavy for
/// per-op granularity (use counters there).
class Span {
 public:
  explicit Span(std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Microseconds since the span opened.
  uint64_t ElapsedUs() const;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  uint64_t start_us_;
  int depth_;
  uint64_t child_us_ = 0;  // filled in by closing children
  Span* parent_;
};

/// Microseconds since process start (shared epoch for all trace events).
uint64_t TraceNowUs();

// ---------------------------------------------------------------------------
// Request-scoped tracing
// ---------------------------------------------------------------------------

/// Fresh process-unique 64-bit trace id (never 0): a seeded counter passed
/// through a SplitMix64 finalizer, so ids are unguessable-looking but
/// deterministic per process given arrival order.
uint64_t NextTraceId();

/// 16-lowercase-hex-digit rendering — the wire form of a trace id (JSON
/// numbers are doubles and cannot carry 64 bits exactly).
std::string TraceIdToHex(uint64_t trace_id);
/// Parses 1-16 hex digits; false (out unspecified) on anything else.
bool ParseTraceIdHex(const std::string& text, uint64_t* out);

/// One request's per-stage timing breakdown, recorded when the request was
/// slower than the configured threshold. All stage durations are in
/// microseconds; `start_us` shares the TraceNowUs() epoch.
struct RequestTrace {
  uint64_t trace_id = 0;
  std::string op;
  /// Short request descriptor (e.g. truncated query text).
  std::string detail;
  uint64_t start_us = 0;
  uint64_t queue_us = 0;   // waiting in the micro-batch queue
  uint64_t batch_us = 0;   // inside the worker (tokenize+encode+score)
  uint64_t encode_us = 0;  // model forward share
  uint64_t score_us = 0;   // catalogue scoring share
  uint64_t total_us = 0;
  bool ok = true;
};

/// Bounded ring of the most recent slow-request traces. Writers never
/// block readers for long: Record overwrites the oldest entry once
/// `capacity` traces are held. Backs the admin server's /tracez endpoint.
///
/// Thread-safety: all methods are safe from any thread.
class SlowTraceRing {
 public:
  static SlowTraceRing& Global();

  explicit SlowTraceRing(size_t capacity = kDefaultCapacity);

  void Record(RequestTrace trace);

  /// Oldest-to-newest copy of the held traces.
  std::vector<RequestTrace> Snapshot() const;

  /// Chrome trace_event JSON array: one lane (tid) per slow request, one
  /// "X" slice per stage (queue/batch/encode/score), trace id and op in
  /// args. Loadable via chrome://tracing / Perfetto.
  JsonValue TraceEventsJson() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  /// Total traces ever recorded (including overwritten ones).
  uint64_t total_recorded() const;
  void Reset();

  static constexpr size_t kDefaultCapacity = 256;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<RequestTrace> ring_;  // ring_[next_] is the oldest once full
  size_t next_ = 0;
  uint64_t total_ = 0;
};

}  // namespace obs
}  // namespace telekit

/// Opens a span for the rest of the enclosing scope.
#define TELEKIT_SPAN_CONCAT_INNER(a, b) a##b
#define TELEKIT_SPAN_CONCAT(a, b) TELEKIT_SPAN_CONCAT_INNER(a, b)
#define TELEKIT_SPAN(name) \
  ::telekit::obs::Span TELEKIT_SPAN_CONCAT(telekit_span_, __LINE__)(name)

#endif  // TELEKIT_OBS_TRACE_H_

#ifndef TELEKIT_OBS_TRACE_H_
#define TELEKIT_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.h"

namespace telekit {
namespace obs {

/// One completed span, in Chrome trace_event "complete event" form.
struct TraceEvent {
  std::string name;
  uint64_t start_us = 0;  // since process start
  uint64_t dur_us = 0;
  int depth = 0;  // nesting depth at the time the span opened
};

/// Per-name aggregate over all completed spans of that name.
struct SpanStats {
  uint64_t count = 0;
  uint64_t total_us = 0;
  /// Time not covered by child spans (total minus direct children).
  uint64_t self_us = 0;
  uint64_t max_us = 0;
};

/// Collects completed spans. Aggregation (per-name totals) is always on;
/// full event recording — the Chrome trace — is opt-in via set_recording()
/// because long training runs would otherwise accumulate unbounded event
/// vectors. Recording stops silently at kMaxEvents.
class TraceCollector {
 public:
  static TraceCollector& Global();

  bool recording() const { return recording_; }
  void set_recording(bool on) { recording_ = on; }

  void Record(const std::string& name, uint64_t start_us, uint64_t dur_us,
              uint64_t child_us, int depth);

  std::map<std::string, SpanStats> Aggregate() const;
  size_t NumEvents() const;

  /// Chrome trace_event JSON array: [{name, ph:"X", ts, dur, pid, tid}].
  /// Load via chrome://tracing or https://ui.perfetto.dev.
  JsonValue TraceEventsJson() const;
  /// {name: {count, total_ms, self_ms, mean_ms, max_ms}} sorted by name.
  JsonValue AggregateJson() const;

  /// Drops all events and aggregates (recording flag is left unchanged).
  void Reset();

  static constexpr size_t kMaxEvents = 200000;

 private:
  TraceCollector() = default;

  mutable std::mutex mutex_;
  bool recording_ = false;
  std::vector<TraceEvent> events_;
  std::map<std::string, SpanStats> aggregate_;
};

/// RAII tracing span. Spans nest: each thread keeps a span stack, the
/// recorded depth reflects it, and on close a span reports its duration to
/// its parent so per-name aggregates can split total vs self time.
///
///   void Train() {
///     obs::Span span("train/retrain");
///     ...
///   }
///
/// Cost when recording is off: two steady_clock reads plus one mutex-guarded
/// aggregate update per span — fine for per-step granularity, too heavy for
/// per-op granularity (use counters there).
class Span {
 public:
  explicit Span(std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Microseconds since the span opened.
  uint64_t ElapsedUs() const;

 private:
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  uint64_t start_us_;
  int depth_;
  uint64_t child_us_ = 0;  // filled in by closing children
  Span* parent_;
};

/// Microseconds since process start (shared epoch for all trace events).
uint64_t TraceNowUs();

}  // namespace obs
}  // namespace telekit

/// Opens a span for the rest of the enclosing scope.
#define TELEKIT_SPAN_CONCAT_INNER(a, b) a##b
#define TELEKIT_SPAN_CONCAT(a, b) TELEKIT_SPAN_CONCAT_INNER(a, b)
#define TELEKIT_SPAN(name) \
  ::telekit::obs::Span TELEKIT_SPAN_CONCAT(telekit_span_, __LINE__)(name)

#endif  // TELEKIT_OBS_TRACE_H_

#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace telekit {
namespace eval {

double RankingAccumulator::MeanRank() const {
  TELEKIT_CHECK(!ranks_.empty());
  return std::accumulate(ranks_.begin(), ranks_.end(), 0.0) /
         static_cast<double>(ranks_.size());
}

double RankingAccumulator::MeanReciprocalRank() const {
  TELEKIT_CHECK(!ranks_.empty());
  double total = 0;
  for (double r : ranks_) total += 1.0 / r;
  return total / static_cast<double>(ranks_.size());
}

double RankingAccumulator::HitsAt(int n, bool percent) const {
  TELEKIT_CHECK(!ranks_.empty());
  int hits = 0;
  for (double r : ranks_) hits += r <= static_cast<double>(n) + 1e-9;
  const double fraction =
      static_cast<double>(hits) / static_cast<double>(ranks_.size());
  return percent ? 100.0 * fraction : fraction;
}

void BinaryConfusion::Add(bool predicted_positive, bool actually_positive) {
  if (predicted_positive && actually_positive) {
    ++tp_;
  } else if (predicted_positive && !actually_positive) {
    ++fp_;
  } else if (!predicted_positive && actually_positive) {
    ++fn_;
  } else {
    ++tn_;
  }
}

double BinaryConfusion::Accuracy() const {
  TELEKIT_CHECK_GT(total(), 0);
  return 100.0 * (tp_ + tn_) / static_cast<double>(total());
}

double BinaryConfusion::Precision() const {
  if (tp_ + fp_ == 0) return 0.0;
  return 100.0 * tp_ / static_cast<double>(tp_ + fp_);
}

double BinaryConfusion::Recall() const {
  if (tp_ + fn_ == 0) return 0.0;
  return 100.0 * tp_ / static_cast<double>(tp_ + fn_);
}

double BinaryConfusion::F1() const {
  const double p = Precision();
  const double r = Recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

std::vector<std::vector<size_t>> KFoldIndices(size_t n, int k, Rng& rng) {
  TELEKIT_CHECK_GE(k, 2);
  TELEKIT_CHECK_GE(n, static_cast<size_t>(k));
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  std::vector<std::vector<size_t>> folds(static_cast<size_t>(k));
  for (size_t i = 0; i < n; ++i) {
    folds[i % static_cast<size_t>(k)].push_back(order[i]);
  }
  return folds;
}

KFoldSplit MakeSplit(const std::vector<std::vector<size_t>>& folds,
                     int test_fold) {
  const int k = static_cast<int>(folds.size());
  TELEKIT_CHECK(test_fold >= 0 && test_fold < k);
  const int valid_fold = (test_fold + 1) % k;
  KFoldSplit split;
  split.test = folds[static_cast<size_t>(test_fold)];
  split.valid = folds[static_cast<size_t>(valid_fold)];
  for (int f = 0; f < k; ++f) {
    if (f == test_fold || f == valid_fold) continue;
    split.train.insert(split.train.end(), folds[static_cast<size_t>(f)].begin(),
                       folds[static_cast<size_t>(f)].end());
  }
  return split;
}

std::vector<std::pair<double, double>> PcaProject2d(
    const std::vector<std::vector<float>>& points) {
  TELEKIT_CHECK_GE(points.size(), 2u);
  const size_t d = points[0].size();
  // Center.
  std::vector<double> mean(d, 0.0);
  for (const auto& p : points) {
    TELEKIT_CHECK_EQ(p.size(), d);
    for (size_t j = 0; j < d; ++j) mean[j] += p[j];
  }
  for (double& m : mean) m /= static_cast<double>(points.size());
  std::vector<std::vector<double>> centered(points.size(),
                                            std::vector<double>(d));
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < d; ++j) centered[i][j] = points[i][j] - mean[j];
  }
  // Power iteration on the covariance (implicitly, via X^T X v).
  auto multiply_cov = [&](const std::vector<double>& v) {
    std::vector<double> out(d, 0.0);
    for (const auto& row : centered) {
      double dot = 0;
      for (size_t j = 0; j < d; ++j) dot += row[j] * v[j];
      for (size_t j = 0; j < d; ++j) out[j] += dot * row[j];
    }
    return out;
  };
  auto normalize = [](std::vector<double>& v) {
    double norm = 0;
    for (double x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (double& x : v) x /= norm;
    }
    return norm;
  };
  std::vector<std::vector<double>> components;
  for (int c = 0; c < 2; ++c) {
    std::vector<double> v(d);
    for (size_t j = 0; j < d; ++j) {
      v[j] = std::sin(static_cast<double>(j + 1) * (c + 1) * 0.7) + 0.01;
    }
    normalize(v);
    for (int iter = 0; iter < 60; ++iter) {
      std::vector<double> next = multiply_cov(v);
      // Deflate previously found components.
      for (const auto& prev : components) {
        double dot = 0;
        for (size_t j = 0; j < d; ++j) dot += next[j] * prev[j];
        for (size_t j = 0; j < d; ++j) next[j] -= dot * prev[j];
      }
      if (normalize(next) < 1e-12) break;
      v = next;
    }
    components.push_back(v);
  }
  std::vector<std::pair<double, double>> projected;
  projected.reserve(points.size());
  for (const auto& row : centered) {
    double x = 0, y = 0;
    for (size_t j = 0; j < d; ++j) {
      x += row[j] * components[0][j];
      y += row[j] * components[1][j];
    }
    projected.emplace_back(x, y);
  }
  return projected;
}

namespace {

std::vector<double> RanksOf(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) /
                                2.0 +
                            1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  TELEKIT_CHECK_EQ(a.size(), b.size());
  TELEKIT_CHECK_GE(a.size(), 3u);
  const std::vector<double> ra = RanksOf(a);
  const std::vector<double> rb = RanksOf(b);
  const double n = static_cast<double>(a.size());
  double mean = (n + 1.0) / 2.0;
  double cov = 0, var_a = 0, var_b = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (ra[i] - mean) * (rb[i] - mean);
    var_a += (ra[i] - mean) * (ra[i] - mean);
    var_b += (rb[i] - mean) * (rb[i] - mean);
  }
  if (var_a < 1e-12 || var_b < 1e-12) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b) {
  TELEKIT_CHECK_EQ(a.size(), b.size());
  double dot = 0, na = 0, nb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace eval
}  // namespace telekit

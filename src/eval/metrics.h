#ifndef TELEKIT_EVAL_METRICS_H_
#define TELEKIT_EVAL_METRICS_H_

#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace telekit {
namespace eval {

/// Accumulates ranks (1-based, possibly fractional for ties) and reports
/// the ranking metrics used by Tables IV and VIII.
class RankingAccumulator {
 public:
  void AddRank(double rank) {
    TELEKIT_CHECK_GE(rank, 1.0);
    ranks_.push_back(rank);
  }

  int count() const { return static_cast<int>(ranks_.size()); }
  /// Mean rank (MR, lower is better).
  double MeanRank() const;
  /// Mean reciprocal rank (MRR, higher is better).
  double MeanReciprocalRank() const;
  /// Fraction of ranks <= n (Hits@N), in percent when `percent`.
  double HitsAt(int n, bool percent = true) const;

 private:
  std::vector<double> ranks_;
};

/// Binary-classification confusion counts and the derived metrics of
/// Table VI (values in percent).
class BinaryConfusion {
 public:
  void Add(bool predicted_positive, bool actually_positive);

  int total() const { return tp_ + fp_ + tn_ + fn_; }
  double Accuracy() const;
  double Precision() const;
  double Recall() const;
  double F1() const;

 private:
  int tp_ = 0, fp_ = 0, tn_ = 0, fn_ = 0;
};

/// Random k-fold assignment: returns k disjoint index sets covering [0, n).
std::vector<std::vector<size_t>> KFoldIndices(size_t n, int k, Rng& rng);

/// The paper's CV scheme (Sec. V-B3): fold `test_fold` is the test set,
/// the next fold is validation, the rest train.
struct KFoldSplit {
  std::vector<size_t> train;
  std::vector<size_t> valid;
  std::vector<size_t> test;
};
KFoldSplit MakeSplit(const std::vector<std::vector<size_t>>& folds,
                     int test_fold);

/// Projects points onto their top two principal components (used to render
/// Fig. 10's numeric-embedding visualization as coordinates).
std::vector<std::pair<double, double>> PcaProject2d(
    const std::vector<std::vector<float>>& points);

/// Spearman rank correlation between two equally sized samples. Used to
/// quantify Fig. 10: with L_nc the distance-from-anchor ordering of numeric
/// embeddings should correlate with the value ordering.
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Cosine similarity between two vectors.
double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b);

}  // namespace eval
}  // namespace telekit

#endif  // TELEKIT_EVAL_METRICS_H_

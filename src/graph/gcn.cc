#include "graph/gcn.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace telekit {
namespace graph {

using tensor::Tensor;

Tensor NormalizedAdjacency(const Graph& graph) {
  const int n = graph.num_nodes;
  TELEKIT_CHECK_GT(n, 0);
  // A + I with parallel edges collapsed.
  std::vector<float> adj(static_cast<size_t>(n) * n, 0.0f);
  for (int i = 0; i < n; ++i) adj[static_cast<size_t>(i) * n + i] = 1.0f;
  for (const auto& [u, v] : graph.edges) {
    TELEKIT_CHECK(u >= 0 && u < n && v >= 0 && v < n)
        << "edge (" << u << ", " << v << ") out of range";
    adj[static_cast<size_t>(u) * n + v] = 1.0f;
    adj[static_cast<size_t>(v) * n + u] = 1.0f;
  }
  // Degree of A + I, then symmetric normalization.
  std::vector<float> inv_sqrt_degree(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    float degree = 0.0f;
    for (int j = 0; j < n; ++j) degree += adj[static_cast<size_t>(i) * n + j];
    inv_sqrt_degree[static_cast<size_t>(i)] = 1.0f / std::sqrt(degree);
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      adj[static_cast<size_t>(i) * n + j] *=
          inv_sqrt_degree[static_cast<size_t>(i)] *
          inv_sqrt_degree[static_cast<size_t>(j)];
    }
  }
  return Tensor::FromData({n, n}, std::move(adj));
}

GcnLayer::GcnLayer(int in_dim, int out_dim, Rng& rng)
    : weight_(Tensor::GlorotUniform(in_dim, out_dim, rng,
                                    /*requires_grad=*/true)) {}

Tensor GcnLayer::Forward(const Tensor& a_norm, const Tensor& h,
                         bool apply_relu) const {
  TELEKIT_CHECK_EQ(h.dim(1), in_dim());
  TELEKIT_CHECK_EQ(a_norm.dim(0), h.dim(0));
  Tensor out = tensor::MatMul(tensor::MatMul(a_norm, h), weight_);
  return apply_relu ? tensor::Relu(out) : out;
}

GcnStack::GcnStack(const std::vector<int>& dims, Rng& rng) {
  TELEKIT_CHECK_GE(dims.size(), 2u) << "need input and output dims";
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Tensor GcnStack::Forward(const Tensor& a_norm, const Tensor& features) const {
  Tensor h = features;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool last = i + 1 == layers_.size();
    h = layers_[i].Forward(a_norm, h, /*apply_relu=*/!last);
  }
  return h;
}

std::vector<Tensor> GcnStack::Parameters() const {
  std::vector<Tensor> params;
  for (const GcnLayer& layer : layers_) {
    for (const Tensor& p : layer.Parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace graph
}  // namespace telekit

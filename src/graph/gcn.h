#ifndef TELEKIT_GRAPH_GCN_H_
#define TELEKIT_GRAPH_GCN_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace telekit {
namespace graph {

/// An undirected graph over nodes 0..num_nodes-1. Parallel edges are
/// allowed (they are collapsed when building the adjacency matrix).
struct Graph {
  int num_nodes = 0;
  std::vector<std::pair<int, int>> edges;
};

/// Dense symmetric-normalized adjacency with self-loops,
/// D^{-1/2} (A + I) D^{-1/2} (Kipf & Welling; Eq. 14 of the paper).
/// The result does not require grad (it is a constant of the graph).
tensor::Tensor NormalizedAdjacency(const Graph& graph);

/// One graph-convolution layer: H' = act(A_norm H W).
class GcnLayer {
 public:
  /// Glorot-initialized weight [in_dim, out_dim].
  GcnLayer(int in_dim, int out_dim, Rng& rng);

  /// Forward pass. `a_norm` is the normalized adjacency [n, n]; `h` is the
  /// node-feature matrix [n, in_dim]. Applies ReLU when `apply_relu`.
  tensor::Tensor Forward(const tensor::Tensor& a_norm,
                         const tensor::Tensor& h, bool apply_relu) const;

  /// Trainable parameters of this layer.
  std::vector<tensor::Tensor> Parameters() const { return {weight_}; }

  int in_dim() const { return weight_.dim(0); }
  int out_dim() const { return weight_.dim(1); }

 private:
  tensor::Tensor weight_;
};

/// A stack of GCN layers with ReLU between layers and a linear last layer
/// (the RCA configuration: input -> 1024 -> 512).
class GcnStack {
 public:
  /// `dims` = {input, hidden..., output}; at least two entries.
  GcnStack(const std::vector<int>& dims, Rng& rng);

  /// Node representations after all layers: [n, dims.back()].
  tensor::Tensor Forward(const tensor::Tensor& a_norm,
                         const tensor::Tensor& features) const;

  std::vector<tensor::Tensor> Parameters() const;

  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  std::vector<GcnLayer> layers_;
};

}  // namespace graph
}  // namespace telekit

#endif  // TELEKIT_GRAPH_GCN_H_

#!/usr/bin/env bash
# Full verification harness: builds, runs every test, then regenerates
# every paper table/figure. Writes test_output.txt / bench_output.txt at
# the repository root (the files EXPERIMENTS.md refers to).
set -u
cd "$(dirname "$0")/.."

cmake -B build -G Ninja && cmake --build build || exit 1

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then
    echo "===== $(basename "$b") =====" | tee -a bench_output.txt
    "$b" 2>/dev/null | tee -a bench_output.txt
  fi
done

#!/usr/bin/env bash
# Tier-1 regression check, one command (see ROADMAP.md):
#   1. configure + build everything
#   2. run the full ctest suite
#   3. rebuild the obs layer (library + its test) under
#      -Wall -Wextra -Werror in a separate tree, so new warnings in the
#      observability code fail loudly instead of scrolling by.
#
# Optional: TELEKIT_TSAN=1 scripts/check_tier1.sh additionally builds the
# concurrency-heavy tests (serve engine, embedding cache, metrics registry)
# under ThreadSanitizer in build_tsan/ and runs them. Off by default: the
# TSan tree roughly doubles check time.
#
# Usage: scripts/check_tier1.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/3] configure + build =="
cmake -B build -S .
cmake --build build -j

echo "== [2/3] ctest =="
ctest --test-dir build --output-on-failure -j

echo "== [3/3] -Werror build of the obs layer =="
cmake -B build_strict -S . -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror"
cmake --build build_strict -j --target telekit_obs obs_test
./build_strict/tests/obs_test --gtest_brief=1

if [[ "${TELEKIT_TSAN:-0}" == "1" ]]; then
  echo "== [tsan] ThreadSanitizer pass (serve + obs) =="
  cmake -B build_tsan -S . -DTELEKIT_TSAN=ON
  cmake --build build_tsan -j --target serve_test obs_test
  ./build_tsan/tests/serve_test --gtest_brief=1
  ./build_tsan/tests/obs_test --gtest_brief=1
fi

echo "check_tier1: OK"

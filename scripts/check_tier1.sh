#!/usr/bin/env bash
# Tier-1 regression check, one command (see ROADMAP.md):
#   1. configure + build everything
#   2. run the full ctest suite
#   3. rebuild the obs layer (library + its tests) under
#      -Wall -Wextra -Werror in a separate tree, so new warnings in the
#      observability code fail loudly instead of scrolling by.
#   4. admin smoke: start telekit_serve with --admin-port on loopback,
#      poll /healthz until live, assert /metrics serves a non-empty
#      Prometheus exposition, and shut the server down cleanly.
#
# Optional: TELEKIT_TSAN=1 scripts/check_tier1.sh additionally builds the
# concurrency-heavy tests (serve engine, embedding cache, metrics registry,
# admin server, tensor ComputePool) under ThreadSanitizer in build_tsan/ and
# runs them — tensor_test and serve_test with TELEKIT_COMPUTE_THREADS=4 so
# the intra-op worker pool is actually exercised under TSan. Off by default:
# the TSan tree roughly doubles check time.
#
# Usage: scripts/check_tier1.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/4] configure + build =="
cmake -B build -S .
cmake --build build -j

echo "== [2/4] ctest =="
ctest --test-dir build --output-on-failure -j

echo "== [3/4] -Werror build of the obs layer =="
cmake -B build_strict -S . -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror"
cmake --build build_strict -j --target telekit_obs obs_test obs_admin_test
./build_strict/tests/obs_test --gtest_brief=1
./build_strict/tests/obs_admin_test --gtest_brief=1

echo "== [4/4] admin endpoint smoke =="
SERVE_PORT=18473
ADMIN_PORT=18474
SERVE_LOG=$(mktemp)
# TCP mode (not stdin) so the server stays up while we scrape it.
# --compute-threads=2 smoke-checks the intra-op pool flag end to end.
./build/src/serve/telekit_serve --port="${SERVE_PORT}" \
  --admin-port="${ADMIN_PORT}" --slow-request-ms=100 \
  --compute-threads=2 \
  >"${SERVE_LOG}" 2>&1 &
SERVE_PID=$!
cleanup() {
  kill "${SERVE_PID}" 2>/dev/null || true
  wait "${SERVE_PID}" 2>/dev/null || true
  rm -f "${SERVE_LOG}"
}
trap cleanup EXIT

# /healthz answers as soon as the admin thread is up; /readyz stays 503
# until the model is built, so wait for both before scraping.
for _ in $(seq 1 60); do
  if curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/readyz" \
      >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "${SERVE_PID}" 2>/dev/null; then
    echo "admin smoke: telekit_serve died during startup:"
    cat "${SERVE_LOG}"
    exit 1
  fi
  sleep 1
done
HEALTH=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/healthz")
[[ "${HEALTH}" == "ok" ]] || { echo "admin smoke: bad /healthz: ${HEALTH}"; exit 1; }
STATUSZ=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/statusz")
if ! grep -q '"queue_depth"' <<<"${STATUSZ}"; then
  echo "admin smoke: /statusz missing engine stats: ${STATUSZ}"
  exit 1
fi
METRICS=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/metrics")
if [[ -z "${METRICS}" ]] || ! grep -q "telekit_" <<<"${METRICS}"; then
  echo "admin smoke: /metrics exposition empty or missing telekit_ prefix"
  exit 1
fi
kill "${SERVE_PID}"
wait "${SERVE_PID}" 2>/dev/null || true
trap - EXIT
rm -f "${SERVE_LOG}"
echo "admin smoke: OK (/healthz + /readyz + /statusz live, /metrics non-empty)"

if [[ "${TELEKIT_TSAN:-0}" == "1" ]]; then
  echo "== [tsan] ThreadSanitizer pass (tensor + serve + obs + admin) =="
  cmake -B build_tsan -S . -DTELEKIT_TSAN=ON
  cmake --build build_tsan -j --target \
    tensor_test serve_test obs_test obs_admin_test
  TELEKIT_COMPUTE_THREADS=4 ./build_tsan/tests/tensor_test --gtest_brief=1
  TELEKIT_COMPUTE_THREADS=4 ./build_tsan/tests/serve_test --gtest_brief=1
  ./build_tsan/tests/obs_test --gtest_brief=1
  ./build_tsan/tests/obs_admin_test --gtest_brief=1
fi

echo "check_tier1: OK"

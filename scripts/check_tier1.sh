#!/usr/bin/env bash
# Tier-1 regression check, one command (see ROADMAP.md):
#   1. configure + build everything
#   2. run the full ctest suite
#   3. rebuild the obs layer (library + its tests) under
#      -Wall -Wextra -Werror in a separate tree, so new warnings in the
#      observability code fail loudly instead of scrolling by.
#   4. admin smoke: start telekit_serve with --admin-port on loopback,
#      poll /healthz until live, assert /metrics serves a non-empty
#      Prometheus exposition, then drive one traced request through the
#      TCP protocol and assert the observability loop closes end to end:
#      /timeseriesz accumulates samples, /alertz is healthy on a clean
#      run, a /metrics latency bucket carries a trace exemplar whose id
#      resolves via /requestz to a wide event with matching total_us, and
#      the --request-log NDJSON round-trips through telekit_jsonlint.
#   5. streamd smoke: replay a small seeded stream through telekit_streamd
#      with --linger, assert /statusz reports a finished run with >0
#      episodes and 0 late drops, and that the per-op serve counters made
#      it into the Prometheus exposition.
#
# Optional: TELEKIT_TSAN=1 scripts/check_tier1.sh additionally builds the
# concurrency-heavy tests (serve engine, stream pipeline, embedding cache,
# metrics registry, admin server, tensor ComputePool) under ThreadSanitizer
# in build_tsan/ and runs them — tensor_test, serve_test and stream_test
# with TELEKIT_COMPUTE_THREADS=4 so the intra-op worker pool is actually
# exercised under TSan. Off by default: the TSan tree roughly doubles check
# time.
#
# Usage: scripts/check_tier1.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/5] configure + build =="
cmake -B build -S .
cmake --build build -j

echo "== [2/5] ctest =="
ctest --test-dir build --output-on-failure -j

echo "== [3/5] -Werror build of the obs + stream layers =="
cmake -B build_strict -S . -DCMAKE_CXX_FLAGS="-Wall -Wextra -Werror"
cmake --build build_strict -j --target telekit_obs obs_test obs_admin_test \
  obs_timeseries_test telekit_stream stream_test
./build_strict/tests/obs_test --gtest_brief=1
./build_strict/tests/obs_admin_test --gtest_brief=1
./build_strict/tests/obs_timeseries_test --gtest_brief=1
./build_strict/tests/stream_test --gtest_brief=1

echo "== [4/5] admin endpoint smoke =="
SERVE_PORT=18473
ADMIN_PORT=18474
SERVE_LOG=$(mktemp)
REQUEST_LOG=$(mktemp)
# TCP mode (not stdin) so the server stays up while we scrape it.
# --compute-threads=2 smoke-checks the intra-op pool flag end to end;
# --ts-interval-s=0.2 makes the sampler tick fast enough to observe.
./build/src/serve/telekit_serve --port="${SERVE_PORT}" \
  --admin-port="${ADMIN_PORT}" --slow-request-ms=100 \
  --compute-threads=2 --ts-interval-s=0.2 \
  --request-log="${REQUEST_LOG}" \
  >"${SERVE_LOG}" 2>&1 &
SERVE_PID=$!
cleanup() {
  kill "${SERVE_PID}" 2>/dev/null || true
  wait "${SERVE_PID}" 2>/dev/null || true
  rm -f "${SERVE_LOG}" "${REQUEST_LOG}"
}
trap cleanup EXIT

# /healthz answers as soon as the admin thread is up; /readyz stays 503
# until the model is built, so wait for both before scraping.
for _ in $(seq 1 60); do
  if curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/readyz" \
      >/dev/null 2>&1; then
    break
  fi
  if ! kill -0 "${SERVE_PID}" 2>/dev/null; then
    echo "admin smoke: telekit_serve died during startup:"
    cat "${SERVE_LOG}"
    exit 1
  fi
  sleep 1
done
HEALTH=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/healthz")
[[ "${HEALTH}" == "ok" ]] || { echo "admin smoke: bad /healthz: ${HEALTH}"; exit 1; }
STATUSZ=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/statusz")
if ! grep -q '"queue_depth"' <<<"${STATUSZ}"; then
  echo "admin smoke: /statusz missing engine stats: ${STATUSZ}"
  exit 1
fi
METRICS=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/metrics")
if [[ -z "${METRICS}" ]] || ! grep -q "telekit_" <<<"${METRICS}"; then
  echo "admin smoke: /metrics exposition empty or missing telekit_ prefix"
  exit 1
fi

# Drive one traced request through the NDJSON TCP protocol so the wide-event
# log, exemplar store, and latency histograms all see real traffic.
exec 3<>"/dev/tcp/127.0.0.1/${SERVE_PORT}"
printf '{"op": "rca", "text": "ospf neighbor down on core router", "trace": true}\n' >&3
IFS= read -r SERVE_REPLY <&3 || true
exec 3<&- 3>&-
if ! grep -Eq '"ok": ?true' <<<"${SERVE_REPLY}"; then
  echo "admin smoke: traced rca request failed: ${SERVE_REPLY}"
  exit 1
fi

# The background sampler (0.2 s period) must accumulate history.
SAMPLES=0
for _ in $(seq 1 50); do
  TIMESERIES=$(curl -sf -m 2 \
    "http://127.0.0.1:${ADMIN_PORT}/timeseriesz?window=60" 2>/dev/null || true)
  SAMPLES=$(sed -n 's/.*"samples_taken": \([0-9]*\).*/\1/p' <<<"${TIMESERIES}")
  [[ -n "${SAMPLES}" && "${SAMPLES}" -ge 2 ]] && break
  sleep 0.2
done
if [[ -z "${SAMPLES}" || "${SAMPLES}" -lt 2 ]]; then
  echo "admin smoke: /timeseriesz never accumulated 2 samples: ${TIMESERIES}"
  exit 1
fi
if ! grep -q '"serve/request_ms/p95"' <<<"${TIMESERIES}"; then
  echo "admin smoke: /timeseriesz missing serve/request_ms quantile series"
  exit 1
fi

# A clean run must not have any SLO alert firing.
ALERTZ=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/alertz")
if ! grep -q '"firing": 0' <<<"${ALERTZ}"; then
  echo "admin smoke: /alertz reports firing alerts on a clean run: ${ALERTZ}"
  exit 1
fi

# Close the exemplar loop: a latency bucket line in /metrics carries
# ` # {trace_id="..."} value_ms unix_s`; that trace id must resolve via
# /requestz to a wide event whose total_us matches value_ms within 10 us.
METRICS2=$(curl -sf -m 2 "http://127.0.0.1:${ADMIN_PORT}/metrics")
EXEMPLAR_LINE=$(grep 'telekit_serve_request_ms_bucket{le="[^+]*"} .* # {trace_id="' \
  <<<"${METRICS2}" | head -1)
if [[ -z "${EXEMPLAR_LINE}" ]]; then
  echo "admin smoke: /metrics has no exemplar on serve_request_ms buckets"
  exit 1
fi
EXEMPLAR_TRACE=$(sed -n 's/.*# {trace_id="\([0-9a-f]*\)"}.*/\1/p' <<<"${EXEMPLAR_LINE}")
EXEMPLAR_MS=$(sed -n 's/.*# {trace_id="[0-9a-f]*"} \([0-9.eE+-]*\) .*/\1/p' \
  <<<"${EXEMPLAR_LINE}")
REQUESTZ=$(curl -sf -m 2 \
  "http://127.0.0.1:${ADMIN_PORT}/requestz?trace_id=${EXEMPLAR_TRACE}")
WIDE_US=$(sed -n 's/.*"total_us": \([0-9]*\).*/\1/p' <<<"${REQUESTZ}" | head -1)
if [[ -z "${WIDE_US}" ]]; then
  echo "admin smoke: exemplar trace ${EXEMPLAR_TRACE} not found in /requestz"
  exit 1
fi
if ! awk -v us="${WIDE_US}" -v ms="${EXEMPLAR_MS}" \
    'BEGIN { d = us - ms * 1000; if (d < 0) d = -d; exit (d <= 10) ? 0 : 1 }'; then
  echo "admin smoke: exemplar value ${EXEMPLAR_MS} ms disagrees with wide event ${WIDE_US} us"
  exit 1
fi

kill "${SERVE_PID}"
wait "${SERVE_PID}" 2>/dev/null || true
trap - EXIT

# The NDJSON request log must round-trip through the repo's own parser.
if [[ ! -s "${REQUEST_LOG}" ]]; then
  echo "admin smoke: --request-log sink is empty"
  exit 1
fi
if ! ./build/src/obs/telekit_jsonlint <"${REQUEST_LOG}"; then
  echo "admin smoke: --request-log NDJSON failed jsonlint"
  exit 1
fi
rm -f "${SERVE_LOG}" "${REQUEST_LOG}"
echo "admin smoke: OK (/healthz + /readyz + /statusz + /timeseriesz + /alertz live," \
  "exemplar -> /requestz loop closed, request log lints)"

echo "== [5/5] streamd replay smoke =="
STREAMD_ADMIN_PORT=18475
STREAMD_LOG=$(mktemp)
# Unpaced deterministic replay of a small seeded stream; --linger keeps the
# admin server up after the replay finishes so /statusz can be scraped
# without racing the run.
./build/src/stream/telekit_streamd --seed=4242 --episodes=6 \
  --admin-port="${STREAMD_ADMIN_PORT}" --workers=2 --compute-threads=2 \
  --linger >"${STREAMD_LOG}" 2>&1 &
STREAMD_PID=$!
cleanup_streamd() {
  kill "${STREAMD_PID}" 2>/dev/null || true
  wait "${STREAMD_PID}" 2>/dev/null || true
  rm -f "${STREAMD_LOG}"
}
trap cleanup_streamd EXIT

# Wait until the replay reports itself done through /statusz.
STREAM_STATUS=""
for _ in $(seq 1 120); do
  STREAM_STATUS=$(curl -sf -m 2 \
    "http://127.0.0.1:${STREAMD_ADMIN_PORT}/statusz" 2>/dev/null || true)
  if grep -q '"done": true' <<<"${STREAM_STATUS}"; then
    break
  fi
  if ! kill -0 "${STREAMD_PID}" 2>/dev/null; then
    echo "streamd smoke: telekit_streamd died during the replay:"
    cat "${STREAMD_LOG}"
    exit 1
  fi
  sleep 1
done
if ! grep -q '"done": true' <<<"${STREAM_STATUS}"; then
  echo "streamd smoke: replay never finished: ${STREAM_STATUS}"
  exit 1
fi
EPISODES=$(sed -n 's/.*"episodes": \([0-9]*\).*/\1/p' <<<"${STREAM_STATUS}")
LATE=$(sed -n 's/.*"late_drops": \([0-9]*\).*/\1/p' <<<"${STREAM_STATUS}")
if [[ -z "${EPISODES}" || "${EPISODES}" -eq 0 ]]; then
  echo "streamd smoke: /statusz reports no flushed episodes: ${STREAM_STATUS}"
  exit 1
fi
if [[ -z "${LATE}" || "${LATE}" -ne 0 ]]; then
  echo "streamd smoke: /statusz reports late drops: ${STREAM_STATUS}"
  exit 1
fi
STREAM_METRICS=$(curl -sf -m 2 "http://127.0.0.1:${STREAMD_ADMIN_PORT}/metrics")
for metric in telekit_stream_episodes telekit_serve_rca_requests \
    telekit_serve_eap_requests telekit_serve_fct_requests; do
  if ! grep -q "${metric}" <<<"${STREAM_METRICS}"; then
    echo "streamd smoke: /metrics missing ${metric}"
    exit 1
  fi
done
kill "${STREAMD_PID}"
wait "${STREAMD_PID}" 2>/dev/null || true
trap - EXIT
rm -f "${STREAMD_LOG}"
echo "streamd smoke: OK (${EPISODES} episodes, 0 late drops, per-op serve metrics live)"

if [[ "${TELEKIT_TSAN:-0}" == "1" ]]; then
  echo "== [tsan] ThreadSanitizer pass (tensor + serve + stream + obs + admin) =="
  cmake -B build_tsan -S . -DTELEKIT_TSAN=ON
  cmake --build build_tsan -j --target \
    tensor_test serve_test stream_test obs_test obs_admin_test \
    obs_timeseries_test
  TELEKIT_COMPUTE_THREADS=4 ./build_tsan/tests/tensor_test --gtest_brief=1
  TELEKIT_COMPUTE_THREADS=4 ./build_tsan/tests/serve_test --gtest_brief=1
  TELEKIT_COMPUTE_THREADS=4 ./build_tsan/tests/stream_test --gtest_brief=1
  ./build_tsan/tests/obs_test --gtest_brief=1
  ./build_tsan/tests/obs_admin_test --gtest_brief=1
  ./build_tsan/tests/obs_timeseries_test --gtest_brief=1
fi

echo "check_tier1: OK"
